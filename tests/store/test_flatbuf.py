"""Flat-buffer layout: roundtrips, alignment, corruption, mmap files."""

from __future__ import annotations

import numpy as np
import pytest

from repro.store.flatbuf import (
    ALIGN,
    MAGIC,
    FlatBufferError,
    FlatView,
    pack,
    read_file,
    unpack,
    write_file,
)


def _sample_arrays() -> dict[str, np.ndarray]:
    return {
        "u64": np.arange(17, dtype=np.uint64),
        "i32_2d": np.arange(12, dtype=np.int32).reshape(3, 4),
        "u8": np.array([0, 1, 2, 255], dtype=np.uint8),
        "empty": np.empty(0, dtype=np.int64),
        "f64": np.linspace(0.0, 1.0, 5),
    }


class TestRoundtrip:
    def test_meta_and_arrays_survive(self):
        meta = {"kind": "x", "nested": [1, "two", None]}
        arrays = _sample_arrays()
        decoded_meta, views = unpack(pack(meta, arrays))
        assert decoded_meta == meta
        assert set(views) == set(arrays)
        for name, original in arrays.items():
            np.testing.assert_array_equal(views[name], original)
            assert views[name].dtype == original.dtype
            assert views[name].shape == original.shape

    def test_views_are_zero_copy_and_read_only(self):
        blob = pack(None, {"a": np.arange(8, dtype=np.uint64)})
        _, views = unpack(blob)
        view = views["a"]
        assert not view.flags.writeable
        assert not view.flags.owndata  # aliases the source buffer
        with pytest.raises((ValueError, RuntimeError)):
            view[0] = 99

    def test_segments_are_aligned(self):
        blob = pack({}, _sample_arrays())
        _, views = unpack(blob)
        base = np.frombuffer(blob, dtype=np.uint8).ctypes.data
        for view in views.values():
            if view.nbytes:
                assert (view.ctypes.data - base) % ALIGN == 0

    def test_non_contiguous_input_is_packed(self):
        strided = np.arange(20, dtype=np.int64)[::2]
        _, views = unpack(pack(None, {"s": strided}))
        np.testing.assert_array_equal(views["s"], strided)

    def test_empty_payload(self):
        meta, views = unpack(pack({"only": "meta"}, {}))
        assert meta == {"only": "meta"}
        assert views == {}


class TestCorruption:
    def test_bad_magic(self):
        blob = bytearray(pack(None, {"a": np.arange(4)}))
        blob[:4] = b"XXXX"
        with pytest.raises(FlatBufferError, match="magic"):
            unpack(bytes(blob))

    def test_too_short_for_header(self):
        with pytest.raises(FlatBufferError):
            unpack(MAGIC[:2])

    def test_truncated_header(self):
        blob = pack(None, {"a": np.arange(4)})
        with pytest.raises(FlatBufferError, match="header"):
            unpack(blob[:10])

    def test_truncated_segment(self):
        blob = pack(None, {"a": np.arange(64, dtype=np.uint64)})
        with pytest.raises(FlatBufferError, match="truncated segment"):
            unpack(blob[:-16])

    def test_header_not_json(self):
        blob = bytearray(pack(None, {}))
        blob[8] = 0xFF  # first header byte: no longer valid UTF-8 JSON
        with pytest.raises(FlatBufferError, match="corrupt"):
            unpack(bytes(blob))


class TestFiles:
    def test_write_read_roundtrip(self, tmp_path):
        path = tmp_path / "artifact.rfb"
        arrays = _sample_arrays()
        write_file(path, {"v": 1}, arrays)
        view = read_file(path)
        assert isinstance(view, FlatView)
        assert view.meta == {"v": 1}
        for name, original in arrays.items():
            np.testing.assert_array_equal(view.arrays[name], original)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_file(tmp_path / "absent.rfb")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.rfb"
        path.write_bytes(b"")
        with pytest.raises(FlatBufferError):
            read_file(path)

    def test_corrupt_file_closes_mapping(self, tmp_path):
        path = tmp_path / "corrupt.rfb"
        path.write_bytes(b"XXXX" + b"\0" * 60)
        with pytest.raises(FlatBufferError):
            read_file(path)

    def test_mapping_survives_unlink(self, tmp_path):
        """Linux semantics: views stay readable after the file is removed."""
        path = tmp_path / "gone.rfb"
        original = np.arange(1024, dtype=np.uint64)
        write_file(path, None, {"a": original})
        view = read_file(path)
        path.unlink()
        np.testing.assert_array_equal(view.arrays["a"], original)
