"""Per-kind flat-buffer codecs: roundtrip fidelity and envelope checks.

The strongest cheap invariant is encode stability: for every kind,
``encode(decode(encode(x))) == encode(x)`` byte for byte — any field a
codec dropped or mangled would perturb the second encoding.  Each kind
additionally gets targeted behavioral checks against the original
artifact.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import build_implication_db
from repro.atpg.packed_implication import packed_plan
from repro.circuit.csr import csr_arrays
from repro.circuit.library import s27
from repro.circuit.timeframe import expand_cached
from repro.circuit.topology import build_ff_reach, build_sink_reach
from repro.logic.simplan import compiled_plan
from repro.store.codecs import (
    FLAT_KINDS,
    decode_payload,
    encode_payload,
    is_flat_kind,
)
from repro.store.flatbuf import FlatBufferError


def _roundtrip(kind, artifact):
    blob = encode_payload(kind, artifact)
    decoded = decode_payload(kind, blob)
    assert encode_payload(kind, decoded) == blob, (
        f"{kind}: re-encoding the decoded artifact changed bytes"
    )
    return decoded


def test_kind_registry():
    assert FLAT_KINDS == frozenset({
        "simplan", "csr-arrays", "ff-reach", "sink-reach",
        "packed-implication", "implication-db", "expansion",
    })
    assert is_flat_kind("simplan")
    assert not is_flat_kind("sweep-report")


def test_envelope_rejects_wrong_kind(fig1):
    blob = encode_payload("csr-arrays", csr_arrays(fig1))
    with pytest.raises(FlatBufferError):
        decode_payload("simplan", blob)


def test_simplan_roundtrip(fig1):
    plan = compiled_plan(fig1)
    decoded = _roundtrip("simplan", plan)
    assert decoded.num_nodes == plan.num_nodes
    assert decoded.buffer_rows == plan.buffer_rows
    assert decoded.num_batches == plan.num_batches
    assert decoded.circuit_version == plan.circuit_version
    assert len(decoded.levels) == len(plan.levels)


def test_csr_arrays_roundtrip(fig1):
    original = csr_arrays(fig1)
    decoded = _roundtrip("csr-arrays", original)
    assert decoded.fanins == original.fanins
    assert decoded.fanouts == original.fanouts
    np.testing.assert_array_equal(decoded.types, original.types)
    np.testing.assert_array_equal(decoded.levels_np, original.levels_np)


def test_ff_reach_roundtrip():
    circuit = s27()
    original = build_ff_reach(circuit)
    decoded = _roundtrip("ff-reach", original)
    assert decoded.dffs == original.dffs
    assert decoded.words == original.words
    np.testing.assert_array_equal(decoded.rows, original.rows)
    for node in range(circuit.num_nodes):
        assert decoded.sources_of(node) == original.sources_of(node)


def test_sink_reach_roundtrip():
    circuit = s27()
    original = build_sink_reach(circuit)
    decoded = _roundtrip("sink-reach", original)
    assert decoded.dffs == original.dffs
    assert decoded.blocked == original.blocked
    np.testing.assert_array_equal(decoded.rows, original.rows)


def test_packed_implication_roundtrip(fig1):
    comb = expand_cached(fig1, frames=2).comb
    original = packed_plan(comb)
    decoded = _roundtrip("packed-implication", original)
    assert decoded.gates == original.gates
    assert decoded.consumers == original.consumers
    assert decoded.driver == original.driver
    assert decoded.preset1 == original.preset1
    assert decoded.preset0 == original.preset0
    # The compiled SimPlan is not shipped: decoded plans carry None and
    # nothing downstream reads it after construction.
    assert decoded.sim is None


def test_implication_db_roundtrip(fig1):
    comb = expand_cached(fig1, frames=2).comb
    original = build_implication_db(comb)
    decoded = _roundtrip("implication-db", original)
    assert decoded.num_nodes == original.num_nodes
    assert list(decoded.offsets) == list(original.offsets)
    assert list(decoded.flat) == list(original.flat)
    assert decoded.impossible == original.impossible


def test_expansion_roundtrip(fig1):
    original = expand_cached(fig1, frames=2)
    blob = encode_payload("expansion", original)
    detached = decode_payload("expansion", blob)
    attached = detached.attach(fig1)
    # Encode stability holds once re-attached (the encoder reads the
    # sequential circuit the detached form deliberately does not carry).
    assert encode_payload("expansion", attached) == blob
    assert attached.frames == original.frames
    assert attached.ff_at == original.ff_at
    assert attached.pi_at == original.pi_at
    assert attached.po_at == original.po_at
    comb = attached.comb
    assert comb.num_nodes == original.comb.num_nodes
    assert comb.names == original.comb.names
    assert [tuple(f) for f in comb.fanins] == [
        tuple(f) for f in original.comb.fanins
    ]
    assert list(comb.types) == list(original.comb.types)


def test_expansion_attach_rejects_wrong_circuit(fig1):
    detached = decode_payload(
        "expansion", encode_payload("expansion", expand_cached(fig1, frames=2))
    )
    with pytest.raises(FlatBufferError):
        detached.attach(s27())
