"""Artifact store: roundtrip, self-heal, eviction, concurrency."""

import multiprocessing
import os
import pickle
import time

import pytest

from repro.circuit.builder import CircuitBuilder
from repro.circuit.netlist import clear_derived_caches
from repro.logic.simplan import compiled_plan
from repro.store import (
    ArtifactStore,
    activate_store,
    deactivate_store,
    resolve_cache_dir,
    schema_version,
    store_enabled,
)


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


def _entry_paths(store):
    return sorted(store.root.rglob("*.pkl"))


class TestRoundtrip:
    def test_save_load(self, store):
        store.save("sweep-report", "a" * 64, {"x": [1, 2, 3]})
        assert store.load("sweep-report", "a" * 64) == {"x": [1, 2, 3]}
        assert store.stats() == {
            "hits": 1, "misses": 0, "stores": 1, "evictions": 0, "corrupt": 0,
        }

    def test_missing_is_miss(self, store):
        assert store.load("sweep-report", "b" * 64) is None
        assert store.misses == 1

    def test_kinds_are_disjoint(self, store):
        store.save("sweep-report", "c" * 64, 1)
        assert store.load("lint-report", "c" * 64) is None

    def test_address_salts(self, store):
        plain = store.address("pair-records", "k" * 64)
        salted = store.address("pair-records", "k" * 64, extra="fp1")
        salted2 = store.address("pair-records", "k" * 64, extra="fp2")
        assert plain == "k" * 64
        assert len({plain, salted, salted2}) == 3


class TestSelfHeal:
    def test_truncated_entry_heals(self, store):
        store.save("sweep-report", "d" * 64, [1, 2, 3])
        (path,) = _entry_paths(store)
        path.write_bytes(path.read_bytes()[:10])
        assert store.load("sweep-report", "d" * 64) is None
        assert store.corrupt == 1
        assert not path.exists()
        # The caller rebuilds and republishes; the store recovers.
        store.save("sweep-report", "d" * 64, [1, 2, 3])
        assert store.load("sweep-report", "d" * 64) == [1, 2, 3]

    def test_wrong_envelope_heals(self, store):
        store.save("sweep-report", "e" * 64, 42)
        (path,) = _entry_paths(store)
        path.write_bytes(pickle.dumps({"kind": "sweep-report", "schema": 999,
                                       "payload": 42}))
        assert store.load("sweep-report", "e" * 64) is None
        assert store.corrupt == 1

    def test_schema_bump_invalidates(self, store, monkeypatch):
        store.save("sweep-report", "f" * 64, 42)
        from repro.store import artifact_store

        monkeypatch.setitem(
            artifact_store.SCHEMA_VERSIONS, "sweep-report",
            schema_version("sweep-report") + 1,
        )
        # The new schema looks for a different file name: clean miss, no
        # corruption — old entries are simply invisible.
        assert store.load("sweep-report", "f" * 64) is None
        assert store.corrupt == 0


class TestEviction:
    def test_lru_evicts_oldest_first(self, tmp_path):
        payload = b"x" * 4096
        store = ArtifactStore(tmp_path / "s", max_bytes=3 * 5000)
        for index in range(3):
            store.save("sweep-report", f"{index:064d}", payload)
            os.utime(
                _entry_paths(store)[-1],
                (time.time() + index, time.time() + index),
            )
        store.save("sweep-report", "9" * 64, payload)  # pushes over the bound
        survivors = {p.name for p in _entry_paths(store)}
        assert store.evictions >= 1
        assert f"{0:064d}-v{schema_version('sweep-report')}.pkl" not in survivors

    def test_total_bytes(self, store):
        assert store.total_bytes() == 0
        store.save("sweep-report", "a" * 64, list(range(100)))
        assert store.total_bytes() > 0


class TestPinning:
    """Flat entries stay on disk while a live run has them mapped."""

    def _flat_paths(self, store):
        return sorted(store.root.rglob("*.rfb"))

    def test_mapped_entry_survives_eviction(self, tmp_path):
        import gc

        from repro.circuit.library import fig1_circuit

        store = ArtifactStore(tmp_path / "s")
        plan = compiled_plan(fig1_circuit())
        store.save("simplan", "a" * 64, plan)
        (flat_path,) = self._flat_paths(store)

        loaded = store.load("simplan", "a" * 64)
        assert loaded is not None
        assert store._pinned  # mapped: pinned against eviction

        # Evict everything: the mapped entry must be skipped, even
        # though it is the only candidate over the (zero) bound.
        store.max_bytes = 0
        store.save("sweep-report", "b" * 64, [1, 2, 3])
        assert flat_path.exists(), "evicted a file a live run has mapped"

        # Once the last decoded view dies, the pin is released and the
        # next eviction pass may reclaim the file.
        del loaded
        gc.collect()
        assert not store._pinned
        store.save("sweep-report", "c" * 64, [4, 5, 6])
        assert not flat_path.exists()

    def test_clear_ignores_pins(self, tmp_path):
        """clear() is an explicit action: mapped readers keep their views
        (the mapping survives the unlink), the directory empties."""
        from repro.circuit.library import fig1_circuit

        store = ArtifactStore(tmp_path / "s")
        store.save("simplan", "a" * 64, compiled_plan(fig1_circuit()))
        loaded = store.load("simplan", "a" * 64)
        removed, freed = store.clear()
        assert removed == 1 and freed > 0
        assert not self._flat_paths(store)
        assert loaded.num_nodes > 0  # views still readable after unlink


class TestUsageAndClear:
    def test_usage_groups_by_kind(self, store):
        assert store.usage() == {}
        store.save("sweep-report", "a" * 64, [1])
        store.save("sweep-report", "b" * 64, [2])
        store.save("lint-report", "c" * 64, [3])
        usage = store.usage()
        assert usage["sweep-report"]["entries"] == 2
        assert usage["lint-report"]["entries"] == 1
        assert all(row["bytes"] > 0 for row in usage.values())

    def test_clear_removes_everything(self, store):
        store.save("sweep-report", "a" * 64, [1])
        store.save("lint-report", "b" * 64, [2])
        total = store.total_bytes()
        assert store.clear() == (2, total)
        assert store.total_bytes() == 0
        assert store.usage() == {}
        assert store.clear() == (0, 0)


class TestRuntime:
    def test_activate_reuses_same_root(self, tmp_path):
        first = activate_store(tmp_path / "s")
        first.hits = 7
        second = activate_store(tmp_path / "s")
        assert second is first
        deactivate_store()

    def test_resolve_cache_dir_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert resolve_cache_dir(None) is None
        assert resolve_cache_dir("/x") == "/x"
        monkeypatch.setenv("REPRO_CACHE_DIR", "/env")
        assert resolve_cache_dir(None) == "/env"
        assert resolve_cache_dir("/x") == "/x"

    def test_store_enabled_restores_previous(self, tmp_path):
        from repro.store.runtime import active_store

        deactivate_store()
        with store_enabled(tmp_path / "a") as outer:
            assert active_store() is outer
            with store_enabled(tmp_path / "b") as inner:
                assert active_store() is inner
            assert active_store() is outer
        assert active_store() is None

    def test_store_enabled_none_is_noop(self):
        deactivate_store()
        with store_enabled(None) as store:
            assert store is None


class TestDerivedIntegration:
    def _circuit(self):
        b = CircuitBuilder("derived")
        a = b.input("a")
        ff = b.dff("ff")
        g = b.and_(a, ff, name="g")
        b.drive(ff, g)
        b.output("o", g)
        return b.build()

    def test_simplan_roundtrips_through_store(self, tmp_path):
        with store_enabled(tmp_path / "s") as store:
            compiled_plan(self._circuit())
            assert store.stores == 1
            clear_derived_caches()
            plan = compiled_plan(self._circuit())
            assert store.hits == 1
            # The loaded plan simulates identically (structure intact).
            assert plan.num_nodes == self._circuit().num_nodes

    def test_no_store_no_files(self, tmp_path):
        deactivate_store()
        compiled_plan(self._circuit())
        assert not (tmp_path / "s").exists()


def _writer(root, address, value, rounds):
    store = ArtifactStore(root)
    for _ in range(rounds):
        store.save("sweep-report", address, value)


def _reader(root, address, rounds, failures):
    store = ArtifactStore(root)
    seen = 0
    for _ in range(rounds):
        payload = store.load("sweep-report", address)
        if payload is not None:
            seen += 1
            if payload != list(range(200)):
                failures.put(("bad payload", payload))
    if store.corrupt:
        failures.put(("corrupt entries observed", store.corrupt))
    failures.put(("ok", seen))


class TestConcurrency:
    def test_two_processes_share_one_store(self, tmp_path):
        """Simultaneous write/read of one key: no torn reads, no crashes.

        Exercises the atomic-rename publish path under real process
        concurrency — a reader must only ever see a complete entry (or a
        clean miss), never a partial pickle counted as corruption.
        """
        root = str(tmp_path / "shared")
        address = "a" * 64
        value = list(range(200))
        ctx = multiprocessing.get_context("spawn")
        failures = ctx.Queue()
        writers = [
            ctx.Process(target=_writer, args=(root, address, value, 50))
            for _ in range(2)
        ]
        readers = [
            ctx.Process(target=_reader, args=(root, address, 50, failures))
            for _ in range(2)
        ]
        for proc in writers + readers:
            proc.start()
        for proc in writers + readers:
            proc.join(timeout=60)
            assert proc.exitcode == 0
        reports = [failures.get(timeout=5) for _ in range(2)]
        for kind, detail in reports:
            assert kind == "ok", (kind, detail)
