"""Artifact store: roundtrip, self-heal, eviction, concurrency."""

import multiprocessing
import os
import pickle
import time

import pytest

from repro.circuit.builder import CircuitBuilder
from repro.circuit.netlist import clear_derived_caches
from repro.logic.simplan import compiled_plan
from repro.store import (
    ArtifactStore,
    activate_store,
    deactivate_store,
    resolve_cache_dir,
    schema_version,
    store_enabled,
)


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


def _entry_paths(store):
    return sorted(store.root.rglob("*.pkl"))


class TestRoundtrip:
    def test_save_load(self, store):
        store.save("simplan", "a" * 64, {"x": [1, 2, 3]})
        assert store.load("simplan", "a" * 64) == {"x": [1, 2, 3]}
        assert store.stats() == {
            "hits": 1, "misses": 0, "stores": 1, "evictions": 0, "corrupt": 0,
        }

    def test_missing_is_miss(self, store):
        assert store.load("simplan", "b" * 64) is None
        assert store.misses == 1

    def test_kinds_are_disjoint(self, store):
        store.save("simplan", "c" * 64, 1)
        assert store.load("ff-reach", "c" * 64) is None

    def test_address_salts(self, store):
        plain = store.address("pair-records", "k" * 64)
        salted = store.address("pair-records", "k" * 64, extra="fp1")
        salted2 = store.address("pair-records", "k" * 64, extra="fp2")
        assert plain == "k" * 64
        assert len({plain, salted, salted2}) == 3


class TestSelfHeal:
    def test_truncated_entry_heals(self, store):
        store.save("simplan", "d" * 64, [1, 2, 3])
        (path,) = _entry_paths(store)
        path.write_bytes(path.read_bytes()[:10])
        assert store.load("simplan", "d" * 64) is None
        assert store.corrupt == 1
        assert not path.exists()
        # The caller rebuilds and republishes; the store recovers.
        store.save("simplan", "d" * 64, [1, 2, 3])
        assert store.load("simplan", "d" * 64) == [1, 2, 3]

    def test_wrong_envelope_heals(self, store):
        store.save("simplan", "e" * 64, 42)
        (path,) = _entry_paths(store)
        path.write_bytes(pickle.dumps({"kind": "simplan", "schema": 999,
                                       "payload": 42}))
        assert store.load("simplan", "e" * 64) is None
        assert store.corrupt == 1

    def test_schema_bump_invalidates(self, store, monkeypatch):
        store.save("simplan", "f" * 64, 42)
        from repro.store import artifact_store

        monkeypatch.setitem(
            artifact_store.SCHEMA_VERSIONS, "simplan",
            schema_version("simplan") + 1,
        )
        # The new schema looks for a different file name: clean miss, no
        # corruption — old entries are simply invisible.
        assert store.load("simplan", "f" * 64) is None
        assert store.corrupt == 0


class TestEviction:
    def test_lru_evicts_oldest_first(self, tmp_path):
        payload = b"x" * 4096
        store = ArtifactStore(tmp_path / "s", max_bytes=3 * 5000)
        for index in range(3):
            store.save("simplan", f"{index:064d}", payload)
            os.utime(
                _entry_paths(store)[-1],
                (time.time() + index, time.time() + index),
            )
        store.save("simplan", "9" * 64, payload)  # pushes over the bound
        survivors = {p.name for p in _entry_paths(store)}
        assert store.evictions >= 1
        assert f"{0:064d}-v{schema_version('simplan')}.pkl" not in survivors

    def test_total_bytes(self, store):
        assert store.total_bytes() == 0
        store.save("simplan", "a" * 64, list(range(100)))
        assert store.total_bytes() > 0


class TestRuntime:
    def test_activate_reuses_same_root(self, tmp_path):
        first = activate_store(tmp_path / "s")
        first.hits = 7
        second = activate_store(tmp_path / "s")
        assert second is first
        deactivate_store()

    def test_resolve_cache_dir_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert resolve_cache_dir(None) is None
        assert resolve_cache_dir("/x") == "/x"
        monkeypatch.setenv("REPRO_CACHE_DIR", "/env")
        assert resolve_cache_dir(None) == "/env"
        assert resolve_cache_dir("/x") == "/x"

    def test_store_enabled_restores_previous(self, tmp_path):
        from repro.store.runtime import active_store

        deactivate_store()
        with store_enabled(tmp_path / "a") as outer:
            assert active_store() is outer
            with store_enabled(tmp_path / "b") as inner:
                assert active_store() is inner
            assert active_store() is outer
        assert active_store() is None

    def test_store_enabled_none_is_noop(self):
        deactivate_store()
        with store_enabled(None) as store:
            assert store is None


class TestDerivedIntegration:
    def _circuit(self):
        b = CircuitBuilder("derived")
        a = b.input("a")
        ff = b.dff("ff")
        g = b.and_(a, ff, name="g")
        b.drive(ff, g)
        b.output("o", g)
        return b.build()

    def test_simplan_roundtrips_through_store(self, tmp_path):
        with store_enabled(tmp_path / "s") as store:
            compiled_plan(self._circuit())
            assert store.stores == 1
            clear_derived_caches()
            plan = compiled_plan(self._circuit())
            assert store.hits == 1
            # The loaded plan simulates identically (structure intact).
            assert plan.num_nodes == self._circuit().num_nodes

    def test_no_store_no_files(self, tmp_path):
        deactivate_store()
        compiled_plan(self._circuit())
        assert not (tmp_path / "s").exists()


def _writer(root, address, value, rounds):
    store = ArtifactStore(root)
    for _ in range(rounds):
        store.save("simplan", address, value)


def _reader(root, address, rounds, failures):
    store = ArtifactStore(root)
    seen = 0
    for _ in range(rounds):
        payload = store.load("simplan", address)
        if payload is not None:
            seen += 1
            if payload != list(range(200)):
                failures.put(("bad payload", payload))
    if store.corrupt:
        failures.put(("corrupt entries observed", store.corrupt))
    failures.put(("ok", seen))


class TestConcurrency:
    def test_two_processes_share_one_store(self, tmp_path):
        """Simultaneous write/read of one key: no torn reads, no crashes.

        Exercises the atomic-rename publish path under real process
        concurrency — a reader must only ever see a complete entry (or a
        clean miss), never a partial pickle counted as corruption.
        """
        root = str(tmp_path / "shared")
        address = "a" * 64
        value = list(range(200))
        ctx = multiprocessing.get_context("spawn")
        failures = ctx.Queue()
        writers = [
            ctx.Process(target=_writer, args=(root, address, value, 50))
            for _ in range(2)
        ]
        readers = [
            ctx.Process(target=_reader, args=(root, address, 50, failures))
            for _ in range(2)
        ]
        for proc in writers + readers:
            proc.start()
        for proc in writers + readers:
            proc.join(timeout=60)
            assert proc.exitcode == 0
        reports = [failures.get(timeout=5) for _ in range(2)]
        for kind, detail in reports:
            assert kind == "ok", (kind, detail)
