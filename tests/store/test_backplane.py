"""Shared-memory backplane: publish/attach roundtrips, fork and spawn.

The worker pool's contract is that an attached worker sees *exactly*
the artifacts the parent published — same expansion frame maps, same
CSR adjacency, same compiled plan — and that the adopted artifacts are
what ``Circuit.derived`` then hands to engine preparation (identity,
not equality: adoption must pre-empt a rebuild).  The spawn-context
test is the satellite for start methods that pickle the handle instead
of inheriting it.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.circuit.csr import csr_arrays
from repro.circuit.library import fig1_circuit
from repro.circuit.timeframe import expand_cached
from repro.logic.simplan import compiled_plan
from repro.store.backplane import (
    AttachedBackplane,
    BackplaneHandle,
    PublishedBackplane,
    publish,
)


def _publish_fig1():
    circuit = fig1_circuit()
    expansion = expand_cached(circuit, frames=2)
    published = publish([
        ("expansion", expansion),
        ("csr-arrays", csr_arrays(expansion.comb)),
        ("simplan", compiled_plan(expansion.comb)),
    ])
    return circuit, expansion, published


def test_publish_layout():
    _, _, published = _publish_fig1()
    try:
        assert published.kinds == ("expansion", "csr-arrays", "simplan")
        assert published.nbytes > 0
        for _, offset, nbytes in published.handle.entries:
            assert offset % 64 == 0
            assert nbytes > 0
    finally:
        published.close_and_unlink()


def test_attach_and_adopt_in_process():
    circuit, expansion, published = _publish_fig1()
    try:
        attached = AttachedBackplane(published.handle)
        assert attached.kinds == published.kinds
        assert attached.shared_learned is None
        fresh = fig1_circuit()
        adopted = attached.adopt(fresh)
        assert adopted.frames == expansion.frames
        assert adopted.ff_at == expansion.ff_at
        assert adopted.pi_at == expansion.pi_at
        # Adoption pre-empts the rebuild: derived() must now return the
        # decoded shared artifacts themselves, not fresh copies.
        assert csr_arrays(adopted.comb) is attached.artifacts["csr-arrays"]
        assert compiled_plan(adopted.comb) is attached.artifacts["simplan"]
    finally:
        published.close_and_unlink()


def test_adopt_rejects_mismatched_circuit():
    from repro.circuit.library import s27
    from repro.store.flatbuf import FlatBufferError

    _, _, published = _publish_fig1()
    try:
        attached = AttachedBackplane(published.handle)
        with pytest.raises(FlatBufferError):
            attached.adopt(s27())
    finally:
        published.close_and_unlink()


def test_close_and_unlink_is_idempotent():
    _, _, published = _publish_fig1()
    published.close_and_unlink()
    published.close_and_unlink()  # second call is a no-op
    with pytest.raises(FileNotFoundError):
        AttachedBackplane(published.handle)


def test_attach_bad_name_raises():
    with pytest.raises(FileNotFoundError):
        AttachedBackplane(BackplaneHandle("repro-no-such-block", 0, ()))


def _spawn_probe(handle: BackplaneHandle, queue) -> None:
    """Spawn-context child: attach, adopt, report what it decoded."""
    attached = AttachedBackplane(handle)
    expansion = attached.adopt(fig1_circuit())
    csr = attached.artifacts["csr-arrays"]
    queue.put({
        "kinds": list(attached.kinds),
        "frames": expansion.frames,
        "ff_at": expansion.ff_at,
        "comb_nodes": expansion.comb.num_nodes,
        "types_sum": sum(bytearray(csr.types)),
    })


def test_spawn_context_attach_roundtrip():
    """A spawn-started worker (handle pickled, nothing inherited) attaches."""
    circuit, expansion, published = _publish_fig1()
    ctx = multiprocessing.get_context("spawn")
    queue = ctx.Queue()
    try:
        proc = ctx.Process(
            target=_spawn_probe, args=(published.handle, queue)
        )
        proc.start()
        report = queue.get(timeout=60)
        proc.join(timeout=60)
        assert proc.exitcode == 0
        assert report["kinds"] == list(published.kinds)
        assert report["frames"] == expansion.frames
        assert report["ff_at"] == expansion.ff_at
        assert report["comb_nodes"] == expansion.comb.num_nodes
        local = csr_arrays(expansion.comb)
        assert report["types_sum"] == sum(bytearray(local.types))
    finally:
        published.close_and_unlink()


def test_published_backplane_cleanup_on_publish_failure():
    """A codec error mid-publish must not leak the shared block."""
    with pytest.raises(Exception):
        publish([("simplan", object())])  # not a SimPlan: encoder raises


def test_publish_empty_is_valid():
    published = publish([])
    try:
        assert published.kinds == ()
        assert isinstance(published, PublishedBackplane)
        attached = AttachedBackplane(published.handle)
        assert attached.kinds == ()
    finally:
        published.close_and_unlink()
