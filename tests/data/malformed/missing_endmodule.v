// module never closes
module bad (a, y);
  input a;
  output y;
  not u0 (y, a);
