/* y has two drivers
   (second one on line 7) */
module bad (a, y);
  input a;
  output y;
  not u0 (y, a);
  buf u1 (y, a);
endmodule
