// the frobnicator is not a supported primitive (line 5)
module bad (a, y);
  input a;
  output y;
  frob u0 (y, a);
endmodule
