// output y is declared (line 4) but nothing drives it
module bad (a, y);
  input a;
  output y;
endmodule
