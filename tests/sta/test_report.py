"""Slack tables and critical-path listings."""

from repro.circuit.topology import FFPair
from repro.core.detector import detect_multi_cycle_pairs
from repro.sta.report import (
    critical_path_report,
    format_slack_table,
    worst_slack_table,
)


def test_slack_lines_sorted_worst_first(fig1):
    detection = detect_multi_cycle_pairs(fig1)
    lines = worst_slack_table(fig1, detection, period=2.0)
    slacks = [line.slack for line in lines]
    assert slacks == sorted(slacks)


def test_multi_cycle_pairs_get_double_budget(fig1):
    detection = detect_multi_cycle_pairs(fig1)
    lines = worst_slack_table(fig1, detection, period=2.0, limit=100)
    mc = dict.fromkeys(detection.multi_cycle_pair_names())
    for line in lines:
        expected = 2 if (line.source, line.sink) in mc else 1
        assert line.allowed_cycles == expected


def test_violations_marked(fig1):
    detection = detect_multi_cycle_pairs(fig1)
    lines = worst_slack_table(fig1, detection, period=1.0, limit=100)
    text = format_slack_table(lines, period=1.0)
    # At period 1 the three-level decode paths violate.
    assert "VIOLATED" in text
    assert "slack report at clock period 1" in text


def test_limit_respected(fig1):
    detection = detect_multi_cycle_pairs(fig1)
    assert len(worst_slack_table(fig1, detection, period=4.0, limit=3)) == 3


def test_critical_path_report_names_the_route(fig1):
    pair = FFPair(fig1.id_of("FF4"), fig1.id_of("FF1"))
    text = critical_path_report(fig1, pair)
    assert "FF4 -> nFF4 -> EN1 -> MUX1" in text
    assert "delay 3" in text


def test_critical_path_report_no_path(fig1):
    pair = FFPair(fig1.id_of("FF1"), fig1.id_of("FF3"))
    assert "no combinational path" in critical_path_report(fig1, pair)
