"""SDC emission from detection results."""

from repro.core.detector import DetectorOptions, detect_multi_cycle_pairs
from repro.core.result import CaseOutcome
from repro.sta.constraints import (
    constraints_json,
    format_sdc,
    sdc_constraints,
)

import json


def test_one_constraint_per_multi_cycle_pair(fig1):
    detection = detect_multi_cycle_pairs(fig1)
    constraints = sdc_constraints(detection)
    assert len(constraints) == len(detection.multi_cycle_pairs)
    assert constraints == sorted(
        constraints, key=lambda c: (c.source, c.sink)
    )
    for constraint in constraints:
        assert constraint.kind in ("multicycle", "false-path")
        assert constraint.safe  # hazard stage was off: nothing flagged


def test_false_path_when_all_cases_contradict(fig1):
    detection = detect_multi_cycle_pairs(fig1)
    expected = set()
    names = fig1.names
    for result in detection.multi_cycle_pairs:
        if result.cases and all(
            c.outcome is CaseOutcome.CONTRADICTION for c in result.cases
        ):
            expected.add((names[result.pair.source],
                          names[result.pair.sink]))
    constraints = sdc_constraints(detection)
    assert {
        (c.source, c.sink) for c in constraints if c.kind == "false-path"
    } == expected


def test_sdc_text_shape(fig1):
    detection = detect_multi_cycle_pairs(fig1)
    text = format_sdc(detection)
    assert text.startswith("# multi-cycle path constraints for fig1")
    assert "hazard stage was off" in text
    relaxed = [
        line for line in text.splitlines()
        if line.startswith("set_multicycle_path -setup")
    ]
    false_paths = [
        line for line in text.splitlines()
        if line.startswith("set_false_path")
    ]
    assert len(relaxed) + len(false_paths) == len(
        detection.multi_cycle_pairs
    )
    for line in relaxed:
        assert "-setup 2" in line and "get_cells" in line


def test_hazard_flagged_pairs_are_commented_out(fig1):
    detection = detect_multi_cycle_pairs(
        fig1, DetectorOptions(hazard_check="ternary")
    )
    assert detection.hazard_flagged  # fig1 has hazard-flagged MC pairs
    constraints = sdc_constraints(detection)
    flagged = [c for c in constraints if c.hazard_flagged]
    assert len(flagged) == detection.hazard_flagged
    text = format_sdc(detection, constraints=constraints)
    for constraint in flagged:
        assert (
            f"# hazard-flagged, not relaxed: "
            f"{constraint.source} -> {constraint.sink}" in text
        )
    # Active (uncommented) commands cover exactly the safe constraints.
    active = [
        line for line in text.splitlines()
        if line.startswith(("set_multicycle_path", "set_false_path"))
    ]
    safe = [c for c in constraints if c.safe]
    assert all(f"{{{c.sink}}}" in " ".join(active) for c in safe)
    for constraint in flagged:
        span = (
            f"-from [get_cells {{{constraint.source}}}] "
            f"-to [get_cells {{{constraint.sink}}}]"
        )
        assert not any(span in line for line in active)


def test_budget_controls_setup_multiplier(fig1):
    detection = detect_multi_cycle_pairs(fig1)
    text = format_sdc(detection, multi_cycle_budget=3)
    assert "-setup 3" in text
    assert "-hold 2" in text


def test_json_interchange_roundtrip(fig1):
    detection = detect_multi_cycle_pairs(
        fig1, DetectorOptions(hazard_check="ternary")
    )
    payload = json.loads(constraints_json(detection))
    assert payload["circuit"] == "fig1"
    assert payload["hazard_mode"] == "ternary"
    constraints = sdc_constraints(detection)
    assert len(payload["constraints"]) == len(constraints)
    for entry, constraint in zip(payload["constraints"], constraints):
        assert entry["source"] == constraint.source
        assert entry["sink"] == constraint.sink
        assert entry["safe"] == constraint.safe
        assert entry["hazard_flagged"] == constraint.hazard_flagged


def test_single_cycle_only_circuit_emits_nothing(shift4):
    detection = detect_multi_cycle_pairs(shift4)
    if detection.multi_cycle_pairs:
        return  # library change; the property below is vacuous then
    assert sdc_constraints(detection) == []
    text = format_sdc(detection)
    assert "set_multicycle_path" not in text


# ----------------------------------------------------------------------
# Exact three-way verdicts (--hazard-check exact).
# ----------------------------------------------------------------------
def _exact(circuit):
    return detect_multi_cycle_pairs(
        circuit, DetectorOptions(hazard_check="exact")
    )


def test_exact_verdict_flows_into_constraints(fig1):
    detection = _exact(fig1)
    assert detection.hazard_verdicts  # fig1 has MC pairs to classify
    constraints = sdc_constraints(detection)
    verdicts = {
        (fig1.names[v.pair.source], fig1.names[v.pair.sink]):
            v.verdict.value
        for v in detection.hazard_verdicts
    }
    for constraint in constraints:
        assert constraint.hazard_verdict == verdicts[
            (constraint.source, constraint.sink)
        ]
        # Exact "safe" pairs relax; proven/possible pairs are gated.
        if constraint.hazard_verdict == "safe":
            assert not constraint.hazard_flagged


def test_exact_glitch_proven_commented_with_verdict(fig1):
    detection = _exact(fig1)
    constraints = sdc_constraints(detection)
    text = format_sdc(detection, constraints=constraints)
    gated = [c for c in constraints if c.hazard_flagged]
    assert gated  # fig1 has glitch-proven pairs
    for constraint in gated:
        assert (
            f"# {constraint.hazard_verdict}, not relaxed: "
            f"{constraint.source} -> {constraint.sink}" in text
        )
    active = [
        line for line in text.splitlines()
        if line.startswith(("set_multicycle_path", "set_false_path"))
    ]
    for constraint in gated:
        span = (
            f"-from [get_cells {{{constraint.source}}}] "
            f"-to [get_cells {{{constraint.sink}}}]"
        )
        assert not any(span in line for line in active)


def test_exact_json_interchange_carries_verdict(fig1):
    detection = _exact(fig1)
    payload = json.loads(constraints_json(detection))
    assert payload["hazard_mode"] == "exact"
    kinds = {"safe", "glitch-possible", "glitch-proven"}
    for entry in payload["constraints"]:
        assert entry["hazard_verdict"] in kinds
        if entry["hazard_verdict"] == "safe":
            assert entry["safe"]


def test_k1_budget_emits_setup_one_hold_zero(fig1):
    """Regression: k=1 keeps -setup 1 / -hold 0 (a no-op relaxation)."""
    detection = _exact(fig1)
    text = format_sdc(detection, multi_cycle_budget=1)
    assert "-setup 1" in text
    assert "-hold 0" in text
    assert "-setup 2" not in text


def test_all_contradiction_pair_is_safe_false_path():
    """A shift pair (sink.D = source.Q) contradicts every implication
    case, so it is multi-cycle, a false path in SDC, and exactly safe
    without any SAT solve (decided by the case analysis alone)."""
    from repro.circuit.builder import CircuitBuilder

    b = CircuitBuilder("shift-pair")
    src = b.dff("FFA")
    b.dff("FFB", d=b.buf(src, name="g"))
    b.drive(src, b.input("pi"))
    circuit = b.build()
    detection = _exact(circuit)
    names = circuit.names
    pairs = {
        (names[r.pair.source], names[r.pair.sink])
        for r in detection.multi_cycle_pairs
    }
    if ("FFA", "FFB") not in pairs:
        return  # library/classifier change; property is vacuous then
    constraints = sdc_constraints(detection)
    by_pair = {(c.source, c.sink): c for c in constraints}
    constraint = by_pair[("FFA", "FFB")]
    assert constraint.kind == "false-path"
    assert constraint.cycles == 0
    assert constraint.hazard_verdict == "safe"
    assert constraint.safe
    verdict = next(
        v for v in detection.hazard_verdicts
        if (names[v.pair.source], names[v.pair.sink]) == ("FFA", "FFB")
    )
    assert verdict.decided_by == "cases"
    text = format_sdc(detection, constraints=constraints)
    assert "set_false_path -from [get_cells {FFA}] " \
           "-to [get_cells {FFB}]" in text
