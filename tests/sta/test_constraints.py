"""Multi-cycle relaxation accounting."""

from repro.core.detector import detect_multi_cycle_pairs
from repro.sta.constraints import relaxation_report


def test_relaxed_period_never_worse(fig1, shift4, pipeline):
    for circuit in (fig1, shift4, pipeline):
        detection = detect_multi_cycle_pairs(circuit)
        report = relaxation_report(circuit, detection)
        assert report.min_period_relaxed <= report.min_period_baseline
        assert report.speedup >= 1.0


def test_speedup_when_critical_path_is_multi_cycle():
    """A deep logic cloud between two spaced enable-gated registers is the
    critical path; proving it 2-cycle halves the feasible clock period."""
    from repro.circuit.builder import CircuitBuilder

    builder = CircuitBuilder("deep")
    counter = [builder.dff(f"c{i}") for i in range(2)]
    builder.drive(counter[0], builder.not_(counter[0], name="c0n"))
    builder.drive(counter[1], builder.xor(counter[1], counter[0], name="c1n"))
    en0 = builder.and_(builder.not_(counter[0], name="n0"),
                       builder.not_(counter[1], name="n1"), name="en0")
    en1 = builder.and_(counter[0], builder.not_(counter[1], name="n1b"),
                       name="en1")  # decodes count 1... spaced 2 from 0? no:
    # decode states 0 and 2 (two counts apart):
    en1b = builder.and_(builder.not_(counter[0], name="n0c"), counter[1],
                        name="en2dec")
    data = builder.input("din")
    src = builder.enabled_dff("src", en0, data)
    node = src
    for i in range(6):
        node = builder.not_(node, name=f"inv{i}")
    dst = builder.enabled_dff("dst", en1b, node)
    builder.output("o", dst)
    circuit = builder.build()

    detection = detect_multi_cycle_pairs(circuit)
    assert ("src", "dst") in detection.multi_cycle_pair_names()
    report = relaxation_report(circuit, detection)
    assert report.speedup > 1.0


def test_shift_register_gets_no_relaxation(shift4):
    detection = detect_multi_cycle_pairs(shift4)
    report = relaxation_report(shift4, detection)
    assert report.min_period_relaxed == report.min_period_baseline


def test_budget_applied_only_to_mc_pairs(fig1):
    detection = detect_multi_cycle_pairs(fig1)
    report = relaxation_report(fig1, detection, multi_cycle_budget=3)
    mc = {
        (p.pair.source, p.pair.sink) for p in detection.multi_cycle_pairs
    }
    for timing in report.pair_timings:
        expected = 3 if (timing.source, timing.sink) in mc else 1
        assert timing.allowed_cycles == expected


def test_violations_and_slack(fig1):
    detection = detect_multi_cycle_pairs(fig1)
    report = relaxation_report(fig1, detection)
    period = report.min_period_relaxed
    assert report.violations_at(period, relaxed=True) == 0
    assert report.worst_slack(period, relaxed=True) >= 0
    if report.min_period_relaxed < report.min_period_baseline:
        assert report.violations_at(period, relaxed=False) > 0


def test_pair_timing_slack():
    from repro.sta.constraints import PairTiming

    timing = PairTiming(source=0, sink=1, delay=6.0, allowed_cycles=2)
    assert timing.slack(4.0) == 2.0
    assert timing.slack(2.5) == -1.0
