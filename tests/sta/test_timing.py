"""Topological timing: arrival times and FF-to-FF path delays."""


from repro.circuit.builder import CircuitBuilder
from repro.circuit.gates import GateType
from repro.sta.timing import (
    DelayModel,
    arrival_times,
    critical_ff_delay,
    ff_pair_delays,
)


def _chain(depth):
    builder = CircuitBuilder("chain")
    src = builder.dff("src")
    node = src
    for i in range(depth):
        node = builder.not_(node, name=f"n{i}")
    snk = builder.dff("snk", d=node)
    builder.drive(src, snk)
    builder.output("o", snk)
    return builder.build()


def test_unit_delay_chain():
    circuit = _chain(5)
    delays = ff_pair_delays(circuit)
    assert delays[(circuit.id_of("src"), circuit.id_of("snk"))] == 5.0


def test_direct_ff_to_ff_is_zero_delay():
    circuit = _chain(3)
    delays = ff_pair_delays(circuit)
    assert delays[(circuit.id_of("snk"), circuit.id_of("src"))] == 0.0


def test_max_over_reconvergent_paths():
    builder = CircuitBuilder("reconv")
    src = builder.dff("src")
    short = builder.not_(src, name="s1")
    long = builder.not_(builder.not_(builder.not_(src, name="l1"), name="l2"),
                        name="l3")
    join = builder.and_(short, long, name="join")
    snk = builder.dff("snk", d=join)
    builder.drive(src, snk)
    builder.output("o", snk)
    circuit = builder.build()
    delays = ff_pair_delays(circuit)
    assert delays[(src, snk)] == 4.0  # 3 NOTs + the AND


def test_per_type_delays():
    builder = CircuitBuilder("t")
    src = builder.dff("src")
    x = builder.xor(src, src, name="x")
    snk = builder.dff("snk", d=x)
    builder.drive(src, snk)
    builder.output("o", snk)
    circuit = builder.build()
    model = DelayModel(default=1.0, per_type={GateType.XOR: 2.5})
    assert ff_pair_delays(circuit, model)[(src, snk)] == 2.5


def test_buffers_are_free():
    builder = CircuitBuilder("t")
    src = builder.dff("src")
    b = builder.buf(src, name="b")
    snk = builder.dff("snk", d=b)
    builder.drive(src, snk)
    builder.output("o", snk)
    circuit = builder.build()
    assert ff_pair_delays(circuit)[(src, snk)] == 0.0


def test_arrival_times_fig1(fig1):
    arrivals = arrival_times(fig1)
    assert arrivals[fig1.id_of("EN1")] == 2.0  # NOT then AND
    assert arrivals[fig1.id_of("MUX1")] == 3.0


def test_unconnected_pairs_absent():
    circuit = _chain(2)
    delays = ff_pair_delays(circuit)
    assert set(delays) == {
        (circuit.id_of("src"), circuit.id_of("snk")),
        (circuit.id_of("snk"), circuit.id_of("src")),
    }


def test_critical_delay(fig1):
    assert critical_ff_delay(fig1) == max(ff_pair_delays(fig1).values())
