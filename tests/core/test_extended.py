"""The Condition-2 extension: soundness and the upgrade mechanics."""

from repro.circuit.builder import CircuitBuilder
from repro.core.detector import detect_multi_cycle_pairs
from repro.core.extended import condition2_extension


def _hidden_sink_circuit():
    """src -> hidden -> gated-out chain.

    ``hidden`` captures ``src`` every cycle (single-cycle by the MC
    condition) but is invisible at the primary output, and its only
    successor pair (hidden, far) is multi-cycle because ``far`` loads on a
    decoded counter state two counts after... simpler: ``far`` never loads
    (enable tied to 0) so (hidden, far) holds vacuously.
    """
    builder = CircuitBuilder("hidden")
    a = builder.input("a")
    src = builder.dff("src", d=a)
    hidden = builder.dff("hidden", d=src)
    zero = builder.const0("zero")
    far = builder.enabled_dff("far", zero, hidden)
    builder.output("o", far)
    return builder.build()


def test_hidden_sink_is_upgraded():
    circuit = _hidden_sink_circuit()
    detection = detect_multi_cycle_pairs(circuit)
    names = detection.multi_cycle_pair_names()
    assert ("src", "hidden") not in names  # plain MC condition fails
    assert ("hidden", "far") in names

    extended = condition2_extension(circuit, detection)
    assert ("src", "hidden") in extended.upgraded_pair_names()
    assert extended.total_multi_cycle > len(detection.multi_cycle_pairs)


def test_observable_sink_not_upgraded():
    """Same chain, but the hidden register drives the output: observable,
    so Condition 2(a) fails and no upgrade happens."""
    builder = CircuitBuilder("visible")
    a = builder.input("a")
    src = builder.dff("src", d=a)
    mid = builder.dff("mid", d=src)
    zero = builder.const0("zero")
    builder.enabled_dff("far", zero, mid)
    builder.output("o", mid)
    circuit = builder.build()

    detection = detect_multi_cycle_pairs(circuit)
    extended = condition2_extension(circuit, detection)
    assert ("src", "mid") not in extended.upgraded_pair_names()


def test_busy_successor_blocks_upgrade():
    """If the sink's successor pair is single-cycle, 2(b) fails."""
    builder = CircuitBuilder("busy")
    a = builder.input("a")
    src = builder.dff("src", d=a)
    mid = builder.dff("mid", d=src)
    builder.dff("tail", d=mid)   # (mid, tail) is single-cycle
    builder.output("o", builder.buf(a, name="obuf"))
    circuit = builder.build()

    detection = detect_multi_cycle_pairs(circuit)
    extended = condition2_extension(circuit, detection)
    assert ("src", "mid") not in extended.upgraded_pair_names()


def test_upgrade_never_removes_pairs(fig1, pipeline):
    for circuit in (fig1, pipeline):
        detection = detect_multi_cycle_pairs(circuit)
        extended = condition2_extension(circuit, detection)
        assert extended.total_multi_cycle >= len(detection.multi_cycle_pairs)
        base = set(detection.multi_cycle_pair_names())
        upgraded = set(extended.upgraded_pair_names())
        assert not (base & upgraded)  # upgrades come from single-cycle only


def test_reports_cover_only_single_cycle_pairs(fig1):
    detection = detect_multi_cycle_pairs(fig1)
    extended = condition2_extension(fig1, detection)
    assert len(extended.reports) == len(detection.single_cycle_pairs)
