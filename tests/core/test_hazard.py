"""Static hazard checking: the paper's Section 5 claims on Fig. 3/Fig. 4."""

from repro.circuit.techmap import techmap
from repro.circuit.timeframe import expand
from repro.core.detector import detect_multi_cycle_pairs
from repro.core.hazard import HazardChecker, check_hazards
from repro.core.sensitization import (
    PathSearchOutcome,
    SensitizationMode,
    find_sensitizable_path,
)
from repro.atpg.implication import ImplicationEngine

from hypothesis import given
from tests.strategies import random_sequential_circuit, seeds


def _pair_names(circuit, pair_results):
    return sorted(
        (circuit.names[p.pair.source], circuit.names[p.pair.sink])
        for p in pair_results
    )


def test_fig3_ff3_ff2_flagged_by_sensitization(fig3):
    """The paper's Fig. 3 example: the MC pair (FF3, FF2) admits a static
    hazard through MUX2's AND/OR structure, found by static sensitization."""
    detection = detect_multi_cycle_pairs(fig3)
    result = check_hazards(fig3, detection,
                           SensitizationMode.STATIC_SENSITIZATION)
    flagged = _pair_names(fig3, result.flagged_pairs)
    assert ("FF3", "FF2") in flagged


def test_fig3_hazard_witness_runs_through_mux2(fig3):
    detection = detect_multi_cycle_pairs(fig3)
    checker = HazardChecker(fig3, SensitizationMode.STATIC_SENSITIZATION)
    target = next(
        p for p in detection.multi_cycle_pairs
        if (fig3.names[p.pair.source], fig3.names[p.pair.sink]) == ("FF3", "FF2")
    )
    report = checker.check_pair(target)
    assert report.has_potential_hazard
    path_names = [checker.expansion.comb.names[n] for n in report.witness_path]
    assert any("MUX2" in name for name in path_names)


def test_cosensitization_flags_superset(fig3):
    """Every pair flagged by sensitization is flagged by co-sensitization
    (a statically sensitizable path is statically co-sensitizable)."""
    detection = detect_multi_cycle_pairs(fig3)
    sens = check_hazards(fig3, detection,
                         SensitizationMode.STATIC_SENSITIZATION)
    cosens = check_hazards(fig3, detection,
                           SensitizationMode.STATIC_CO_SENSITIZATION)
    assert set(_pair_names(fig3, sens.flagged_pairs)) <= set(
        _pair_names(fig3, cosens.flagged_pairs)
    )


@given(seeds)
def test_table3_ordering_on_random_circuits(seed):
    """before >= kept(sensitize) >= kept(co-sensitize) must always hold."""
    circuit = techmap(
        random_sequential_circuit(seed, max_inputs=2, max_dffs=3, max_gates=8)
    )
    detection = detect_multi_cycle_pairs(circuit)
    before = len(detection.multi_cycle_pairs)
    kept_sens = len(
        check_hazards(circuit, detection,
                      SensitizationMode.STATIC_SENSITIZATION,
                      backtrack_limit=10_000, max_attempts=50_000).verified_pairs
    )
    kept_cosens = len(
        check_hazards(circuit, detection,
                      SensitizationMode.STATIC_CO_SENSITIZATION,
                      backtrack_limit=10_000, max_attempts=50_000).verified_pairs
    )
    assert before >= kept_sens >= kept_cosens


def test_fig4_path_cosensitizable_but_not_sensitizable(fig4):
    """The Fig. 4 fragment: with side input B at 0, the A -> C path is
    statically co-sensitizable but not statically sensitizable."""
    expansion = expand(fig4, 2)
    engine = ImplicationEngine(expansion.comb)
    comb = expansion.comb
    a_index = expansion.ff_index(fig4.id_of("A"))
    b_index = expansion.ff_index(fig4.id_of("B"))
    a_node = expansion.ff_at[1][a_index]  # FF A's value entering frame 2
    b_node = expansion.ff_at[1][b_index]
    c_node = comb.id_of("C@1")            # the AND gate inside frame 2
    allowed = {c_node}
    assert engine.assume(b_node, 0)  # B presents the controlling value

    sens = find_sensitizable_path(
        engine, a_node, c_node, allowed,
        SensitizationMode.STATIC_SENSITIZATION,
    )
    assert sens.outcome is PathSearchOutcome.NONE

    cosens = find_sensitizable_path(
        engine, a_node, c_node, allowed,
        SensitizationMode.STATIC_CO_SENSITIZATION,
    )
    assert cosens.outcome is PathSearchOutcome.FOUND


def test_path_search_restores_engine(fig4):
    expansion = expand(fig4, 2)
    engine = ImplicationEngine(expansion.comb)
    comb = expansion.comb
    a_node = expansion.ff_at[1][expansion.ff_index(fig4.id_of("A"))]
    before = list(engine.assignment.values)
    find_sensitizable_path(
        engine, a_node, comb.id_of("C@1"), {comb.id_of("C@1")},
        SensitizationMode.STATIC_CO_SENSITIZATION,
    )
    assert list(engine.assignment.values) == before


def test_unreachable_source_is_none(fig3):
    checker = HazardChecker(fig3)
    comb = checker.expansion.comb
    engine = checker.engine
    # A frame-2 PI cannot reach a frame-1-only node.
    result = find_sensitizable_path(
        engine, comb.id_of("IN@1"), comb.id_of("IN@0"), frozenset(),
        SensitizationMode.STATIC_SENSITIZATION,
    )
    assert result.outcome is PathSearchOutcome.NONE


def test_attempt_limit_flags_conservatively(fig3):
    detection = detect_multi_cycle_pairs(fig3)
    result = check_hazards(
        fig3, detection, SensitizationMode.STATIC_SENSITIZATION,
        max_attempts=0,
    )
    # With no search budget everything with a structural path is flagged.
    assert all(r.has_potential_hazard or r.witness_path is None
               for r in result.reports)


def test_hazard_appears_only_after_mapping(fig1, fig3):
    """The paper's core Section 5 insight: hazards are a property of the
    *implementation*.  On the composite-MUX fig1 the select path of the
    pair (FF3, FF2) is not statically sensitizable (the data inputs are
    forced equal whenever FF3 toggles), but the Fig. 3 AND/OR mapping of
    the same function exposes a sensitizable hazard path through
    MUX2's AND1/OR — hence hazard analysis runs on mapped netlists."""
    unmapped = check_hazards(
        fig1, detect_multi_cycle_pairs(fig1),
        SensitizationMode.STATIC_SENSITIZATION,
    )
    assert ("FF3", "FF2") not in _pair_names(fig1, unmapped.flagged_pairs)

    mapped = check_hazards(
        fig3, detect_multi_cycle_pairs(fig3),
        SensitizationMode.STATIC_SENSITIZATION,
    )
    assert ("FF3", "FF2") in _pair_names(fig3, mapped.flagged_pairs)


def test_classify_hazards_partitions_mc_pairs(fig3):
    from repro.core.hazard import HazardClass, classify_hazards

    detection = detect_multi_cycle_pairs(fig3)
    classes = classify_hazards(fig3, detection)
    total = sum(len(v) for v in classes.values())
    assert total == len(detection.multi_cycle_pairs)
    # The paper's Fig. 3 pair is outright hazardous.
    hazardous = _pair_names(fig3, classes[HazardClass.HAZARDOUS])
    assert ("FF3", "FF2") in hazardous
    # (FF1, FF2) is clean under sensitization but co-sensitization flags
    # it: the dependency class of §5.2.
    dependent = _pair_names(fig3, classes[HazardClass.DEPENDENT])
    assert ("FF1", "FF2") in dependent


@given(seeds)
def test_classify_hazards_consistent_with_individual_checks(seed):
    from repro.core.hazard import HazardClass, classify_hazards

    circuit = techmap(
        random_sequential_circuit(seed, max_inputs=2, max_dffs=3, max_gates=8)
    )
    detection = detect_multi_cycle_pairs(circuit)
    classes = classify_hazards(circuit, detection,
                               backtrack_limit=10_000, max_attempts=50_000)
    sens = check_hazards(circuit, detection,
                         SensitizationMode.STATIC_SENSITIZATION,
                         backtrack_limit=10_000, max_attempts=50_000)
    assert len(classes[HazardClass.HAZARDOUS]) == len(sens.flagged_pairs)
