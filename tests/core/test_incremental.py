"""Incremental ECO re-analysis must be indistinguishable from a full run.

The contract: after any single-gate ECO edit, merging inherited verdicts
with re-decided ones yields ``pair_records`` *byte-identical* to a fresh
full run of the edited netlist — against both the staged and the
streaming execution paths.  Hypothesis drives random circuits and random
edits (gate-type flips, fanin rewires, DFF insertions) at the property.
"""

import json
import random

from hypothesis import assume, given
from hypothesis import strategies as st

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit, validate
from repro.circuit.structhash import (
    capture_cone_hashes,
    launch_cone_hashes,
)
from repro.core.detector import DetectorOptions, MultiCycleDetector
from repro.core.incremental import (
    IncrementalStage,
    incremental_detect,
    load_result_bundle,
    options_fingerprint,
    result_bundle,
    save_result_bundle,
)
from repro.core.result import Stage
from repro.store import ArtifactStore
from tests.strategies import random_sequential_circuit, seeds

_FLIPS = {
    GateType.AND: GateType.OR,
    GateType.OR: GateType.AND,
    GateType.NAND: GateType.NOR,
    GateType.NOR: GateType.NAND,
    GateType.XOR: GateType.XNOR,
    GateType.XNOR: GateType.XOR,
    GateType.NOT: GateType.BUF,
    GateType.BUF: GateType.NOT,
}

_SOURCES = (GateType.INPUT, GateType.DFF, GateType.CONST0, GateType.CONST1)


def _clone(circuit: Circuit) -> Circuit:
    clone = Circuit(circuit.name)
    for node_id in range(circuit.num_nodes):
        clone.add_node(circuit.types[node_id], (), circuit.names[node_id])
    for node_id in range(circuit.num_nodes):
        clone.set_fanins(node_id, tuple(circuit.fanins[node_id]))
    return clone


def eco_edit(circuit: Circuit, seed: int, kind: int) -> Circuit | None:
    """One random single-gate ECO edit; ``None`` when inapplicable.

    kind 0: gate-type flip (AND<->OR, NOT<->BUF, ...)
    kind 1: fanin rewire to a random source node (never adds comb cycles)
    kind 2: DFF insertion on one gate's fanin edge
    """
    rng = random.Random(seed * 3 + kind)
    edited = _clone(circuit)
    if kind == 0:
        candidates = [
            n for n, t in enumerate(circuit.types) if t in _FLIPS
        ]
        if not candidates:
            return None
        victim = rng.choice(candidates)
        flipped = Circuit(circuit.name)
        for node_id in range(circuit.num_nodes):
            gate_type = circuit.types[node_id]
            if node_id == victim:
                gate_type = _FLIPS[gate_type]
            flipped.add_node(gate_type, (), circuit.names[node_id])
        for node_id in range(circuit.num_nodes):
            flipped.set_fanins(node_id, tuple(circuit.fanins[node_id]))
        edited = flipped
    elif kind == 1:
        gates = [
            n for n, t in enumerate(circuit.types)
            if t not in _SOURCES and circuit.fanins[n]
        ]
        sources = [n for n, t in enumerate(circuit.types) if t in _SOURCES]
        if not gates or not sources:
            return None
        victim = rng.choice(gates)
        fanins = list(edited.fanins[victim])
        slot = rng.randrange(len(fanins))
        replacement = rng.choice(sources)
        if fanins[slot] == replacement:
            return None
        fanins[slot] = replacement
        edited.set_fanins(victim, tuple(fanins))
    else:
        gates = [
            n for n, t in enumerate(circuit.types)
            if t not in _SOURCES and t != GateType.OUTPUT
            and circuit.fanins[n]
        ]
        if not gates:
            return None
        victim = rng.choice(gates)
        fanins = list(edited.fanins[victim])
        slot = rng.randrange(len(fanins))
        new_dff = edited.add_node(GateType.DFF, (fanins[slot],), "eco_ff")
        fanins[slot] = new_dff
        edited.set_fanins(victim, tuple(fanins))
    try:
        validate(edited)
    except Exception:
        return None
    return edited


def _records(result) -> str:
    return json.dumps(result.pair_records(), sort_keys=True)


@given(seeds, st.integers(0, 2))
def test_incremental_matches_full_run_after_eco(seed, kind):
    base = random_sequential_circuit(seed)
    edited = eco_edit(base, seed, kind)
    assume(edited is not None)
    options = DetectorOptions()
    bundle = result_bundle(
        MultiCycleDetector(base, options).run(), options
    )
    incremental = incremental_detect(edited, options, bundle)
    full = MultiCycleDetector(_clone(edited), options).run()
    assert _records(incremental) == _records(full)
    assert incremental.incremental is not None


@given(seeds, st.integers(0, 2))
def test_incremental_matches_streaming_run_after_eco(seed, kind):
    base = random_sequential_circuit(seed)
    edited = eco_edit(base, seed, kind)
    assume(edited is not None)
    options = DetectorOptions()
    bundle = result_bundle(
        MultiCycleDetector(base, DetectorOptions(streaming="on")).run(),
        options,
    )
    incremental = incremental_detect(edited, options, bundle)
    streamed = MultiCycleDetector(
        _clone(edited), DetectorOptions(streaming="on")
    ).run()
    assert _records(incremental) == _records(streamed)


@given(seeds)
def test_unchanged_circuit_inherits_every_decide_verdict(seed):
    base = random_sequential_circuit(seed)
    options = DetectorOptions()
    full = MultiCycleDetector(base, options).run()
    bundle = result_bundle(full, options)
    rerun = incremental_detect(_clone(base), options, bundle)
    assert _records(rerun) == _records(full)
    assert rerun.incremental["re_decided"] == 0
    decide_settled = sum(
        1 for r in full.pair_results if r.stage is not Stage.SIMULATION
    )
    assert rerun.incremental["inherited"] == decide_settled


@given(seeds, st.integers(0, 2))
def test_re_decided_pairs_have_changed_cones(seed, kind):
    """Inheritance is exactly cone-hash-keyed: a re-decided survivor must
    have a changed launch or capture cone (or be absent from the prior
    bundle entirely — e.g. a pair the prior random filter dropped)."""
    base = random_sequential_circuit(seed)
    edited = eco_edit(base, seed, kind)
    assume(edited is not None)
    options = DetectorOptions()
    full_base = MultiCycleDetector(base, options).run()
    bundle = result_bundle(full_base, options)
    prior = {
        (r["source"], r["sink"]): r for r in bundle["records"]
        if r["stage"] != Stage.SIMULATION.value
    }
    launch = launch_cone_hashes(edited)
    capture = capture_cone_hashes(edited)
    result = incremental_detect(edited, options, bundle)
    names = edited.names
    for pair_result in result.pair_results:
        if pair_result.stage is Stage.SIMULATION:
            continue
        pair = pair_result.pair
        record = prior.get((names[pair.source], names[pair.sink]))
        unchanged = (
            record is not None
            and record["launch"] == launch[pair.source]
            and record["capture"] == capture[pair.sink]
        )
        if unchanged:
            # This pair must have been inherited, i.e. its record equals
            # the prior one verbatim.
            assert pair_result.classification.value == (
                record["classification"]
            )
            assert pair_result.stage.value == record["stage"]


def test_globally_sensitive_options_re_decide_everything():
    """With the implication DB on, the fingerprint covers the whole
    structural hash: any edit invalidates every prior record (sound,
    never stale)."""
    base = random_sequential_circuit(7)
    edited = eco_edit(base, 7, 0)
    assert edited is not None
    options = DetectorOptions(implication_db=True)
    assert options_fingerprint(options, base) != (
        options_fingerprint(options, edited)
    )
    bundle = result_bundle(MultiCycleDetector(base, options).run(), options)
    incremental = incremental_detect(edited, options, bundle)
    assert incremental.incremental["inherited"] == 0
    full = MultiCycleDetector(_clone(edited), options).run()
    assert _records(incremental) == _records(full)


def test_hazard_flags_inherit_with_matching_mode(fig1):
    options = DetectorOptions(hazard_check="ternary")
    full = MultiCycleDetector(fig1, options).run()
    bundle = result_bundle(full, options)
    rerun = incremental_detect(_clone(fig1), options, bundle)
    assert rerun.hazard_checked == full.hazard_checked
    assert [
        (p.source, p.sink) for p in rerun.hazard_flagged_pairs
    ] == [(p.source, p.sink) for p in full.hazard_flagged_pairs]


def test_hazard_mode_mismatch_rechecks(fig1):
    plain = DetectorOptions()
    bundle = result_bundle(MultiCycleDetector(fig1, plain).run(), plain)
    checked = DetectorOptions(hazard_check="ternary")
    # Fingerprint excludes hazard options, so decide verdicts inherit —
    # but the prior run carries no usable flags and every inherited MC
    # pair is re-checked.
    rerun = incremental_detect(_clone(fig1), checked, bundle)
    full = MultiCycleDetector(_clone(fig1), checked).run()
    assert rerun.incremental["re_decided"] == 0
    assert rerun.hazard_checked == full.hazard_checked
    assert [
        (p.source, p.sink) for p in rerun.hazard_flagged_pairs
    ] == [(p.source, p.sink) for p in full.hazard_flagged_pairs]


def test_bundle_roundtrips_through_store(tmp_path, fig1):
    store = ArtifactStore(tmp_path / "s")
    options = DetectorOptions()
    result = MultiCycleDetector(fig1, options).run()
    save_result_bundle(store, result, options)
    loaded = load_result_bundle(store, fig1, options)
    assert loaded == result_bundle(result, options)
    # A different fingerprint addresses a different bundle.
    assert load_result_bundle(
        store, fig1, DetectorOptions(backtrack_limit=99)
    ) is None


def test_missing_bundle_degrades_to_full_run(fig1):
    options = DetectorOptions()
    incremental = incremental_detect(_clone(fig1), options, None)
    full = MultiCycleDetector(_clone(fig1), options).run()
    assert _records(incremental) == _records(full)
    assert incremental.incremental["inherited"] == 0


def test_incremental_stage_name():
    assert IncrementalStage({}).name == "incremental"
