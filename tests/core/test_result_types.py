"""Result-type accessors and stage accounting."""

from repro.circuit.topology import FFPair
from repro.core.detector import detect_multi_cycle_pairs
from repro.core.result import (
    CaseOutcome,
    CaseResult,
    Classification,
    PairResult,
    Stage,
    StageStats,
)


def test_pair_result_is_multi_cycle_flag():
    pair = FFPair(0, 1)
    assert PairResult(pair, Classification.MULTI_CYCLE,
                      Stage.IMPLICATION).is_multi_cycle
    assert not PairResult(pair, Classification.SINGLE_CYCLE,
                          Stage.SIMULATION).is_multi_cycle
    assert not PairResult(pair, Classification.UNDECIDED,
                          Stage.ATPG).is_multi_cycle


def test_case_result_defaults():
    case = CaseResult(0, 1, CaseOutcome.IMPLIED_STABLE)
    assert case.decisions == 0 and case.witness is None


def test_detection_result_partitions(fig1):
    result = detect_multi_cycle_pairs(fig1)
    total = (len(result.multi_cycle_pairs) + len(result.single_cycle_pairs)
             + len(result.undecided_pairs))
    assert total == result.connected_pairs


def test_pair_names_helper(fig1):
    result = detect_multi_cycle_pairs(fig1)
    first = result.pair_results[0]
    source, sink = result.pair_names(first)
    assert source == fig1.names[first.pair.source]
    assert sink == fig1.names[first.pair.sink]


def test_stage_stats_default_zero():
    stats = StageStats()
    assert stats.single_cycle == stats.multi_cycle == stats.undecided == 0
    assert stats.cpu_seconds == 0.0


def test_every_stage_reported(fig1):
    result = detect_multi_cycle_pairs(fig1)
    assert set(result.stats) == set(Stage)


def test_cases_recorded_for_analysed_pairs(fig1):
    result = detect_multi_cycle_pairs(fig1)
    for pair_result in result.pair_results:
        if pair_result.stage is Stage.SIMULATION:
            assert pair_result.cases == []
        else:
            assert 1 <= len(pair_result.cases) <= 4
            for case in pair_result.cases:
                assert case.a in (0, 1) and case.b in (0, 1)
