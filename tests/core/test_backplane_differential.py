"""Backplane differential: pair records byte-identical, on vs off.

The shared-memory backplane is pure transport — workers that attach
decode the *same* expansion/CSR/SimPlan/PackedPlan the parent built, so
for any circuit and any option mix ``pair_records()`` must be
byte-identical between ``backplane="on"`` and ``backplane="off"``
(private per-worker rebuilds), on both the staged and the streaming
pipeline.  When a pool did publish, every worker must have attached
without touching the artifact store.
"""

from __future__ import annotations

import json

from hypothesis import given, settings

from repro.circuit.library import fig1_circuit, s27
from repro.core.detector import DetectorOptions, MultiCycleDetector

from tests.strategies import random_sequential_circuit, seeds


def _run(circuit, **kw):
    options = DetectorOptions(workers=2, parallel_threshold=2, **kw)
    return MultiCycleDetector(circuit, options).run()


def _records(result):
    return json.dumps(result.pair_records(), sort_keys=True)


def _assert_identical(circuit, **kw):
    on = _run(circuit, backplane="on", **kw)
    off = _run(circuit, backplane="off", **kw)
    assert _records(on) == _records(off)
    assert off.backplane is None
    summary = on.backplane
    if summary is not None:  # None when the pool auto-fell back to serial
        assert summary["attached"] == summary["workers"]
        assert summary["worker_store_misses"] == 0


@given(seeds)
@settings(max_examples=6)
def test_backplane_matches_staged(seed):
    circuit = random_sequential_circuit(seed, max_dffs=6, max_gates=20)
    _assert_identical(circuit, streaming="off")


@given(seeds)
@settings(max_examples=6)
def test_backplane_matches_streaming(seed):
    circuit = random_sequential_circuit(seed, max_dffs=6, max_gates=20)
    _assert_identical(circuit, streaming="on")


@given(seeds)
@settings(max_examples=4)
def test_backplane_matches_with_implication_db(seed):
    """implication-db rides the backplane as the shared learned table."""
    circuit = random_sequential_circuit(seed, max_dffs=5, max_gates=16)
    _assert_identical(circuit, streaming="off", implication_db=True)


def test_backplane_matches_on_paper_circuits():
    for circuit in (fig1_circuit(), s27()):
        _assert_identical(circuit, streaming="off")
        _assert_identical(circuit, streaming="on")
        _assert_identical(circuit, streaming="off", packed_implication="on",
                          implication_db=True)


def test_backplane_publishes_on_paper_circuit():
    """fig1 with a forced pool: the summary proves attach replaced rebuild."""
    result = _run(fig1_circuit(), backplane="on", streaming="off")
    summary = result.backplane
    assert summary is not None
    assert summary["workers"] == 2
    assert summary["attached"] == 2
    assert summary["worker_store_misses"] == 0
    assert "expansion" in summary["kinds"]
    assert summary["bytes"] > 0
    assert summary["spawn_seconds_max"] >= 0.0
    assert summary["worker_rss_max_kb"] > 0


def test_backplane_off_never_publishes():
    result = _run(fig1_circuit(), backplane="off", streaming="off")
    assert result.backplane is None
