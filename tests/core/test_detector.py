"""End-to-end detector tests, anchored by four-way differential agreement.

On small random sequential circuits the implication-based detector, the
SAT-based baseline, the BDD-based baseline and the brute-force oracle must
all produce the same set of multi-cycle FF pairs — that agreement is the
strongest evidence the reproduction is faithful.
"""

from hypothesis import given

from repro.bdd.traversal import bdd_detect_multi_cycle_pairs
from repro.circuit.library import enabled_pipeline
from repro.core.brute import brute_force_mc_pairs
from repro.core.detector import (
    DetectorOptions,
    MultiCycleDetector,
    detect_multi_cycle_pairs,
)
from repro.core.result import Classification, Stage
from repro.sat.mc_sat import sat_detect_multi_cycle_pairs

from tests.strategies import random_sequential_circuit, seeds


def test_fig1_reproduces_paper_narrative(fig1):
    """Section 4.2 end to end: 9 connected pairs, these 5 multi-cycle."""
    result = detect_multi_cycle_pairs(fig1)
    assert result.connected_pairs == 9
    assert result.multi_cycle_pair_names() == [
        ("FF1", "FF1"), ("FF1", "FF2"), ("FF2", "FF2"),
        ("FF3", "FF2"), ("FF4", "FF1"),
    ]
    assert not result.undecided_pairs


def test_s27_all_single_cycle(s27_circuit):
    result = detect_multi_cycle_pairs(s27_circuit)
    assert result.connected_pairs == 7
    assert not result.multi_cycle_pairs


def test_shift_register_pairs_single_cycle(shift4):
    result = detect_multi_cycle_pairs(shift4)
    assert not result.multi_cycle_pairs


@given(seeds)
def test_four_way_agreement(seed):
    circuit = random_sequential_circuit(seed, max_inputs=2, max_dffs=3,
                                        max_gates=8)
    expected = brute_force_mc_pairs(circuit)

    ours = detect_multi_cycle_pairs(
        circuit, DetectorOptions(backtrack_limit=100_000)
    )
    got = {(p.pair.source, p.pair.sink) for p in ours.multi_cycle_pairs}
    assert not ours.undecided_pairs
    assert got == expected, "implication-based detector disagrees with oracle"

    sat = sat_detect_multi_cycle_pairs(circuit)
    assert {(p.pair.source, p.pair.sink) for p in sat.multi_cycle_pairs} == expected

    bdd = bdd_detect_multi_cycle_pairs(circuit)
    assert {(p.pair.source, p.pair.sink) for p in bdd.multi_cycle_pairs} == expected


@given(seeds)
def test_random_sim_stage_is_only_an_accelerator(seed):
    """Disabling the random filter must not change any verdict."""
    circuit = random_sequential_circuit(seed, max_inputs=2, max_dffs=3,
                                        max_gates=8)
    with_sim = detect_multi_cycle_pairs(
        circuit, DetectorOptions(backtrack_limit=100_000)
    )
    without_sim = detect_multi_cycle_pairs(
        circuit, DetectorOptions(use_random_sim=False, backtrack_limit=100_000)
    )
    assert with_sim.multi_cycle_pair_names() == without_sim.multi_cycle_pair_names()


def test_static_learning_does_not_change_results(pipeline):
    plain = detect_multi_cycle_pairs(pipeline)
    learned = detect_multi_cycle_pairs(
        pipeline, DetectorOptions(static_learning=True)
    )
    assert plain.multi_cycle_pair_names() == learned.multi_cycle_pair_names()
    assert learned.learned_implications >= 0


def test_self_loop_option(fig1):
    without = detect_multi_cycle_pairs(
        fig1, DetectorOptions(include_self_loops=False)
    )
    names = without.multi_cycle_pair_names()
    assert ("FF1", "FF1") not in names
    assert ("FF3", "FF2") in names
    assert without.connected_pairs == 7


def test_every_pair_gets_exactly_one_result(pipeline):
    result = detect_multi_cycle_pairs(pipeline)
    keys = [(p.pair.source, p.pair.sink) for p in result.pair_results]
    assert len(keys) == len(set(keys)) == result.connected_pairs


def test_stage_stats_sum_to_totals(pipeline):
    result = detect_multi_cycle_pairs(pipeline)
    total_single = sum(s.single_cycle for s in result.stats.values())
    total_multi = sum(s.multi_cycle for s in result.stats.values())
    assert total_single == len(result.single_cycle_pairs)
    assert total_multi == len(result.multi_cycle_pairs)


def test_simulation_dropped_pairs_are_marked(fig1):
    result = detect_multi_cycle_pairs(fig1)
    sim_dropped = [
        p for p in result.pair_results if p.stage is Stage.SIMULATION
    ]
    assert sim_dropped
    assert all(
        p.classification is Classification.SINGLE_CYCLE for p in sim_dropped
    )


def test_determinism(fig1):
    first = detect_multi_cycle_pairs(fig1)
    second = detect_multi_cycle_pairs(fig1)
    assert first.multi_cycle_pair_names() == second.multi_cycle_pair_names()
    assert [p.stage for p in first.pair_results] == [
        p.stage for p in second.pair_results
    ]


def test_results_sorted_by_pair(pipeline):
    result = detect_multi_cycle_pairs(pipeline)
    keys = [(p.pair.source, p.pair.sink) for p in result.pair_results]
    assert keys == sorted(keys)


def test_detector_validates_input():
    from repro.circuit.gates import GateType
    from repro.circuit.netlist import Circuit, CircuitError

    import pytest

    broken = Circuit("broken")
    broken.add_node(GateType.NOT, (7,), "bad")
    with pytest.raises(CircuitError):
        MultiCycleDetector(broken)


def test_summary_fields(fig1):
    result = detect_multi_cycle_pairs(fig1)
    summary = result.summary()
    assert summary["ff_pairs"] == 9
    assert summary["mc_pairs"] == 5
    assert summary["cpu_seconds"] >= 0


def test_witnesses_reproduce_violations(pipeline):
    """Every single-cycle verdict from ATPG/implication carries a witness
    that really toggles source and sink when simulated."""
    from repro.circuit.timeframe import expand
    from repro.core.result import CaseOutcome
    from repro.logic.simulator import Simulator
    from repro.logic.values import X

    circuit = enabled_pipeline(3, counter_width=2, spacing=1)
    result = detect_multi_cycle_pairs(
        circuit, DetectorOptions(use_random_sim=False)
    )
    expansion = expand(circuit, 2)
    checked = 0
    for pair_result in result.pair_results:
        for case in pair_result.cases:
            if case.outcome is not CaseOutcome.VIOLATED or case.witness is None:
                continue
            witness = {n: (0 if v == X else v) for n, v in case.witness.items()}
            sim = Simulator(circuit)
            state = [witness[expansion.ff_at[0][k]]
                     for k in range(len(circuit.dffs))]
            sim.set_all_state(state)
            values = []
            for frame in range(2):
                if circuit.inputs:
                    sim.set_all_inputs(
                        [witness[n] for n in expansion.pi_at[frame]]
                    )
                values.append({d: sim.values[d] for d in circuit.dffs})
                sim.clock()
            values.append({d: sim.values[d] for d in circuit.dffs})
            source, sink = pair_result.pair.source, pair_result.pair.sink
            assert values[0][source] != values[1][source]
            assert values[1][sink] != values[2][sink]
            checked += 1
    assert checked > 0, "expected at least one ATPG witness to verify"
