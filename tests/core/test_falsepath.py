"""Per-path sensitization classification against first principles."""

import itertools

from repro.circuit.builder import CircuitBuilder
from repro.circuit.gates import GateType
from repro.circuit.paths import Path
from repro.circuit.topology import FFPair
from repro.core.falsepath import (
    PathClass,
    classify_pair_paths,
    classify_path,
    false_path_fraction,
)
from repro.logic.simulator import evaluate_gate


def _evaluate(circuit, input_values):
    values = dict(input_values)
    for node in circuit.topo_order():
        gate_type = circuit.types[node]
        if gate_type in (GateType.INPUT, GateType.DFF):
            values.setdefault(node, 0)
        elif gate_type == GateType.CONST0:
            values[node] = 0
        elif gate_type == GateType.CONST1:
            values[node] = 1
        else:
            values[node] = evaluate_gate(
                gate_type, [values[f] for f in circuit.fanins[node]]
            )
    return values


def _statically_sensitizable_brute(circuit, path):
    """Ground truth: some full vector keeps all side inputs non-controlling."""
    from repro.circuit.gates import CONTROLLING

    free = circuit.inputs + circuit.dffs
    for bits in itertools.product((0, 1), repeat=len(free)):
        values = _evaluate(circuit, dict(zip(free, bits)))
        ok = True
        for position in range(len(path.nodes) - 1):
            via = path.nodes[position]
            gate = path.nodes[position + 1]
            entry = CONTROLLING.get(circuit.types[gate])
            if entry is None:
                continue
            controlling, _ = entry
            for fanin in circuit.fanins[gate]:
                if fanin != via and values[fanin] == controlling:
                    ok = False
                    break
            if not ok:
                break
        if ok:
            return True
    return False


def _classic_false_path_circuit():
    """The textbook reconvergent example: two chained muxes built from
    AND/OR with a shared select make one long path false."""
    builder = CircuitBuilder("classic")
    s = builder.input("s")
    a = builder.input("a")
    ns = builder.not_(s, name="ns")
    # First stage: x = s ? a : 0  (path via a requires s = 1)
    x = builder.and_(s, a, name="x")
    # Second stage: y = s ? 0 : x (path via x requires s = 0) -> conflict.
    y = builder.and_(ns, x, name="y")
    ff = builder.dff("ff", d=y)
    builder.output("o", y)
    return builder.build()


def test_classic_false_path_detected():
    circuit = _classic_false_path_circuit()
    path = Path((circuit.id_of("a"), circuit.id_of("x"), circuit.id_of("y")))
    verdict = classify_path(circuit, path)
    # a -> x needs s = 1 (side of AND x); x -> y needs ns = 1 i.e. s = 0.
    assert verdict.classification in (PathClass.FALSE,
                                      PathClass.CO_SENSITIZABLE_ONLY)
    assert verdict.classification is not PathClass.STATICALLY_SENSITIZABLE


def test_sensitizable_path_has_witness():
    circuit = _classic_false_path_circuit()
    path = Path((circuit.id_of("s"), circuit.id_of("x"), circuit.id_of("y")))
    # s -> x -> y: side a of x must be 1, side ns of y... ns depends on s,
    # no constraint violated a priori; the engine figures it out.
    verdict = classify_path(circuit, path)
    assert verdict.classification in (
        PathClass.STATICALLY_SENSITIZABLE, PathClass.CO_SENSITIZABLE_ONLY,
        PathClass.FALSE,
    )
    # Whatever the verdict, it must agree with brute force on the strong one.
    assert (
        verdict.classification is PathClass.STATICALLY_SENSITIZABLE
    ) == _statically_sensitizable_brute(circuit, path)


def test_all_fig1_paths_agree_with_brute_force(fig1):
    from repro.circuit.topology import connected_ff_pairs

    for pair in connected_ff_pairs(fig1):
        for verdict in classify_pair_paths(fig1, pair, max_paths=20):
            expected = _statically_sensitizable_brute(fig1, verdict.path)
            got = verdict.classification is PathClass.STATICALLY_SENSITIZABLE
            assert got == expected, (
                [fig1.names[n] for n in verdict.path.nodes]
            )


def test_sensitizable_implies_cosensitizable_ordering(fig1):
    """No path may be sensitizable without being co-sensitizable — the
    classifier encodes that ordering structurally; verify via the enum."""
    pair = FFPair(fig1.id_of("FF1"), fig1.id_of("FF2"))
    for verdict in classify_pair_paths(fig1, pair):
        assert verdict.classification is not PathClass.UNKNOWN


def test_false_path_fraction_bounds(fig1):
    pair = FFPair(fig1.id_of("FF3"), fig1.id_of("FF2"))
    fraction = false_path_fraction(fig1, pair)
    assert 0.0 <= fraction <= 1.0


def test_single_node_path_trivially_sensitizable():
    circuit = _classic_false_path_circuit()
    verdict = classify_path(circuit, Path((circuit.id_of("a"),)))
    assert verdict.classification is PathClass.STATICALLY_SENSITIZABLE
