"""The paper's worked examples, end to end, as executable documentation.

Each test mirrors a numbered artefact of the paper (see DESIGN.md's
experiment index): the Section 4.2 walkthrough on Fig. 1, the Fig. 2
implication trace, the Fig. 3 hazard and the Fig. 4 sensitization gap.
"""

from repro.circuit.timeframe import expand
from repro.circuit.topology import connected_ff_pairs
from repro.core.detector import detect_multi_cycle_pairs
from repro.core.random_filter import random_filter
from repro.atpg.implication import ImplicationEngine
from repro.logic.values import ONE, ZERO


def test_section_4_2_step1_nine_pairs(fig1):
    """'After Step 1, the following 9 FF pairs remain among 16 FF pairs.'"""
    assert len(fig1.dffs) ** 2 == 16
    pairs = connected_ff_pairs(fig1)
    names = sorted((fig1.names[p.source], fig1.names[p.sink]) for p in pairs)
    assert names == [
        ("FF1", "FF1"), ("FF1", "FF2"), ("FF2", "FF2"),
        ("FF3", "FF1"), ("FF3", "FF2"), ("FF3", "FF4"),
        ("FF4", "FF1"), ("FF4", "FF2"), ("FF4", "FF3"),
    ]


def test_section_4_2_step2_five_pairs_remain(fig1):
    """'After Step 2, the following 5 FF pairs remain.'"""
    report = random_filter(fig1, connected_ff_pairs(fig1))
    names = sorted(
        (fig1.names[p.source], fig1.names[p.sink]) for p in report.survivors
    )
    assert names == [
        ("FF1", "FF1"), ("FF1", "FF2"), ("FF2", "FF2"),
        ("FF3", "FF2"), ("FF4", "FF1"),
    ]


def test_section_4_2_all_candidates_are_multi_cycle(fig1):
    """'All 5 candidates after random pattern simulation are identified as
    multi-cycle FF pairs.'"""
    result = detect_multi_cycle_pairs(fig1)
    assert len(result.multi_cycle_pairs) == 5
    assert not result.undecided_pairs


def test_fig2_implication_trace(fig1):
    """Fig. 2: with (FF1(t), FF1(t+1), FF2(t+1)) = (0, 1, 0) the
    implication procedure derives, among others, the counter state at t,
    the enables, and finally FF2(t+2) = 0."""
    expansion = expand(fig1, 2)
    engine = ImplicationEngine(expansion.comb)
    i = expansion.ff_index(fig1.id_of("FF1"))
    j = expansion.ff_index(fig1.id_of("FF2"))
    assert engine.assume_all([
        (expansion.ff_at[0][i], ZERO),   # FF1(t)   = 0
        (expansion.ff_at[1][i], ONE),    # FF1(t+1) = 1 (rise at the source)
        (expansion.ff_at[1][j], ZERO),   # FF2(t+1) = 0
    ])
    comb = expansion.comb

    # The rise at FF1 forces MUX1 to select IN: EN1(t) = 1, hence the
    # counter reads (0, 0) at time t ...
    assert engine.value(comb.id_of("EN1@0")) == ONE
    k3 = expansion.ff_index(fig1.id_of("FF3"))
    k4 = expansion.ff_index(fig1.id_of("FF4"))
    assert engine.value(expansion.ff_at[0][k3]) == ZERO
    assert engine.value(expansion.ff_at[0][k4]) == ZERO
    # ... so it reads (0, 1) at t+1, EN2(t+1) = 0, and FF2 must hold:
    assert engine.value(expansion.ff_at[1][k3]) == ZERO
    assert engine.value(expansion.ff_at[1][k4]) == ONE
    assert engine.value(comb.id_of("EN2@1")) == ZERO
    assert engine.value(expansion.ff_at[2][j]) == ZERO  # FF2(t+2) = FF2(t+1)


def test_in_value_is_implied_by_the_rise(fig1):
    """Fig. 2 also shows IN(t) implied to the risen value."""
    expansion = expand(fig1, 2)
    engine = ImplicationEngine(expansion.comb)
    i = expansion.ff_index(fig1.id_of("FF1"))
    assert engine.assume_all([
        (expansion.ff_at[0][i], ZERO),
        (expansion.ff_at[1][i], ONE),
    ])
    assert engine.value(expansion.comb.id_of("IN@0")) == ONE
