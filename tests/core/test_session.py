"""DecisionSession: shared-launch prefixes must be invisible in results.

The session splits each case premise into a cached launch prefix plus a
per-pair capture suffix.  The confluence argument in
``repro.core.session`` claims this cannot change anything observable —
verdicts, stage attribution, case lists, decision/backtrack counts,
witnesses.  These tests pin that claim against the fresh-engine oracle
(:class:`PairAnalyzer`, one engine per pair), against the brute-force
simulator, and across arbitrary pair orderings; plus the launch-group
sharding and observability plumbing the pipeline builds on top.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.library import shift_register
from repro.circuit.timeframe import expand_cached
from repro.circuit.topology import FFPair, connected_ff_pairs
from repro.core.brute import brute_force_mc_pairs
from repro.core.detector import DetectorOptions, MultiCycleDetector
from repro.core.pair_analysis import PairAnalyzer
from repro.core.pipeline import _launch_chunks
from repro.core.result import Classification
from repro.core.session import DecisionSession, launch_runs
from repro.core.trace import Tracer
from tests.strategies import random_sequential_circuit, seeds, shuffled


def oracle_results(circuit, pairs, search_engine="dalg"):
    """Fresh engine per pair: the strongest isolation baseline."""
    expansion = expand_cached(circuit, frames=3)
    out = []
    for pair in pairs:
        analyzer = PairAnalyzer(expansion, search_engine=search_engine)
        out.append(analyzer.analyze(pair))
    return out


def session_results(circuit, pairs, **kwargs):
    expansion = expand_cached(circuit, frames=3)
    session = DecisionSession(expansion, **kwargs)
    return [result for result, _ in session.decide_group(pairs)], session


# ----------------------------------------------------------------------
# Equivalence against the fresh-engine oracle.
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(seed=seeds, order_seed=st.integers(min_value=0, max_value=1000))
def test_session_matches_fresh_engine_oracle(seed, order_seed):
    """Any pair ordering, shared engine + prefixes == fresh engine/pair.

    Full-record equality: classification, stage, and every CaseResult
    field (outcomes, decision/backtrack counts, witnesses).
    """
    circuit = random_sequential_circuit(seed)
    pairs = shuffled(connected_ff_pairs(circuit), order_seed)
    if not pairs:
        return
    expected = oracle_results(circuit, pairs)
    got, _ = session_results(circuit, pairs)
    assert got == expected


@settings(max_examples=15, deadline=None)
@given(seed=seeds)
def test_session_podem_matches_oracle(seed):
    circuit = random_sequential_circuit(seed)
    pairs = connected_ff_pairs(circuit)
    if not pairs:
        return
    expected = oracle_results(circuit, pairs, search_engine="podem")
    got, _ = session_results(circuit, pairs, search_engine="podem")
    assert got == expected


@settings(max_examples=15, deadline=None)
@given(seed=seeds)
def test_prefix_sharing_is_invisible(seed):
    """share_prefix=False (full premise per case) changes nothing."""
    circuit = random_sequential_circuit(seed)
    pairs = connected_ff_pairs(circuit)
    if not pairs:
        return
    shared, _ = session_results(circuit, pairs, share_prefix=True)
    fresh, _ = session_results(circuit, pairs, share_prefix=False)
    assert shared == fresh


@settings(max_examples=25, deadline=None)
@given(seed=seeds)
def test_session_agrees_with_brute_force(seed):
    """Exhaustive simulation oracle on the session's definite verdicts."""
    circuit = random_sequential_circuit(seed, max_dffs=3, max_gates=8)
    pairs = connected_ff_pairs(circuit)
    if not pairs:
        return
    truth = brute_force_mc_pairs(circuit)
    results, _ = session_results(circuit, pairs)
    for result in results:
        if result.classification is Classification.UNDECIDED:
            continue
        expected = (result.pair.source, result.pair.sink) in truth
        assert result.is_multi_cycle == expected


# ----------------------------------------------------------------------
# Session behaviour and counters.
# ----------------------------------------------------------------------
def test_counters_account_for_every_pair(fig1):
    pairs = connected_ff_pairs(fig1)
    results, session = session_results(fig1, pairs)
    stats = session.stats()
    assert stats["pairs"] == len(pairs) == len(results)
    # One miss per (launch FF, polarity) actually reached; each further
    # unsettled pair under the same launch is a hit.
    per_pair = [r.metrics for r in results]
    assert all(m is not None for m in per_pair)
    assert sum(m["prefix_misses"] for m in per_pair) == stats["prefix_misses"]
    assert sum(m["prefix_hits"] for m in per_pair) == stats["prefix_hits"]
    assert sum(m["implications"] for m in per_pair) == stats["implications"]
    assert stats["trail_high_water"] > 0


def test_prefix_cache_hits_within_a_launch_group():
    """A shift register's FF0 launches into FF1..: one run, shared work."""
    circuit = shift_register(5)
    pairs = connected_ff_pairs(circuit)
    runs = launch_runs(pairs)
    assert sum(end - start for start, end in runs) == len(pairs)
    results, session = session_results(circuit, pairs)
    multi_pair_runs = [(s, e) for s, e in runs if e - s > 1]
    if multi_pair_runs:
        assert session.prefix_hits > 0
    assert all(not r.is_multi_cycle for r in results)


def test_engine_state_is_clean_between_groups(fig1):
    """Deciding twice on one session gives identical answers."""
    pairs = connected_ff_pairs(fig1)
    expansion = expand_cached(fig1, frames=3)
    session = DecisionSession(expansion)
    first = [r for r, _ in session.decide_group(pairs)]
    second = [r for r, _ in session.decide_group(pairs)]
    assert first == second
    assert session.engine.assignment.num_assigned() == 0


def test_session_rejects_bad_configuration(fig1):
    expansion = expand_cached(fig1, frames=3)
    with pytest.raises(ValueError, match="search engine"):
        DecisionSession(expansion, search_engine="cdcl")
    with pytest.raises(ValueError, match="2-frame"):
        DecisionSession(expand_cached(fig1, frames=1))


# ----------------------------------------------------------------------
# Launch-group sharding.
# ----------------------------------------------------------------------
def _fake_pairs(sources):
    return [FFPair(source, sink) for sink, source in enumerate(sources)]


def test_launch_chunks_never_split_a_group():
    pairs = _fake_pairs([1, 1, 1, 2, 2, 3, 4, 4, 4, 4, 5])
    for size in range(1, len(pairs) + 2):
        chunks = _launch_chunks(pairs, size)
        # Partition in order.
        assert [p for chunk in chunks for p in chunk] == pairs
        # No launch group straddles a chunk boundary.
        for left, right in zip(chunks, chunks[1:]):
            assert left[-1].source != right[0].source


def test_launch_chunks_oversized_group_is_one_chunk():
    pairs = _fake_pairs([7] * 10 + [8])
    chunks = _launch_chunks(pairs, 3)
    assert [len(c) for c in chunks] == [10, 1]


def test_launch_runs_handles_scattered_sources():
    pairs = _fake_pairs([1, 2, 1, 1, 3])
    assert launch_runs(pairs) == [(0, 1), (1, 2), (2, 4), (4, 5)]
    assert launch_runs([]) == []


# ----------------------------------------------------------------------
# Pipeline integration: trace events and serial/parallel identity.
# ----------------------------------------------------------------------
def test_decision_session_event_and_pair_metrics(fig1):
    tracer = Tracer()
    result = MultiCycleDetector(fig1, DetectorOptions(), tracer=tracer).run()
    events = tracer.select("decision_session")
    assert len(events) == 1
    assert events[0]["engine"] == "dalg"
    assert events[0]["pairs"] == result.decision_session["pairs"]
    decided = [
        e for e in tracer.select("pair") if e["stage"] != "sim"
    ]
    assert decided
    assert all("implications" in e and "prefix_hits" in e for e in decided)


def test_detection_result_carries_session_counters(fig1):
    result = MultiCycleDetector(fig1, DetectorOptions()).run()
    session = result.decision_session
    assert session is not None
    assert session["implications"] > 0
    # sat decider has no session.
    sat = MultiCycleDetector(
        fig1, DetectorOptions(search_engine="sat")
    ).run()
    assert sat.decision_session is None


def test_parallel_session_records_match_serial():
    circuit = random_sequential_circuit(2002, max_dffs=6, max_gates=20)
    serial = MultiCycleDetector(circuit, DetectorOptions()).run()
    parallel = MultiCycleDetector(
        circuit, DetectorOptions(workers=2, parallel_threshold=2)
    ).run()
    as_json = lambda r: json.dumps(r.pair_records(), sort_keys=True)  # noqa: E731
    assert as_json(parallel) == as_json(serial)
    assert parallel.decision_session == serial.decision_session
