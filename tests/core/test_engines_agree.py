"""Cross-engine agreement: every registered decider is a drop-in oracle.

The acceptance property of the pluggable-decider refactor: the
implication/ATPG engines (dalg, podem, scoap), the CDCL SAT baseline and
— where tractable — the ROBDD baseline must classify *every* connected
FF pair identically, across the benchmark suite and random circuits.
Counts agreeing is not enough; the per-pair classification maps must
match (undecided pairs excepted, since the backtrack limit only binds
the search-based engines).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench_gen.suite import suite
from repro.core.detector import DetectorOptions, MultiCycleDetector
from repro.core.result import Classification
from tests.strategies import random_sequential_circuit

SEARCH_ENGINES = ("dalg", "podem", "scoap", "sat")
#: BDD is exact but blows up on the larger synthetics; keep it to circuits
#: small enough for the suite to stay fast.
BDD_FF_LIMIT = 16


def classification_map(circuit, engine, workers=1):
    """(source, sink) -> Classification under the given engine."""
    options = DetectorOptions(search_engine=engine, workers=workers)
    result = MultiCycleDetector(circuit, options).run()
    names = circuit.names
    return {
        (names[r.pair.source], names[r.pair.sink]): r.classification
        for r in result.pair_results
    }


def assert_engines_agree(circuit, engines):
    reference_engine = engines[0]
    reference = classification_map(circuit, reference_engine)
    for engine in engines[1:]:
        candidate = classification_map(circuit, engine)
        assert candidate.keys() == reference.keys()
        for key, expected in reference.items():
            got = candidate[key]
            # The backtrack limit may leave a pair undecided in one engine
            # and settled in another; definite verdicts must never clash.
            if (
                Classification.UNDECIDED in (expected, got)
            ):
                continue
            assert got is expected, (
                f"{circuit.name}: pair {key} is {expected.value} under "
                f"{reference_engine} but {got.value} under {engine}"
            )


@pytest.mark.parametrize("circuit", suite("tiny"), ids=lambda c: c.name)
def test_all_engines_agree_on_tiny_suite(circuit):
    engines = list(SEARCH_ENGINES)
    if len(circuit.dffs) <= BDD_FF_LIMIT:
        engines.append("bdd")
    assert_engines_agree(circuit, engines)


@pytest.mark.parametrize(
    "circuit",
    [c for c in suite("small") if c.name in ("syn170", "syn330")],
    ids=lambda c: c.name,
)
def test_search_engines_agree_on_small_suite(circuit):
    assert_engines_agree(circuit, list(SEARCH_ENGINES))


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_engines_agree_on_random_circuits(seed):
    circuit = random_sequential_circuit(seed, max_dffs=4, max_gates=10)
    assert_engines_agree(circuit, ["dalg", "sat", "bdd"])


@pytest.mark.parametrize("circuit", suite("tiny"), ids=lambda c: c.name)
def test_parallel_matches_serial_byte_identical(circuit):
    """workers=4 must reproduce the serial classification exactly."""
    serial = MultiCycleDetector(circuit).run()
    parallel = MultiCycleDetector(circuit, DetectorOptions(workers=4)).run()
    assert serial.pair_records() == parallel.pair_records()


def test_cross_check_runs_clean_on_tiny_suite():
    for circuit in suite("tiny"):
        result = MultiCycleDetector(
            circuit, DetectorOptions(search_engine="cross-check")
        ).run()
        assert result.disagreements == []
