"""Work-unit formation and the work-stealing decision pool."""

from __future__ import annotations

from hypothesis import given, settings

from repro.circuit.topology import FFPair
from repro.core.detector import DetectorOptions, MultiCycleDetector
from repro.core.pipeline import merge_session_stats
from repro.core.result import Stage
from repro.core.trace import Tracer
from repro.core.workqueue import (
    MIN_SPLIT_PAIRS,
    launch_units,
    split_threshold,
)

from tests.strategies import random_sequential_circuit, seeds


def _group(source: int, sinks: list[int]) -> list[FFPair]:
    return [FFPair(source, sink) for sink in sinks]


def test_launch_units_concatenation_reproduces_input():
    pairs = (
        _group(1, [1, 2, 3]) + _group(2, [4]) + _group(3, [5, 6, 7, 8, 9])
    )
    units = launch_units(pairs, size=3)
    assert [p for unit in units for p in unit] == pairs


def test_launch_units_without_split_keeps_groups_whole():
    pairs = _group(1, list(range(10))) + _group(2, [1])
    units = launch_units(pairs, size=3, split=None)
    assert [len(u) for u in units] == [10, 1]


def test_launch_units_split_slices_oversized_groups():
    pairs = _group(1, list(range(10))) + _group(2, [1])
    units = launch_units(pairs, size=3, split=4)
    # The big group is cut into consecutive size-3 slices; the small
    # group stays whole; order is preserved end to end.
    assert [len(u) for u in units] == [3, 3, 3, 1, 1]
    assert [p for unit in units for p in unit] == pairs
    assert all(
        len({p.source for p in unit}) == 1 for unit in units
    ), "split units must stay single-source"


def test_split_threshold_floor():
    assert split_threshold(1) == MIN_SPLIT_PAIRS
    assert split_threshold(100) == 400


@given(seeds)
@settings(max_examples=20)
def test_launch_units_partition_property(seed):
    import random

    rng = random.Random(seed)
    pairs: list[FFPair] = []
    for source in range(rng.randrange(1, 8)):
        pairs.extend(_group(source, list(range(rng.randrange(1, 12)))))
    size = rng.randrange(1, 8)
    split = rng.choice([None, rng.randrange(4, 20)])
    units = launch_units(pairs, size, split=split)
    assert [p for unit in units for p in unit] == pairs
    assert all(unit for unit in units)
    if split is not None:
        assert all(len(unit) <= max(size, split) for unit in units)


def test_merge_session_stats_totals_and_high_water():
    total = merge_session_stats(None, {"pairs": 2, "trail_high_water": 7})
    total = merge_session_stats(total, {"pairs": 3, "trail_high_water": 5})
    total = merge_session_stats(total, None)
    assert total == {"pairs": 5, "trail_high_water": 7}
    assert merge_session_stats(None, None) is None


class _EchoDecider:
    """Pool-test stand-in: echoes each pair back with a bulky payload."""

    name = "echo"
    frames = 2

    def prepare(self, ctx):
        pass

    def decide(self, pair):
        return (pair, b"x" * 4096)


def test_pool_survives_queue_capacity_pressure(fig1):
    """Bulk submission plus bulky results must not wedge the pool.

    A pipe-backed queue holds ~64 KiB: with every unit submitted before
    any result is drained, workers block writing results, stop pulling
    tasks, and the parent blocks writing tasks — a three-way deadlock
    the first 10k-gate parallel run hit.  The pool's buffered queues
    keep both ends non-blocking; this pushes megabytes through each
    direction to pin that.
    """
    import threading

    from repro.core.pipeline import AnalysisContext
    from repro.core.workqueue import WorkStealingPool

    options = DetectorOptions(workers=2)
    expansion = AnalysisContext(fig1, options).expansion(2)
    pool = WorkStealingPool(
        fig1, options, _EchoDecider(), expansion, workers=2, key=("echo",)
    )
    units = [[FFPair(0, 0)] * 8 for _ in range(300)]
    out: list = []
    runner = threading.Thread(
        target=lambda: out.extend(pool.map_units(units)), daemon=True
    )
    runner.start()
    runner.join(timeout=120)
    assert not runner.is_alive(), "pool deadlocked on queue capacity"
    assert len(out) == len(units)
    assert sum(len(r.decided) for r in out) == 8 * 300
    pool.shutdown()


def test_pool_worker_summary_covers_all_units():
    """Every dispatched unit lands in exactly one worker's summary row."""
    circuit = random_sequential_circuit(11, max_dffs=8, max_gates=30)
    tracer = Tracer()
    options = DetectorOptions(workers=2, parallel_threshold=2, chunk_pairs=2)
    result = MultiCycleDetector(circuit, options, tracer=tracer).run()
    queues = tracer.select("decision_queue")
    if not queues:  # no survivors reached the decision stage
        return
    queue = queues[-1]
    summary = queue["per_worker"]
    assert [row["worker"] for row in summary] == list(range(queue["workers"]))
    assert sum(row["units"] for row in summary) == queue["units"]
    decided_in_decision = sum(
        1 for r in result.pair_results if r.stage is not Stage.SIMULATION
    )
    assert sum(row["pairs"] for row in summary) == decided_in_decision
