"""Tests for the staged pipeline: stages, trace layer, parallel executor.

The pipeline is the refactored detection core (`repro.core.pipeline`):
`MultiCycleDetector` is now a thin shell over
``default_pipeline().run(AnalysisContext(...))``, so these tests exercise
the machinery every detector rides on — the stage protocol, the decider
registry, the JSONL trace schema, and the worker-sharded decision stage
whose results must be byte-identical to a serial run.
"""

from __future__ import annotations

import json
from itertools import count

import pytest

from repro.circuit.timeframe import clear_expansion_cache, expand_cached
from repro.core.deciders import (
    DECIDER_REGISTRY,
    available_engines,
    create_decider,
)
from repro.core.detector import DetectorOptions, MultiCycleDetector
from repro.core.pipeline import (
    AnalysisContext,
    DecisionStage,
    Pipeline,
    TopologyStage,
    _auto_chunk_size,
    _chunk_pairs,
    _split_chunks,
    default_pipeline,
)
from repro.core.result import Classification, Stage
from repro.core.trace import TRACE_SCHEMA_VERSION, Tracer, open_trace, read_trace
from tests.strategies import random_sequential_circuit


# ----------------------------------------------------------------------
# Tracer / trace schema
# ----------------------------------------------------------------------
class TestTracer:
    def test_records_carry_schema_version_and_time(self):
        ticks = count()
        tracer = Tracer(clock=lambda: float(next(ticks)))
        record = tracer.emit("pair", source="ff0", sink="ff1")
        assert record["v"] == TRACE_SCHEMA_VERSION
        assert record["event"] == "pair"
        assert record["source"] == "ff0"
        # First emit at clock tick 1, t0 captured at tick 0.
        assert record["t"] == 1.0

    def test_select_filters_by_event(self):
        tracer = Tracer()
        tracer.emit("stage_start", stage="topology")
        tracer.emit("pair", source="a", sink="b")
        tracer.emit("stage_end", stage="topology")
        assert [r["stage"] for r in tracer.select("stage_start")] == ["topology"]
        assert len(tracer.select("pair")) == 1

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with open_trace(path) as tracer:
            tracer.emit("run_start", circuit="c")
            tracer.emit("run_end", multi_cycle=3)
        records = read_trace(path)
        assert [r["event"] for r in records] == ["run_start", "run_end"]
        assert all(r["v"] == TRACE_SCHEMA_VERSION for r in records)
        # Every line is standalone JSON (the JSONL contract).
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        for line in lines:
            json.loads(line)


# ----------------------------------------------------------------------
# Decider registry
# ----------------------------------------------------------------------
class TestDeciderRegistry:
    def test_known_engines_registered(self):
        engines = available_engines()
        for name in ("dalg", "podem", "scoap", "sat", "bdd", "cross-check"):
            assert name in engines

    def test_create_unknown_engine_raises(self):
        with pytest.raises(ValueError, match="unknown"):
            create_decider("no-such-engine")

    def test_created_decider_carries_name(self):
        for name in available_engines():
            assert create_decider(name).name == name

    def test_registry_is_sorted_view(self):
        assert list(available_engines()) == sorted(DECIDER_REGISTRY)


# ----------------------------------------------------------------------
# Pipeline stages and trace events
# ----------------------------------------------------------------------
class TestPipelineStages:
    def test_stage_sequence_on_fig1(self, fig1):
        tracer = Tracer()
        result = MultiCycleDetector(fig1, tracer=tracer).run()
        events = [r["event"] for r in tracer.events]
        assert events[0] == "run_start"
        assert events[-1] == "run_end"
        starts = [r["stage"] for r in tracer.select("stage_start")]
        ends = [r["stage"] for r in tracer.select("stage_end")]
        assert starts == ["topology", "random-sim", "decide", "hazard"]
        assert ends == starts
        # One pair event per connected pair, across all stages.
        assert len(tracer.select("pair")) == result.connected_pairs

    def test_run_end_summary_matches_result(self, fig1):
        tracer = Tracer()
        result = MultiCycleDetector(fig1, tracer=tracer).run()
        (end,) = tracer.select("run_end")
        assert end["multi_cycle"] == len(result.multi_cycle_pairs)
        assert end["connected_pairs"] == result.connected_pairs

    def test_injected_clock_makes_times_deterministic(self, fig1):
        def run_with_fake_clock():
            ticks = count()
            tracer = Tracer(clock=lambda: float(next(ticks)))
            ctx = AnalysisContext(
                fig1,
                DetectorOptions(),
                clock=lambda: 0.0,
                tracer=tracer,
            )
            default_pipeline().run(ctx)
            return [(r["event"], r["t"]) for r in tracer.events]

        assert run_with_fake_clock() == run_with_fake_clock()

    def test_progress_callback_counts_pairs(self, fig1):
        seen = []
        result = MultiCycleDetector(
            fig1, progress=lambda done, total, record: seen.append((done, total))
        ).run()
        assert len(seen) == result.connected_pairs
        assert seen[-1][0] == result.connected_pairs
        totals = {total for _done, total in seen}
        assert totals == {result.connected_pairs}

    def test_skipping_random_sim_stage(self, fig1):
        options = DetectorOptions(use_random_sim=False)
        result = MultiCycleDetector(fig1, options).run()
        assert result.stats[Stage.SIMULATION].single_cycle == 0
        baseline = MultiCycleDetector(fig1).run()
        assert result.multi_cycle_pair_names() == baseline.multi_cycle_pair_names()

    def test_custom_stage_composition(self, fig1):
        # A pipeline without the random filter still classifies correctly.
        pipeline = Pipeline([TopologyStage(), DecisionStage()])
        ctx = AnalysisContext(fig1, DetectorOptions())
        result = pipeline.run(ctx)
        baseline = MultiCycleDetector(fig1).run()
        assert result.multi_cycle_pair_names() == baseline.multi_cycle_pair_names()

    def test_decision_stage_engine_override(self, fig1):
        pipeline = Pipeline([TopologyStage(), DecisionStage("sat")])
        result = pipeline.run(AnalysisContext(fig1, DetectorOptions()))
        assert result.engine == "sat"
        baseline = MultiCycleDetector(fig1).run()
        assert result.multi_cycle_pair_names() == baseline.multi_cycle_pair_names()


# ----------------------------------------------------------------------
# Expansion cache
# ----------------------------------------------------------------------
class TestExpansionCache:
    def test_cache_hit_returns_same_object(self, fig1):
        clear_expansion_cache()
        first = expand_cached(fig1, frames=2)
        assert expand_cached(fig1, frames=2) is first
        assert expand_cached(fig1, frames=3) is not first

    def test_cache_invalidated_by_circuit_mutation(self, fig1):
        from repro.circuit.gates import GateType

        clear_expansion_cache()
        first = expand_cached(fig1, frames=2)
        fig1.add_node(GateType.INPUT, (), "late_pi")
        assert expand_cached(fig1, frames=2) is not first

    def test_context_expansion_is_cached(self, fig1):
        ctx = AnalysisContext(fig1, DetectorOptions())
        assert ctx.expansion(2) is ctx.expansion(2)


# ----------------------------------------------------------------------
# Parallel executor
# ----------------------------------------------------------------------
class TestParallelExecutor:
    def test_split_chunks_partition(self):
        pairs = list(range(10))
        chunks = _split_chunks(pairs, 4)
        assert [x for chunk in chunks for x in chunk] == pairs
        assert all(chunk for chunk in chunks)
        assert len(chunks) <= 4

    def test_split_chunks_more_workers_than_pairs(self):
        chunks = _split_chunks([1, 2], 8)
        assert [x for chunk in chunks for x in chunk] == [1, 2]

    def test_chunk_pairs_partition(self):
        pairs = list(range(11))
        chunks = _chunk_pairs(pairs, 4)
        assert [x for chunk in chunks for x in chunk] == pairs
        assert [len(chunk) for chunk in chunks] == [4, 4, 3]
        assert _chunk_pairs(pairs, 0) == [[p] for p in pairs]

    def test_auto_chunk_size_bounds(self):
        # ~4 chunks per worker, never below 1, capped at 64.
        assert _auto_chunk_size(1, 4) == 1
        assert _auto_chunk_size(160, 4) == 10
        assert _auto_chunk_size(100_000, 4) == 64

    @pytest.mark.parametrize("engine", ["dalg", "sat"])
    def test_workers_match_serial_byte_for_byte(self, fig1, engine):
        # parallel_threshold=2 forces the persistent pool path even on
        # fig1's small pair list.
        options = DetectorOptions(search_engine=engine)
        serial = MultiCycleDetector(fig1, options).run()
        parallel = MultiCycleDetector(
            fig1,
            DetectorOptions(
                search_engine=engine, workers=4, parallel_threshold=2
            ),
        ).run()
        assert json.dumps(serial.pair_records(), sort_keys=True) == json.dumps(
            parallel.pair_records(), sort_keys=True
        )

    def test_workers_match_serial_on_random_circuits(self):
        for seed in (3, 17, 91):
            circuit = random_sequential_circuit(seed, max_dffs=5, max_gates=14)
            serial = MultiCycleDetector(circuit).run()
            parallel = MultiCycleDetector(
                circuit, DetectorOptions(workers=3, parallel_threshold=2)
            ).run()
            assert serial.pair_records() == parallel.pair_records()

    def test_parallel_stats_match_serial_counts(self, fig1):
        serial = MultiCycleDetector(fig1).run()
        parallel = MultiCycleDetector(
            fig1, DetectorOptions(workers=2, parallel_threshold=2)
        ).run()
        for stage in Stage:
            assert (
                serial.stats[stage].single_cycle
                == parallel.stats[stage].single_cycle
            )
            assert (
                serial.stats[stage].multi_cycle
                == parallel.stats[stage].multi_cycle
            )

    def test_pool_mode_traced_when_above_threshold(self, fig1):
        tracer = Tracer()
        MultiCycleDetector(
            fig1,
            DetectorOptions(workers=2, parallel_threshold=2),
            tracer=tracer,
        ).run()
        (record,) = tracer.select("decision_exec")
        assert record["mode"] == "parallel"
        assert record["workers"] == 2
        assert record["pairs"] >= record["threshold"]

    def test_tiny_pair_list_falls_back_to_serial(self, fig1):
        # Default threshold (128) far exceeds fig1's surviving pairs, so a
        # workers>1 run must decide in-process and say so in the trace.
        tracer = Tracer()
        parallel = MultiCycleDetector(
            fig1, DetectorOptions(workers=4), tracer=tracer
        ).run()
        (record,) = tracer.select("decision_exec")
        assert record["mode"] == "serial-fallback"
        serial = MultiCycleDetector(fig1).run()
        assert serial.pair_records() == parallel.pair_records()

    def test_serial_run_emits_no_decision_exec(self, fig1):
        tracer = Tracer()
        MultiCycleDetector(fig1, DetectorOptions(workers=1), tracer=tracer).run()
        assert tracer.select("decision_exec") == []

    def test_pool_is_closed_after_run(self, fig1):
        ctx = AnalysisContext(
            fig1, DetectorOptions(workers=2, parallel_threshold=2)
        )
        default_pipeline().run(ctx)
        assert ctx._pool is None


# ----------------------------------------------------------------------
# Hazard validation stage
# ----------------------------------------------------------------------
class TestHazardStage:
    def test_off_by_default_and_counters_zero(self, fig1):
        result = MultiCycleDetector(fig1).run()
        assert result.hazard_mode == "off"
        assert result.hazard_checked == 0
        assert result.hazard_flagged == 0
        assert result.hazard_flagged_pairs == []

    def test_records_identical_with_stage_on(self, fig3):
        """The stage annotates, never reclassifies: pair_records are
        byte-identical whether the hazard check runs or not."""
        off = MultiCycleDetector(fig3).run()
        on = MultiCycleDetector(
            fig3, DetectorOptions(hazard_check="ternary")
        ).run()
        assert json.dumps(off.pair_records(), sort_keys=True) == json.dumps(
            on.pair_records(), sort_keys=True
        )

    def test_ternary_mode_matches_standalone_checker(self, fig3):
        from repro.core.ternary_hazard import ternary_check_hazards

        result = MultiCycleDetector(
            fig3, DetectorOptions(hazard_check="ternary")
        ).run()
        reports, _seconds = ternary_check_hazards(fig3, result)
        expected = sorted(
            (r.pair_result.pair for r in reports if r.has_potential_hazard),
            key=lambda p: (p.source, p.sink),
        )
        assert result.hazard_mode == "ternary"
        assert result.hazard_checked == len(result.multi_cycle_pairs)
        assert result.hazard_flagged_pairs == expected
        assert result.hazard_flagged == len(expected)

    def test_verified_pairs_partition_multi_cycle(self, fig3):
        result = MultiCycleDetector(
            fig3, DetectorOptions(hazard_check="ternary")
        ).run()
        flagged = {(p.source, p.sink) for p in result.hazard_flagged_pairs}
        verified = {
            (r.pair.source, r.pair.sink) for r in result.hazard_verified_pairs
        }
        everything = {
            (r.pair.source, r.pair.sink) for r in result.multi_cycle_pairs
        }
        assert flagged | verified == everything
        assert not flagged & verified

    def test_hazard_stage_trace_event(self, fig3):
        tracer = Tracer()
        MultiCycleDetector(
            fig3, DetectorOptions(hazard_check="ternary"), tracer=tracer
        ).run()
        (record,) = tracer.select("hazard_stage")
        assert record["mode"] == "ternary"
        assert record["checked"] >= record["flagged"] >= 0
        assert record["lanes"] > 0
        assert [r["stage"] for r in tracer.select("stage_start")] == [
            "topology", "random-sim", "decide", "hazard",
        ]

    @pytest.mark.parametrize("mode", ["sensitize", "cosensitize"])
    def test_sensitization_modes(self, fig3, mode):
        result = MultiCycleDetector(
            fig3, DetectorOptions(hazard_check=mode)
        ).run()
        assert result.hazard_mode == mode
        assert result.hazard_checked == len(result.multi_cycle_pairs)

    def test_ternary_is_no_more_pessimistic_than_cosensitize(self, fig3):
        ternary = MultiCycleDetector(
            fig3, DetectorOptions(hazard_check="ternary")
        ).run()
        cosens = MultiCycleDetector(
            fig3, DetectorOptions(hazard_check="cosensitize")
        ).run()
        ternary_flagged = {
            (p.source, p.sink) for p in ternary.hazard_flagged_pairs
        }
        cosens_flagged = {
            (p.source, p.sink) for p in cosens.hazard_flagged_pairs
        }
        assert ternary_flagged <= cosens_flagged

    def test_unknown_mode_raises(self, fig1):
        with pytest.raises(ValueError, match="hazard"):
            MultiCycleDetector(
                fig1, DetectorOptions(hazard_check="bogus")
            ).run()


# ----------------------------------------------------------------------
# Cross-check decider
# ----------------------------------------------------------------------
class TestCrossCheck:
    def test_cross_check_agrees_on_fig1(self, fig1):
        result = MultiCycleDetector(
            fig1, DetectorOptions(search_engine="cross-check")
        ).run()
        assert result.disagreements == []
        baseline = MultiCycleDetector(fig1).run()
        assert result.multi_cycle_pair_names() == baseline.multi_cycle_pair_names()

    def test_cross_check_emits_no_disagreement_events(self, fig1):
        tracer = Tracer()
        MultiCycleDetector(
            fig1, DetectorOptions(search_engine="cross-check"), tracer=tracer
        ).run()
        assert tracer.select("disagreement") == []


# ----------------------------------------------------------------------
# pair_records determinism contract
# ----------------------------------------------------------------------
class TestPairRecords:
    def test_records_sorted_and_complete(self, fig1):
        result = MultiCycleDetector(fig1).run()
        records = result.pair_records()
        assert len(records) == result.connected_pairs
        keys = [(r["source"], r["sink"]) for r in records]
        assert keys == sorted(keys)
        for record in records:
            assert record["classification"] in {c.value for c in Classification}
            assert record["stage"] in {s.value for s in Stage}

    def test_records_json_serialisable(self, fig1):
        result = MultiCycleDetector(fig1).run()
        json.dumps(result.pair_records())
