"""Streaming launch-group pipeline: differential equality with the staged path.

The streaming pipeline's contract is *byte identity*: for any circuit
and any option combination, ``pair_records()`` and every counter of the
:class:`~repro.core.result.DetectionResult` must match the staged
four-stage pipeline exactly — only peak memory and the trace shape may
differ.  The tests here hold that equality over random circuits
(including the single-FF and self-loop-only degenerate shapes), both
self-loop modes, parallel workers, hazard validation and the k-cycle
variant.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings

from repro.circuit.builder import CircuitBuilder
from repro.circuit.library import fig1_circuit, s27
from repro.core.detector import DetectorOptions, MultiCycleDetector
from repro.core.kcycle import KCycleDetector
from repro.core.pipeline import AnalysisContext
from repro.core.streaming import (
    STREAMING_AUTO_DFFS,
    StreamingStage,
    streaming_enabled,
    streaming_pipeline,
)
from repro.core.trace import Tracer

from tests.strategies import random_sequential_circuit, seeds


def _run(circuit, tracer=None, **kw):
    return MultiCycleDetector(
        circuit, DetectorOptions(**kw), tracer=tracer
    ).run()


def _fingerprint(result):
    """Everything the differential must hold equal (no wall-clock floats)."""
    return (
        json.dumps(result.pair_records(), sort_keys=True),
        result.connected_pairs,
        {
            stage.name: (s.multi_cycle, s.single_cycle, s.undecided)
            for stage, s in result.stats.items()
        },
        result.decision_session,
        result.learned_implications,
        result.engine,
        result.hazard_mode,
        result.hazard_checked,
        result.hazard_flagged,
        result.hazard_flagged_pairs,
        [
            (d.pair, d.primary, d.secondary)
            for d in result.disagreements
        ],
    )


def _assert_identical(circuit, **kw):
    staged = _fingerprint(_run(circuit, streaming="off", **kw))
    streamed = _fingerprint(_run(circuit, streaming="on", **kw))
    assert staged == streamed


@given(seeds)
@settings(max_examples=25)
def test_streaming_matches_staged_on_random_circuits(seed):
    circuit = random_sequential_circuit(seed, max_dffs=6, max_gates=20)
    _assert_identical(circuit)


@given(seeds)
@settings(max_examples=10)
def test_streaming_matches_staged_without_self_loops(seed):
    circuit = random_sequential_circuit(seed, max_dffs=6, max_gates=20)
    _assert_identical(circuit, include_self_loops=False)


@given(seeds)
@settings(max_examples=8)
def test_streaming_matches_staged_with_workers(seed):
    circuit = random_sequential_circuit(seed, max_dffs=6, max_gates=20)
    _assert_identical(circuit, workers=2, parallel_threshold=2)


@given(seeds)
@settings(max_examples=8)
def test_streaming_matches_staged_with_hazard(seed):
    circuit = random_sequential_circuit(seed, max_dffs=5, max_gates=16)
    _assert_identical(circuit, hazard_check="ternary")


@given(seeds)
@settings(max_examples=8)
def test_streaming_matches_staged_without_random_sim(seed):
    circuit = random_sequential_circuit(seed, max_dffs=5, max_gates=16)
    _assert_identical(circuit, use_random_sim=False)


def test_streaming_matches_on_paper_circuits(fig1):
    for circuit in (fig1, s27()):
        _assert_identical(circuit)
        _assert_identical(circuit, hazard_check="ternary", workers=2,
                          parallel_threshold=2)


def test_single_ff_self_loop_circuit():
    """Degenerate shape: one FF whose only pair is its own self loop."""
    builder = CircuitBuilder("one_ff")
    pi = builder.input("pi")
    ff = builder.dff("ff")
    builder.drive(ff, builder.xor(pi, ff, name="nxt"))
    builder.output("po", ff)
    circuit = builder.build()
    _assert_identical(circuit)
    _assert_identical(circuit, include_self_loops=False)
    result = _run(circuit, streaming="on", include_self_loops=False)
    assert result.connected_pairs == 0
    assert result.pair_results == []


def test_self_loop_only_circuit():
    """Two FFs, each feeding only itself: all pairs are self loops."""
    builder = CircuitBuilder("self_only")
    pi = builder.input("pi")
    fa = builder.dff("fa")
    fb = builder.dff("fb")
    builder.drive(fa, builder.xor(pi, fa, name="na"))
    builder.drive(fb, builder.and_(pi, fb, name="nb"))
    builder.output("poa", fa)
    builder.output("pob", fb)
    circuit = builder.build()
    _assert_identical(circuit)
    _assert_identical(circuit, include_self_loops=False)


def test_kcycle_streaming_matches_staged():
    circuit = random_sequential_circuit(7, max_dffs=6, max_gates=24)
    for k in (2, 3, 4):
        staged = KCycleDetector(circuit, k, streaming="off").run()
        streamed = KCycleDetector(circuit, k, streaming="on").run()
        assert [
            (r.pair, r.classification) for r in staged.pair_results
        ] == [(r.pair, r.classification) for r in streamed.pair_results]
        assert staged.connected_pairs == streamed.connected_pairs
        assert staged.sim_dropped == streamed.sim_dropped


def test_streaming_enabled_modes(fig1):
    assert streaming_enabled(DetectorOptions(streaming="on"), fig1)
    assert not streaming_enabled(DetectorOptions(streaming="off"), fig1)
    # fig1 has 4 flip-flops, far below the auto threshold.
    assert len(fig1.dffs) < STREAMING_AUTO_DFFS
    assert not streaming_enabled(DetectorOptions(streaming="auto"), fig1)
    with pytest.raises(ValueError):
        streaming_enabled(DetectorOptions(streaming="sideways"), fig1)


def test_streaming_trace_events(fig1):
    """One launch_group event per group, with a stream_topology header."""
    tracer = Tracer()
    result = _run(fig1, tracer=tracer, streaming="on")
    header = tracer.select("stream_topology")
    assert len(header) == 1
    assert header[0]["pairs"] == result.connected_pairs
    groups = tracer.select("launch_group")
    assert len(groups) == header[0]["groups"]
    assert [g["group_index"] for g in groups] == list(range(len(groups)))
    assert all(g["groups_total"] == len(groups) for g in groups)
    # The last fold has seen every settled pair.
    assert groups[-1]["folded"] == result.connected_pairs
    assert sum(g["dropped"] for g in groups) == 4  # fig1's sim-dropped pairs
    # The staged stage boundaries are replaced by the single stream stage.
    stages = [e["stage"] for e in tracer.select("stage_start")]
    assert stages == ["stream"]


def test_streaming_stage_rejects_single_frame():
    with pytest.raises(ValueError):
        StreamingStage(frames=1)


def test_streaming_pipeline_runs_standalone(fig1):
    """streaming_pipeline() is a complete Pipeline, not just a stage."""
    result = streaming_pipeline().run(AnalysisContext(fig1))
    staged = _run(fig1, streaming="off")
    assert result.pair_records() == staged.pair_records()


def test_streaming_rejects_unknown_hazard_mode(fig1):
    with pytest.raises(ValueError):
        _run(fig1, streaming="on", hazard_check="sideways")
