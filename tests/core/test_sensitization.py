"""Unit tests for the per-gate sensitization extension options."""


from repro.circuit.builder import CircuitBuilder
from repro.core.sensitization import (
    PathSearchOutcome,
    SensitizationMode,
    _extension_options,
    find_sensitizable_path,
)
from repro.atpg.implication import ImplicationEngine
from repro.logic.values import ONE, ZERO


def _engine_for(build):
    builder = CircuitBuilder("t")
    build(builder)
    circuit = builder.build()
    return circuit, ImplicationEngine(circuit)


def test_and_gate_options():
    def build(b):
        a, c, d = b.input("a"), b.input("c"), b.input("d")
        b.output("o", b.and_(a, c, d, name="g"))

    circuit, engine = _engine_for(build)
    gate = circuit.id_of("g")
    via = circuit.id_of("a")
    sens = _extension_options(engine, gate, via,
                              SensitizationMode.STATIC_SENSITIZATION)
    # One option: both side inputs non-controlling (1 for AND).
    assert sens == [[(circuit.id_of("c"), ONE), (circuit.id_of("d"), ONE)]]

    cosens = _extension_options(engine, gate, via,
                                SensitizationMode.STATIC_CO_SENSITIZATION)
    assert len(cosens) == 2
    assert [(via, ZERO)] in cosens  # on-input at the controlling value


def test_or_gate_noncontrolling_is_zero():
    def build(b):
        a, c = b.input("a"), b.input("c")
        b.output("o", b.or_(a, c, name="g"))

    circuit, engine = _engine_for(build)
    sens = _extension_options(
        engine, circuit.id_of("g"), circuit.id_of("a"),
        SensitizationMode.STATIC_SENSITIZATION,
    )
    assert sens == [[(circuit.id_of("c"), ZERO)]]


def test_xor_gate_unconstrained():
    def build(b):
        a, c = b.input("a"), b.input("c")
        b.output("o", b.xor(a, c, name="g"))

    circuit, engine = _engine_for(build)
    for mode in SensitizationMode:
        assert _extension_options(
            engine, circuit.id_of("g"), circuit.id_of("a"), mode
        ) is None


def test_mux_options_by_role():
    def build(b):
        s, d0, d1 = b.input("s"), b.input("d0"), b.input("d1")
        b.output("o", b.mux(s, d0, d1, name="g"))

    circuit, engine = _engine_for(build)
    gate = circuit.id_of("g")
    s, d0, d1 = (circuit.id_of(n) for n in ("s", "d0", "d1"))
    via_select = _extension_options(engine, gate, s,
                                    SensitizationMode.STATIC_SENSITIZATION)
    assert len(via_select) == 2  # d0 != d1, both polarities
    via_d0 = _extension_options(engine, gate, d0,
                                SensitizationMode.STATIC_SENSITIZATION)
    assert via_d0 == [[(s, ZERO)]]
    via_d1 = _extension_options(engine, gate, d1,
                                SensitizationMode.STATIC_SENSITIZATION)
    assert via_d1 == [[(s, ONE)]]


def test_search_finds_multi_gate_path():
    def build(b):
        a, k1, k2 = b.input("a"), b.input("k1"), b.input("k2")
        g1 = b.and_(a, k1, name="g1")
        g2 = b.or_(g1, k2, name="g2")
        b.output("o", g2)

    circuit, engine = _engine_for(build)
    result = find_sensitizable_path(
        engine, circuit.id_of("a"), circuit.id_of("g2"),
        {circuit.id_of("g1"), circuit.id_of("g2")},
        SensitizationMode.STATIC_SENSITIZATION,
    )
    assert result.outcome is PathSearchOutcome.FOUND
    assert [circuit.names[n] for n in result.path] == ["a", "g1", "g2"]


def test_search_blocked_by_assumed_side_value():
    def build(b):
        a, k1 = b.input("a"), b.input("k1")
        b.output("o", b.and_(a, k1, name="g1"))

    circuit, engine = _engine_for(build)
    assert engine.assume(circuit.id_of("k1"), ZERO)  # controlling: blocks
    result = find_sensitizable_path(
        engine, circuit.id_of("a"), circuit.id_of("g1"),
        {circuit.id_of("g1")},
        SensitizationMode.STATIC_SENSITIZATION,
    )
    assert result.outcome is PathSearchOutcome.NONE
