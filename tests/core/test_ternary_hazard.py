"""Eichelberger ternary hazard analysis.

The checker searches witnesses scalar but evaluates them bit-parallel
(one :class:`TernarySimulator` lane per satisfiable case); the scalar
per-case dict walk survives as the reference path, and the differential
tests here hold the two verdict-identical — including the reported
witness case — on fixtures and random circuits.
"""

import itertools

import pytest
from hypothesis import given

from repro.circuit.builder import CircuitBuilder
from repro.circuit.timeframe import expand_cached
from repro.core.detector import detect_multi_cycle_pairs
from repro.core.ternary_hazard import (
    TernaryHazardChecker,
    ternary_check_hazards,
    ternary_eval,
)
from repro.logic.values import ONE, X, ZERO
from tests.strategies import random_sequential_circuit, seeds


def test_ternary_eval_matches_binary_on_full_inputs():
    builder = CircuitBuilder("t")
    a, b = builder.input("a"), builder.input("b")
    g = builder.xor(builder.and_(a, b, name="g1"), a, name="g2")
    builder.output("o", g)
    circuit = builder.build()
    for bits in itertools.product((0, 1), repeat=2):
        values = ternary_eval(circuit, dict(zip(circuit.inputs, bits)))
        assert values[circuit.id_of("g2")] == (bits[0] & bits[1]) ^ bits[0]


def test_ternary_eval_x_dominated_by_controlling():
    builder = CircuitBuilder("t")
    a, b = builder.input("a"), builder.input("b")
    builder.output("o", builder.and_(a, b, name="g"))
    circuit = builder.build()
    values = ternary_eval(circuit, {a: ZERO, b: X})
    assert values[circuit.id_of("g")] == ZERO
    values = ternary_eval(circuit, {a: ONE, b: X})
    assert values[circuit.id_of("g")] == X


def test_fig3_pair_ff3_ff2_glitches(fig3):
    """The Fig. 3 hazard also shows up under ternary simulation: X-ing the
    changed counter bit drives MUX2's AND/OR to X."""
    detection = detect_multi_cycle_pairs(fig3)
    checker = TernaryHazardChecker(fig3)
    target = next(
        p for p in detection.multi_cycle_pairs
        if (fig3.names[p.pair.source], fig3.names[p.pair.sink]) == ("FF3", "FF2")
    )
    report = checker.check_pair(target)
    assert report.has_potential_hazard
    assert report.witness_case is not None


def test_blocked_pair_does_not_glitch(fig3):
    """(FF1, FF2): when FF1 toggles, EN2 is held 0 by the *unchanged* FF3
    bit, so the X from FF1 is blocked — consistent with the static
    sensitization verdict (and unlike co-sensitization's pessimism)."""
    detection = detect_multi_cycle_pairs(fig3)
    checker = TernaryHazardChecker(fig3)
    target = next(
        p for p in detection.multi_cycle_pairs
        if (fig3.names[p.pair.source], fig3.names[p.pair.sink]) == ("FF1", "FF2")
    )
    report = checker.check_pair(target)
    assert not report.has_potential_hazard


def test_report_covers_all_mc_pairs(fig3):
    detection = detect_multi_cycle_pairs(fig3)
    reports, seconds = ternary_check_hazards(fig3, detection)
    assert len(reports) == len(detection.multi_cycle_pairs)
    assert seconds >= 0


def test_ternary_flags_subset_of_cosensitization(fig3):
    """Per-witness ternary X-propagation cannot flag a pair whose every
    path family is already co-sensitization-clean."""
    from repro.core.hazard import check_hazards
    from repro.core.sensitization import SensitizationMode

    detection = detect_multi_cycle_pairs(fig3)
    ternary_reports, _ = ternary_check_hazards(fig3, detection)
    ternary_flagged = {
        (r.pair_result.pair.source, r.pair_result.pair.sink)
        for r in ternary_reports
        if r.has_potential_hazard
    }
    cosens = check_hazards(
        fig3, detection, SensitizationMode.STATIC_CO_SENSITIZATION
    )
    cosens_flagged = {
        (r.pair_result.pair.source, r.pair_result.pair.sink)
        for r in cosens.reports
        if r.has_potential_hazard
    }
    assert ternary_flagged <= cosens_flagged


# ----------------------------------------------------------------------
# Packed bit-parallel path vs the scalar reference path
# ----------------------------------------------------------------------
def _verdicts(reports):
    return [(r.has_potential_hazard, r.witness_case) for r in reports]


def _assert_packed_matches_scalar(circuit, words=4):
    detection = detect_multi_cycle_pairs(circuit)
    pairs = detection.multi_cycle_pairs
    checker = TernaryHazardChecker(circuit, words=words)
    packed = checker.check_pairs(pairs, packed=True)
    scalar = checker.check_pairs(pairs, packed=False)
    assert _verdicts(packed) == _verdicts(scalar)
    # ... and both agree with the short-circuiting per-pair path.
    per_pair = [checker.check_pair(p) for p in pairs]
    assert _verdicts(packed) == _verdicts(per_pair)


def test_packed_matches_scalar_on_fig3(fig3):
    _assert_packed_matches_scalar(fig3)


def test_packed_matches_scalar_on_counter(counter3):
    _assert_packed_matches_scalar(counter3)


def test_packed_matches_scalar_with_one_word_batches(fig3):
    """words=1 forces multi-batch packing once lanes exceed 64."""
    _assert_packed_matches_scalar(fig3, words=1)


@given(seeds)
def test_packed_matches_scalar_on_random_circuits(seed):
    circuit = random_sequential_circuit(seed, max_dffs=5, max_gates=14)
    _assert_packed_matches_scalar(circuit)


def test_lane_counters_populated(fig3):
    detection = detect_multi_cycle_pairs(fig3)
    checker = TernaryHazardChecker(fig3)
    checker.check_pairs(detection.multi_cycle_pairs)
    assert checker.lanes_evaluated > 0
    assert checker.batches_evaluated >= 1


# ----------------------------------------------------------------------
# Expansion reuse
# ----------------------------------------------------------------------
def test_checker_reuses_cached_expansion(fig3):
    expansion = expand_cached(fig3, frames=2)
    assert TernaryHazardChecker(fig3).expansion is expansion


def test_checker_accepts_injected_expansion(fig3):
    expansion = expand_cached(fig3, frames=3)
    checker = TernaryHazardChecker(fig3, expansion=expansion)
    assert checker.expansion is expansion


def test_checker_rejects_short_expansion(fig3):
    with pytest.raises(ValueError, match="2-frame"):
        TernaryHazardChecker(fig3, expansion=expand_cached(fig3, frames=1))
