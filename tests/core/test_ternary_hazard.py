"""Eichelberger ternary hazard analysis."""

import itertools

from repro.circuit.builder import CircuitBuilder
from repro.core.detector import detect_multi_cycle_pairs
from repro.core.ternary_hazard import (
    TernaryHazardChecker,
    ternary_check_hazards,
    ternary_eval,
)
from repro.logic.values import ONE, X, ZERO


def test_ternary_eval_matches_binary_on_full_inputs():
    builder = CircuitBuilder("t")
    a, b = builder.input("a"), builder.input("b")
    g = builder.xor(builder.and_(a, b, name="g1"), a, name="g2")
    builder.output("o", g)
    circuit = builder.build()
    for bits in itertools.product((0, 1), repeat=2):
        values = ternary_eval(circuit, dict(zip(circuit.inputs, bits)))
        assert values[circuit.id_of("g2")] == (bits[0] & bits[1]) ^ bits[0]


def test_ternary_eval_x_dominated_by_controlling():
    builder = CircuitBuilder("t")
    a, b = builder.input("a"), builder.input("b")
    builder.output("o", builder.and_(a, b, name="g"))
    circuit = builder.build()
    values = ternary_eval(circuit, {a: ZERO, b: X})
    assert values[circuit.id_of("g")] == ZERO
    values = ternary_eval(circuit, {a: ONE, b: X})
    assert values[circuit.id_of("g")] == X


def test_fig3_pair_ff3_ff2_glitches(fig3):
    """The Fig. 3 hazard also shows up under ternary simulation: X-ing the
    changed counter bit drives MUX2's AND/OR to X."""
    detection = detect_multi_cycle_pairs(fig3)
    checker = TernaryHazardChecker(fig3)
    target = next(
        p for p in detection.multi_cycle_pairs
        if (fig3.names[p.pair.source], fig3.names[p.pair.sink]) == ("FF3", "FF2")
    )
    report = checker.check_pair(target)
    assert report.has_potential_hazard
    assert report.witness_case is not None


def test_blocked_pair_does_not_glitch(fig3):
    """(FF1, FF2): when FF1 toggles, EN2 is held 0 by the *unchanged* FF3
    bit, so the X from FF1 is blocked — consistent with the static
    sensitization verdict (and unlike co-sensitization's pessimism)."""
    detection = detect_multi_cycle_pairs(fig3)
    checker = TernaryHazardChecker(fig3)
    target = next(
        p for p in detection.multi_cycle_pairs
        if (fig3.names[p.pair.source], fig3.names[p.pair.sink]) == ("FF1", "FF2")
    )
    report = checker.check_pair(target)
    assert not report.has_potential_hazard


def test_report_covers_all_mc_pairs(fig3):
    detection = detect_multi_cycle_pairs(fig3)
    reports, seconds = ternary_check_hazards(fig3, detection)
    assert len(reports) == len(detection.multi_cycle_pairs)
    assert seconds >= 0


def test_ternary_flags_subset_of_cosensitization(fig3):
    """Per-witness ternary X-propagation cannot flag a pair whose every
    path family is already co-sensitization-clean."""
    from repro.core.hazard import check_hazards
    from repro.core.sensitization import SensitizationMode

    detection = detect_multi_cycle_pairs(fig3)
    ternary_reports, _ = ternary_check_hazards(fig3, detection)
    ternary_flagged = {
        (r.pair_result.pair.source, r.pair_result.pair.sink)
        for r in ternary_reports
        if r.has_potential_hazard
    }
    cosens = check_hazards(
        fig3, detection, SensitizationMode.STATIC_CO_SENSITIZATION
    )
    cosens_flagged = {
        (r.pair_result.pair.source, r.pair_result.pair.sink)
        for r in cosens.reports
        if r.has_potential_hazard
    }
    assert ternary_flagged <= cosens_flagged
