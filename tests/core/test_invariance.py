"""Metamorphic invariances of multi-cycle detection.

The MC condition is a property of the next-state *functions*, so the
detector's verdicts must be invariant under every function-preserving
transformation the library offers — and under changes to parts of the
circuit the condition does not read (primary outputs, disconnected
logic).  Each test perturbs a circuit and asserts identical pair names.
"""

from hypothesis import given

from repro.circuit.bench import dumps as bench_dumps, loads as bench_loads
from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit
from repro.circuit.techmap import techmap
from repro.circuit.verilog import dumps as verilog_dumps, loads as verilog_loads
from repro.core.detector import DetectorOptions, detect_multi_cycle_pairs

from tests.strategies import random_sequential_circuit, seeds

_OPTIONS = DetectorOptions(backtrack_limit=100_000)


def _verdicts(circuit):
    return detect_multi_cycle_pairs(circuit, _OPTIONS).multi_cycle_pair_names()


@given(seeds)
def test_invariant_under_techmap(seed):
    circuit = random_sequential_circuit(seed)
    assert _verdicts(circuit) == _verdicts(techmap(circuit))


@given(seeds)
def test_invariant_under_bench_round_trip(seed):
    circuit = random_sequential_circuit(seed)
    assert _verdicts(circuit) == _verdicts(bench_loads(bench_dumps(circuit)))


@given(seeds)
def test_invariant_under_verilog_round_trip(seed):
    circuit = random_sequential_circuit(seed)
    assert _verdicts(circuit) == _verdicts(verilog_loads(verilog_dumps(circuit)))


@given(seeds)
def test_invariant_under_po_removal(seed):
    """The MC condition never reads primary outputs."""
    circuit = random_sequential_circuit(seed)
    stripped = Circuit(f"{circuit.name}_nopo")
    keep = [n for n in range(circuit.num_nodes)
            if circuit.types[n] != GateType.OUTPUT]
    remap = {}
    for node in keep:
        remap[node] = stripped.add_node(circuit.types[node], (),
                                        circuit.names[node])
    for node in keep:
        stripped.set_fanins(
            remap[node], tuple(remap[f] for f in circuit.fanins[node])
        )
    assert _verdicts(circuit) == _verdicts(stripped)


@given(seeds)
def test_invariant_under_disconnected_addition(seed):
    """Appending an unrelated counter must not disturb existing pairs."""
    circuit = random_sequential_circuit(seed)
    extended = circuit.copy(f"{circuit.name}_plus")
    bit0 = extended.add_node(GateType.DFF, (0,), "__extra0")
    inverter = extended.add_node(GateType.NOT, (bit0,), "__extra_not")
    extended.set_fanins(bit0, (inverter,))
    original = set(_verdicts(circuit))
    augmented = set(_verdicts(extended))
    assert original <= augmented
    extra_only = augmented - original
    assert all("__extra" in source or "__extra" in sink
               for source, sink in extra_only)


def test_invariant_under_buffer_insertion(fig1):
    """Buffering every FF's D input is function-preserving."""
    buffered = fig1.copy("fig1_buf")
    for dff in list(buffered.dffs):
        driver = buffered.next_state_node(dff)
        buffer = buffered.add_node(
            GateType.BUF, (driver,), f"{buffered.names[dff]}__dbuf"
        )
        buffered.set_fanins(dff, (buffer,))
    assert _verdicts(fig1) == _verdicts(buffered)


def test_invariant_under_double_techmap(fig1):
    mapped = techmap(fig1)
    assert _verdicts(mapped) == _verdicts(techmap(mapped))
