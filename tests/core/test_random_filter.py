"""The random-simulation stage: sound drops, determinism, reporting."""

from hypothesis import given

from repro.circuit.library import fig1_circuit
from repro.circuit.topology import connected_ff_pairs
from repro.core.brute import brute_force_mc_pairs
from repro.core.random_filter import random_filter

from tests.strategies import random_sequential_circuit, seeds


@given(seeds)
def test_dropped_pairs_are_never_multi_cycle(seed):
    """Random simulation may only drop pairs with real counterexamples."""
    circuit = random_sequential_circuit(seed, max_inputs=2, max_dffs=3,
                                        max_gates=8)
    pairs = connected_ff_pairs(circuit)
    report = random_filter(circuit, pairs)
    surviving = {(p.source, p.sink) for p in report.survivors}
    mc_pairs = brute_force_mc_pairs(circuit)
    # Every true MC pair must survive (drops are sound).
    assert mc_pairs <= surviving


def test_fig1_drops_the_four_single_cycle_pairs(fig1):
    """Section 4.2: after Step 2 exactly these 5 pairs remain."""
    pairs = connected_ff_pairs(fig1)
    report = random_filter(fig1, pairs)
    names = sorted(
        (fig1.names[p.source], fig1.names[p.sink]) for p in report.survivors
    )
    assert names == [
        ("FF1", "FF1"), ("FF1", "FF2"), ("FF2", "FF2"),
        ("FF3", "FF2"), ("FF4", "FF1"),
    ]
    assert report.dropped == 4


def test_shift_register_fully_filtered(shift4):
    pairs = connected_ff_pairs(shift4)
    report = random_filter(shift4, pairs)
    assert not report.survivors
    assert report.dropped == len(pairs)


def test_deterministic_per_seed(fig1):
    pairs = connected_ff_pairs(fig1)
    first = random_filter(fig1, pairs, seed=5)
    second = random_filter(fig1, pairs, seed=5)
    assert [(p.source, p.sink) for p in first.survivors] == [
        (p.source, p.sink) for p in second.survivors
    ]
    assert first.rounds == second.rounds


def test_empty_pair_list():
    report = random_filter(fig1_circuit(), [])
    assert report.survivors == [] and report.rounds == 0


def test_patterns_accounting(fig1):
    pairs = connected_ff_pairs(fig1)
    report = random_filter(fig1, pairs, words=2)
    assert report.patterns == report.rounds * 128


def test_max_rounds_cap(fig1):
    pairs = connected_ff_pairs(fig1)
    report = random_filter(fig1, pairs, max_rounds=1)
    assert report.rounds == 1


def test_random_filter_k_sound(fig1):
    """k-frame drops may only remove pairs that truly violate k-cycle."""
    from repro.core.brute import brute_force_k_cycle_pairs
    from repro.core.random_filter import random_filter_k

    pairs = connected_ff_pairs(fig1)
    for k in (2, 3, 4):
        report = random_filter_k(fig1, pairs, k)
        surviving = {(p.source, p.sink) for p in report.survivors}
        assert brute_force_k_cycle_pairs(fig1, k) <= surviving


def test_random_filter_k_rejects_small_k(fig1):
    import pytest

    from repro.core.random_filter import random_filter_k

    with pytest.raises(ValueError):
        random_filter_k(fig1, connected_ff_pairs(fig1), 1)


def _report_key(report):
    return (
        [(p.source, p.sink) for p in report.dropped_pairs],
        report.rounds,
        report.patterns,
    )


@given(seeds)
def test_round_batching_never_changes_results(seed):
    """Super-round width is an execution detail: every ``round_batch``
    (and both evaluation plans) must produce the same report."""
    from repro.core.random_filter import random_filter_k

    circuit = random_sequential_circuit(seed, max_inputs=2, max_dffs=3,
                                        max_gates=8)
    pairs = connected_ff_pairs(circuit)
    baseline = random_filter(circuit, pairs, round_batch=1)
    for round_batch in (2, 3, 8):
        assert _report_key(
            random_filter(circuit, pairs, round_batch=round_batch)
        ) == _report_key(baseline)
    assert _report_key(
        random_filter(circuit, pairs, plan="python")
    ) == _report_key(baseline)
    baseline_k = random_filter_k(circuit, pairs, 3, round_batch=1)
    assert _report_key(
        random_filter_k(circuit, pairs, 3, round_batch=8)
    ) == _report_key(baseline_k)


def test_caller_held_simulator_is_reused(fig1):
    from repro.logic.bitsim import BitSimulator

    pairs = connected_ff_pairs(fig1)
    sim = BitSimulator(fig1, words=4)
    with_sim = random_filter(fig1, pairs, sim=sim)
    without = random_filter(fig1, pairs)
    assert _report_key(with_sim) == _report_key(without)


def test_mismatched_simulator_rejected(fig1):
    import pytest

    from repro.logic.bitsim import BitSimulator

    pairs = connected_ff_pairs(fig1)
    with pytest.raises(ValueError):
        random_filter(fig1, pairs, words=4, sim=BitSimulator(fig1, words=2))


def _packed_alive(circuit, include_self_loops=True):
    """The connected-pair matrix the streaming pipeline filters over."""
    import numpy as np

    from repro.circuit.topology import sink_reach

    reach = sink_reach(circuit)
    alive = np.array(reach.rows, dtype=np.uint64)
    n = len(reach.dffs)
    if n and not include_self_loops:
        diag = np.arange(n)
        alive[diag, diag // 64] &= ~(
            np.uint64(1) << (diag % 64).astype(np.uint64)
        )
    return reach, alive


def _packed_survivor_pairs(reach, report):
    import numpy as np

    pairs = set()
    for j in range(len(reach.dffs)):
        for k in np.nonzero(
            np.unpackbits(
                report.alive[j].view(np.uint8), bitorder="little"
            )[: len(reach.dffs)]
        )[0]:
            pairs.add((reach.dffs[int(k)], reach.dffs[j]))
    return pairs


@given(seeds)
def test_packed_filter_matches_pair_list(seed):
    """The packed filter replays the exact pair-list RNG/drop discipline."""
    from repro.core.random_filter import random_filter_packed

    circuit = random_sequential_circuit(seed, max_dffs=7, max_gates=24)
    for include_self_loops in (True, False):
        pairs = connected_ff_pairs(
            circuit, include_self_loops=include_self_loops
        )
        reference = random_filter(circuit, pairs)
        reach, alive = _packed_alive(circuit, include_self_loops)
        packed = random_filter_packed(circuit, alive)
        assert packed.rounds == reference.rounds
        assert packed.patterns == reference.patterns
        assert packed.initial == len(pairs)
        assert packed.dropped == len(reference.dropped_pairs)
        assert _packed_survivor_pairs(reach, packed) == {
            (p.source, p.sink) for p in reference.survivors
        }


def test_packed_filter_matches_k_frame_variant(fig1):
    from repro.core.random_filter import random_filter_k, random_filter_packed

    pairs = connected_ff_pairs(fig1)
    reference = random_filter_k(fig1, pairs, 3)
    reach, alive = _packed_alive(fig1)
    packed = random_filter_packed(fig1, alive, frames=3)
    assert packed.rounds == reference.rounds
    assert packed.dropped == len(reference.dropped_pairs)
    assert _packed_survivor_pairs(reach, packed) == {
        (p.source, p.sink) for p in reference.survivors
    }


def test_packed_filter_empty_matrix(fig1):
    import numpy as np

    from repro.core.random_filter import random_filter_packed

    words = max(1, -(-len(fig1.dffs) // 64))
    alive = np.zeros((len(fig1.dffs), words), dtype=np.uint64)
    report = random_filter_packed(fig1, alive)
    assert report.rounds == 0 and report.dropped == 0
    assert report.initial == 0 and report.survivors == 0


def test_packed_filter_rejects_bad_shape(fig1):
    import numpy as np
    import pytest

    from repro.core.random_filter import random_filter_packed

    with pytest.raises(ValueError):
        random_filter_packed(
            fig1, np.zeros((1, 1), dtype=np.uint64)
        )
