"""Sanity checks of the brute-force oracle itself."""

import pytest

from repro.circuit.library import shift_register
from repro.circuit.topology import FFPair
from repro.core.brute import (
    brute_force_is_multi_cycle,
    brute_force_k_cycle_pairs,
    brute_force_mc_pairs,
)


def test_fig1_oracle(fig1):
    pairs = brute_force_mc_pairs(fig1)
    names = sorted((fig1.names[i], fig1.names[j]) for i, j in pairs)
    assert names == [
        ("FF1", "FF1"), ("FF1", "FF2"), ("FF2", "FF2"),
        ("FF3", "FF2"), ("FF4", "FF1"),
    ]


def test_shift_register_oracle(shift4):
    assert brute_force_mc_pairs(shift4) == set()


def test_single_pair_query(fig1):
    assert brute_force_is_multi_cycle(
        fig1, FFPair(fig1.id_of("FF1"), fig1.id_of("FF2"))
    )
    assert not brute_force_is_multi_cycle(
        fig1, FFPair(fig1.id_of("FF3"), fig1.id_of("FF4"))
    )


def test_k2_equals_mc(fig1):
    assert brute_force_k_cycle_pairs(fig1, 2) == brute_force_mc_pairs(fig1)


def test_k_cycle_sets_shrink_with_k(fig1):
    k2 = brute_force_k_cycle_pairs(fig1, 2)
    k3 = brute_force_k_cycle_pairs(fig1, 3)
    k4 = brute_force_k_cycle_pairs(fig1, 4)
    assert k4 <= k3 <= k2
    assert (fig1.id_of("FF1"), fig1.id_of("FF2")) in k3
    assert (fig1.id_of("FF1"), fig1.id_of("FF2")) not in k4


def test_size_limit_enforced():
    big = shift_register(30)
    with pytest.raises(ValueError, match="brute-force limit"):
        brute_force_mc_pairs(big)
    with pytest.raises(ValueError):
        brute_force_k_cycle_pairs(big, 3)


def test_k_must_be_at_least_two(fig1):
    with pytest.raises(ValueError):
        brute_force_k_cycle_pairs(fig1, 1)


def test_self_loop_exclusion(fig1):
    with_loops = brute_force_mc_pairs(fig1, include_self_loops=True)
    without = brute_force_mc_pairs(fig1, include_self_loops=False)
    assert without == {(i, j) for i, j in with_loops if i != j}
