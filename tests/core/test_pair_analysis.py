"""Case-level behaviour of the implication+ATPG pair analyser."""

import pytest

from repro.circuit.timeframe import expand
from repro.circuit.topology import FFPair
from repro.core.pair_analysis import PairAnalyzer
from repro.core.result import CaseOutcome, Classification, Stage


def test_fig1_ff1_ff2_settled_by_implication(fig1):
    """The paper's Fig. 2 pair: every case closes without search."""
    analyzer = PairAnalyzer(expand(fig1, 2))
    pair = FFPair(fig1.id_of("FF1"), fig1.id_of("FF2"))
    result = analyzer.analyze(pair)
    assert result.classification is Classification.MULTI_CYCLE
    assert result.stage is Stage.IMPLICATION
    assert len(result.cases) == 4
    for case in result.cases:
        assert case.outcome in (
            CaseOutcome.IMPLIED_STABLE, CaseOutcome.CONTRADICTION
        )


def test_fig1_case_00_is_implied_stable(fig1):
    """(FF1(t), FF2(t+1)) = (0, 0) is the exact Fig. 2 scenario."""
    analyzer = PairAnalyzer(expand(fig1, 2))
    pair = FFPair(fig1.id_of("FF1"), fig1.id_of("FF2"))
    result = analyzer.analyze(pair)
    case = next(c for c in result.cases if (c.a, c.b) == (0, 0))
    assert case.outcome is CaseOutcome.IMPLIED_STABLE


def test_shift_register_pair_violates(shift4):
    analyzer = PairAnalyzer(expand(shift4, 2))
    pair = FFPair(shift4.id_of("s0"), shift4.id_of("s1"))
    result = analyzer.analyze(pair)
    assert result.classification is Classification.SINGLE_CYCLE
    violated = [c for c in result.cases if c.outcome is CaseOutcome.VIOLATED]
    assert violated and violated[-1].witness is not None


def test_self_loop_hold_register_is_multi_cycle():
    """A never-toggling FF (D = Q) is vacuously multi-cycle: the premise
    FF(t) != FF(t+1) contradicts immediately in all four cases."""
    from repro.circuit.builder import CircuitBuilder

    builder = CircuitBuilder("hold")
    ff = builder.dff("ff")
    builder.drive(ff, ff)
    builder.output("o", ff)
    circuit = builder.build()
    analyzer = PairAnalyzer(expand(circuit, 2))
    result = analyzer.analyze(FFPair(ff, ff))
    assert result.classification is Classification.MULTI_CYCLE
    assert all(c.outcome is CaseOutcome.CONTRADICTION for c in result.cases)


def test_toggle_self_loop_is_single_cycle():
    """D = NOT(Q): the FF toggles every cycle; the pair (ff, ff) violates
    the MC condition on every transition."""
    from repro.circuit.builder import CircuitBuilder

    builder = CircuitBuilder("tgl")
    ff = builder.dff("ff")
    builder.drive(ff, builder.not_(ff, name="n"))
    builder.output("o", ff)
    circuit = builder.build()
    analyzer = PairAnalyzer(expand(circuit, 2))
    result = analyzer.analyze(FFPair(ff, ff))
    assert result.classification is Classification.SINGLE_CYCLE


def test_engine_state_clean_between_pairs(fig1):
    """Analysing many pairs on the shared engine must not leak state."""
    analyzer = PairAnalyzer(expand(fig1, 2))
    pair = FFPair(fig1.id_of("FF1"), fig1.id_of("FF2"))
    first = analyzer.analyze(pair)
    for _ in range(3):
        analyzer.analyze(FFPair(fig1.id_of("FF3"), fig1.id_of("FF2")))
    again = analyzer.analyze(pair)
    assert first.classification == again.classification
    assert [c.outcome for c in first.cases] == [c.outcome for c in again.cases]


def test_requires_two_frames(fig1):
    with pytest.raises(ValueError):
        PairAnalyzer(expand(fig1, 1))


def test_undecided_with_zero_backtracks():
    """A pair needing search aborts cleanly at backtrack limit 0."""
    from repro.circuit.builder import CircuitBuilder

    # Build a circuit where the violation search needs a real decision:
    # reconvergent XOR structure in the next-state logic.
    builder = CircuitBuilder("hard")
    a = builder.input("a")
    b = builder.input("b")
    ff1 = builder.dff("ff1")
    ff2 = builder.dff("ff2")
    x1 = builder.xor(a, b, name="x1")
    x2 = builder.xor(x1, ff1, name="x2")
    builder.drive(ff1, x2)
    builder.drive(ff2, builder.xor(x2, a, name="x3"))
    builder.output("o", ff2)
    circuit = builder.build()
    analyzer = PairAnalyzer(expand(circuit, 2), backtrack_limit=0)
    result = analyzer.analyze(FFPair(ff1, ff2))
    # With no backtracks allowed the verdict may be UNDECIDED or (if the
    # first descent already finds a pattern) SINGLE_CYCLE; never MULTI.
    assert result.classification in (
        Classification.UNDECIDED, Classification.SINGLE_CYCLE
    )
