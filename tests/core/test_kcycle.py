"""k-cycle detection: the Fig. 1 story plus differential validation."""

import pytest
from hypothesis import given

from repro.circuit.library import enabled_pipeline
from repro.circuit.topology import FFPair, connected_ff_pairs
from repro.core.brute import brute_force_k_cycle_pairs
from repro.core.kcycle import KCycleAnalyzer, is_k_cycle_pair, max_cycles
from repro.core.result import Classification

from tests.strategies import random_sequential_circuit, seeds


def test_fig1_ff1_ff2_is_exactly_three_cycle(fig1):
    """The paper: 'the paths from FF1 to FF2 are 3-cycle paths'."""
    pair = FFPair(fig1.id_of("FF1"), fig1.id_of("FF2"))
    assert is_k_cycle_pair(fig1, pair, 2)
    assert is_k_cycle_pair(fig1, pair, 3)
    assert not is_k_cycle_pair(fig1, pair, 4)
    assert max_cycles(fig1, pair) == 3


def test_k2_matches_mc_condition(fig1):
    from repro.core.detector import detect_multi_cycle_pairs

    mc = set(detect_multi_cycle_pairs(fig1).multi_cycle_pair_names())
    k2 = {
        (fig1.names[p.source], fig1.names[p.sink])
        for p in connected_ff_pairs(fig1)
        if is_k_cycle_pair(fig1, p, 2)
    }
    assert k2 == mc


@given(seeds)
def test_k3_agrees_with_brute_force(seed):
    circuit = random_sequential_circuit(seed, max_inputs=2, max_dffs=3,
                                        max_gates=7)
    if len(circuit.dffs) + 3 * len(circuit.inputs) > 12:
        return  # keep enumeration cheap
    expected = brute_force_k_cycle_pairs(circuit, 3)
    got = {
        (p.source, p.sink)
        for p in connected_ff_pairs(circuit)
        if is_k_cycle_pair(circuit, p, 3, backtrack_limit=100_000)
    }
    assert got == expected


@given(seeds)
def test_k_cycle_is_monotone(seed):
    """A k-cycle pair is also a (k-1)-cycle pair."""
    circuit = random_sequential_circuit(seed, max_inputs=2, max_dffs=3,
                                        max_gates=7)
    for pair in connected_ff_pairs(circuit)[:3]:
        if is_k_cycle_pair(circuit, pair, 4, backtrack_limit=100_000):
            assert is_k_cycle_pair(circuit, pair, 3, backtrack_limit=100_000)
            assert is_k_cycle_pair(circuit, pair, 2, backtrack_limit=100_000)


def test_pipeline_spacing_matches_budget():
    """Stage spacing s on the counter means consecutive banks are s-cycle."""
    circuit = enabled_pipeline(2, counter_width=2, spacing=3)
    pair = FFPair(circuit.id_of("r0"), circuit.id_of("r1"))
    assert max_cycles(circuit, pair, k_max=6) == 3


def test_max_cycles_on_single_cycle_pair():
    from repro.circuit.library import shift_register

    circuit = shift_register(2)
    pair = FFPair(circuit.id_of("s0"), circuit.id_of("s1"))
    assert max_cycles(circuit, pair) == 1


def test_rejects_k_below_two(fig1):
    with pytest.raises(ValueError):
        KCycleAnalyzer(fig1, 1)


def test_analyzer_returns_classification(fig1):
    analyzer = KCycleAnalyzer(fig1, 3)
    pair = FFPair(fig1.id_of("FF1"), fig1.id_of("FF2"))
    result = analyzer.analyze(pair)
    assert result.classification is Classification.MULTI_CYCLE
    assert result.k == 3


def test_kcycle_detector_pipeline(fig1):
    """The full k-cycle pipeline matches per-pair analysis and shrinks
    monotonically with k."""
    from repro.core.kcycle import KCycleDetector

    previous = None
    for k in (2, 3, 4):
        result = KCycleDetector(fig1, k).run()
        names = set(result.k_cycle_pair_names())
        if k == 2:
            from repro.core.detector import detect_multi_cycle_pairs

            assert names == set(
                detect_multi_cycle_pairs(fig1).multi_cycle_pair_names()
            )
        if previous is not None:
            assert names <= previous
        previous = names


def test_kcycle_detector_counts_sim_drops(fig1):
    from repro.core.kcycle import KCycleDetector

    result = KCycleDetector(fig1, 3).run()
    assert result.sim_dropped >= 4  # at least the four 1-cycle pairs
    assert result.connected_pairs == 9


def test_kcycle_detector_rejects_small_k(fig1):
    import pytest

    from repro.core.kcycle import KCycleDetector

    with pytest.raises(ValueError):
        KCycleDetector(fig1, 1)
