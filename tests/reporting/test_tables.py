"""Table regeneration: shapes, invariants, formatting."""

from repro.circuit.library import fig1_circuit, s27
from repro.reporting.tables import (
    Table,
    format_table,
    run_table1,
    run_table2,
    run_table3,
)


def _circuits():
    return [s27(), fig1_circuit()]


def test_table1_rows_and_agreement():
    table, detections = run_table1(_circuits(), sat_mode="incremental")
    assert table.headers[0] == "circuit"
    assert len(table.rows) == 3  # two circuits + Total
    s27_row = table.rows[0]
    assert s27_row[0] == "s27" and s27_row[4] == 0 and s27_row[6] == 0
    fig1_row = table.rows[1]
    assert fig1_row[4] == fig1_row[6] == 5  # ours == SAT baseline
    assert len(detections) == 2


def test_table1_without_sat():
    table, _ = run_table1(_circuits(), run_sat=False)
    assert table.rows[0][6] == "-"


def test_table2_percentages_sum():
    table = run_table2(_circuits())
    assert table.rows[0][0] == "single cycle"
    assert table.rows[1][0] == "multi cycle"
    # fig1: all 5 MC pairs settle by implication, none by ATPG.
    assert table.rows[1][2].startswith("5")
    assert table.rows[1][3].startswith("0")


def test_table2_reuses_detections():
    _, detections = run_table1(_circuits(), run_sat=False)
    table = run_table2(_circuits(), detections=detections)
    assert table.rows[0][1].startswith("11")  # 7 (s27) + 4 (fig1) sim drops


def test_table3_ordering():
    table = run_table3(_circuits())
    before = table.rows[0][1]
    sensitize = table.rows[1][1]
    cosensitize = table.rows[2][1]
    assert before >= sensitize >= cosensitize


def test_format_table_alignment():
    text = format_table("T", ["a", "bb"], [[1, 2.5], [30, 4.0]], ["note"])
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bb" in lines[1]
    assert "2.50" in text and "note" in text


def test_table_format_method():
    table = Table("Title", ["x"], [[1]])
    assert table.format().startswith("Title")
