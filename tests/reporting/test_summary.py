"""The one-shot markdown report generator."""

from repro.circuit.library import fig1_circuit, s27
from repro.reporting.summary import _markdown_table, generate_report
from repro.reporting.tables import Table


def test_markdown_table_rendering():
    table = Table("T", ["a", "b"], [[1, 2.5]], ["note"])
    text = _markdown_table(table)
    assert "| a | b |" in text
    assert "| 1 | 2.50 |" in text
    assert "*note*" in text


def test_generate_report_sections():
    report = generate_report([s27(), fig1_circuit()], kcycle_circuits=2,
                             k_max=3)
    assert "# Reproduction report" in report
    assert "Table 1" in report and "Table 2" in report and "Table 3" in report
    assert "k-cycle budget histogram" in report
    assert "Clock-period relaxation" in report
    assert "Condition-2 extension" in report
    # fig1's five multi-cycle pairs appear in the Table 1 row.
    assert "| fig1 | 1 | 4 | 9 | 5 |" in report


def test_generate_report_without_sat():
    report = generate_report([fig1_circuit()], run_sat=False,
                             kcycle_circuits=1, k_max=2)
    assert "| - | - |" in report


def test_report_cli(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "r.md"
    assert main(["report", str(out), "--profile", "tiny", "--no-sat"]) == 0
    assert out.read_text().startswith("# Reproduction report")
