"""Differential tests of the ROBDD package against truth tables."""

import itertools
import random

from hypothesis import given
from hypothesis import strategies as st

from repro.bdd.bdd import FALSE, TRUE, BddManager


def _random_expr(rng, depth, num_vars):
    if depth == 0 or rng.random() < 0.3:
        return ("var", rng.randrange(num_vars))
    op = rng.choice(["and", "or", "xor", "not", "ite"])
    if op == "not":
        return ("not", _random_expr(rng, depth - 1, num_vars))
    if op == "ite":
        return ("ite",
                _random_expr(rng, depth - 1, num_vars),
                _random_expr(rng, depth - 1, num_vars),
                _random_expr(rng, depth - 1, num_vars))
    return (op,
            _random_expr(rng, depth - 1, num_vars),
            _random_expr(rng, depth - 1, num_vars))


def _to_bdd(manager, expr):
    kind = expr[0]
    if kind == "var":
        return manager.var(expr[1])
    if kind == "not":
        return manager.apply_not(_to_bdd(manager, expr[1]))
    if kind == "and":
        return manager.apply_and(_to_bdd(manager, expr[1]), _to_bdd(manager, expr[2]))
    if kind == "or":
        return manager.apply_or(_to_bdd(manager, expr[1]), _to_bdd(manager, expr[2]))
    if kind == "xor":
        return manager.apply_xor(_to_bdd(manager, expr[1]), _to_bdd(manager, expr[2]))
    return manager.ite(_to_bdd(manager, expr[1]), _to_bdd(manager, expr[2]),
                       _to_bdd(manager, expr[3]))


def _eval(expr, assignment):
    kind = expr[0]
    if kind == "var":
        return assignment[expr[1]]
    if kind == "not":
        return 1 - _eval(expr[1], assignment)
    if kind == "and":
        return _eval(expr[1], assignment) & _eval(expr[2], assignment)
    if kind == "or":
        return _eval(expr[1], assignment) | _eval(expr[2], assignment)
    if kind == "xor":
        return _eval(expr[1], assignment) ^ _eval(expr[2], assignment)
    return (_eval(expr[2], assignment) if _eval(expr[1], assignment)
            else _eval(expr[3], assignment))


@given(st.integers(min_value=0, max_value=10_000_000))
def test_operations_match_truth_table(seed):
    rng = random.Random(seed)
    num_vars = rng.randint(1, 5)
    expr = _random_expr(rng, 4, num_vars)
    manager = BddManager()
    f = _to_bdd(manager, expr)
    count = 0
    for bits in itertools.product((0, 1), repeat=num_vars):
        assignment = dict(enumerate(bits))
        expected = _eval(expr, assignment)
        assert manager.evaluate(f, assignment) == expected
        count += expected
    assert manager.count_solutions(f, num_vars) == count
    # Canonicity: constant functions collapse to the terminals.
    if count == 0:
        assert f == FALSE
    if count == 2 ** num_vars:
        assert f == TRUE


@given(st.integers(min_value=0, max_value=10_000_000))
def test_quantification(seed):
    rng = random.Random(seed)
    num_vars = rng.randint(2, 5)
    expr = _random_expr(rng, 3, num_vars)
    manager = BddManager()
    f = _to_bdd(manager, expr)
    target = rng.randrange(num_vars)
    exists = manager.exists(f, [target])
    forall = manager.forall(f, [target])
    for bits in itertools.product((0, 1), repeat=num_vars):
        assignment = dict(enumerate(bits))
        low = _eval(expr, {**assignment, target: 0})
        high = _eval(expr, {**assignment, target: 1})
        assert manager.evaluate(exists, assignment) == (low | high)
        assert manager.evaluate(forall, assignment) == (low & high)


@given(st.integers(min_value=0, max_value=10_000_000))
def test_restrict_is_cofactor(seed):
    rng = random.Random(seed)
    num_vars = rng.randint(1, 5)
    expr = _random_expr(rng, 3, num_vars)
    manager = BddManager()
    f = _to_bdd(manager, expr)
    target = rng.randrange(num_vars)
    for value in (0, 1):
        g = manager.restrict(f, target, value)
        for bits in itertools.product((0, 1), repeat=num_vars):
            assignment = dict(enumerate(bits))
            assert manager.evaluate(g, assignment) == _eval(
                expr, {**assignment, target: value}
            )


def test_compose_substitutes_functions():
    manager = BddManager()
    x0, x1, x2 = manager.var(0), manager.var(1), manager.var(2)
    f = manager.apply_and(x0, x1)                 # x0 & x1
    g = manager.apply_or(x1, x2)                  # x1 | x2
    composed = manager.compose(f, {0: g})         # (x1|x2) & x1 == x1
    assert composed == x1


def test_rename_shifts_variables():
    manager = BddManager()
    f = manager.apply_xor(manager.var(3), manager.var(4))
    renamed = manager.rename(f, {3: 0, 4: 1})
    assert renamed == manager.apply_xor(manager.var(0), manager.var(1))


def test_satisfy_one():
    manager = BddManager()
    f = manager.apply_and(manager.var(0), manager.apply_not(manager.var(2)))
    model = manager.satisfy_one(f)
    assert model[0] == 1 and model[2] == 0
    assert manager.satisfy_one(FALSE) is None


def test_sharing_keeps_manager_small():
    manager = BddManager()
    f = TRUE
    for i in range(10):
        f = manager.apply_and(f, manager.var(i))
    # A 10-variable conjunction is a 10-node chain; sharing keeps it linear.
    assert manager.size(f) == 10


def test_terminals():
    manager = BddManager()
    assert manager.is_true(TRUE) and manager.is_false(FALSE)
    assert manager.apply_not(TRUE) == FALSE
    assert manager.apply_and(TRUE, FALSE) == FALSE
    assert manager.count_solutions(TRUE, 3) == 8
