"""The symbolic baseline: agreement with brute force, reachability."""

import pytest
from hypothesis import given

from repro.bdd.bdd import BddManager
from repro.bdd.traversal import (
    BddMcDetector,
    bdd_detect_multi_cycle_pairs,
    build_node_bdds,
)
from repro.circuit.library import binary_counter, gray_counter
from repro.core.brute import brute_force_mc_pairs

from tests.strategies import random_sequential_circuit, seeds


def test_fig1_matches_paper(fig1):
    result = bdd_detect_multi_cycle_pairs(fig1)
    assert result.multi_cycle_pair_names() == [
        ("FF1", "FF1"), ("FF1", "FF2"), ("FF2", "FF2"),
        ("FF3", "FF2"), ("FF4", "FF1"),
    ]


@given(seeds)
def test_agrees_with_brute_force(seed):
    circuit = random_sequential_circuit(seed, max_inputs=2, max_dffs=3,
                                        max_gates=8)
    expected = brute_force_mc_pairs(circuit)
    result = bdd_detect_multi_cycle_pairs(circuit)
    got = {(p.pair.source, p.pair.sink) for p in result.multi_cycle_pairs}
    assert got == expected


def test_reachability_counts_counter_states():
    """A free-running binary counter reaches all 2^n states from reset."""
    result = BddMcDetector(binary_counter(3), use_reachability=True).run()
    assert result.reachable_states == 8


def test_reachability_fig1(fig1):
    result = BddMcDetector(fig1, use_reachability=True).run()
    # The Gray counter confines FF3/FF4 to their 4-state cycle; FF1/FF2
    # are free once written: 14 reachable states from the all-zero reset.
    assert result.reachable_states == 14


def test_reachability_only_adds_mc_pairs(fig1, s27_circuit):
    """Restricting to reachable states can only find MORE multi-cycle
    pairs (the paper's remark about [8] vs [9])."""
    for circuit in (fig1, s27_circuit, gray_counter(2)):
        assumed_all = {
            (p.pair.source, p.pair.sink)
            for p in bdd_detect_multi_cycle_pairs(circuit).multi_cycle_pairs
        }
        reachable = {
            (p.pair.source, p.pair.sink)
            for p in BddMcDetector(circuit, use_reachability=True)
            .run().multi_cycle_pairs
        }
        assert assumed_all <= reachable


def test_node_limit_enforced(fig1):
    from repro.bdd.traversal import BddLimitExceeded

    with pytest.raises(BddLimitExceeded):
        BddMcDetector(fig1, node_limit=3).run()


def test_build_node_bdds_rejects_sequential(fig1):
    with pytest.raises(ValueError):
        build_node_bdds(fig1, BddManager(), {})
