"""Variable-order heuristics: validity and cost behaviour."""

from repro.bdd.bdd import BddManager
from repro.bdd.reorder import (
    choose_order,
    estimate_bdd_cost,
    fanin_order,
    interleave_order,
)
from repro.bdd.traversal import build_node_bdds
from repro.bench_gen.suite import suite
from repro.circuit.builder import CircuitBuilder
from repro.circuit.timeframe import expand


def _orders_are_permutations(expansion, order):
    values = sorted(order.values())
    assert values == list(range(len(expansion.comb.inputs)))
    assert set(order) == set(expansion.comb.inputs)


def test_orders_are_valid_permutations(fig1):
    expansion = expand(fig1, 2)
    _orders_are_permutations(expansion, interleave_order(expansion))
    _orders_are_permutations(expansion, fanin_order(expansion))


def test_same_function_any_order(fig1):
    """Different orders must yield the same functions (canonicity check
    via solution counting)."""
    expansion = expand(fig1, 2)
    counts = []
    for order in (interleave_order(expansion), fanin_order(expansion)):
        manager = BddManager()
        bdds = build_node_bdds(expansion.comb, manager, order)
        num_vars = len(expansion.comb.inputs)
        counts.append(
            [manager.count_solutions(bdds[n], num_vars)
             for n in expansion.ff_at[2]]
        )
    assert counts[0] == counts[1]


def test_fanin_order_helps_on_adder_like_chain():
    """A ripple chain built with interleaved-bad order: x0..xn, y0..yn
    ordered apart is exponential; the fanin order groups (xi, yi) pairs."""
    builder = CircuitBuilder("ripple")
    n = 7
    xs = [builder.input(f"x{i}") for i in range(n)]
    ys = [builder.input(f"y{i}") for i in range(n)]
    acc = builder.xor(xs[0], ys[0], name="s0")
    for i in range(1, n):
        acc = builder.xor(builder.and_(xs[i], ys[i], name=f"a{i}"), acc,
                          name=f"s{i}")
    builder.dff("ff", d=acc)
    builder.output("o", acc)
    circuit = builder.build()
    expansion = expand(circuit, 1)

    cost_fanin = estimate_bdd_cost(expansion, fanin_order(expansion))
    # A pessimal order: all x variables, then all y variables.
    pessimal = {}
    for i, node in enumerate(expansion.pi_at[0]):
        pessimal[node] = i
    for node in expansion.ff_at[0]:
        pessimal[node] = len(pessimal)
    cost_split = estimate_bdd_cost(expansion, pessimal)
    assert cost_fanin <= cost_split


def test_choose_order_runs_on_suite():
    for circuit in suite("tiny")[:3]:
        expansion = expand(circuit, 2)
        order = choose_order(expansion)
        _orders_are_permutations(expansion, order)
