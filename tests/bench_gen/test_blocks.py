"""The generator's building blocks in isolation."""

import random

import pytest

from repro.bench_gen.blocks import (
    add_counter,
    add_decoder,
    add_enabled_bank,
    add_plain_bank,
    add_random_logic,
)
from repro.circuit.builder import CircuitBuilder
from repro.logic.simulator import Simulator


def test_counter_counts():
    builder = CircuitBuilder("c")
    bits = add_counter(builder, 3, "cnt")
    builder.output("o", bits[0])
    circuit = builder.build()
    sim = Simulator(circuit)
    sim.set_all_state([0, 0, 0])
    values = []
    for _ in range(9):
        state = sim.state()
        values.append(sum(state[f"cnt_q{i}"] << i for i in range(3)))
        sim.clock()
    assert values == [0, 1, 2, 3, 4, 5, 6, 7, 0]


@pytest.mark.parametrize("value", range(4))
def test_decoder_matches_value(value):
    builder = CircuitBuilder("d")
    bits = add_counter(builder, 2, "cnt")
    enable = add_decoder(builder, bits, value, "en")
    builder.output("o", enable)
    circuit = builder.build()
    sim = Simulator(circuit)
    for state in range(4):
        sim.set_all_state([(state >> i) & 1 for i in range(2)])
        assert sim.value("en") == (1 if state == value else 0)


def test_decoder_single_bit():
    builder = CircuitBuilder("d1")
    bits = add_counter(builder, 1, "cnt")
    enable = add_decoder(builder, bits, 1, "en")
    builder.output("o", enable)
    sim = Simulator(builder.build())
    sim.set_all_state([1])
    assert sim.value("en") == 1


def test_random_logic_deterministic():
    def build(seed):
        builder = CircuitBuilder("r")
        ins = [builder.input(f"a{i}") for i in range(3)]
        outs = add_random_logic(builder, ins, 10, random.Random(seed), "rl",
                                num_outputs=2)
        for k, out in enumerate(outs):
            builder.output(f"o{k}", out)
        return builder.build()

    from repro.circuit.bench import dumps

    assert dumps(build(3)) == dumps(build(3))
    assert dumps(build(3)) != dumps(build(4))


def test_random_logic_requires_inputs():
    builder = CircuitBuilder("r")
    with pytest.raises(ValueError):
        add_random_logic(builder, [], 5, random.Random(0), "rl")


def test_enabled_bank_holds_without_enable():
    builder = CircuitBuilder("b")
    enable = builder.input("en")
    data = [builder.input("d0"), builder.input("d1")]
    bank = add_enabled_bank(builder, enable, data, "bank")
    builder.output("o", bank[0])
    circuit = builder.build()
    sim = Simulator(circuit)
    sim.set_state({"bank_r0": 0, "bank_r1": 1})
    sim.set_inputs({"en": 0, "d0": 1, "d1": 0})
    sim.clock()
    assert sim.value("bank_r0") == 0 and sim.value("bank_r1") == 1


def test_plain_bank_always_loads():
    builder = CircuitBuilder("p")
    data = [builder.input("d0")]
    bank = add_plain_bank(builder, data, "p")
    builder.output("o", bank[0])
    circuit = builder.build()
    sim = Simulator(circuit)
    sim.set_state({"p_r0": 0})
    sim.set_inputs({"d0": 1})
    sim.clock()
    assert sim.value("p_r0") == 1
