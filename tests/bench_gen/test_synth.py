"""The synthetic circuit generator: validity, determinism, MC content."""

import pytest

from repro.bench_gen.synth import CircuitSpec, generate
from repro.circuit.bench import dumps, loads
from repro.circuit.netlist import validate
from repro.core.detector import detect_multi_cycle_pairs


def _spec(**overrides):
    base = dict(name="t", num_inputs=3, counter_width=3, num_banks=3,
                bank_width=3, logic_per_bank=10, spacing=2,
                plain_registers=2, shift_tail=2, seed=5)
    base.update(overrides)
    return CircuitSpec(**base)


def test_generated_circuit_is_valid():
    circuit = generate(_spec())
    validate(circuit)
    assert circuit.inputs and circuit.outputs and circuit.dffs


def test_deterministic_per_seed():
    first = generate(_spec())
    second = generate(_spec())
    assert dumps(first) == dumps(second)


def test_different_seeds_differ():
    first = generate(_spec(seed=1))
    second = generate(_spec(seed=2))
    assert dumps(first) != dumps(second)


def test_ff_count_accounting():
    spec = _spec()
    circuit = generate(spec)
    expected = (spec.counter_width + spec.num_banks * spec.bank_width
                + spec.plain_registers + spec.shift_tail)
    assert len(circuit.dffs) == expected


def test_spacing_two_produces_multi_cycle_pairs():
    circuit = generate(_spec())
    result = detect_multi_cycle_pairs(circuit)
    assert result.multi_cycle_pairs
    # Adjacent banks with spacing 2 must be multi-cycle.
    names = dict.fromkeys(result.multi_cycle_pair_names())
    assert ("b0_r0", "b1_r0") in names


def test_spacing_one_banks_are_single_cycle():
    circuit = generate(_spec(spacing=1, counter_width=2))
    result = detect_multi_cycle_pairs(circuit)
    names = result.multi_cycle_pair_names()
    assert ("b0_r0", "b1_r0") not in names


def test_shift_tail_pairs_single_cycle():
    circuit = generate(_spec())
    result = detect_multi_cycle_pairs(circuit)
    names = result.multi_cycle_pair_names()
    assert ("sh0", "sh1") not in names


def test_round_trips_through_bench():
    circuit = generate(_spec())
    restored = loads(dumps(circuit))
    assert restored.stats() == circuit.stats()


@pytest.mark.parametrize(
    "kwargs",
    [dict(num_banks=0), dict(bank_width=0), dict(counter_width=0),
     dict(num_inputs=0)],
)
def test_bad_specs_rejected(kwargs):
    with pytest.raises(ValueError):
        _spec(**kwargs)


def test_single_bank_circuit():
    circuit = generate(_spec(num_banks=1, plain_registers=0, shift_tail=0))
    validate(circuit)
    assert detect_multi_cycle_pairs(circuit).connected_pairs > 0


def test_hard_enables_exercises_atpg():
    """Partial-decode banks force the ATPG stage to prove some MC pairs."""
    from repro.core.result import Stage

    spec = CircuitSpec("hard", num_inputs=4, counter_width=4, num_banks=5,
                       bank_width=4, logic_per_bank=12, spacing=2,
                       plain_registers=3, shift_tail=3, hard_enables=True,
                       seed=9)
    result = detect_multi_cycle_pairs(generate(spec))
    assert result.stats[Stage.ATPG].multi_cycle > 0
    assert not result.undecided_pairs


def test_hard_enables_agrees_with_sat_baseline():
    from repro.sat.mc_sat import sat_detect_multi_cycle_pairs

    spec = _spec(counter_width=4, num_banks=4, hard_enables=True, seed=9)
    circuit = generate(spec)
    ours = detect_multi_cycle_pairs(circuit)
    sat = sat_detect_multi_cycle_pairs(circuit)
    assert ours.multi_cycle_pair_names() == sat.multi_cycle_pair_names()
