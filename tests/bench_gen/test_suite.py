"""Suite composition and profile semantics."""

import pytest

from repro.bench_gen.suite import PROFILES, all_specs, spec_by_name, suite


def test_profiles_exist():
    for profile in PROFILES:
        circuits = suite(profile)
        assert circuits, profile


def test_every_profile_leads_with_real_circuits():
    for profile in ("tiny", "small", "full"):
        names = [c.name for c in suite(profile)]
        assert names[:2] == ["s27", "fig1"]


def test_full_contains_everything():
    full_names = {c.name for c in suite("full")}
    for spec in all_specs():
        assert spec.name in full_names


def test_sizes_increase_along_ladder():
    specs = all_specs()
    gate_heavy = [s.num_banks * s.bank_width + s.logic_per_bank * s.num_banks
                  for s in specs]
    assert gate_heavy == sorted(gate_heavy)


def test_unknown_profile_rejected():
    with pytest.raises(ValueError):
        suite("galactic")


def test_spec_lookup():
    spec = spec_by_name("syn090")
    assert spec.name == "syn090"
    with pytest.raises(KeyError):
        spec_by_name("nope")


def test_suite_is_deterministic():
    from repro.circuit.bench import dumps

    first = suite("tiny")
    second = suite("tiny")
    assert [dumps(c) for c in first] == [dumps(c) for c in second]
