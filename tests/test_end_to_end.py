"""End-to-end integration: the full tool flow on one generated circuit.

Chains every major stage the way a user would — generate, serialise,
reload, detect, validate hazards, budget cycles, relax timing, extend,
report — asserting cross-stage consistency at each step.
"""

from repro.bench_gen.synth import CircuitSpec, generate
from repro.circuit.bench import dumps, loads
from repro.circuit.techmap import techmap
from repro.circuit.topology import connected_ff_pairs
from repro.core.detector import detect_multi_cycle_pairs
from repro.core.extended import condition2_extension
from repro.core.hazard import HazardClass, classify_hazards
from repro.core.kcycle import KCycleDetector
from repro.core.result import Classification
from repro.sat.equivalence import check_sequential_equivalence_1step
from repro.sat.mc_sat import sat_detect_multi_cycle_pairs
from repro.sta.constraints import relaxation_report
from repro.reporting.summary import generate_report


def test_full_flow():
    spec = CircuitSpec("flow", num_inputs=3, counter_width=3, num_banks=3,
                       bank_width=3, logic_per_bank=10, spacing=2,
                       plain_registers=2, shift_tail=2, seed=77)
    circuit = generate(spec)

    # Serialise, reload, and prove the round-trip equivalent.
    reloaded = loads(dumps(circuit), name="flow")
    assert check_sequential_equivalence_1step(circuit, reloaded).equivalent

    # Detect; the SAT baseline must agree pair-for-pair.
    detection = detect_multi_cycle_pairs(reloaded)
    sat = sat_detect_multi_cycle_pairs(reloaded)
    assert detection.multi_cycle_pair_names() == sat.multi_cycle_pair_names()
    assert detection.multi_cycle_pairs, "the generated circuit has MC pairs"

    # k = 2 pipeline equals the MC verdicts; k = 3 is a subset.
    k2 = set(KCycleDetector(reloaded, 2).run().k_cycle_pair_names())
    assert k2 == set(detection.multi_cycle_pair_names())
    k3 = set(KCycleDetector(reloaded, 3).run().k_cycle_pair_names())
    assert k3 <= k2

    # Hazard classification on the mapped circuit partitions the MC set.
    mapped = techmap(reloaded)
    mapped_detection = detect_multi_cycle_pairs(mapped)
    classes = classify_hazards(mapped, mapped_detection)
    assert (len(classes[HazardClass.SAFE])
            + len(classes[HazardClass.DEPENDENT])
            + len(classes[HazardClass.HAZARDOUS])
            ) == len(mapped_detection.multi_cycle_pairs)

    # Timing relaxation can only help, and every pair is accounted for.
    sta = relaxation_report(reloaded, detection)
    assert sta.min_period_relaxed <= sta.min_period_baseline
    assert len(sta.pair_timings) == len(connected_ff_pairs(reloaded))

    # Condition-2 extension only adds pairs.
    extended = condition2_extension(reloaded, detection)
    assert extended.total_multi_cycle >= len(detection.multi_cycle_pairs)

    # Classification totals are conserved end to end.
    totals = {c: 0 for c in Classification}
    for result in detection.pair_results:
        totals[result.classification] += 1
    assert sum(totals.values()) == detection.connected_pairs

    # And the one-shot report renders it all.
    report = generate_report([reloaded], run_sat=False, kcycle_circuits=1,
                             k_max=3)
    assert "flow" in report and "Table 1" in report
