"""Shared fixtures and hypothesis configuration for the test suite."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, settings

from repro.circuit.library import (
    binary_counter,
    enabled_pipeline,
    fig1_circuit,
    fig3_circuit,
    fig4_fragment,
    gray_counter,
    s27,
    shift_register,
)

settings.register_profile(
    "repro",
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture
def fig1():
    return fig1_circuit()


@pytest.fixture
def fig3():
    return fig3_circuit()


@pytest.fixture
def fig4():
    return fig4_fragment()


@pytest.fixture
def s27_circuit():
    return s27()


@pytest.fixture
def counter3():
    return binary_counter(3)


@pytest.fixture
def gray3():
    return gray_counter(3)


@pytest.fixture
def shift4():
    return shift_register(4)


@pytest.fixture
def pipeline():
    return enabled_pipeline(4)
