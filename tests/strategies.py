"""Shared hypothesis strategies and random-circuit builders for the tests.

The cornerstone of the suite is *differential testing*: tiny random
sequential circuits on which the implication-based detector, the SAT-based
baseline, the BDD-based baseline and the brute-force oracle must all agree.
:func:`random_sequential_circuit` builds such circuits deterministically
from an integer seed so hypothesis can shrink failures.
"""

from __future__ import annotations

import random

from hypothesis import strategies as st

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit, validate

_GATE_CHOICES = [
    GateType.AND,
    GateType.NAND,
    GateType.OR,
    GateType.NOR,
    GateType.XOR,
    GateType.XNOR,
    GateType.NOT,
    GateType.BUF,
    GateType.MUX,
]


def random_sequential_circuit(
    seed: int,
    max_inputs: int = 3,
    max_dffs: int = 4,
    max_gates: int = 12,
    name: str | None = None,
) -> Circuit:
    """A small random synchronous circuit, deterministic per seed.

    Gates draw fanins from everything created before them (PIs, DFF
    outputs, earlier gates); each DFF's D input is drawn from the final
    signal pool, and one primary output observes the last signal.
    """
    rng = random.Random(seed)
    circuit = Circuit(name or f"rand{seed}")
    num_inputs = rng.randint(1, max_inputs)
    num_dffs = rng.randint(1, max_dffs)
    num_gates = rng.randint(1, max_gates)

    pool = [
        circuit.add_node(GateType.INPUT, (), f"pi{i}") for i in range(num_inputs)
    ]
    dffs = [
        circuit.add_node(GateType.DFF, (0,), f"ff{i}") for i in range(num_dffs)
    ]
    pool.extend(dffs)
    if rng.random() < 0.3:
        pool.append(circuit.add_node(GateType.CONST0, (), "zero"))
    if rng.random() < 0.3:
        pool.append(circuit.add_node(GateType.CONST1, (), "one"))

    for g in range(num_gates):
        gate_type = rng.choice(_GATE_CHOICES)
        if gate_type in (GateType.NOT, GateType.BUF):
            fanins = (rng.choice(pool),)
        elif gate_type == GateType.MUX:
            fanins = (rng.choice(pool), rng.choice(pool), rng.choice(pool))
        else:
            width = rng.randint(2, 3)
            fanins = tuple(rng.choice(pool) for _ in range(width))
        pool.append(circuit.add_node(gate_type, fanins, f"g{g}"))

    for dff in dffs:
        circuit.set_fanins(dff, (rng.choice(pool),))
    circuit.add_node(GateType.OUTPUT, (pool[-1],), "po0")
    validate(circuit)
    return circuit


def random_combinational_circuit(
    seed: int,
    max_inputs: int = 5,
    max_gates: int = 14,
    name: str | None = None,
) -> Circuit:
    """A small random combinational circuit (no flip-flops)."""
    rng = random.Random(seed)
    circuit = Circuit(name or f"comb{seed}")
    num_inputs = rng.randint(1, max_inputs)
    num_gates = rng.randint(1, max_gates)
    pool = [
        circuit.add_node(GateType.INPUT, (), f"pi{i}") for i in range(num_inputs)
    ]
    for g in range(num_gates):
        gate_type = rng.choice(_GATE_CHOICES)
        if gate_type in (GateType.NOT, GateType.BUF):
            fanins = (rng.choice(pool),)
        elif gate_type == GateType.MUX:
            fanins = (rng.choice(pool), rng.choice(pool), rng.choice(pool))
        else:
            fanins = tuple(rng.choice(pool) for _ in range(rng.randint(2, 3)))
        pool.append(circuit.add_node(gate_type, fanins, f"g{g}"))
    circuit.add_node(GateType.OUTPUT, (pool[-1],), "po0")
    validate(circuit)
    return circuit


def shuffled(items, seed: int) -> list:
    """A deterministic pseudo-random permutation of ``items``.

    Used to exercise order-independence properties (e.g. the decision
    session must classify pairs identically under any work order) while
    staying shrinkable: hypothesis only has to minimise the seed.
    """
    rng = random.Random(seed)
    out = list(items)
    rng.shuffle(out)
    return out


#: hypothesis strategy: seeds for the random-circuit builders
seeds = st.integers(min_value=0, max_value=10_000_000)
