"""Structural tests for the netlist model and its validation."""

import pytest

from repro.circuit.builder import CircuitBuilder
from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit, CircuitError, validate


def _simple():
    builder = CircuitBuilder("t")
    a = builder.input("a")
    b = builder.input("b")
    g = builder.and_(a, b, name="g")
    ff = builder.dff("ff", d=g)
    builder.output("o", ff)
    return builder.build()


def test_node_accessors():
    circuit = _simple()
    node = circuit.node(circuit.id_of("g"))
    assert node.name == "g"
    assert node.type == GateType.AND
    assert len(node.fanins) == 2
    assert "g" in circuit and "nope" not in circuit


def test_id_of_unknown_name_raises():
    with pytest.raises(CircuitError):
        _simple().id_of("missing")


def test_duplicate_names_rejected():
    circuit = Circuit("dup")
    circuit.add_node(GateType.INPUT, (), "a")
    with pytest.raises(CircuitError):
        circuit.add_node(GateType.INPUT, (), "a")


def test_stats_and_counts():
    circuit = _simple()
    stats = circuit.stats()
    assert stats == {"inputs": 2, "outputs": 1, "dffs": 1, "gates": 1,
                     "nodes": 5}
    assert circuit.inputs == [0, 1]
    assert len(circuit.dffs) == 1


def test_topo_order_respects_fanins():
    circuit = _simple()
    order = circuit.topo_order()
    position = {node: i for i, node in enumerate(order)}
    for node in range(circuit.num_nodes):
        if circuit.types[node] in (GateType.AND, GateType.OUTPUT):
            for fanin in circuit.fanins[node]:
                assert position[fanin] < position[node]
    assert sorted(order) == list(range(circuit.num_nodes))


def test_combinational_cycle_detected():
    circuit = Circuit("loop")
    a = circuit.add_node(GateType.INPUT, (), "a")
    g1 = circuit.add_node(GateType.AND, (), "g1")
    g2 = circuit.add_node(GateType.AND, (), "g2")
    circuit.set_fanins(g1, (a, g2))
    circuit.set_fanins(g2, (a, g1))
    with pytest.raises(CircuitError, match="cycle"):
        circuit.topo_order()


def test_dff_breaks_cycles():
    builder = CircuitBuilder("seq")
    ff = builder.dff("ff")
    inverted = builder.not_(ff, name="n")
    builder.drive(ff, inverted)
    builder.output("o", ff)
    circuit = builder.build()  # validates: no combinational cycle
    assert circuit.next_state_node(ff) == inverted


def test_validate_rejects_bad_arity():
    circuit = Circuit("bad")
    a = circuit.add_node(GateType.INPUT, (), "a")
    circuit.add_node(GateType.MUX, (a, a), "m")  # MUX needs 3 fanins
    with pytest.raises(CircuitError, match="fanins"):
        validate(circuit)


def test_validate_rejects_output_as_fanin():
    circuit = Circuit("bad")
    a = circuit.add_node(GateType.INPUT, (), "a")
    po = circuit.add_node(GateType.OUTPUT, (a,), "po")
    circuit.add_node(GateType.NOT, (po,), "n")
    with pytest.raises(CircuitError, match="OUTPUT"):
        validate(circuit)


def test_validate_rejects_out_of_range_fanin():
    circuit = Circuit("bad")
    circuit.add_node(GateType.NOT, (5,), "n")
    with pytest.raises(CircuitError, match="missing id"):
        validate(circuit)


def test_next_state_node_requires_dff():
    circuit = _simple()
    with pytest.raises(CircuitError):
        circuit.next_state_node(circuit.id_of("g"))


def test_fanouts():
    circuit = _simple()
    a = circuit.id_of("a")
    g = circuit.id_of("g")
    assert circuit.fanouts(a) == [g]
    assert circuit.fanouts(g) == [circuit.id_of("ff")]


def test_transitive_fanin_stops_at_sources():
    circuit = _simple()
    ff = circuit.id_of("ff")
    cone = circuit.transitive_fanin([circuit.next_state_node(ff)])
    names = {circuit.names[n] for n in cone}
    assert names == {"a", "b", "g"}


def test_transitive_fanout_stops_at_dffs():
    circuit = _simple()
    a = circuit.id_of("a")
    fanout = circuit.transitive_fanout([a])
    names = {circuit.names[n] for n in fanout}
    assert names == {"a", "g", "ff"}  # does not cross the flip-flop


def test_levels():
    circuit = _simple()
    levels = circuit.levels()
    assert levels[circuit.id_of("a")] == 0
    assert levels[circuit.id_of("g")] == 1
    assert levels[circuit.id_of("ff")] == 0  # FF outputs are sources


def test_copy_is_independent():
    circuit = _simple()
    duplicate = circuit.copy("t2")
    duplicate.add_node(GateType.INPUT, (), "extra")
    assert duplicate.num_nodes == circuit.num_nodes + 1
    assert "extra" not in circuit


def test_deep_linear_chain_topo_order_is_iterative():
    """A 5000-gate chain must not hit Python's recursion limit."""
    circuit = Circuit("chain")
    previous = circuit.add_node(GateType.INPUT, (), "a")
    for i in range(5000):
        previous = circuit.add_node(GateType.NOT, (previous,), f"n{i}")
    order = circuit.topo_order()
    assert len(order) == circuit.num_nodes


def test_check_collects_all_violations_at_once():
    from repro.circuit.netlist import check

    circuit = Circuit("multi-bad")
    a = circuit.add_node(GateType.INPUT, (), "a")
    circuit.add_node(GateType.MUX, (a, a), "bad_mux")        # arity
    po = circuit.add_node(GateType.OUTPUT, (a,), "po")
    circuit.add_node(GateType.NOT, (po,), "reads_po")        # OUTPUT fanin
    g1 = circuit.add_node(GateType.AND, (), "g1")
    g2 = circuit.add_node(GateType.AND, (), "g2")
    circuit.set_fanins(g1, (a, g2))                          # comb cycle
    circuit.set_fanins(g2, (a, g1))

    violations = check(circuit)
    codes = {v.code for v in violations}
    assert {"arity", "output-fanin", "comb-cycle"} <= codes
    assert len(violations) >= 3


def test_check_clean_circuit_returns_empty():
    from repro.circuit.library import s27
    from repro.circuit.netlist import check

    assert check(s27()) == []


def test_validate_raises_first_check_violation():
    from repro.circuit.netlist import check

    circuit = Circuit("bad")
    a = circuit.add_node(GateType.INPUT, (), "a")
    circuit.add_node(GateType.MUX, (a, a), "m")
    first = check(circuit)[0]
    with pytest.raises(CircuitError, match="fanins"):
        validate(circuit)
    assert first.message in str(first)


def test_check_reports_comb_cycle_path():
    from repro.circuit.netlist import check

    circuit = Circuit("loop")
    a = circuit.add_node(GateType.INPUT, (), "a")
    g1 = circuit.add_node(GateType.AND, (), "g1")
    g2 = circuit.add_node(GateType.AND, (), "g2")
    circuit.set_fanins(g1, (a, g2))
    circuit.set_fanins(g2, (a, g1))
    (cycle,) = [v for v in check(circuit) if v.code == "comb-cycle"]
    assert set(cycle.nodes) == {g1, g2}
    assert "g1" in cycle.message and "g2" in cycle.message
