"""Structural statistics."""

from repro.circuit.stats import compute_stats, format_stats


def test_fig1_stats(fig1):
    stats = compute_stats(fig1)
    assert stats.inputs == 1 and stats.dffs == 4 and stats.gates == 8
    assert stats.gate_histogram["MUX"] == 2
    assert stats.gate_histogram["AND"] == 2
    assert stats.connected_pairs == 9
    assert stats.pair_density == 9 / 16
    assert stats.depth == 3  # NOT -> AND -> MUX


def test_level_population_sums_to_levelled_nodes(fig1):
    stats = compute_stats(fig1)
    assert sum(stats.level_population) > 0
    assert len(stats.level_population) == stats.depth


def test_shift_register_is_flat(shift4):
    stats = compute_stats(shift4)
    assert stats.depth <= 1
    assert stats.pair_density == 3 / 16


def test_fanout_statistics(fig1):
    stats = compute_stats(fig1)
    assert stats.max_fanout >= 2   # FF3 feeds several gates
    assert stats.mean_fanout >= 1.0


def test_format_stats_mentions_key_numbers(fig1):
    text = format_stats(compute_stats(fig1))
    assert "fig1" in text
    assert "4 FF" in text
    assert "MUX:2" in text
    assert "density" in text


def test_combinational_only_circuit():
    from repro.circuit.builder import CircuitBuilder

    builder = CircuitBuilder("comb")
    a = builder.input("a")
    builder.output("o", builder.not_(a, name="n"))
    stats = compute_stats(builder.build())
    assert stats.dffs == 0
    assert stats.connected_pairs == 0
    assert stats.pair_density == 0.0
