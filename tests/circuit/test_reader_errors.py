"""Regression tests: reader errors carry file and line context.

Runs over the malformed-netlist corpus in ``tests/data/malformed`` —
every file seeds exactly one defect, and the reader (or the lint pass,
for parseable-but-broken netlists) must name it precisely.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.circuit import bench, verilog
from repro.circuit.netlist import CircuitError

CORPUS = Path(__file__).resolve().parent.parent / "data" / "malformed"

#: file -> (fragment the error message must contain, expected "line N")
PARSE_FAILURES = {
    "unknown_function.bench": ("unknown function 'FROB'", "line 3"),
    "undefined_signal.bench": ("undefined signal 'ghost'", "line 3"),
    "double_definition.bench": ("'b' defined twice", "line 4"),
    "input_redefined.bench": ("defined as both INPUT and gate", "line 3"),
    "const_with_operands.bench": ("constants take no operands", "line 3"),
    "unknown_primitive.v": ("unknown primitive 'frob'", "line 5"),
    "driven_twice.v": ("'y' driven twice", "line 7"),
    "undriven_output.v": ("output 'y' is never driven", "line 4"),
    "missing_endmodule.v": ("missing endmodule", "line 2"),
}


def _load(path: Path, **kwargs):
    reader = verilog if path.suffix == ".v" else bench
    return reader.load(path, **kwargs)


@pytest.mark.parametrize("filename", sorted(PARSE_FAILURES))
def test_malformed_file_error_names_file_and_line(filename):
    fragment, line = PARSE_FAILURES[filename]
    with pytest.raises(CircuitError) as excinfo:
        _load(CORPUS / filename)
    message = str(excinfo.value)
    assert filename in message
    assert fragment in message
    assert line in message


def test_comb_cycle_fails_validation_with_path():
    with pytest.raises(CircuitError, match="combinational cycle") as excinfo:
        bench.load(CORPUS / "comb_cycle.bench")
    assert "comb_cycle.bench" in str(excinfo.value)


def test_check_false_defers_structural_validation():
    circuit = bench.load(CORPUS / "comb_cycle.bench", check=False)
    assert circuit.num_nodes > 0  # parse succeeded; cycle left for lint


def test_parse_errors_raise_even_without_check():
    with pytest.raises(CircuitError, match="unknown function"):
        bench.load(CORPUS / "unknown_function.bench", check=False)


def test_loads_reports_line_of_later_duplicate():
    text = "INPUT(a)\nb = NOT(a)\nc = NOT(b)\nb = BUF(c)\n"
    with pytest.raises(CircuitError, match=r"line 4: 'b' defined twice"):
        bench.loads(text)


def test_verilog_line_numbers_survive_comments():
    text = (
        "/* multi\n"
        "   line\n"
        "   comment */\n"
        "module m (a, y);\n"
        "  input a;  // trailing comment\n"
        "  output y;\n"
        "  frob u0 (y, a);\n"
        "endmodule\n"
    )
    with pytest.raises(CircuitError, match=r"line 7: unknown primitive"):
        verilog.loads(text)


def test_verilog_duplicate_input_rejected():
    text = "module m (a);\n  input a;\n  input a;\nendmodule\n"
    with pytest.raises(CircuitError, match="declared twice"):
        verilog.loads(text)


def test_bench_duplicate_declarations_rejected():
    with pytest.raises(CircuitError, match=r"line 2: 'a' declared INPUT twice"):
        bench.loads("INPUT(a)\nINPUT(a)\n")
    with pytest.raises(CircuitError, match=r"line 3: 'a' declared OUTPUT twice"):
        bench.loads("INPUT(a)\nOUTPUT(a)\nOUTPUT(a)\n")
