"""Tests for the circuit builder API."""

import pytest

from repro.circuit.builder import CircuitBuilder
from repro.circuit.gates import GateType
from repro.circuit.netlist import CircuitError
from repro.logic.simulator import Simulator


def test_all_gate_constructors():
    builder = CircuitBuilder("gates")
    a = builder.input("a")
    b = builder.input("b")
    nodes = {
        GateType.AND: builder.and_(a, b),
        GateType.NAND: builder.nand(a, b),
        GateType.OR: builder.or_(a, b),
        GateType.NOR: builder.nor(a, b),
        GateType.XOR: builder.xor(a, b),
        GateType.XNOR: builder.xnor(a, b),
        GateType.NOT: builder.not_(a),
        GateType.BUF: builder.buf(a),
        GateType.MUX: builder.mux(a, b, a),
        GateType.CONST0: builder.const0(),
        GateType.CONST1: builder.const1(),
    }
    builder.output("o", nodes[GateType.AND])
    circuit = builder.build()
    for gate_type, node in nodes.items():
        assert circuit.types[node] == gate_type


def test_undriven_dff_rejected_at_build():
    builder = CircuitBuilder("bad")
    builder.dff("ff")
    builder.output("o", builder.input("a"))
    with pytest.raises(CircuitError, match="undriven"):
        builder.build()


def test_drive_requires_dff_target():
    builder = CircuitBuilder("bad")
    a = builder.input("a")
    g = builder.not_(a)
    with pytest.raises(CircuitError):
        builder.drive(g, a)


def test_dff_with_inline_driver():
    builder = CircuitBuilder("ok")
    a = builder.input("a")
    ff = builder.dff("ff", d=a)
    builder.output("o", ff)
    circuit = builder.build()
    assert circuit.next_state_node(ff) == a


def test_enabled_dff_holds_and_loads():
    builder = CircuitBuilder("en")
    enable = builder.input("en")
    data = builder.input("d")
    ff = builder.enabled_dff("r", enable, data)
    builder.output("o", ff)
    circuit = builder.build()

    sim = Simulator(circuit)
    sim.set_state({"r": 0})
    sim.set_inputs({"en": 0, "d": 1})
    sim.clock()
    assert sim.value("r") == 0  # held
    sim.set_inputs({"en": 1, "d": 1})
    sim.clock()
    assert sim.value("r") == 1  # loaded
    sim.set_inputs({"en": 0, "d": 0})
    sim.clock()
    assert sim.value("r") == 1  # held again


def test_generated_names_are_unique():
    builder = CircuitBuilder("auto")
    a = builder.input("a")
    g1 = builder.not_(a)
    g2 = builder.not_(a)
    builder.output("o", g2)
    circuit = builder.build()
    assert circuit.names[g1] != circuit.names[g2]
