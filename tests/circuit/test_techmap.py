"""The AND/OR/NOT mapping must be a behavioural no-op."""

from hypothesis import given

from repro.circuit.gates import GateType
from repro.circuit.library import fig1_circuit
from repro.circuit.techmap import is_mapped, techmap
from repro.logic.simulator import Simulator

from tests.strategies import random_sequential_circuit, seeds


def test_fig1_mapping_removes_muxes(fig1):
    mapped = techmap(fig1)
    assert is_mapped(mapped)
    assert not is_mapped(fig1)
    assert len(mapped.dffs) == len(fig1.dffs)
    # Each MUX becomes NOT + 2 AND + OR: 2 muxes -> +6 gates.
    assert mapped.num_gates == fig1.num_gates + 6


def test_mapping_preserves_names(fig1):
    mapped = techmap(fig1)
    for name in ("FF1", "FF2", "MUX1", "MUX2", "EN1", "IN"):
        assert name in mapped


@given(seeds)
def test_mapping_preserves_sequential_behaviour(seed):
    original = random_sequential_circuit(seed)
    mapped = techmap(original)
    assert is_mapped(mapped)

    for pattern in range(4):
        bits = [(pattern >> i) & 1 for i in range(len(original.inputs))]
        states = []
        for circuit in (original, mapped):
            sim = Simulator(circuit)
            sim.set_state(
                {original.names[d]: (pattern >> k) & 1
                 for k, d in enumerate(original.dffs)}
            )
            for _ in range(3):
                if circuit.inputs:
                    sim.set_all_inputs(bits)
                sim.clock()
            states.append(
                {original.names[d]: sim.value(original.names[d])
                 for d in original.dffs}
            )
        assert states[0] == states[1]


def test_mapping_idempotent_on_mapped_circuits(fig3):
    remapped = techmap(fig3)
    assert remapped.num_gates == fig3.num_gates


def test_wide_xor_decomposition():
    from repro.circuit.builder import CircuitBuilder

    builder = CircuitBuilder("x3")
    ins = [builder.input(f"a{i}") for i in range(3)]
    builder.output("o", builder.xor(*ins, name="x"))
    circuit = builder.build()
    mapped = techmap(circuit)
    assert is_mapped(mapped)
    sim_m = Simulator(mapped)
    for pattern in range(8):
        bits = [(pattern >> i) & 1 for i in range(3)]
        sim_m.set_all_inputs(bits)
        assert sim_m.value("x") == sum(bits) % 2


def test_xnor_decomposition():
    from repro.circuit.builder import CircuitBuilder

    builder = CircuitBuilder("xn")
    a = builder.input("a")
    b = builder.input("b")
    builder.output("o", builder.xnor(a, b, name="x"))
    mapped = techmap(builder.build())
    assert is_mapped(mapped)
    sim = Simulator(mapped)
    for pattern in range(4):
        bits = [pattern & 1, (pattern >> 1) & 1]
        sim.set_all_inputs(bits)
        assert sim.value("x") == 1 - (bits[0] ^ bits[1])


def test_mapped_types_only():
    mapped = techmap(fig1_circuit())
    allowed = {
        GateType.INPUT, GateType.OUTPUT, GateType.DFF, GateType.AND,
        GateType.NAND, GateType.OR, GateType.NOR, GateType.NOT,
        GateType.BUF, GateType.CONST0, GateType.CONST1,
    }
    assert set(mapped.types) <= allowed
