"""FF-pair connectivity and cone analyses."""

from repro.circuit.topology import (
    combinational_depth,
    connected_ff_pairs,
    nodes_reachable_from,
    nodes_reaching,
    pair_count_matrix,
    source_ffs_of_sink,
)


def _names(circuit, pairs):
    return sorted((circuit.names[p.source], circuit.names[p.sink]) for p in pairs)


def test_fig1_connected_pairs_match_paper(fig1):
    """Step 1 of the paper's Section 4.2 example: exactly these 9 pairs."""
    assert _names(fig1, connected_ff_pairs(fig1)) == [
        ("FF1", "FF1"), ("FF1", "FF2"), ("FF2", "FF2"),
        ("FF3", "FF1"), ("FF3", "FF2"), ("FF3", "FF4"),
        ("FF4", "FF1"), ("FF4", "FF2"), ("FF4", "FF3"),
    ]


def test_self_loops_can_be_excluded(fig1):
    pairs = connected_ff_pairs(fig1, include_self_loops=False)
    names = _names(fig1, pairs)
    assert ("FF1", "FF1") not in names
    assert ("FF2", "FF2") not in names
    assert len(names) == 7  # fig1 has exactly two self-loop pairs


def test_shift_register_pairs_are_chain(shift4):
    names = _names(shift4, connected_ff_pairs(shift4))
    assert names == [("s0", "s1"), ("s1", "s2"), ("s2", "s3")]


def test_source_ffs_of_sink(fig1):
    sink = fig1.id_of("FF2")
    sources = {fig1.names[s] for s in source_ffs_of_sink(fig1, sink)}
    assert sources == {"FF1", "FF2", "FF3", "FF4"}


def test_pair_count_matrix(fig1):
    matrix = pair_count_matrix(fig1)
    assert sum(len(v) for v in matrix.values()) == 9


def test_pairs_sorted_and_deterministic(pipeline):
    pairs1 = connected_ff_pairs(pipeline)
    pairs2 = connected_ff_pairs(pipeline)
    assert pairs1 == pairs2
    keys = [(p.source, p.sink) for p in pairs1]
    assert keys == sorted(keys)


def test_nodes_reaching_and_reachable(fig1):
    ff2 = fig1.id_of("FF2")
    mux2 = fig1.id_of("MUX2")
    assert mux2 in nodes_reaching(fig1, mux2)
    assert ff2 in nodes_reachable_from(fig1, mux2)
    assert fig1.id_of("IN") in nodes_reaching(fig1, fig1.id_of("MUX1"))


def test_combinational_depth(counter3, shift4):
    assert combinational_depth(shift4) <= 1
    assert combinational_depth(counter3) >= 2  # carry chain plus XOR
