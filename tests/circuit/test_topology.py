"""FF-pair connectivity and cone analyses.

The connected relation is computed by a packed-bitset reachability pass;
the per-sink set BFS survives as the reference implementation, and the
property tests here hold the two exactly equal — pair lists (with and
without self loops), per-sink source sets and the canonical ordering.
"""

from hypothesis import given

from repro.bench_gen.suite import suite
from repro.circuit.topology import (
    FFPair,
    build_ff_reach,
    combinational_depth,
    connected_ff_pairs,
    connected_ff_pairs_bfs,
    connected_pair_arrays,
    ff_reach,
    nodes_reachable_from,
    nodes_reaching,
    pair_count_matrix,
    source_ffs_of_sink,
    source_ffs_of_sink_bfs,
)
from tests.strategies import random_sequential_circuit, seeds


def _names(circuit, pairs):
    return sorted((circuit.names[p.source], circuit.names[p.sink]) for p in pairs)


def test_fig1_connected_pairs_match_paper(fig1):
    """Step 1 of the paper's Section 4.2 example: exactly these 9 pairs."""
    assert _names(fig1, connected_ff_pairs(fig1)) == [
        ("FF1", "FF1"), ("FF1", "FF2"), ("FF2", "FF2"),
        ("FF3", "FF1"), ("FF3", "FF2"), ("FF3", "FF4"),
        ("FF4", "FF1"), ("FF4", "FF2"), ("FF4", "FF3"),
    ]


def test_self_loops_can_be_excluded(fig1):
    pairs = connected_ff_pairs(fig1, include_self_loops=False)
    names = _names(fig1, pairs)
    assert ("FF1", "FF1") not in names
    assert ("FF2", "FF2") not in names
    assert len(names) == 7  # fig1 has exactly two self-loop pairs


def test_shift_register_pairs_are_chain(shift4):
    names = _names(shift4, connected_ff_pairs(shift4))
    assert names == [("s0", "s1"), ("s1", "s2"), ("s2", "s3")]


def test_source_ffs_of_sink(fig1):
    sink = fig1.id_of("FF2")
    sources = {fig1.names[s] for s in source_ffs_of_sink(fig1, sink)}
    assert sources == {"FF1", "FF2", "FF3", "FF4"}


def test_pair_count_matrix(fig1):
    matrix = pair_count_matrix(fig1)
    assert sum(len(v) for v in matrix.values()) == 9


def test_pairs_sorted_and_deterministic(pipeline):
    pairs1 = connected_ff_pairs(pipeline)
    pairs2 = connected_ff_pairs(pipeline)
    assert pairs1 == pairs2
    keys = [(p.source, p.sink) for p in pairs1]
    assert keys == sorted(keys)


def test_nodes_reaching_and_reachable(fig1):
    ff2 = fig1.id_of("FF2")
    mux2 = fig1.id_of("MUX2")
    assert mux2 in nodes_reaching(fig1, mux2)
    assert ff2 in nodes_reachable_from(fig1, mux2)
    assert fig1.id_of("IN") in nodes_reaching(fig1, fig1.id_of("MUX1"))


def test_combinational_depth(counter3, shift4):
    assert combinational_depth(shift4) <= 1
    assert combinational_depth(counter3) >= 2  # carry chain plus XOR


# ----------------------------------------------------------------------
# Bitset reachability pass vs the set-BFS reference
# ----------------------------------------------------------------------
@given(seeds)
def test_bitset_pairs_equal_bfs_reference(seed):
    circuit = random_sequential_circuit(seed, max_dffs=6, max_gates=16)
    assert connected_ff_pairs(circuit) == connected_ff_pairs_bfs(circuit)
    assert connected_ff_pairs(circuit, include_self_loops=False) == (
        connected_ff_pairs_bfs(circuit, include_self_loops=False)
    )


@given(seeds)
def test_bitset_source_sets_equal_bfs_reference(seed):
    circuit = random_sequential_circuit(seed, max_dffs=6, max_gates=16)
    for sink in circuit.dffs:
        assert source_ffs_of_sink(circuit, sink) == (
            source_ffs_of_sink_bfs(circuit, sink)
        )


def test_bitset_pairs_equal_bfs_on_synthetic_suite():
    for circuit in suite("tiny"):
        assert connected_ff_pairs(circuit) == connected_ff_pairs_bfs(circuit)
        assert connected_ff_pairs(circuit, False) == (
            connected_ff_pairs_bfs(circuit, False)
        )


def test_pair_arrays_match_pairs_in_canonical_order(fig1):
    sources, sinks = connected_pair_arrays(fig1)
    pairs = connected_ff_pairs(fig1)
    assert [FFPair(s, t) for s, t in zip(sources.tolist(), sinks.tolist())] == pairs
    keys = list(zip(sources.tolist(), sinks.tolist()))
    assert keys == sorted(keys)


def test_ff_reach_rows_and_sources(fig1):
    reach = ff_reach(fig1)
    assert reach.words == 1
    assert reach.rows.shape == (fig1.num_nodes, 1)
    assert not reach.rows.flags.writeable
    for k, dff in enumerate(reach.dffs):
        assert reach.sources_of(dff) == [dff]  # own bit only
    # sources_of lists ascending node ids.
    driver = fig1.next_state_node(fig1.id_of("FF2"))
    sources = reach.sources_of(driver)
    assert sources == sorted(sources)
    assert set(sources) == source_ffs_of_sink(fig1, fig1.id_of("FF2"))


def test_ff_reach_is_cached_and_version_invalidated(shift4):
    from repro.circuit.gates import GateType

    first = ff_reach(shift4)
    assert ff_reach(shift4) is first
    assert build_ff_reach(shift4) is not first  # raw builder never caches
    shift4.add_node(GateType.INPUT, (), "late_pi")
    assert ff_reach(shift4) is not first


def test_no_dffs_yields_no_pairs():
    from repro.circuit.builder import CircuitBuilder

    builder = CircuitBuilder("comb")
    a, b = builder.input("a"), builder.input("b")
    builder.output("o", builder.and_(a, b, name="g"))
    circuit = builder.build()
    assert connected_ff_pairs(circuit) == []
    sources, sinks = connected_pair_arrays(circuit)
    assert len(sources) == 0 and len(sinks) == 0


def test_wide_circuit_spills_into_second_word():
    from repro.circuit.library import shift_register

    circuit = shift_register(70)  # 70 DFFs -> words = 2
    reach = ff_reach(circuit)
    assert reach.words == 2
    assert connected_ff_pairs(circuit) == connected_ff_pairs_bfs(circuit)


def test_iter_launch_groups_chain_to_connected_pairs(fig1):
    from repro.circuit.topology import iter_launch_groups

    for self_loops in (True, False):
        chained = [
            FFPair(group.source, int(sink))
            for group in iter_launch_groups(fig1, self_loops)
            for sink in group.sinks
        ]
        assert chained == connected_ff_pairs(
            fig1, include_self_loops=self_loops
        )


@given(seeds)
def test_launch_group_stats_count_pairs(seed):
    from repro.circuit.topology import iter_launch_groups, launch_group_stats

    circuit = random_sequential_circuit(seed, max_dffs=6, max_gates=20)
    for self_loops in (True, False):
        groups, pairs = launch_group_stats(circuit, self_loops)
        listed = list(iter_launch_groups(circuit, self_loops))
        assert groups == len(listed)
        assert pairs == sum(len(group.sinks) for group in listed)
        assert pairs == len(
            connected_ff_pairs(circuit, include_self_loops=self_loops)
        )


@given(seeds)
def test_blocked_sink_reach_matches_full_build(seed):
    """Row-blocked packed reachability is byte-identical to the full pass."""
    import numpy as np

    from repro.circuit import topology as topo

    circuit = random_sequential_circuit(seed, max_dffs=8, max_gates=24)
    full = topo.build_sink_reach(circuit)
    budget = topo.FULL_REACH_BUDGET_WORDS
    topo.FULL_REACH_BUDGET_WORDS = 0  # force the blocked path
    try:
        blocked = topo.build_sink_reach(circuit, block_words=1)
    finally:
        topo.FULL_REACH_BUDGET_WORDS = budget
    assert blocked.blocked and not full.blocked
    assert np.array_equal(full.rows, blocked.rows)
    assert full.dffs == blocked.dffs


def test_prefers_bfs_threshold():
    from repro.circuit.library import fig1_circuit
    from repro.circuit.topology import BFS_CUTOFF, prefers_bfs

    fig1 = fig1_circuit()
    assert prefers_bfs(fig1)  # tiny: nodes * dffs far below the cutoff
    assert fig1.num_nodes * len(fig1.dffs) < BFS_CUTOFF
