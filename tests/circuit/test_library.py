"""Behavioural checks of the built-in example circuits."""

from repro.circuit.library import (
    binary_counter,
    enabled_pipeline,
    gray_counter,
    shift_register,
)
from repro.logic.simulator import Simulator


def test_fig1_counter_is_gray_cycle(fig1):
    """FF3/FF4 must walk (0,0)->(0,1)->(1,1)->(1,0)->(0,0)."""
    sim = Simulator(fig1)
    sim.set_all_state([0, 0, 0, 0])
    sim.set_inputs({"IN": 0})
    seen = []
    for _ in range(5):
        state = sim.state()
        seen.append((state["FF3"], state["FF4"]))
        sim.clock()
    assert seen == [(0, 0), (0, 1), (1, 1), (1, 0), (0, 0)]


def test_fig1_ff1_loads_only_at_state_00(fig1):
    sim = Simulator(fig1)
    sim.set_all_state([0, 0, 0, 1])  # counter at (0,1): EN1 inactive
    sim.set_inputs({"IN": 1})
    sim.clock()
    assert sim.value("FF1") == 0  # held
    sim.set_all_state([0, 0, 0, 0])  # counter at (0,0): EN1 active
    sim.set_inputs({"IN": 1})
    sim.clock()
    assert sim.value("FF1") == 1  # loaded


def test_fig1_value_takes_three_cycles_to_ff2(fig1):
    """The paper's 3-cycle story: launch at (0,0), capture at (1,0)."""
    sim = Simulator(fig1)
    sim.set_all_state([0, 0, 0, 0])
    sim.set_inputs({"IN": 1})
    sim.clock()  # FF1 loads 1; counter now (0,1)
    assert sim.value("FF1") == 1 and sim.value("FF2") == 0
    sim.set_inputs({"IN": 0})
    sim.clock()  # counter (1,1)
    assert sim.value("FF2") == 0
    sim.clock()  # counter (1,0)
    assert sim.value("FF2") == 0
    sim.clock()  # capture edge at end of (1,0)
    assert sim.value("FF2") == 1


def test_fig3_is_mapped_fig1(fig3):
    from repro.circuit.techmap import is_mapped

    assert is_mapped(fig3)
    sim = Simulator(fig3)
    sim.set_all_state([0, 0, 0, 0])
    sim.set_inputs({"IN": 1})
    for _ in range(4):
        sim.clock()
    assert sim.value("FF2") == 1  # same 3-cycle transport as fig1


def test_fig4_fragment_shape(fig4):
    assert {fig4.names[d] for d in fig4.dffs} == {"A", "B", "FF_C"}
    assert "C" in fig4


def test_s27_output_behaviour(s27_circuit):
    """From the all-zero state with all-zero inputs, G17 = NOT(G11)."""
    sim = Simulator(s27_circuit)
    sim.set_all_state([0, 0, 0])
    sim.set_all_inputs([0, 0, 0, 0])
    g17 = s27_circuit.id_of("G17")
    g11 = s27_circuit.id_of("G11")
    for _ in range(4):
        sim.clock()
        assert sim.values[g17] == 1 - sim.values[g11]


def test_binary_counter_wraps():
    circuit = binary_counter(2)
    sim = Simulator(circuit)
    sim.set_all_state([1, 1])
    sim.clock()
    assert sim.state() == {"q0": 0, "q1": 0}


def test_gray_counter_period():
    circuit = gray_counter(2)
    sim = Simulator(circuit)
    sim.set_all_state([0, 0])
    codes = set()
    for _ in range(4):
        outs = sim.output_values()
        codes.add((outs["gray0"], outs["gray1"]))
        sim.clock()
    assert len(codes) == 4


def test_shift_register_length():
    circuit = shift_register(5)
    assert len(circuit.dffs) == 5


def test_enabled_pipeline_spacing_one_is_single_cycle_chain():
    from repro.core.detector import detect_multi_cycle_pairs

    circuit = enabled_pipeline(3, counter_width=2, spacing=1)
    result = detect_multi_cycle_pairs(circuit)
    mc = dict.fromkeys(result.multi_cycle_pair_names())
    # Consecutive stages load on consecutive counts: 1 cycle apart.
    assert ("r0", "r1") not in mc
    assert ("r1", "r2") not in mc


def test_enabled_pipeline_spacing_two_is_multi_cycle():
    from repro.core.detector import detect_multi_cycle_pairs

    circuit = enabled_pipeline(2, counter_width=2, spacing=2)
    result = detect_multi_cycle_pairs(circuit)
    assert ("r0", "r1") in result.multi_cycle_pair_names()
