"""The time-frame expansion must agree with sequential simulation."""


import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.circuit.gates import GateType
from repro.circuit.netlist import validate
from repro.circuit.timeframe import expand
from repro.logic.simulator import Simulator, evaluate_gate

from tests.strategies import random_sequential_circuit, seeds


def _eval_expansion(expansion, state_bits, input_frames):
    """Evaluate the expanded combinational circuit on concrete values."""
    comb = expansion.comb
    values = {}
    for k, node in enumerate(expansion.ff_at[0]):
        values[node] = state_bits[k]
    for frame, nodes in enumerate(expansion.pi_at):
        for k, node in enumerate(nodes):
            values[node] = input_frames[frame][k]
    for node in comb.topo_order():
        gate_type = comb.types[node]
        if gate_type == GateType.INPUT:
            continue
        if gate_type == GateType.CONST0:
            values[node] = 0
        elif gate_type == GateType.CONST1:
            values[node] = 1
        else:
            values[node] = evaluate_gate(
                gate_type, [values[f] for f in comb.fanins[node]]
            )
    return values


@given(seeds, st.integers(min_value=0, max_value=255))
def test_expansion_matches_sequential_simulation(seed, stimulus):
    circuit = random_sequential_circuit(seed)
    frames = 2
    expansion = expand(circuit, frames)
    num_dffs = len(circuit.dffs)
    num_inputs = len(circuit.inputs)

    state_bits = [(stimulus >> k) & 1 for k in range(num_dffs)]
    input_frames = [
        [(stimulus >> (num_dffs + f * num_inputs + k)) & 1 for k in range(num_inputs)]
        for f in range(frames)
    ]

    values = _eval_expansion(expansion, state_bits, input_frames)

    sim = Simulator(circuit)
    sim.set_all_state(state_bits)
    for frame in range(frames):
        if circuit.inputs:
            sim.set_all_inputs(input_frames[frame])
        # FF values at time t+frame must match the expansion's nodes.
        for k, dff in enumerate(circuit.dffs):
            assert sim.values[dff] == values[expansion.ff_at[frame][k]]
        sim.clock()
    for k, dff in enumerate(circuit.dffs):
        assert sim.values[dff] == values[expansion.ff_at[frames][k]]


def test_expansion_is_combinational_and_valid(fig1):
    expansion = expand(fig1, 3)
    validate(expansion.comb)
    assert not expansion.comb.dffs
    assert len(expansion.ff_at) == 4
    assert len(expansion.pi_at) == 3


def test_state_nodes_are_shared_between_frames(fig1):
    """FF(t+1) is one node: frame-1 output and frame-2 state input."""
    expansion = expand(fig1, 2)
    index = expansion.ff_index(fig1.id_of("FF1"))
    ff1_t1 = expansion.ff_at[1][index]
    # It must be a fanin of some frame-1 (second frame) gate.
    fanouts = expansion.comb.fanouts(ff1_t1)
    assert fanouts, "FF1(t+1) should feed the second frame"


def test_ff_index_lookup(fig1):
    expansion = expand(fig1, 2)
    for k, dff in enumerate(fig1.dffs):
        assert expansion.ff_index(dff) == k


def test_expand_rejects_zero_frames(fig1):
    with pytest.raises(ValueError):
        expand(fig1, 0)


def test_direct_ff_to_ff_aliases_to_state_node():
    """A shift register's FF2(t+1) is literally FF1(t)'s node."""
    from repro.circuit.library import shift_register

    circuit = shift_register(2)
    expansion = expand(circuit, 2)
    s0 = expansion.ff_index(circuit.id_of("s0"))
    s1 = expansion.ff_index(circuit.id_of("s1"))
    assert expansion.ff_at[1][s1] == expansion.ff_at[0][s0]


def test_po_nodes_per_frame(fig1):
    expansion = expand(fig1, 2)
    assert len(expansion.po_at) == 2
    assert all(len(frame) == 1 for frame in expansion.po_at)
