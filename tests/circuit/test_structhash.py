"""Structural/cone hashing and the structure-vs-metadata version split."""

import pytest
from hypothesis import given

from repro.circuit.builder import CircuitBuilder
from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit, CircuitError
from repro.circuit.structhash import (
    capture_cone_hashes,
    content_key,
    launch_cone_hashes,
    structural_hash,
)
from repro.logic.simplan import compiled_plan
from tests.strategies import random_sequential_circuit, seeds


def _two_ff_circuit(and_gate: bool = True, swap: bool = False):
    b = CircuitBuilder("pair")
    a = b.input("a")
    c = b.input("c")
    ff0 = b.dff("ff0")
    ff1 = b.dff("ff1")
    fanins = (ff0, a) if swap else (a, ff0)
    g = b.and_(*fanins, name="g") if and_gate else b.or_(*fanins, name="g")
    b.drive(ff0, b.xor(c, ff1, name="h"))
    b.drive(ff1, g)
    b.output("o", g)
    return b.build()


def _permuted_rebuild(circuit: Circuit) -> Circuit:
    """The same structure rebuilt with a different node-id layout.

    Combinational gates are appended in reverse creation order (their
    fanins already exist because sources go first), which permutes every
    internal id while preserving structure and interface names.
    """
    clone = Circuit(circuit.name)
    mapping: dict[int, int] = {}
    sources = [
        n for n in range(circuit.num_nodes)
        if circuit.types[n] in (GateType.INPUT, GateType.DFF,
                                GateType.CONST0, GateType.CONST1)
    ]
    for node_id in sources:
        mapping[node_id] = clone.add_node(
            circuit.types[node_id], (), circuit.names[node_id]
        )
    comb = [n for n in circuit.topo_order() if n not in mapping]
    placed: set[int] = set(mapping)
    remaining = list(comb)
    # Greedily place from the back when possible to shuffle the layout.
    while remaining:
        pick = None
        for candidate in reversed(remaining):
            if all(f in placed for f in circuit.fanins[candidate]):
                pick = candidate
                break
        assert pick is not None
        remaining.remove(pick)
        mapping[pick] = clone.add_node(
            circuit.types[pick],
            tuple(mapping[f] for f in circuit.fanins[pick]),
            circuit.names[pick],
        )
        placed.add(pick)
    for dff in circuit.dffs:
        clone.set_fanins(
            mapping[dff], tuple(mapping[f] for f in circuit.fanins[dff])
        )
    return clone


class TestStructuralHash:
    def test_stable_across_calls(self):
        circuit = _two_ff_circuit()
        assert structural_hash(circuit) == structural_hash(circuit)

    @given(seeds)
    def test_invariant_under_node_reordering(self, seed):
        circuit = random_sequential_circuit(seed)
        clone = _permuted_rebuild(circuit)
        assert clone.num_nodes == circuit.num_nodes
        assert structural_hash(clone) == structural_hash(circuit)

    def test_commutative_fanin_order_ignored(self):
        assert structural_hash(_two_ff_circuit(swap=False)) == (
            structural_hash(_two_ff_circuit(swap=True))
        )

    def test_gate_flip_changes_hash(self):
        assert structural_hash(_two_ff_circuit(and_gate=True)) != (
            structural_hash(_two_ff_circuit(and_gate=False))
        )

    def test_internal_rename_keeps_hash(self):
        circuit = _two_ff_circuit()
        before = structural_hash(circuit)
        circuit.rename_node(circuit.id_of("g"), "g_renamed")
        assert structural_hash(circuit) == before

    def test_interface_rename_changes_hash(self):
        circuit = _two_ff_circuit()
        before = structural_hash(circuit)
        circuit.rename_node(circuit.id_of("ff0"), "ff0_renamed")
        assert structural_hash(circuit) != before

    def test_structural_edit_changes_hash(self):
        circuit = _two_ff_circuit()
        before = structural_hash(circuit)
        extra = circuit.add_node(
            GateType.NOT, (circuit.id_of("g"),), "inv"
        )
        circuit.add_node(GateType.OUTPUT, (extra,), "o2")
        assert structural_hash(circuit) != before


class TestContentKey:
    def test_sensitive_to_id_layout(self):
        circuit = _two_ff_circuit()
        clone = _permuted_rebuild(circuit)
        # Same structure, same structural hash — but different id layout,
        # so id-referencing artifacts must not be shared.
        assert structural_hash(clone) == structural_hash(circuit)
        assert content_key(clone) != content_key(circuit)

    def test_names_variant_tracks_renames(self):
        circuit = _two_ff_circuit()
        plain = content_key(circuit)
        named = content_key(circuit, include_names=True)
        circuit.rename_node(circuit.id_of("g"), "g2")
        assert content_key(circuit) == plain
        assert content_key(circuit, include_names=True) != named


class TestVersionSplit:
    def test_rename_is_metadata_only(self):
        circuit = _two_ff_circuit()
        version = circuit.version
        meta = circuit.meta_version
        circuit.rename_node(circuit.id_of("g"), "g2")
        assert circuit.version == version
        assert circuit.meta_version == meta + 1

    def test_rename_keeps_structure_scoped_artifacts(self):
        circuit = _two_ff_circuit()
        plan = compiled_plan(circuit)
        circuit.rename_node(circuit.id_of("g"), "g2")
        assert compiled_plan(circuit) is plan

    def test_rename_invalidates_name_scoped_artifacts(self):
        circuit = _two_ff_circuit()
        table = launch_cone_hashes(circuit)
        circuit.rename_node(circuit.id_of("ff0"), "ff0b")
        assert launch_cone_hashes(circuit) is not table

    def test_duplicate_rename_rejected(self):
        circuit = _two_ff_circuit()
        with pytest.raises(CircuitError):
            circuit.rename_node(circuit.id_of("g"), "ff0")

    def test_builder_rename(self):
        b = CircuitBuilder("r")
        a = b.input("a")
        ff = b.dff("ff")
        g = b.and_(a, ff, name="g")
        b.drive(ff, g)
        b.output("o", g)
        circuit = b.build()
        before = structural_hash(circuit)
        b.rename(g, "g_new")
        assert circuit.names[g] == "g_new"
        assert structural_hash(circuit) == before


class TestConeHashes:
    def test_cones_cover_all_dffs(self):
        circuit = _two_ff_circuit()
        launch = launch_cone_hashes(circuit)
        capture = capture_cone_hashes(circuit)
        assert set(launch) == set(circuit.dffs)
        assert set(capture) == set(circuit.dffs)

    def test_edit_outside_cone_is_local(self):
        """An edit in one FF's cone leaves disjoint cones' hashes alone."""
        b = CircuitBuilder("split")
        a = b.input("a")
        c = b.input("c")
        ff0 = b.dff("ff0")
        ff1 = b.dff("ff1")
        b.drive(ff0, b.and_(a, ff0, name="g0"))
        b.drive(ff1, b.or_(c, ff1, name="g1"))
        b.output("o0", ff0)
        b.output("o1", ff1)
        base = b.build()

        b2 = CircuitBuilder("split")
        a = b2.input("a")
        c = b2.input("c")
        ff0 = b2.dff("ff0")
        ff1 = b2.dff("ff1")
        b2.drive(ff0, b2.and_(a, ff0, name="g0"))
        b2.drive(ff1, b2.nor(c, ff1, name="g1"))  # the ECO: OR -> NOR
        b2.output("o0", ff0)
        b2.output("o1", ff1)
        edited = b2.build()

        ff0_id = base.id_of("ff0")
        ff1_id = base.id_of("ff1")
        assert launch_cone_hashes(base)[ff0_id] == (
            launch_cone_hashes(edited)[ff0_id]
        )
        assert capture_cone_hashes(base)[ff0_id] == (
            capture_cone_hashes(edited)[ff0_id]
        )
        assert launch_cone_hashes(base)[ff1_id] != (
            launch_cone_hashes(edited)[ff1_id]
        )
        assert capture_cone_hashes(base)[ff1_id] != (
            capture_cone_hashes(edited)[ff1_id]
        )
