"""Structural Verilog round-trips and parser robustness."""

import pytest
from hypothesis import given

from repro.circuit import verilog
from repro.circuit.library import s27
from repro.circuit.verilog import VerilogFormatError, dumps, loads
from repro.sat.equivalence import check_sequential_equivalence_1step

from tests.strategies import random_sequential_circuit, seeds


def test_loads_minimal_module():
    circuit = loads(
        """
        module tiny (a, b, y);
          input a, b;
          output y;
          and g0 (y, a, b);
        endmodule
        """
    )
    assert circuit.name == "tiny"
    assert circuit.stats()["gates"] == 1


def test_loads_dff_and_mux():
    circuit = loads(
        """
        module seq (d, q);
          input d;
          output q;
          wire sel, muxed;
          assign sel = 1'b1;
          mux m0 (muxed, sel, q, d);
          dff f0 (q, muxed);
        endmodule
        """
    )
    assert len(circuit.dffs) == 1
    from repro.logic.simulator import Simulator

    sim = Simulator(circuit)
    sim.set_state({"q": 0})
    sim.set_inputs({"d": 1})
    sim.clock()
    assert sim.value("q") == 1


def test_loads_comments_ignored():
    circuit = loads(
        """
        // line comment
        module c (a, y); /* block
        comment */
          input a;
          output y;
          not g (y, a);
        endmodule
        """
    )
    assert circuit.stats()["gates"] == 1


@pytest.mark.parametrize(
    "text,message",
    [
        ("input a;", "no module"),
        ("module m (a); input a;", "endmodule"),
        ("module m (a, y); input a; output y; frob g (y, a); endmodule",
         "unknown primitive"),
        ("module m (a, y); input a; output y; endmodule", "never driven"),
        ("module m (a, y); input a; output y; not g (y, z); endmodule",
         "undriven signal"),
        ("module m (a, y); input a; output y; not g (y, a); not h (y, a); "
         "endmodule", "driven twice"),
        ("module m (a, y); input a; output y; not g (a, y); endmodule",
         "cannot be driven"),
        ("module m (a, y); input a[3:0]; output y; endmodule",
         "vector"),
        ("module m (a, y); input a; output y; assign y = a & a; endmodule",
         "unsupported assign"),
    ],
)
def test_loads_rejects_bad_input(text, message):
    with pytest.raises(VerilogFormatError, match=message):
        loads(text)


@given(seeds)
def test_round_trip_is_equivalent(seed):
    """write -> read must preserve the sequential function (SAT-proven)."""
    original = random_sequential_circuit(seed)
    restored = loads(dumps(original))
    assert len(restored.dffs) == len(original.dffs)
    result = check_sequential_equivalence_1step(original, restored)
    assert result.equivalent, result.differing_signal


def test_round_trip_fig1(fig1):
    restored = loads(dumps(fig1))
    assert check_sequential_equivalence_1step(fig1, restored).equivalent


def test_round_trip_s27(s27_circuit):
    restored = loads(dumps(s27_circuit))
    assert check_sequential_equivalence_1step(s27_circuit, restored).equivalent


def test_po_on_primary_input_gets_alias():
    from repro.circuit.builder import CircuitBuilder

    builder = CircuitBuilder("alias")
    a = builder.input("a")
    builder.output("a_obs", a)
    builder.dff("ff", d=a)
    circuit = builder.build()
    text = dumps(circuit)
    assert "assign a_obs = a;" in text
    restored = loads(text)
    assert len(restored.outputs) == 1


def test_file_round_trip(tmp_path):
    path = tmp_path / "c.v"
    verilog.dump(s27(), path)
    restored = verilog.load(path)
    assert len(restored.dffs) == 3
