"""Path enumeration, counting and per-path delays."""

from repro.circuit.builder import CircuitBuilder
from repro.circuit.paths import (
    count_paths,
    longest_path,
    path_delay,
    paths_between,
)
from repro.circuit.topology import FFPair, connected_ff_pairs
from repro.sta.timing import ff_pair_delays


def _diamond():
    """src -> (short | long) -> join -> snk: exactly two paths."""
    builder = CircuitBuilder("diamond")
    src = builder.dff("src")
    short = builder.not_(src, name="short")
    long1 = builder.not_(src, name="long1")
    long2 = builder.not_(long1, name="long2")
    join = builder.and_(short, long2, name="join")
    snk = builder.dff("snk", d=join)
    builder.drive(src, snk)
    builder.output("o", snk)
    return builder.build()


def test_diamond_has_two_paths():
    circuit = _diamond()
    pair = FFPair(circuit.id_of("src"), circuit.id_of("snk"))
    paths = paths_between(circuit, pair)
    assert len(paths) == 2
    assert count_paths(circuit, pair) == 2
    names = sorted(
        tuple(circuit.names[n] for n in p.nodes) for p in paths
    )
    assert names == [
        ("src", "long1", "long2", "join"),
        ("src", "short", "join"),
    ]


def test_path_delays_and_longest():
    circuit = _diamond()
    pair = FFPair(circuit.id_of("src"), circuit.id_of("snk"))
    longest = longest_path(circuit, pair)
    assert path_delay(circuit, longest) == 3.0
    # The longest enumerated path matches the DP-based pair delay.
    assert path_delay(circuit, longest) == ff_pair_delays(circuit)[
        (pair.source, pair.sink)
    ]


def test_direct_wire_pair():
    circuit = _diamond()
    pair = FFPair(circuit.id_of("snk"), circuit.id_of("src"))
    paths = paths_between(circuit, pair)
    assert len(paths) == 1 and len(paths[0]) == 1
    assert path_delay(circuit, paths[0]) == 0.0


def test_unconnected_pair_has_no_paths():
    builder = CircuitBuilder("split")
    a = builder.input("a")
    ff1 = builder.dff("ff1", d=a)
    ff2 = builder.dff("ff2", d=a)
    builder.output("o", ff1)
    builder.output("p", ff2)
    circuit = builder.build()
    assert count_paths(circuit, FFPair(ff1, ff2)) == 0
    assert paths_between(circuit, FFPair(ff1, ff2)) == []


def test_max_paths_bound():
    circuit = _diamond()
    pair = FFPair(circuit.id_of("src"), circuit.id_of("snk"))
    assert len(paths_between(circuit, pair, max_paths=1)) == 1


def test_count_matches_enumeration_on_fig1(fig1):
    for pair in connected_ff_pairs(fig1):
        assert count_paths(fig1, pair) == len(paths_between(fig1, pair))


def test_exponential_counting_stays_fast():
    """A 20-stage diamond chain has 2^20 paths; counting must not blow up."""
    builder = CircuitBuilder("expo")
    src = builder.dff("src")
    node = src
    for i in range(20):
        left = builder.not_(node, name=f"l{i}")
        right = builder.buf(node, name=f"r{i}")
        node = builder.and_(left, right, name=f"j{i}")
    snk = builder.dff("snk", d=node)
    builder.drive(src, snk)
    builder.output("o", snk)
    circuit = builder.build()
    pair = FFPair(src, snk)
    assert count_paths(circuit, pair) == 2 ** 20
    # Enumeration respects its bound.
    assert len(paths_between(circuit, pair, max_paths=50)) == 50
