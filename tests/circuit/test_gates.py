"""Properties of the gate-type metadata."""

import pytest

from repro.circuit.gates import (
    COMBINATIONAL_TYPES,
    CONTROLLING,
    SOURCE_TYPES,
    GateType,
    controlled_output,
    controlling_value,
    fanin_arity_ok,
    noncontrolled_output,
)
from repro.logic.values import ONE, ZERO


def test_controlling_values():
    assert controlling_value(GateType.AND) == ZERO
    assert controlling_value(GateType.NAND) == ZERO
    assert controlling_value(GateType.OR) == ONE
    assert controlling_value(GateType.NOR) == ONE
    assert controlling_value(GateType.XOR) is None
    assert controlling_value(GateType.MUX) is None


@pytest.mark.parametrize(
    "gate_type,controlled,noncontrolled",
    [
        (GateType.AND, ZERO, ONE),
        (GateType.NAND, ONE, ZERO),
        (GateType.OR, ONE, ZERO),
        (GateType.NOR, ZERO, ONE),
    ],
)
def test_controlled_outputs(gate_type, controlled, noncontrolled):
    assert controlled_output(gate_type) == controlled
    assert noncontrolled_output(gate_type) == noncontrolled


def test_controlled_output_none_without_controlling_value():
    assert controlled_output(GateType.XOR) is None
    assert noncontrolled_output(GateType.BUF) is None


def test_controlled_and_noncontrolled_are_complements():
    for gate_type in CONTROLLING:
        assert controlled_output(gate_type) == 1 - noncontrolled_output(gate_type)


@pytest.mark.parametrize(
    "gate_type,count,ok",
    [
        (GateType.INPUT, 0, True),
        (GateType.INPUT, 1, False),
        (GateType.NOT, 1, True),
        (GateType.NOT, 2, False),
        (GateType.AND, 1, True),
        (GateType.AND, 5, True),
        (GateType.AND, 0, False),
        (GateType.MUX, 3, True),
        (GateType.MUX, 2, False),
        (GateType.DFF, 1, True),
        (GateType.DFF, 0, False),
        (GateType.CONST0, 0, True),
    ],
)
def test_fanin_arity(gate_type, count, ok):
    assert fanin_arity_ok(gate_type, count) is ok


def test_source_and_combinational_partition():
    assert SOURCE_TYPES.isdisjoint(COMBINATIONAL_TYPES)
    everything = SOURCE_TYPES | COMBINATIONAL_TYPES
    assert set(GateType) == everything
