"""Round-trip and error tests for the .bench reader/writer."""


import pytest
from hypothesis import given

from repro.circuit.bench import BenchFormatError, dumps, load, loads, dump
from repro.circuit.gates import GateType
from repro.circuit.library import fig1_circuit, s27
from repro.logic.simulator import Simulator

from tests.strategies import random_sequential_circuit, seeds


def test_s27_parses_with_expected_shape(s27_circuit):
    stats = s27_circuit.stats()
    assert stats["inputs"] == 4
    assert stats["outputs"] == 1
    assert stats["dffs"] == 3
    assert stats["gates"] == 10


def test_loads_forward_references():
    circuit = loads(
        """
        INPUT(a)
        OUTPUT(y)
        y = NOT(z)
        z = AND(a, a)
        """
    )
    assert circuit.types[circuit.id_of("y")] == GateType.NOT


def test_loads_constants():
    circuit = loads(
        """
        INPUT(a)
        OUTPUT(y)
        c1 = VDD()
        c0 = VSS()
        y = MUX(a, c0, c1)
        """
    )
    assert circuit.types[circuit.id_of("c1")] == GateType.CONST1
    assert circuit.types[circuit.id_of("c0")] == GateType.CONST0


def test_loads_comments_and_blank_lines():
    circuit = loads("# header\n\nINPUT(a)\nOUTPUT(a)\n# trailing\n")
    assert len(circuit.inputs) == 1


@pytest.mark.parametrize(
    "text,message",
    [
        ("a = FROB(b)", "unknown function"),
        ("INPUT(a)\na = NOT(a)", "both INPUT and gate"),
        ("y = NOT(z)", "undefined signal"),
        ("OUTPUT(q)", "undefined signal"),
        ("y = NOT(a)\ny = NOT(a)", "defined twice"),
        ("this is not bench", "cannot parse"),
        ("c = VDD(x)", "no operands"),
    ],
)
def test_loads_rejects_malformed(text, message):
    with pytest.raises(BenchFormatError, match=message):
        loads("INPUT(a)\n" + text if "INPUT" not in text else text)


@given(seeds)
def test_round_trip_preserves_behaviour(seed):
    """dump -> load must preserve the circuit's sequential behaviour."""
    original = random_sequential_circuit(seed)
    restored = loads(dumps(original), name=original.name)
    assert restored.stats() == original.stats()

    # Same 3-cycle simulation from the all-zero state on a few inputs.
    for pattern in range(4):
        bits = [(pattern >> i) & 1 for i in range(len(original.inputs))]
        sims = []
        for circuit in (original, restored):
            sim = Simulator(circuit)
            sim.set_all_state([0] * len(circuit.dffs))
            for _ in range(3):
                if circuit.inputs:
                    sim.set_all_inputs(bits)
                sim.clock()
            sims.append(
                {circuit.names[d]: sim.values[d] for d in circuit.dffs}
            )
        assert sims[0] == sims[1]


def test_round_trip_fig1():
    circuit = fig1_circuit()
    restored = loads(dumps(circuit), name="fig1")
    assert restored.stats() == circuit.stats()


def test_dump_and_load_file(tmp_path):
    path = tmp_path / "c.bench"
    dump(s27(), path)
    circuit = load(path)
    assert circuit.name == "c"
    assert circuit.stats()["gates"] == 10


def test_dumps_header_mentions_counts():
    text = dumps(s27())
    assert "4 inputs" in text and "3 flip-flops" in text
