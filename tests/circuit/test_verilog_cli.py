"""CLI interop for Verilog inputs (extension dispatch)."""

from repro.circuit import verilog
from repro.circuit.library import fig1_circuit
from repro.cli import main


def test_analyze_verilog_file(tmp_path, capsys):
    path = tmp_path / "fig1.v"
    verilog.dump(fig1_circuit(), path)
    assert main(["analyze", str(path)]) == 0
    out = capsys.readouterr().out
    assert "multi-cycle pairs:  5" in out


def test_kcycle_verilog_file(tmp_path, capsys):
    path = tmp_path / "fig1.v"
    verilog.dump(fig1_circuit(), path)
    assert main(["kcycle", str(path), "--max-k", "3"]) == 0
    out = capsys.readouterr().out
    assert "k=3: 3 of 9" in out


def test_equiv_bench_vs_verilog(tmp_path, capsys):
    from repro.circuit.bench import dump as dump_bench

    bench_path = tmp_path / "fig1.bench"
    verilog_path = tmp_path / "fig1.v"
    dump_bench(fig1_circuit(), bench_path)
    verilog.dump(fig1_circuit(), verilog_path)
    assert main(["equiv", str(bench_path), str(verilog_path)]) == 0
    assert "EQUIVALENT" in capsys.readouterr().out
