"""Lint pass: collect-all semantics, severities, policy gate, file lint."""

from __future__ import annotations

import warnings
from pathlib import Path

import pytest

from repro.analysis import (
    LintError,
    LintWarning,
    Severity,
    enforce,
    lint,
    lint_file,
)
from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit, CircuitError

CORPUS = Path(__file__).resolve().parent.parent / "data" / "malformed"


def _messy_circuit() -> Circuit:
    """One circuit with an error, warnings and infos all at once."""
    c = Circuit("messy")
    a = c.add_node(GateType.INPUT, (), "a")
    c.add_node(GateType.INPUT, (), "unused")
    one = c.add_node(GateType.CONST1, (), "one")
    c.add_node(GateType.DFF, (one,), "const_ff")
    g1 = c.add_node(GateType.NOT, (a,), "g1")
    g2 = c.add_node(GateType.NOT, (g1,), "g2")
    c.add_node(GateType.AND, (a, g2), "dangling")
    c.add_node(GateType.OUTPUT, (g2,), "po")
    # comb cycle g1 -> g2 -> g1: the one structural ERROR.
    c.set_fanins(g1, (g2,))
    return c


def test_lint_collects_all_findings_at_once():
    report = lint(_messy_circuit())
    codes = report.codes()
    assert "comb-cycle" in codes
    assert "dangling-gate" in codes
    assert "unread-dff" in codes
    assert "constant-dff" in codes
    assert "unused-input" in codes
    assert len(report.errors) == 1
    assert not report.ok()


def test_lint_clean_circuit_is_ok(s27_circuit):
    report = lint(s27_circuit)
    assert report.ok()
    assert report.errors == []


def test_lint_is_cached_per_netlist_version(s27_circuit):
    assert lint(s27_circuit) is lint(s27_circuit)


def test_lint_cache_invalidates_on_mutation():
    c = _messy_circuit()
    first = lint(c)
    c.add_node(GateType.INPUT, (), "late")
    assert lint(c) is not first


def test_enforce_off_matches_classic_validate():
    with pytest.raises(CircuitError):
        enforce(_messy_circuit(), "off")
    assert enforce(Circuit("empty"), "off") is None


def test_enforce_warn_raises_lint_error_listing_all_errors():
    c = _messy_circuit()
    with pytest.raises(LintError) as excinfo:
        enforce(c, "warn")
    assert excinfo.value.report.errors
    assert "comb-cycle" in excinfo.value.report.codes()


def test_enforce_warn_emits_lint_warnings():
    c = Circuit("warny")
    a = c.add_node(GateType.INPUT, (), "a")
    g = c.add_node(GateType.NOT, (a,), "g")
    c.add_node(GateType.AND, (a, g), "dangling")
    c.add_node(GateType.OUTPUT, (g,), "po")
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        report = enforce(c, "warn")
    assert report is not None
    assert any(issubclass(w.category, LintWarning) for w in caught)


def test_enforce_strict_rejects_warnings():
    c = Circuit("warny")
    a = c.add_node(GateType.INPUT, (), "a")
    g = c.add_node(GateType.NOT, (a,), "g")
    c.add_node(GateType.AND, (a, g), "dangling")
    c.add_node(GateType.OUTPUT, (g,), "po")
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        assert enforce(c, "warn") is not None
    with pytest.raises(LintError, match="strict"):
        enforce(c, "strict")


def test_enforce_unknown_mode_rejected(s27_circuit):
    with pytest.raises(ValueError, match="unknown lint mode"):
        enforce(s27_circuit, "pedantic")


def test_severity_ordering():
    assert Severity.INFO < Severity.WARNING < Severity.ERROR


#: corpus file -> diagnostic code the seeded defect must surface as.
CORPUS_EXPECTED = {
    "unknown_function.bench": "parse-error",
    "undefined_signal.bench": "parse-error",
    "double_definition.bench": "parse-error",
    "input_redefined.bench": "parse-error",
    "const_with_operands.bench": "parse-error",
    "comb_cycle.bench": "comb-cycle",
    "dangling_gate.bench": "dangling-gate",
    "unknown_primitive.v": "parse-error",
    "driven_twice.v": "parse-error",
    "undriven_output.v": "parse-error",
    "missing_endmodule.v": "parse-error",
}


def test_corpus_is_fully_covered():
    found = {p.name for p in CORPUS.iterdir() if p.suffix in (".bench", ".v")}
    assert found == set(CORPUS_EXPECTED)


@pytest.mark.parametrize("filename", sorted(CORPUS_EXPECTED))
def test_lint_file_flags_every_seeded_defect(filename):
    report = lint_file(CORPUS / filename)
    assert CORPUS_EXPECTED[filename] in report.codes()
    assert not report.ok(strict=True)


def test_lint_file_reports_all_findings_of_parseable_file():
    # comb_cycle.bench parses; lint must deliver the full report, not
    # just the first validation failure.
    report = lint_file(CORPUS / "comb_cycle.bench")
    assert "comb-cycle" in report.codes()
    assert all(d.file for d in report.diagnostics)


def test_lint_file_parse_error_carries_line(tmp_path):
    bad = tmp_path / "bad.bench"
    bad.write_text("INPUT(a)\ng = FROB(a)\n")
    report = lint_file(bad)
    (diag,) = report.diagnostics
    assert diag.code == "parse-error"
    assert diag.line == 2


def test_lint_file_clean_circuit(tmp_path, s27_circuit):
    from repro.circuit import bench

    path = tmp_path / "s27.bench"
    bench.dump(s27_circuit, path)
    assert lint_file(path).ok(strict=True)
