"""Exact SAT-backed hazard classification: oracle differential + bounds.

Three layers of evidence that :class:`ExactHazardChecker` decides the
single-source X-propagation condition exactly:

* a brute-force *enumerative oracle* that tries every binary input
  assignment of the 2-frame expansion and re-evaluates the second frame
  ternarily with the source's state entry forced to X — the checker's
  verdict must match it bit for bit on small random circuits (including
  parity/MUX-heavy ones, where reconvergence is densest);
* *bound consistency* — a sensitizable path (justification-verified)
  forces ``glitch-proven``; a clean co-sensitization pass forces
  ``safe``;
* *non-interference* — ``pair_records()`` must be byte-identical with
  and without the exact stage, and the streaming/incremental execution
  paths must reproduce the staged verdicts.

The delay-annotated re-filter gets deterministic unit tests: a single
X-path cannot pulse under any delay assignment, while unequal-depth
reconvergence under unit delays can.
"""

from __future__ import annotations

import json
import random
from itertools import product

from hypothesis import assume, given, settings

from repro.analysis.hazard_exact import (
    ExactHazardChecker,
    empty_exact_summary,
    verdict_flags_pair,
)
from repro.circuit.builder import CircuitBuilder
from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit, validate
from repro.circuit.timeframe import expand
from repro.circuit.topology import FFPair
from repro.core.detector import DetectorOptions, MultiCycleDetector
from repro.core.hazard import HazardChecker
from repro.core.incremental import incremental_detect, result_bundle
from repro.core.result import (
    Classification,
    HazardVerdictKind,
    PairResult,
    Stage,
)
from repro.core.sensitization import SensitizationMode
from repro.core.ternary_hazard import ternary_eval
from repro.logic.simulator import evaluate_gate
from repro.logic.values import X
from repro.sta.delays import GateDelays
from tests.strategies import random_sequential_circuit, seeds


def _detect(circuit, **kw):
    return MultiCycleDetector(circuit, DetectorOptions(**kw)).run()


# ----------------------------------------------------------------------
# The enumerative oracle.
# ----------------------------------------------------------------------
def _phase_eval(circuit, expansion, full, source_node):
    """Second-frame ternary values with only ``source_node`` forced to X."""
    node_map = expansion.node_at[1]
    phase = {
        node: full[node] for node in dict.fromkeys(expansion.ff_at[1])
    }
    phase[source_node] = X
    for node in expansion.pi_at[1]:
        phase.setdefault(node, full[node])
    for node in circuit.topo_order():
        gate_type = circuit.types[node]
        if gate_type in (GateType.INPUT, GateType.DFF):
            continue
        copy = node_map[node]
        if gate_type is GateType.CONST0:
            phase[copy] = 0
            continue
        if gate_type is GateType.CONST1:
            phase[copy] = 1
            continue
        phase[copy] = evaluate_gate(
            gate_type,
            [phase[node_map[f]] for f in circuit.fanins[node]],
        )
    return phase


def oracle_glitches(circuit, expansion, pair, cases):
    """Does ANY premise-satisfying binary assignment drive the sink to X?"""
    comb = expansion.comb
    inputs = list(comb.inputs)
    source = expansion.ff_index(pair.source)
    sink = expansion.ff_index(pair.sink)
    source_node = expansion.ff_at[1][source]
    target = expansion.ff_at[2][sink]
    ffi_t = expansion.ff_at[0][source]
    ffj_t1 = expansion.ff_at[1][sink]
    for bits in product((0, 1), repeat=len(inputs)):
        full = ternary_eval(comb, dict(zip(inputs, bits)))
        for a, b in cases:
            if full[ffi_t] != a or full[source_node] != 1 - a:
                continue
            if full[ffj_t1] != b or full[target] != b:
                continue
            phase = _phase_eval(circuit, expansion, full, source_node)
            if phase[target] == X:
                return True
    return False


def _assert_matches_oracle(circuit):
    detection = _detect(circuit, hazard_check="exact")
    expansion = expand(circuit, frames=2)
    assume(len(expansion.comb.inputs) <= 12)
    by_pair = {
        (r.pair.source, r.pair.sink): r for r in detection.pair_results
    }
    for verdict in detection.hazard_verdicts:
        pair_result = by_pair[(verdict.pair.source, verdict.pair.sink)]
        cases = HazardChecker._satisfiable_cases(pair_result)
        expected = oracle_glitches(circuit, expansion, verdict.pair, cases)
        # Small circuits must always resolve: no budget exhaustion here.
        assert verdict.verdict is not HazardVerdictKind.GLITCH_POSSIBLE
        assert (
            verdict.verdict is HazardVerdictKind.GLITCH_PROVEN
        ) == expected, (
            f"{circuit.name}: pair {verdict.pair} verdict "
            f"{verdict.verdict.value} (by {verdict.decided_by}) but "
            f"oracle says glitches={expected}"
        )
    summary = detection.hazard_exact
    assert summary is not None
    assert summary["resolution_fraction"] == 1.0


@given(seeds)
@settings(max_examples=25)
def test_exact_matches_enumerative_oracle(seed):
    circuit = random_sequential_circuit(
        seed, max_inputs=3, max_dffs=4, max_gates=10
    )
    _assert_matches_oracle(circuit)


def _parity_mux_circuit(seed: int) -> Circuit:
    """XOR/MUX-biased random circuit: maximal X-propagation density."""
    rng = random.Random(seed)
    heavy = [GateType.XOR, GateType.XNOR, GateType.MUX, GateType.MUX]
    circuit = Circuit(f"parity{seed}")
    pool = [
        circuit.add_node(GateType.INPUT, (), f"pi{i}")
        for i in range(rng.randint(1, 2))
    ]
    dffs = [
        circuit.add_node(GateType.DFF, (0,), f"ff{i}")
        for i in range(rng.randint(2, 4))
    ]
    pool.extend(dffs)
    for g in range(rng.randint(2, 8)):
        gate_type = rng.choice(heavy)
        if gate_type is GateType.MUX:
            fanins = tuple(rng.choice(pool) for _ in range(3))
        else:
            fanins = tuple(rng.choice(pool) for _ in range(2))
        pool.append(circuit.add_node(gate_type, fanins, f"g{g}"))
    for dff in dffs:
        circuit.set_fanins(dff, (rng.choice(pool),))
    circuit.add_node(GateType.OUTPUT, (pool[-1],), "po0")
    validate(circuit)
    return circuit


@given(seeds)
@settings(max_examples=25)
def test_exact_matches_oracle_on_parity_mux_circuits(seed):
    _assert_matches_oracle(_parity_mux_circuit(seed))


# ----------------------------------------------------------------------
# Bound consistency: sensitize-FOUND <= exact <= cosensitize-clean.
# ----------------------------------------------------------------------
@given(seeds)
@settings(max_examples=20)
def test_exact_respects_sensitization_bounds(seed):
    circuit = random_sequential_circuit(seed, max_dffs=5, max_gates=18)
    detection = _detect(circuit, hazard_check="exact")
    if not detection.hazard_verdicts:
        return
    sens = HazardChecker(circuit, SensitizationMode.STATIC_SENSITIZATION)
    cosens = HazardChecker(
        circuit, SensitizationMode.STATIC_CO_SENSITIZATION
    )
    by_pair = {
        (r.pair.source, r.pair.sink): r for r in detection.pair_results
    }
    for verdict in detection.hazard_verdicts:
        pair_result = by_pair[(verdict.pair.source, verdict.pair.sink)]
        found = sens.check_pair(pair_result)
        if found.has_potential_hazard and not found.limited:
            # Lower bound: a justification-verified path IS a glitch.
            assert verdict.verdict is HazardVerdictKind.GLITCH_PROVEN
        cleared = cosens.check_pair(pair_result)
        if not cleared.has_potential_hazard:
            # Upper bound: no co-sensitized path means no glitch.
            assert verdict.verdict is HazardVerdictKind.SAFE


# ----------------------------------------------------------------------
# Non-interference and execution-path parity.
# ----------------------------------------------------------------------
@given(seeds)
@settings(max_examples=15)
def test_pair_records_byte_identical_with_and_without_exact(seed):
    circuit = random_sequential_circuit(seed, max_dffs=5, max_gates=16)
    base = _detect(circuit, hazard_check="off")
    exact = _detect(circuit, hazard_check="exact")
    assert json.dumps(base.pair_records(), sort_keys=True) == json.dumps(
        exact.pair_records(), sort_keys=True
    )


def _verdict_fingerprint(detection):
    return [
        (v.pair, v.verdict.value, v.witness_case, v.delay_safe)
        for v in detection.hazard_verdicts
    ]


@given(seeds)
@settings(max_examples=10)
def test_streaming_exact_matches_staged(seed):
    circuit = random_sequential_circuit(seed, max_dffs=6, max_gates=20)
    staged = _detect(circuit, hazard_check="exact", streaming="off")
    streamed = _detect(circuit, hazard_check="exact", streaming="on")
    assert _verdict_fingerprint(staged) == _verdict_fingerprint(streamed)
    assert staged.hazard_exact == streamed.hazard_exact
    assert staged.hazard_flagged_pairs == streamed.hazard_flagged_pairs
    assert json.dumps(staged.pair_records(), sort_keys=True) == json.dumps(
        streamed.pair_records(), sort_keys=True
    )


@given(seeds)
@settings(max_examples=10)
def test_incremental_inherits_exact_verdicts(seed):
    circuit = random_sequential_circuit(seed, max_dffs=5, max_gates=16)
    options = DetectorOptions(hazard_check="exact")
    prior = _detect(circuit, hazard_check="exact")
    bundle = result_bundle(prior, options)
    merged = incremental_detect(circuit, options, bundle=bundle)
    # Identity ECO: every verdict inherits, kinds and flags unchanged.
    kinds = [
        (v.pair, v.verdict.value) for v in merged.hazard_verdicts
    ]
    assert kinds == [
        (v.pair, v.verdict.value) for v in prior.hazard_verdicts
    ]
    assert merged.hazard_flagged_pairs == prior.hazard_flagged_pairs
    assert all(
        v.decided_by == "inherited" for v in merged.hazard_verdicts
    )


def _single_ff_circuit() -> Circuit:
    builder = CircuitBuilder("lone")
    ff = builder.dff("ff0")
    builder.drive(ff, builder.not_(builder.input("pi"), name="g"))
    builder.output("po0", ff)
    return builder.build()


def test_empty_exact_summary_shape():
    summary = empty_exact_summary()
    assert summary["resolution_fraction"] == 1.0
    assert summary["checked"] == 0
    # Zero multi-cycle survivors still report a complete exact pass.
    detection = _detect(_single_ff_circuit(), hazard_check="exact")
    assert detection.hazard_exact is not None
    assert detection.hazard_exact["resolution_fraction"] == 1.0


# ----------------------------------------------------------------------
# Delay-annotated re-filtering.
# ----------------------------------------------------------------------
def _mc_pair_result(source: int, sink: int) -> PairResult:
    """A bare multi-cycle record (no cases: all four premises tried)."""
    return PairResult(
        FFPair(source, sink), Classification.MULTI_CYCLE, Stage.ATPG
    )


def _single_path_circuit():
    builder = CircuitBuilder("single-path")
    enable = builder.input("en")
    source = builder.dff("FFS")
    sink = builder.dff("FFK", d=builder.and_(source, enable, name="g"))
    builder.drive(source, builder.input("d"))
    return builder.build(), source, sink


def test_single_x_path_is_glitch_proven_without_delays():
    circuit, source, sink = _single_path_circuit()
    checker = ExactHazardChecker(circuit)
    verdict = checker.check_pair(_mc_pair_result(source, sink))
    assert verdict.verdict is HazardVerdictKind.GLITCH_PROVEN
    assert verdict.delay_safe is None
    assert verdict_flags_pair(verdict)


def test_delay_filter_kills_single_x_path():
    """One X-path means earliest == latest: no pulse can ever form."""
    circuit, source, sink = _single_path_circuit()
    checker = ExactHazardChecker(circuit, delays=GateDelays())
    verdict = checker.check_pair(_mc_pair_result(source, sink))
    assert verdict.verdict is HazardVerdictKind.GLITCH_PROVEN
    assert verdict.decided_by == "exact"
    assert verdict.delay_safe is True
    assert not verdict_flags_pair(verdict)
    assert checker.counters["delay_filtered"] == 1


def test_delay_filter_keeps_unequal_depth_reconvergence():
    """src AND not(src): path depths 1 vs 2, so unit delays pulse."""
    builder = CircuitBuilder("reconv")
    source = builder.dff("FFS")
    sink = builder.dff(
        "FFK",
        d=builder.and_(source, builder.not_(source, name="inv"), name="g"),
    )
    builder.drive(source, builder.input("d"))
    circuit = builder.build()
    checker = ExactHazardChecker(circuit, delays=GateDelays())
    verdict = checker.check_pair(_mc_pair_result(source, sink))
    assert verdict.verdict is HazardVerdictKind.GLITCH_PROVEN
    assert verdict.delay_safe is False
    assert verdict_flags_pair(verdict)


def test_delay_filter_balanced_reconvergence_through_pipeline(tmp_path):
    """Balanced depths cancel: the pipeline un-flags the proven glitch."""
    builder = CircuitBuilder("balanced")
    source = builder.dff("FFS")
    sink = builder.dff(
        "FFK",
        d=builder.and_(
            builder.buf(source, name="fwd"),
            builder.not_(source, name="inv"),
            name="g",
        ),
    )
    builder.drive(source, builder.input("d"))
    circuit = builder.build()
    sidecar = tmp_path / "delays.json"
    sidecar.write_text(json.dumps({"default": {"min": 1.0, "max": 1.0}}))

    plain = _detect(circuit, hazard_check="exact")
    filtered = _detect(
        circuit, hazard_check="exact", hazard_delays=str(sidecar)
    )
    by_pair = {
        (v.pair.source, v.pair.sink): v for v in plain.hazard_verdicts
    }
    assert by_pair[(source, sink)].verdict is (
        HazardVerdictKind.GLITCH_PROVEN
    )
    assert FFPair(source, sink) in plain.hazard_flagged_pairs

    by_pair = {
        (v.pair.source, v.pair.sink): v for v in filtered.hazard_verdicts
    }
    verdict = by_pair[(source, sink)]
    assert verdict.verdict is HazardVerdictKind.GLITCH_PROVEN
    assert verdict.delay_safe is True
    assert FFPair(source, sink) not in filtered.hazard_flagged_pairs
    # Non-hazard records stay byte-identical under the delay sidecar.
    assert json.dumps(plain.pair_records(), sort_keys=True) == json.dumps(
        filtered.pair_records(), sort_keys=True
    )


# ----------------------------------------------------------------------
# Delay sidecar parsing.
# ----------------------------------------------------------------------
def test_gate_delays_sidecar_parsing(tmp_path):
    payload = {
        "default": {"min": 1.0, "max": 2.0},
        "gates": {"g": {"min": 0.5, "max": 0.75}},
    }
    path = tmp_path / "d.json"
    path.write_text(json.dumps(payload))
    delays = GateDelays.load(path)
    assert delays.interval("g").max == 0.75
    assert delays.interval("anything-else").min == 1.0


def test_gate_delays_sidecar_validation(tmp_path):
    import pytest

    circuit, _, _ = _single_path_circuit()
    bad = tmp_path / "unknown.json"
    bad.write_text(json.dumps({"gates": {"nope": {"min": 1, "max": 1}}}))
    with pytest.raises(ValueError, match="unknown gate"):
        GateDelays.load(bad, circuit)

    with pytest.raises(ValueError):
        GateDelays.from_payload({"default": {"min": -1.0, "max": 0.0}})
    with pytest.raises(ValueError):
        GateDelays.from_payload({"default": {"min": 2.0, "max": 1.0}})
    with pytest.raises(ValueError):
        GateDelays.from_payload([1, 2, 3])
