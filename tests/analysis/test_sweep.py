"""Constant sweep: report contents + differential equivalence of
``simplified`` against the original on the bit-parallel simulator."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given

from repro.analysis import simplified, sweep
from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit, validate
from repro.logic.bitsim import BitSimulator
from tests.strategies import random_sequential_circuit, seeds


def test_constant_propagation_through_gates():
    c = Circuit("consts")
    a = c.add_node(GateType.INPUT, (), "a")
    zero = c.add_node(GateType.CONST0, (), "zero")
    g = c.add_node(GateType.AND, (a, zero), "g")       # = 0
    h = c.add_node(GateType.NOR, (g, g), "h")          # = 1
    c.add_node(GateType.OUTPUT, (h,), "po")
    report = sweep(c)
    # the OUTPUT shell also shows up constant — worth reporting too
    assert report.constants == {"g": 0, "h": 1, "po": 1}


def test_equivalent_gates_detected():
    c = Circuit("dup")
    a = c.add_node(GateType.INPUT, (), "a")
    b = c.add_node(GateType.INPUT, (), "b")
    g1 = c.add_node(GateType.NAND, (a, b), "g1")
    g2 = c.add_node(GateType.NAND, (b, a), "g2")       # commutative dup
    c.add_node(GateType.OUTPUT, (g1,), "po1")
    c.add_node(GateType.OUTPUT, (g2,), "po2")
    report = sweep(c)
    assert report.equivalences == {"g2": "g1"}


def test_dead_logic_detected_behind_dff_cone():
    c = Circuit("dead")
    a = c.add_node(GateType.INPUT, (), "a")
    live = c.add_node(GateType.NOT, (a,), "live")
    c.add_node(GateType.DFF, (live,), "ff")            # keeps `live` alive
    c.add_node(GateType.BUF, (a,), "corpse")           # feeds nothing
    c.add_node(GateType.OUTPUT, (a,), "po")
    report = sweep(c)
    assert report.dead == ("corpse",)
    assert "live" not in report.dead


def test_sweep_is_cached(s27_circuit):
    assert sweep(s27_circuit) is sweep(s27_circuit)


def test_report_format_mentions_counts():
    c = Circuit("consts")
    a = c.add_node(GateType.INPUT, (), "a")
    zero = c.add_node(GateType.CONST0, (), "zero")
    g = c.add_node(GateType.AND, (a, zero), "g")
    c.add_node(GateType.OUTPUT, (g,), "po")
    text = sweep(c).format()
    assert "constant" in text


def test_simplified_removes_removable_nodes(fig1):
    report = sweep(fig1)
    slim = simplified(fig1)
    validate(slim)
    assert slim.num_nodes <= fig1.num_nodes
    assert fig1.num_nodes - slim.num_nodes >= min(1, report.num_removable)


def _assert_simulation_equivalent(original: Circuit, slim: Circuit, seed: int):
    """Drive both circuits with identical random source words."""
    words = 2
    rng = np.random.default_rng(seed)
    sims = [BitSimulator(original, words=words), BitSimulator(slim, words=words)]
    source_names = {
        original.names[n]
        for n in list(original.inputs) + list(original.dffs)
    }
    for name in sorted(source_names):
        word = rng.integers(0, 2**63, size=words, dtype=np.uint64)
        for sim in sims:
            sim.set_word(sim.circuit.id_of(name), word)
    for sim in sims:
        sim.comb_eval()

    def observed(sim: BitSimulator) -> dict[str, tuple[int, ...]]:
        c = sim.circuit
        out: dict[str, tuple[int, ...]] = {}
        for po in c.outputs:
            out[c.names[po]] = tuple(int(w) for w in sim.values[po])
        for dff in c.dffs:
            nxt = c.next_state_node(dff)
            out[f"next:{c.names[dff]}"] = tuple(int(w) for w in sim.values[nxt])
        return out

    assert observed(sims[0]) == observed(sims[1])


@given(seeds)
def test_simplified_is_simulation_equivalent(seed):
    original = random_sequential_circuit(seed)
    slim = simplified(original)
    assert set(slim.names) >= {
        original.names[n]
        for n in list(original.inputs) + list(original.dffs)
        + list(original.outputs)
    }
    _assert_simulation_equivalent(original, slim, seed)


@pytest.mark.parametrize("fixture", ["fig1", "s27_circuit", "shift4"])
def test_simplified_library_circuits_equivalent(fixture, request):
    original = request.getfixturevalue(fixture)
    _assert_simulation_equivalent(original, simplified(original), seed=7)
