"""Property tests for the compiled global implication database.

Soundness: every edge ``(n,v) => (m,w)`` must hold in every consistent
complete assignment of the circuit — checked by exhaustive enumeration
of all source (PI + FF) patterns on the three-valued simulator.
Invariance: rebuilding the database on a node-reordered clone of the
same netlist must produce the identical name-level implication set.
"""

from __future__ import annotations

import pickle
import random

from hypothesis import given, settings

from repro.analysis import ImplicationDB, build_implication_db, implication_db
from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit
from repro.logic.simulator import Simulator
from tests.strategies import random_sequential_circuit, seeds


def _all_source_patterns(circuit: Circuit):
    """Yield node-value vectors for every binary source assignment."""
    sources = list(circuit.inputs) + list(circuit.dffs)
    assert len(sources) <= 12, "exhaustive check only for small circuits"
    sim = Simulator(circuit)
    for pattern in range(2 ** len(sources)):
        assignment = {
            src: (pattern >> k) & 1 for k, src in enumerate(sources)
        }
        sim.set_inputs({s: v for s, v in assignment.items()
                        if circuit.types[s] == GateType.INPUT})
        sim.set_state({s: v for s, v in assignment.items()
                       if circuit.types[s] == GateType.DFF})
        sim.comb_eval()
        yield list(sim.values)


def _assert_sound(circuit: Circuit, db: ImplicationDB):
    impossible = set(db.impossible)
    violations = []
    for values in _all_source_patterns(circuit):
        for lit in impossible:
            if values[lit >> 1] == (lit & 1):
                violations.append(("impossible", lit >> 1, lit & 1))
        for node, value in db.keys():
            if 2 * node + value in impossible:
                continue
            if values[node] != value:
                continue
            for m, w in db.consequents(node, value):
                if values[m] != w:
                    violations.append((node, value, m, w))
        if violations:
            break
    assert not violations, violations[:10]


def test_db_sound_on_s27(s27_circuit):
    _assert_sound(s27_circuit, build_implication_db(s27_circuit))


def test_db_sound_on_fig1(fig1):
    _assert_sound(fig1, build_implication_db(fig1))


@given(seeds)
@settings(max_examples=15)
def test_db_sound_on_random_circuits(seed):
    circuit = random_sequential_circuit(seed)
    _assert_sound(circuit, build_implication_db(circuit))


def _shuffled_clone(circuit: Circuit, seed: int) -> Circuit:
    """Same netlist, nodes created in a different order (names kept)."""
    rng = random.Random(seed)
    order = list(range(circuit.num_nodes))
    rng.shuffle(order)
    clone = Circuit(circuit.name)
    new_id = {}
    for old in order:
        new_id[old] = clone.add_node(circuit.types[old], (), circuit.names[old])
    for old in order:
        clone.set_fanins(
            new_id[old], tuple(new_id[f] for f in circuit.fanins[old])
        )
    return clone


def _name_level(circuit: Circuit, db: ImplicationDB):
    names = circuit.names
    edges = {
        (names[n], v): frozenset((names[m], w) for m, w in db.consequents(n, v))
        for n, v in db.keys()
    }
    impossible = frozenset(
        (names[lit >> 1], lit & 1) for lit in db.impossible
    )
    return edges, impossible


@given(seeds)
@settings(max_examples=15)
def test_db_invariant_under_node_reordering(seed):
    circuit = random_sequential_circuit(seed)
    clone = _shuffled_clone(circuit, seed + 1)
    original = _name_level(circuit, build_implication_db(circuit))
    reordered = _name_level(clone, build_implication_db(clone))
    assert original == reordered


def test_engine_with_db_derives_contrapositives(fig1):
    # The compiled lists drop anything a fresh local run rederives (the
    # SOCRATES criterion), so the contract is: an engine consuming the
    # DB still reaches every contrapositive m=!w  =>  n=!v.
    from repro.atpg.implication import ImplicationEngine
    from repro.logic.values import X

    db = build_implication_db(fig1)
    impossible = set(db.impossible)
    missing = []
    for n, v in db.keys():
        if 2 * n + v in impossible:
            continue
        for m, w in db.consequents(n, v):
            if 2 * m + (1 - w) in impossible:
                continue
            engine = ImplicationEngine(fig1, learned=db)
            assert engine.assume(m, 1 - w)
            if engine.value(n) == X or engine.value(n) != 1 - v:
                missing.append(((n, v), (m, w)))
    assert not missing, missing[:5]


def test_impossible_literal_encodes_self_contradiction():
    c = Circuit("forced")
    one = c.add_node(GateType.CONST1, (), "one")
    g = c.add_node(GateType.BUF, (one,), "g")  # g can never be 0
    c.add_node(GateType.OUTPUT, (g,), "po")
    db = build_implication_db(c)
    lit = 2 * g + 0
    assert lit in db.impossible
    assert db.consequents(g, 0) == ((g, 1),)


def test_db_pickle_round_trip(s27_circuit):
    db = build_implication_db(s27_circuit)
    clone = pickle.loads(pickle.dumps(db))
    assert clone.num_nodes == db.num_nodes
    assert dict(clone._table) == dict(db._table)
    assert clone.impossible == db.impossible


def test_db_duck_types_learned_table(s27_circuit):
    db = build_implication_db(s27_circuit)
    key = next(iter(db.keys()))
    assert db.get(key) == db.consequents(*key)
    assert db.get((10**6, 0), ()) == ()
    assert key in db
    assert len(db) == db.num_keys
    assert bool(db)


def test_db_stats_block(s27_circuit):
    stats = build_implication_db(s27_circuit).stats()
    assert set(stats) == {"nodes", "keys", "edges", "impossible",
                          "build_seconds"}
    assert stats["nodes"] == s27_circuit.num_nodes
    assert stats["edges"] >= stats["keys"]


def test_db_cached_per_netlist_version(s27_circuit):
    assert implication_db(s27_circuit) is implication_db(s27_circuit)


def test_max_consequents_truncation(s27_circuit):
    full = build_implication_db(s27_circuit)
    capped = build_implication_db(s27_circuit, max_consequents_per_key=1)
    impossible = set(capped.impossible)
    for n, v in capped.keys():
        if 2 * n + v in impossible:
            continue
        assert len(capped.consequents(n, v)) <= 1
    assert capped.num_edges <= full.num_edges
