"""Analysis layer ↔ detection pipeline: the PR's acceptance invariants.

* ``--lint off`` and ``--lint warn`` produce byte-identical pair records
  on an accepted circuit (lint only validates, never rewrites);
* with the implication DB the per-pair classifications are unchanged and
  the implication stage proves at least as many pairs as without it;
* the DB's stats surface on the result for observability.
"""

from __future__ import annotations

import json
import warnings

import pytest

from repro.core.detector import DetectorOptions, detect_multi_cycle_pairs
from repro.core.result import Classification, Stage

CIRCUITS = ["fig1", "s27_circuit", "shift4", "gray3"]


def _records(circuit, **options) -> str:
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        result = detect_multi_cycle_pairs(circuit, DetectorOptions(**options))
    return json.dumps(result.pair_records(), sort_keys=True)


@pytest.mark.parametrize("fixture", CIRCUITS)
def test_lint_modes_preserve_pair_records(fixture, request):
    circuit = request.getfixturevalue(fixture)
    assert _records(circuit, lint="off") == _records(circuit, lint="warn")


@pytest.mark.parametrize("fixture", CIRCUITS)
def test_implication_db_preserves_classifications(fixture, request):
    circuit = request.getfixturevalue(fixture)
    base = detect_multi_cycle_pairs(circuit, DetectorOptions())
    with_db = detect_multi_cycle_pairs(
        circuit, DetectorOptions(implication_db=True)
    )

    def verdicts(result):
        names = result.circuit.names
        return {
            (names[p.pair.source], names[p.pair.sink]): p.classification
            for p in result.pair_results
        }

    assert verdicts(base) == verdicts(with_db)


@pytest.mark.parametrize("fixture", CIRCUITS)
def test_implication_db_proves_at_least_as_many(fixture, request):
    circuit = request.getfixturevalue(fixture)

    def implication_proved(result):
        return sum(
            1
            for p in result.pair_results
            if p.stage is Stage.IMPLICATION
            and p.classification is not Classification.UNDECIDED
        )

    base = detect_multi_cycle_pairs(circuit, DetectorOptions())
    with_db = detect_multi_cycle_pairs(
        circuit, DetectorOptions(implication_db=True)
    )
    assert implication_proved(with_db) >= implication_proved(base)


def test_db_stats_surface_on_result(fig1):
    result = detect_multi_cycle_pairs(
        fig1, DetectorOptions(implication_db=True, use_random_sim=False)
    )
    assert result.implication_db is not None
    assert result.implication_db["nodes"] > 0
    assert result.implication_db["edges"] >= result.implication_db["keys"]
    off = detect_multi_cycle_pairs(fig1, DetectorOptions())
    assert off.implication_db is None


def test_lint_strict_rejects_circuit_with_warnings():
    from repro.analysis import LintError
    from repro.circuit.gates import GateType
    from repro.circuit.netlist import Circuit

    c = Circuit("warny")
    a = c.add_node(GateType.INPUT, (), "a")
    g = c.add_node(GateType.NOT, (a,), "g")
    c.add_node(GateType.AND, (a, g), "dangling")
    c.add_node(GateType.DFF, (g,), "ff")
    c.add_node(GateType.OUTPUT, (g,), "po")
    with pytest.raises(LintError):
        detect_multi_cycle_pairs(c, DetectorOptions(lint="strict"))
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        result = detect_multi_cycle_pairs(c, DetectorOptions(lint="warn"))
    assert result is not None


def test_db_works_with_parallel_workers(fig1):
    serial = _records(fig1, implication_db=True)
    parallel = _records(fig1, implication_db=True, workers=2)
    assert serial == parallel
