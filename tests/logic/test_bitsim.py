"""The bit-parallel simulator must agree with the three-valued simulator."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.circuit.library import binary_counter, fig1_circuit
from repro.logic.bitsim import BitSimulator, simulate_three_frames
from repro.logic.simulator import Simulator

from tests.strategies import random_sequential_circuit, seeds


def _bit(word_row: np.ndarray, pattern: int) -> int:
    word, bit = divmod(pattern, 64)
    return int((int(word_row[word]) >> bit) & 1)


@given(seeds, st.integers(min_value=0, max_value=2**32 - 1))
def test_three_frames_agree_with_scalar_simulation(seed, rng_seed):
    """Each packed pattern must reproduce a scalar 2-cycle simulation."""
    circuit = random_sequential_circuit(seed)
    rng = np.random.default_rng(rng_seed)

    sim = BitSimulator(circuit, words=1)
    sim.randomize_sources(rng)
    initial_state = sim.state_matrix()
    initial_inputs = sim.values[circuit.inputs].copy() if circuit.inputs else None
    sim.comb_eval()
    sim.clock()
    s1 = sim.state_matrix()
    second_inputs = None
    if circuit.inputs:
        second_inputs = rng.integers(0, 1 << 64, size=(len(circuit.inputs), 1),
                                     dtype=np.uint64)
        sim.values[circuit.inputs] = second_inputs
    sim.comb_eval()
    sim.clock()
    s2 = sim.state_matrix()

    for pattern in (0, 17, 63):
        scalar = Simulator(circuit)
        scalar.set_all_state([_bit(initial_state[k], pattern)
                              for k in range(len(circuit.dffs))])
        if circuit.inputs:
            scalar.set_all_inputs([_bit(initial_inputs[k], pattern)
                                   for k in range(len(circuit.inputs))])
        scalar.clock()
        for k, dff in enumerate(circuit.dffs):
            assert scalar.values[dff] == _bit(s1[k], pattern)
        if circuit.inputs:
            scalar.set_all_inputs([_bit(second_inputs[k], pattern)
                                   for k in range(len(circuit.inputs))])
        scalar.clock()
        for k, dff in enumerate(circuit.dffs):
            assert scalar.values[dff] == _bit(s2[k], pattern)


def test_counter_all_patterns_increment():
    """With the state packed as patterns, every lane counts independently."""
    circuit = binary_counter(4)
    sim = BitSimulator(circuit, words=1)
    rng = np.random.default_rng(7)
    sim.randomize_sources(rng)
    before = sim.state_matrix()
    sim.comb_eval()
    sim.clock()
    after = sim.state_matrix()
    for pattern in range(64):
        value_before = sum(_bit(before[k], pattern) << k for k in range(4))
        value_after = sum(_bit(after[k], pattern) << k for k in range(4))
        assert value_after == (value_before + 1) % 16


def test_simulate_three_frames_shapes():
    circuit = fig1_circuit()
    s0, s1, s2 = simulate_three_frames(circuit, np.random.default_rng(0), words=3)
    assert s0.shape == s1.shape == s2.shape == (4, 3)


def test_words_must_be_positive():
    with pytest.raises(ValueError):
        BitSimulator(fig1_circuit(), words=0)


def test_const_nodes_hold_their_word_values():
    from repro.circuit.builder import CircuitBuilder

    builder = CircuitBuilder("c")
    one = builder.const1("one")
    zero = builder.const0("zero")
    builder.output("o", builder.or_(zero, one, name="g"))
    circuit = builder.build()
    sim = BitSimulator(circuit, words=2)
    sim.comb_eval()
    g = circuit.id_of("g")
    assert int(sim.values[g][0]) == 0xFFFFFFFFFFFFFFFF
    assert int(sim.values[circuit.id_of("zero")][0]) == 0
