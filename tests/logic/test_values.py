"""Exhaustive checks of the three-valued algebra."""

import itertools

import pytest

from repro.logic.values import (
    BINARY,
    ONE,
    VALUES,
    X,
    ZERO,
    from_char,
    is_binary,
    to_char,
    v_and,
    v_and_all,
    v_mux,
    v_not,
    v_or,
    v_or_all,
    v_xor,
    v_xor_all,
)


def _lift(op, a, b):
    """Three-valued semantics by enumeration over the X completions."""
    candidates = {
        op(x, y)
        for x in (BINARY if a == X else (a,))
        for y in (BINARY if b == X else (b,))
    }
    return candidates.pop() if len(candidates) == 1 else X


@pytest.mark.parametrize("a", VALUES)
@pytest.mark.parametrize("b", VALUES)
def test_and_matches_completion_semantics(a, b):
    assert v_and(a, b) == _lift(lambda x, y: x & y, a, b)


@pytest.mark.parametrize("a", VALUES)
@pytest.mark.parametrize("b", VALUES)
def test_or_matches_completion_semantics(a, b):
    assert v_or(a, b) == _lift(lambda x, y: x | y, a, b)


@pytest.mark.parametrize("a", VALUES)
@pytest.mark.parametrize("b", VALUES)
def test_xor_matches_completion_semantics(a, b):
    assert v_xor(a, b) == _lift(lambda x, y: x ^ y, a, b)


@pytest.mark.parametrize("a", VALUES)
def test_not(a):
    expected = X if a == X else 1 - a
    assert v_not(a) == expected


@pytest.mark.parametrize("a", VALUES)
@pytest.mark.parametrize("b", VALUES)
def test_commutativity(a, b):
    assert v_and(a, b) == v_and(b, a)
    assert v_or(a, b) == v_or(b, a)
    assert v_xor(a, b) == v_xor(b, a)


@pytest.mark.parametrize("a", VALUES)
def test_identities(a):
    assert v_and(a, ONE) == a
    assert v_or(a, ZERO) == a
    assert v_xor(a, ZERO) == a
    assert v_and(a, ZERO) == ZERO
    assert v_or(a, ONE) == ONE


def test_de_morgan_over_all_values():
    for a, b in itertools.product(VALUES, repeat=2):
        assert v_not(v_and(a, b)) == v_or(v_not(a), v_not(b))
        assert v_not(v_or(a, b)) == v_and(v_not(a), v_not(b))


def test_reductions_match_pairwise():
    for values in itertools.product(VALUES, repeat=3):
        assert v_and_all(values) == v_and(v_and(values[0], values[1]), values[2])
        assert v_or_all(values) == v_or(v_or(values[0], values[1]), values[2])
        assert v_xor_all(values) == v_xor(v_xor(values[0], values[1]), values[2])


def test_reduction_identities_on_empty():
    assert v_and_all([]) == ONE
    assert v_or_all([]) == ZERO
    assert v_xor_all([]) == ZERO


def test_mux_exhaustive():
    for s, d0, d1 in itertools.product(VALUES, repeat=3):
        got = v_mux(s, d0, d1)
        outcomes = {
            (d1c if sc else d0c)
            for sc in (BINARY if s == X else (s,))
            for d0c in (BINARY if d0 == X else (d0,))
            for d1c in (BINARY if d1 == X else (d1,))
        }
        expected = outcomes.pop() if len(outcomes) == 1 else X
        assert got == expected, (s, d0, d1)


def test_is_binary():
    assert is_binary(ZERO) and is_binary(ONE) and not is_binary(X)


def test_char_round_trip():
    for value in VALUES:
        assert from_char(to_char(value)) == value
    assert from_char("x") == X


def test_from_char_rejects_garbage():
    with pytest.raises(ValueError):
        from_char("2")
