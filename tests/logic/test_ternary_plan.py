"""The two-plane ternary plan must match the scalar ternary evaluator.

:class:`~repro.logic.bitsim.TernarySimulator` evaluates {0, 1, X} logic
bit-parallel on the compiled plan: the ``care`` plane marks known lanes,
the ``value`` plane carries the known values.  These tests pin its
contract:

* every node of every lane agrees with the scalar :func:`ternary_eval`
  dict walk, on arbitrary random circuits and random {0, 1, X} seedings
  (combinational circuits and 2-frame expansions alike);
* the planes stay canonical (``value & ~care == 0``) after evaluation;
* pinned rows override the plan's own computation and propagate
  downstream, which is how the hazard checker holds frame-1 state nodes;
* :func:`pack_lane_matrix` packs lane matrices in the simulator's
  little-endian lane order and rejects overflowing lane counts.
"""

from __future__ import annotations

import random

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.circuit.builder import CircuitBuilder
from repro.circuit.timeframe import expand_cached
from repro.core.ternary_hazard import ternary_eval
from repro.logic.bitsim import TernarySimulator, pack_lane_matrix
from repro.logic.values import X

from tests.strategies import (
    random_combinational_circuit,
    random_sequential_circuit,
    seeds,
)

_LANES = 96  # spills into the second word on words=2


def _seed_lanes(sim, circuit, rng):
    """Random {0, 1, X} per source per lane; returns per-lane dicts."""
    sources = list(circuit.inputs)
    assignments = [{} for _ in range(_LANES)]
    value = np.zeros((len(sources), _LANES), dtype=np.uint8)
    care = np.zeros((len(sources), _LANES), dtype=np.uint8)
    for row, node in enumerate(sources):
        for lane in range(_LANES):
            choice = rng.choice((0, 1, X))
            assignments[lane][node] = choice
            if choice is not X:
                care[row, lane] = 1
                value[row, lane] = choice
    sim.set_source_planes(
        sources,
        pack_lane_matrix(value, sim.words),
        pack_lane_matrix(care, sim.words),
    )
    return assignments


def _assert_matches_scalar(circuit):
    sim = TernarySimulator(circuit, words=2)
    assignments = _seed_lanes(sim, circuit, random.Random(circuit.name))
    sim.comb_eval()
    for lane in (0, 1, 63, 64, _LANES - 1):
        expected = ternary_eval(circuit, assignments[lane])
        for node in range(circuit.num_nodes):
            assert sim.lane_value(node, lane) == expected[node], (
                f"{circuit.name}: node {node} lane {lane}"
            )


@given(seeds)
def test_ternary_plan_matches_scalar_on_combinational(seed):
    _assert_matches_scalar(random_combinational_circuit(seed))


@given(seeds)
def test_ternary_plan_matches_scalar_on_expansions(seed):
    """The hazard checker's actual substrate: 2-frame expansion combs."""
    circuit = random_sequential_circuit(seed)
    _assert_matches_scalar(expand_cached(circuit, frames=2).comb)


@given(seeds)
def test_planes_stay_canonical(seed):
    circuit = random_combinational_circuit(seed)
    sim = TernarySimulator(circuit, words=2)
    _seed_lanes(sim, circuit, random.Random(seed))
    sim.comb_eval()
    assert not np.any(sim.value & ~sim.care)


def test_unseeded_sources_default_to_x():
    builder = CircuitBuilder("t")
    a, b = builder.input("a"), builder.input("b")
    builder.output("o", builder.and_(a, b, name="g"))
    circuit = builder.build()
    sim = TernarySimulator(circuit, words=1)
    sim.comb_eval()
    assert sim.lane_value(circuit.id_of("g"), 0) is X


def test_pinned_row_overrides_plan_and_propagates():
    builder = CircuitBuilder("t")
    a, b, c = builder.input("a"), builder.input("b"), builder.input("c")
    g = builder.and_(a, b, name="g")
    builder.output("o", builder.or_(g, c, name="h"))
    circuit = builder.build()
    g_id, h_id = circuit.id_of("g"), circuit.id_of("h")

    sim = TernarySimulator(circuit, words=1)
    # a=b=1 would make g=1; pin g to X instead and drive c=0 / c=1 on
    # two lanes: h must read the pin, not the computed value.
    value = pack_lane_matrix(np.array([[1, 1], [1, 1], [0, 1]], dtype=np.uint8), 1)
    care = pack_lane_matrix(np.ones((3, 2), dtype=np.uint8), 1)
    sim.set_source_planes([a, b, c], value, care)
    pin = np.asarray([g_id], dtype=np.intp)
    sim.comb_eval(pin, np.zeros((1, 1), np.uint64), np.zeros((1, 1), np.uint64))
    assert sim.lane_value(g_id, 0) is X  # pin held after the sweep
    assert sim.lane_value(h_id, 0) is X  # X OR 0 = X
    assert sim.lane_value(h_id, 1) == 1  # X OR 1 = 1


def test_clear_sources_resets_to_x_but_keeps_constants():
    builder = CircuitBuilder("t")
    a = builder.input("a")
    one = builder.const1("one")
    builder.output("o", builder.and_(a, one, name="g"))
    circuit = builder.build()
    sim = TernarySimulator(circuit, words=1)
    ones = np.full((1, 1), np.uint64(0xFFFFFFFFFFFFFFFF))
    sim.set_source_planes([a], ones, ones)
    sim.comb_eval()
    assert sim.lane_value(circuit.id_of("g"), 0) == 1
    sim.clear_sources()
    sim.comb_eval()
    assert sim.lane_value(a, 0) is X
    assert sim.lane_value(circuit.id_of("one"), 0) == 1
    assert sim.lane_value(circuit.id_of("g"), 0) is X


@given(seeds, st.integers(min_value=1, max_value=3))
def test_pack_lane_matrix_roundtrip(seed, words):
    rng = np.random.default_rng(seed)
    lanes = rng.integers(1, 64 * words + 1)
    matrix = rng.integers(0, 2, size=(5, lanes), dtype=np.uint8)
    packed = pack_lane_matrix(matrix, words)
    assert packed.shape == (5, words)
    for lane in range(int(lanes)):
        bits = (packed[:, lane // 64] >> np.uint64(lane % 64)) & np.uint64(1)
        assert np.array_equal(bits.astype(np.uint8), matrix[:, lane])


def test_pack_lane_matrix_rejects_overflow():
    import pytest

    with pytest.raises(ValueError, match="do not fit"):
        pack_lane_matrix(np.zeros((2, 65), dtype=np.uint8), 1)
