"""VCD tracing output format and content."""

from repro.circuit.library import binary_counter, fig1_circuit
from repro.logic.simulator import Simulator
from repro.logic.vcd import VcdTracer, _identifier, trace_circuit


def test_identifiers_unique_and_printable():
    identifiers = [_identifier(i) for i in range(500)]
    assert len(set(identifiers)) == 500
    assert all(all(33 <= ord(c) <= 126 for c in ident) for ident in identifiers)


def test_header_declares_signals():
    circuit = binary_counter(2)
    tracer = trace_circuit(circuit, 4, initial_state=[0, 0])
    text = tracer.dumps()
    assert "$timescale 1ns $end" in text
    assert "$var wire 1 ! q0 $end" in text
    assert "$enddefinitions $end" in text
    assert "$dumpvars" in text


def test_counter_trace_records_toggles():
    circuit = binary_counter(2)
    tracer = trace_circuit(circuit, 4, initial_state=[0, 0])
    # q0 toggles every cycle: 0 1 0 1 0 across 5 samples.
    q0_index = tracer.signals.index("q0")
    q0_values = [sample[q0_index] for sample in tracer.samples]
    assert q0_values == [0, 1, 0, 1, 0]


def test_only_changes_are_emitted():
    circuit = binary_counter(2)
    tracer = trace_circuit(circuit, 4, initial_state=[0, 0])
    text = tracer.dumps()
    q1_ident = tracer._ids[tracer.signals.index("q1")]
    # q1 changes at cycles 2 and 4 only (plus the initial dump).
    changes = [line for line in text.splitlines()
               if line.endswith(q1_ident) and line[0] in "01x"]
    assert len(changes) == 3


def test_x_values_rendered():
    circuit = binary_counter(1)
    sim = Simulator(circuit)
    tracer = VcdTracer(sim, signals=["q0"])
    tracer.sample()  # state never set: X
    assert "x!" in tracer.dumps()


def test_fig1_three_cycle_transport_visible():
    circuit = fig1_circuit()
    tracer = trace_circuit(
        circuit, 5,
        initial_state=[0, 0, 0, 0],
        inputs_per_cycle=[{"IN": 1}] + [{"IN": 0}] * 4,
        signals=["IN", "FF1", "FF2", "FF3", "FF4"],
    )
    ff1 = tracer.signals.index("FF1")
    ff2 = tracer.signals.index("FF2")
    ff1_values = [s[ff1] for s in tracer.samples]
    ff2_values = [s[ff2] for s in tracer.samples]
    assert ff1_values[1] == 1          # loaded at the first edge
    assert ff2_values[:4] == [0, 0, 0, 0]
    assert ff2_values[4] == 1          # captured three cycles later


def test_write_to_file(tmp_path):
    circuit = binary_counter(2)
    tracer = trace_circuit(circuit, 2, initial_state=[0, 0])
    path = tmp_path / "t.vcd"
    tracer.write(path)
    assert path.read_text().startswith("$timescale")
