"""The compiled simulation plan must be bit-identical to the reference loop.

:mod:`repro.logic.simplan` lowers a circuit once into levelized,
gate-type-batched numpy kernels; these tests pin its contract:

* ``comb_eval`` under the compiled plan produces exactly the same words
  as the per-node python loop, on arbitrary random circuits and inputs;
* both agree with the three-valued :class:`Simulator` on X-free
  assignments, pattern by pattern;
* plans are cached on the circuit and invalidated by mutation;
* the padding identity rows survive wholesale ``values`` replacement
  (the fault-simulator's usage pattern).
"""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.circuit.builder import CircuitBuilder
from repro.circuit.library import fig1_circuit
from repro.logic.bitsim import BitSimulator
from repro.logic.simplan import SimPlan, compiled_plan
from repro.logic.simulator import Simulator

from tests.strategies import random_sequential_circuit, seeds


def _randomized_pair(circuit, rng_seed, words=2):
    """Compiled and python simulators holding identical random sources."""
    compiled = BitSimulator(circuit, words=words, plan="compiled")
    python = BitSimulator(circuit, words=words, plan="python")
    rng = np.random.default_rng(rng_seed)
    compiled.randomize_sources(rng)
    python.values = compiled.values.copy()
    return compiled, python


@given(seeds, st.integers(min_value=0, max_value=2**32 - 1))
def test_compiled_plan_matches_python_loop(seed, rng_seed):
    """Every node's pattern words agree between the two evaluators."""
    circuit = random_sequential_circuit(seed)
    compiled, python = _randomized_pair(circuit, rng_seed)
    compiled.comb_eval()
    python.comb_eval()
    assert np.array_equal(compiled.values, python.values)


@given(seeds, st.integers(min_value=0, max_value=2**32 - 1))
def test_compiled_plan_matches_scalar_simulator(seed, rng_seed):
    """On X-free assignments the plan reproduces the 3-valued simulator."""
    circuit = random_sequential_circuit(seed)
    sim = BitSimulator(circuit, words=1, plan="compiled")
    rng = np.random.default_rng(rng_seed)
    sim.randomize_sources(rng)
    sim.comb_eval()

    for pattern in (0, 31, 63):
        scalar = Simulator(circuit)
        scalar.set_all_state(
            [int(sim.values[d][0]) >> pattern & 1 for d in circuit.dffs]
        )
        if circuit.inputs:
            scalar.set_all_inputs(
                [int(sim.values[i][0]) >> pattern & 1 for i in circuit.inputs]
            )
        scalar.comb_eval()
        for node in range(circuit.num_nodes):
            expected = scalar.values[node]
            if expected is None:
                continue
            assert int(sim.values[node][0]) >> pattern & 1 == expected


def test_all_gate_types_in_one_circuit():
    """One circuit exercising every batch kind the plan can emit."""
    b = CircuitBuilder("alltypes")
    a, c, d = b.input("a"), b.input("c"), b.input("d")
    one, zero = b.const1("one"), b.const0("zero")
    gates = [
        b.and_(a, c, name="g_and"),
        b.nand(a, c, d, name="g_nand"),
        b.or_(c, d, name="g_or"),
        b.nor(a, d, name="g_nor"),
        b.xor(a, c, name="g_xor"),
        b.xnor(c, d, name="g_xnor"),
        b.not_(a, name="g_not"),
        b.buf(d, name="g_buf"),
        b.mux(a, c, d, name="g_mux"),
        b.and_(one, zero, name="g_const"),
    ]
    acc = gates[0]
    for g in gates[1:]:
        acc = b.xor(acc, g)
    ff = b.dff("ff")
    b.drive(ff, acc)
    b.output("po", acc)
    circuit = b.build()

    compiled, python = _randomized_pair(circuit, rng_seed=11, words=4)
    compiled.comb_eval()
    python.comb_eval()
    assert np.array_equal(compiled.values, python.values)


def test_plan_is_cached_on_the_circuit():
    circuit = fig1_circuit()
    assert compiled_plan(circuit) is compiled_plan(circuit)
    sims = [BitSimulator(circuit, words=w) for w in (1, 2, 4)]
    assert sims[0].plan is sims[1].plan is sims[2].plan


def test_plan_cache_invalidated_by_mutation():
    from repro.circuit.gates import GateType

    circuit = fig1_circuit()
    before = compiled_plan(circuit)
    circuit.add_node(GateType.OUTPUT, (circuit.inputs[0],), "extra_po")
    after = compiled_plan(circuit)
    assert after is not before
    assert after.circuit_version == circuit.version


def test_stale_plan_rejected():
    from repro.circuit.gates import GateType

    circuit = fig1_circuit()
    plan = compiled_plan(circuit)
    circuit.add_node(GateType.INPUT, (), "late_pi")
    with pytest.raises(ValueError):
        BitSimulator(circuit, words=1, plan=plan)


def test_values_replacement_keeps_padding_rows():
    """The fault simulator assigns ``sim.values = matrix`` wholesale; the
    plan's identity padding rows must survive that."""
    circuit = fig1_circuit()
    sim = BitSimulator(circuit, words=2, plan="compiled")
    rng = np.random.default_rng(3)
    fresh = rng.integers(
        0, 1 << 64, size=(circuit.num_nodes, 2), dtype=np.uint64
    )
    sim.values = fresh
    assert np.array_equal(sim.values, fresh)
    sim.comb_eval()  # would corrupt outputs if the pad rows were clobbered

    reference = BitSimulator(circuit, words=2, plan="python")
    reference.values = fresh
    reference.comb_eval()
    assert np.array_equal(sim.values, reference.values)

    with pytest.raises(ValueError):
        sim.values = fresh[:, :1]


def test_unknown_plan_mode_rejected():
    with pytest.raises(ValueError):
        BitSimulator(fig1_circuit(), words=1, plan="weird")


def test_plan_levels_cover_every_combinational_node():
    circuit = fig1_circuit()
    plan = compiled_plan(circuit)
    assert isinstance(plan, SimPlan)
    covered = set()
    for batches in plan.levels:
        for batch in batches:
            covered.update(int(n) for n in batch.outputs)
    from repro.circuit.gates import GateType

    expected = {
        n
        for n in range(circuit.num_nodes)
        if circuit.types[n]
        not in (GateType.INPUT, GateType.DFF, GateType.CONST0, GateType.CONST1)
    }
    assert covered == expected
