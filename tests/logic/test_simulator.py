"""Behavioural tests of the three-valued event simulator."""

import itertools

import pytest

from repro.circuit.builder import CircuitBuilder
from repro.circuit.gates import GateType
from repro.circuit.library import binary_counter, gray_counter, shift_register
from repro.logic.simulator import Simulator, evaluate_gate
from repro.logic.values import ONE, X, ZERO


def _ref_eval(gate_type, values):
    """Binary reference for each gate type."""
    if gate_type in (GateType.BUF, GateType.OUTPUT):
        return values[0]
    if gate_type == GateType.NOT:
        return 1 - values[0]
    if gate_type == GateType.AND:
        return int(all(values))
    if gate_type == GateType.NAND:
        return 1 - int(all(values))
    if gate_type == GateType.OR:
        return int(any(values))
    if gate_type == GateType.NOR:
        return 1 - int(any(values))
    if gate_type == GateType.XOR:
        return sum(values) % 2
    if gate_type == GateType.XNOR:
        return 1 - sum(values) % 2
    if gate_type == GateType.MUX:
        return values[2] if values[0] else values[1]
    raise AssertionError(gate_type)


_BINARY_TYPES = [
    (GateType.AND, 2), (GateType.AND, 3), (GateType.NAND, 2), (GateType.NAND, 3),
    (GateType.OR, 2), (GateType.OR, 3), (GateType.NOR, 2), (GateType.NOR, 3),
    (GateType.XOR, 2), (GateType.XOR, 3), (GateType.XNOR, 2),
    (GateType.NOT, 1), (GateType.BUF, 1), (GateType.MUX, 3),
]


@pytest.mark.parametrize("gate_type,arity", _BINARY_TYPES)
def test_evaluate_gate_binary_exhaustive(gate_type, arity):
    for values in itertools.product((ZERO, ONE), repeat=arity):
        assert evaluate_gate(gate_type, list(values)) == _ref_eval(gate_type, values)


@pytest.mark.parametrize("gate_type,arity", _BINARY_TYPES)
def test_evaluate_gate_x_is_sound(gate_type, arity):
    """A non-X output must match every binary completion of the inputs."""
    for values in itertools.product((ZERO, ONE, X), repeat=arity):
        got = evaluate_gate(gate_type, list(values))
        if got == X:
            continue
        for completion in itertools.product((ZERO, ONE), repeat=arity):
            if all(v == X or v == c for v, c in zip(values, completion)):
                assert _ref_eval(gate_type, completion) == got


def test_evaluate_gate_rejects_sequential():
    with pytest.raises(ValueError):
        evaluate_gate(GateType.DFF, [ZERO])


def test_binary_counter_counts():
    circuit = binary_counter(3)
    sim = Simulator(circuit)
    sim.set_all_state([0, 0, 0])
    seen = []
    for _ in range(9):
        state = sim.state()
        seen.append(state["q0"] + 2 * state["q1"] + 4 * state["q2"])
        sim.clock()
    assert seen == [0, 1, 2, 3, 4, 5, 6, 7, 0]


def test_gray_counter_outputs_change_one_bit_per_step():
    circuit = gray_counter(3)
    sim = Simulator(circuit)
    sim.set_all_state([0, 0, 0])
    previous = None
    codes = set()
    for _ in range(8):
        outs = sim.output_values()
        code = tuple(outs[f"gray{i}"] for i in range(3))
        codes.add(code)
        if previous is not None:
            assert sum(a != b for a, b in zip(previous, code)) == 1
        previous = code
        sim.clock()
    assert len(codes) == 8


def test_shift_register_delays_input():
    circuit = shift_register(3)
    sim = Simulator(circuit)
    sim.set_all_state([0, 0, 0])
    stream = [1, 0, 1, 1, 0, 0, 1]
    seen = []
    for bit in stream:
        sim.set_inputs({"sin": bit})
        sim.clock()
        seen.append(sim.value("s2"))
    assert seen[2:] == stream[:5]  # two clock edges from sin to s2


def test_x_state_propagates_until_driven():
    builder = CircuitBuilder("xprop")
    a = builder.input("a")
    ff = builder.dff("ff", d=a)
    builder.output("o", builder.and_(ff, a, name="g"))
    circuit = builder.build()
    sim = Simulator(circuit)
    sim.set_inputs({"a": ONE})
    assert sim.value("g") == X  # ff still unknown
    sim.clock()
    assert sim.value("ff") == ONE
    assert sim.value("g") == ONE


def test_x_controlling_value_still_decides():
    builder = CircuitBuilder("xdom")
    a = builder.input("a")
    ff = builder.dff("ff", d=a)
    builder.output("o", builder.and_(ff, a, name="g"))
    circuit = builder.build()
    sim = Simulator(circuit)
    sim.set_inputs({"a": ZERO})
    assert sim.value("g") == ZERO  # 0 dominates AND even with ff = X


def test_set_inputs_rejects_non_input():
    circuit = shift_register(2)
    sim = Simulator(circuit)
    with pytest.raises(ValueError):
        sim.set_inputs({"s0": 1})
    with pytest.raises(ValueError):
        sim.set_state({"sin": 1})


def test_run_with_inputs_per_cycle():
    circuit = shift_register(1)
    sim = Simulator(circuit)
    sim.set_all_state([0])
    trace = sim.run(3, inputs_per_cycle=[{"sin": 1}, {"sin": 0}, {"sin": 1}])
    assert [t["s0"] for t in trace] == [1, 0, 1]


def test_constants_are_preassigned():
    builder = CircuitBuilder("consts")
    one = builder.const1("one")
    zero = builder.const0("zero")
    builder.output("o", builder.and_(one, builder.not_(zero, name="nz"), name="g"))
    sim = Simulator(builder.build())
    assert sim.value("g") == ONE
