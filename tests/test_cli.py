"""CLI smoke tests through the argparse entry point."""

import pytest

from repro.circuit.bench import dump
from repro.circuit.library import fig1_circuit
from repro.cli import main


@pytest.fixture
def fig1_file(tmp_path):
    path = tmp_path / "fig1.bench"
    dump(fig1_circuit(), path)
    return str(path)


def test_analyze(fig1_file, capsys):
    assert main(["analyze", fig1_file, "--list-pairs"]) == 0
    out = capsys.readouterr().out
    assert "multi-cycle pairs:  5" in out
    assert "multicycle FF1 -> FF2" in out


def test_analyze_without_self_loops(fig1_file, capsys):
    assert main(["analyze", fig1_file, "--no-self-loops"]) == 0
    out = capsys.readouterr().out
    assert "connected FF pairs: 7" in out


def test_hazard(fig1_file, capsys):
    assert main(["hazard", fig1_file]) == 0
    out = capsys.readouterr().out
    assert "before hazard checking" in out
    assert "co-sensitize" in out


def test_analyze_hazard_check_ternary(fig1_file, capsys):
    assert main(["analyze", fig1_file, "--hazard-check", "ternary"]) == 0
    out = capsys.readouterr().out
    assert "hazard check:       ternary" in out
    assert "5 checked" in out


def test_analyze_hazard_check_rejects_unknown_mode(fig1_file):
    with pytest.raises(SystemExit):
        main(["analyze", fig1_file, "--hazard-check", "bogus"])


def test_sta(fig1_file, capsys):
    assert main(["sta", fig1_file]) == 0
    out = capsys.readouterr().out
    assert "clock speedup" in out
    assert "min period" in out


def test_generate_and_reanalyze(tmp_path, capsys):
    out_dir = tmp_path / "suite"
    assert main(["generate", str(out_dir), "--profile", "tiny"]) == 0
    generated = sorted(p.name for p in out_dir.glob("*.bench"))
    assert "s27.bench" in generated and "syn040.bench" in generated
    assert main(["analyze", str(out_dir / "s27.bench")]) == 0
    out = capsys.readouterr().out
    assert "connected FF pairs: 7" in out


def test_table1(capsys):
    assert main(["table1", "--profile", "tiny", "--no-sat"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out and "fig1" in out


def test_table2(capsys):
    assert main(["table2", "--profile", "tiny"]) == 0
    assert "Table 2" in capsys.readouterr().out


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])


def test_static_learning_flag(fig1_file, capsys):
    assert main(["analyze", fig1_file, "--static-learning"]) == 0
    assert "multi-cycle pairs:  5" in capsys.readouterr().out


def test_kcycle_command(fig1_file, capsys):
    assert main(["kcycle", fig1_file, "--max-k", "3", "--list-pairs"]) == 0
    out = capsys.readouterr().out
    assert "k=2: 5 of 9" in out
    assert "k=3: 3 of 9" in out


def test_extended_command(fig1_file, capsys):
    assert main(["extended", fig1_file]) == 0
    out = capsys.readouterr().out
    assert "MC-condition multi-cycle pairs: 5" in out


def test_equiv_command(tmp_path, capsys):
    from repro.circuit.techmap import techmap

    golden = tmp_path / "g.bench"
    revised = tmp_path / "r.bench"
    dump(fig1_circuit(), golden)
    dump(techmap(fig1_circuit()), revised)
    assert main(["equiv", str(golden), str(revised)]) == 0
    assert "EQUIVALENT" in capsys.readouterr().out


def test_equiv_command_detects_difference(tmp_path, capsys):
    from repro.circuit.library import s27

    golden = tmp_path / "g.bench"
    revised = tmp_path / "r.bench"
    dump(fig1_circuit(), golden)
    dump(s27(), revised)
    assert main(["equiv", str(golden), str(revised)]) == 1
    assert "NOT equivalent" in capsys.readouterr().out


def test_stats_command(fig1_file, capsys):
    assert main(["stats", fig1_file]) == 0
    out = capsys.readouterr().out
    assert "4 FF" in out and "gate mix" in out


def test_sta_slack_table(fig1_file, capsys):
    assert main(["sta", fig1_file, "--period", "2", "--worst", "5"]) == 0
    out = capsys.readouterr().out
    assert "slack report at clock period 2" in out
    assert "VIOLATED" in out
