"""CLI smoke tests through the argparse entry point."""

import pytest

from repro.circuit.bench import dump
from repro.circuit.library import fig1_circuit
from repro.cli import main


@pytest.fixture
def fig1_file(tmp_path):
    path = tmp_path / "fig1.bench"
    dump(fig1_circuit(), path)
    return str(path)


def test_analyze(fig1_file, capsys):
    assert main(["analyze", fig1_file, "--list-pairs"]) == 0
    out = capsys.readouterr().out
    assert "multi-cycle pairs:  5" in out
    assert "multicycle FF1 -> FF2" in out


def test_analyze_without_self_loops(fig1_file, capsys):
    assert main(["analyze", fig1_file, "--no-self-loops"]) == 0
    out = capsys.readouterr().out
    assert "connected FF pairs: 7" in out


def test_hazard(fig1_file, capsys):
    assert main(["hazard", fig1_file]) == 0
    out = capsys.readouterr().out
    assert "before hazard checking" in out
    assert "co-sensitize" in out


def test_analyze_hazard_check_ternary(fig1_file, capsys):
    assert main(["analyze", fig1_file, "--hazard-check", "ternary"]) == 0
    out = capsys.readouterr().out
    assert "hazard check:       ternary" in out
    assert "5 checked" in out


def test_analyze_hazard_check_rejects_unknown_mode(fig1_file):
    with pytest.raises(SystemExit):
        main(["analyze", fig1_file, "--hazard-check", "bogus"])


def test_sta(fig1_file, capsys):
    assert main(["sta", fig1_file]) == 0
    out = capsys.readouterr().out
    assert "clock speedup" in out
    assert "min period" in out


def test_generate_and_reanalyze(tmp_path, capsys):
    out_dir = tmp_path / "suite"
    assert main(["generate", str(out_dir), "--profile", "tiny"]) == 0
    generated = sorted(p.name for p in out_dir.glob("*.bench"))
    assert "s27.bench" in generated and "syn040.bench" in generated
    assert main(["analyze", str(out_dir / "s27.bench")]) == 0
    out = capsys.readouterr().out
    assert "connected FF pairs: 7" in out


def test_table1(capsys):
    assert main(["table1", "--profile", "tiny", "--no-sat"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out and "fig1" in out


def test_table2(capsys):
    assert main(["table2", "--profile", "tiny"]) == 0
    assert "Table 2" in capsys.readouterr().out


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])


def test_static_learning_flag(fig1_file, capsys):
    assert main(["analyze", fig1_file, "--static-learning"]) == 0
    assert "multi-cycle pairs:  5" in capsys.readouterr().out


def test_kcycle_command(fig1_file, capsys):
    assert main(["kcycle", fig1_file, "--max-k", "3", "--list-pairs"]) == 0
    out = capsys.readouterr().out
    assert "k=2: 5 of 9" in out
    assert "k=3: 3 of 9" in out


def test_extended_command(fig1_file, capsys):
    assert main(["extended", fig1_file]) == 0
    out = capsys.readouterr().out
    assert "MC-condition multi-cycle pairs: 5" in out


def test_equiv_command(tmp_path, capsys):
    from repro.circuit.techmap import techmap

    golden = tmp_path / "g.bench"
    revised = tmp_path / "r.bench"
    dump(fig1_circuit(), golden)
    dump(techmap(fig1_circuit()), revised)
    assert main(["equiv", str(golden), str(revised)]) == 0
    assert "EQUIVALENT" in capsys.readouterr().out


def test_equiv_command_detects_difference(tmp_path, capsys):
    from repro.circuit.library import s27

    golden = tmp_path / "g.bench"
    revised = tmp_path / "r.bench"
    dump(fig1_circuit(), golden)
    dump(s27(), revised)
    assert main(["equiv", str(golden), str(revised)]) == 1
    assert "NOT equivalent" in capsys.readouterr().out


def test_stats_command(fig1_file, capsys):
    assert main(["stats", fig1_file]) == 0
    out = capsys.readouterr().out
    assert "4 FF" in out and "gate mix" in out


def test_sta_slack_table(fig1_file, capsys):
    assert main(["sta", fig1_file, "--period", "2", "--worst", "5"]) == 0
    out = capsys.readouterr().out
    assert "slack report at clock period 2" in out
    assert "VIOLATED" in out


def test_lint_clean_file(fig1_file, capsys):
    assert main(["lint", fig1_file]) == 0
    assert "clean" in capsys.readouterr().out


def test_lint_flags_malformed_file(tmp_path, capsys):
    bad = tmp_path / "bad.bench"
    bad.write_text("INPUT(a)\ng = FROB(a)\n")
    assert main(["lint", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "parse-error" in out
    assert "line 2" in out


def test_lint_strict_fails_on_warnings(tmp_path, capsys):
    warny = tmp_path / "warny.bench"
    warny.write_text(
        "INPUT(a)\nb = NOT(a)\ndead = AND(a, b)\nOUTPUT(b)\n"
    )
    assert main(["lint", str(warny)]) == 0
    assert main(["lint", "--strict", str(warny)]) == 1
    assert "dangling-gate" in capsys.readouterr().out


def test_lint_multiple_files(fig1_file, tmp_path, capsys):
    bad = tmp_path / "bad.bench"
    bad.write_text("what is this\n")
    assert main(["lint", fig1_file, str(bad)]) == 1
    out = capsys.readouterr().out
    assert "clean" in out and "parse-error" in out


def test_sweep_report(tmp_path, capsys):
    src = tmp_path / "c.bench"
    src.write_text(
        "INPUT(a)\nzero = VSS()\ng = AND(a, zero)\nh = NOT(a)\n"
        "dup = NOT(a)\nOUTPUT(g)\nOUTPUT(h)\nOUTPUT(dup)\n"
    )
    assert main(["sweep", str(src)]) == 0
    out = capsys.readouterr().out
    assert "constant" in out


def test_sweep_writes_simplified(tmp_path, capsys):
    src = tmp_path / "c.bench"
    out_path = tmp_path / "slim.bench"
    src.write_text(
        "INPUT(a)\nb = NOT(a)\ndead = AND(a, b)\nOUTPUT(b)\n"
    )
    assert main(["sweep", str(src), "-o", str(out_path)]) == 0
    assert "removed" in capsys.readouterr().out
    from repro.circuit.bench import load

    slim = load(out_path)
    assert slim.num_nodes < load(src).num_nodes


def test_analyze_with_implication_db(fig1_file, capsys):
    assert main(["analyze", fig1_file, "--implication-db"]) == 0
    out = capsys.readouterr().out
    assert "implication DB" in out
    assert "multi-cycle pairs:  5" in out


def test_analyze_lint_strict_rejects(tmp_path, capsys):
    warny = tmp_path / "warny.bench"
    warny.write_text(
        "INPUT(a)\nb = NOT(a)\ndead = AND(a, b)\nOUTPUT(b)\n"
    )
    with pytest.raises(SystemExit):
        main(["analyze", str(warny), "--lint", "bogus"])


def test_analyze_lint_strict_gate(tmp_path, capsys):
    warny = tmp_path / "warny.bench"
    warny.write_text(
        "INPUT(a)\nb = NOT(a)\ndead = AND(a, b)\nOUTPUT(b)\n"
    )
    assert main(["analyze", str(warny), "--lint", "strict"]) == 2
    err = capsys.readouterr().err
    assert "error:" in err and "drives nothing" in err
    assert main(["analyze", str(warny), "--lint", "off"]) == 0


def test_malformed_file_exits_cleanly(tmp_path, capsys):
    bad = tmp_path / "bad.bench"
    bad.write_text("INPUT(a)\ng = FROB(a)\n")
    assert main(["analyze", str(bad)]) == 2
    err = capsys.readouterr().err
    assert "bad.bench" in err and "line 2" in err


def test_analyze_cache_dir_warm_hits(fig1_file, tmp_path, capsys):
    from repro.circuit.netlist import clear_derived_caches
    from repro.store import deactivate_store

    cache = str(tmp_path / "cache")
    assert main(["analyze", fig1_file, "--cache-dir", cache]) == 0
    cold = capsys.readouterr().out
    assert "cache:" in cold and "stores" in cold
    clear_derived_caches()
    deactivate_store()
    assert main(["analyze", fig1_file, "--cache-dir", cache]) == 0
    warm = capsys.readouterr().out
    hits = int(warm.split("cache:")[1].split("hits")[0].strip())
    assert hits >= 1
    deactivate_store()


def test_analyze_incremental_from(fig1_file, tmp_path, capsys):
    from repro.circuit.netlist import clear_derived_caches
    from repro.store import deactivate_store

    cache = str(tmp_path / "cache")
    assert main(["analyze", fig1_file, "--cache-dir", cache]) == 0
    capsys.readouterr()
    clear_derived_caches()
    deactivate_store()
    assert main([
        "analyze", fig1_file, "--cache-dir", cache,
        "--incremental-from", fig1_file,
    ]) == 0
    out = capsys.readouterr().out
    assert "incremental:" in out
    assert "0 re-decided" in out
    assert "multi-cycle pairs:  5" in out
    deactivate_store()


def test_analyze_incremental_from_without_store_warns(fig1_file, capsys,
                                                      monkeypatch):
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    assert main([
        "analyze", fig1_file, "--incremental-from", fig1_file,
    ]) == 0
    captured = capsys.readouterr()
    assert "re-deciding every pair" in captured.err
    assert "multi-cycle pairs:  5" in captured.out


def test_sdc_command(fig1_file, capsys):
    assert main(["sdc", fig1_file]) == 0
    out = capsys.readouterr().out
    assert "set_multicycle_path -setup 2" in out


def test_sdc_command_writes_files(fig1_file, tmp_path, capsys):
    import json

    sdc = tmp_path / "out.sdc"
    js = tmp_path / "out.json"
    assert main([
        "sdc", fig1_file, "-o", str(sdc), "--json", str(js),
        "--hazard-check", "ternary",
    ]) == 0
    out = capsys.readouterr().out
    assert "hazard-gated" in out
    text = sdc.read_text()
    assert "# hazard-flagged, not relaxed:" in text
    payload = json.loads(js.read_text())
    assert payload["circuit"] == "fig1"
    assert any(not c["safe"] for c in payload["constraints"])


def test_cache_stats_and_clear(fig1_file, tmp_path, capsys):
    from repro.store import deactivate_store

    cache = str(tmp_path / "cache")
    assert main(["analyze", fig1_file, "--cache-dir", cache]) == 0
    deactivate_store()
    capsys.readouterr()

    assert main(["cache", "stats", "--cache-dir", cache]) == 0
    out = capsys.readouterr().out
    assert "entries" in out and "bytes" in out
    assert "simplan" in out  # flat-buffer kinds are listed per kind

    assert main(["cache", "clear", "--cache-dir", cache]) == 0
    out = capsys.readouterr().out
    assert "removed" in out and "freed" in out

    assert main(["cache", "stats", "--cache-dir", cache]) == 0
    assert "0 entries, 0 bytes" in capsys.readouterr().out


def test_cache_resolves_env_dir(fig1_file, tmp_path, capsys, monkeypatch):
    from repro.store import deactivate_store

    cache = str(tmp_path / "cache")
    assert main(["analyze", fig1_file, "--cache-dir", cache]) == 0
    deactivate_store()
    capsys.readouterr()
    monkeypatch.setenv("REPRO_CACHE_DIR", cache)
    assert main(["cache", "stats"]) == 0
    assert cache in capsys.readouterr().out


def test_cache_without_dir_errors(capsys, monkeypatch):
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    assert main(["cache", "stats"]) == 2
    assert "REPRO_CACHE_DIR" in capsys.readouterr().err


def test_analyze_backplane_summary_line(fig1_file, capsys):
    assert main([
        "analyze", fig1_file, "--workers", "2", "--parallel-threshold", "2",
        "--backplane", "on",
    ]) == 0
    out = capsys.readouterr().out
    assert "backplane:" in out
    assert "2/2 workers attached" in out
    assert "0 worker store misses" in out


def test_analyze_backplane_off_no_line(fig1_file, capsys):
    assert main([
        "analyze", fig1_file, "--workers", "2", "--parallel-threshold", "2",
        "--backplane", "off",
    ]) == 0
    assert "backplane:" not in capsys.readouterr().out
