"""Correctness of the justification backtrack search.

Differential property: for random combinational circuits and random target
assignments, the search's SAT/UNSAT verdict must match exhaustive
enumeration, and every SAT witness must actually produce the assumed
values when simulated.
"""

import itertools

from hypothesis import given
from hypothesis import strategies as st

from repro.circuit.builder import CircuitBuilder
from repro.circuit.gates import GateType
from repro.logic.simulator import evaluate_gate
from repro.logic.values import ONE, X, ZERO
from repro.atpg.implication import ImplicationEngine
from repro.atpg.justify import SearchStatus, justify

from tests.strategies import random_combinational_circuit, seeds


def _evaluate(circuit, input_values):
    values = dict(input_values)
    for node in circuit.topo_order():
        gate_type = circuit.types[node]
        if gate_type == GateType.INPUT:
            values.setdefault(node, 0)
        elif gate_type == GateType.CONST0:
            values[node] = 0
        elif gate_type == GateType.CONST1:
            values[node] = 1
        else:
            values[node] = evaluate_gate(
                gate_type, [values[f] for f in circuit.fanins[node]]
            )
    return values


def _exists_model(circuit, targets):
    for bits in itertools.product((0, 1), repeat=len(circuit.inputs)):
        values = _evaluate(circuit, dict(zip(circuit.inputs, bits)))
        if all(values[n] == v for n, v in targets):
            return True
    return False


@given(seeds, st.integers(min_value=0, max_value=255))
def test_justify_matches_enumeration(seed, stimulus):
    circuit = random_combinational_circuit(seed)
    engine = ImplicationEngine(circuit)

    # Target: one or two internal nodes at random values.
    internal = [
        n for n in range(circuit.num_nodes)
        if circuit.types[n] not in (GateType.INPUT, GateType.CONST0,
                                    GateType.CONST1, GateType.OUTPUT)
    ]
    if not internal:
        return
    targets = [(internal[stimulus % len(internal)], (stimulus >> 4) & 1)]
    if len(internal) > 1 and stimulus & 1:
        targets.append(
            (internal[(stimulus >> 2) % len(internal)], (stimulus >> 5) & 1)
        )
    targets = list(dict(targets).items())

    exists = _exists_model(circuit, targets)

    if not engine.assume_all(targets):
        assert not exists, "implication contradicted a satisfiable target"
        return
    result = justify(engine, backtrack_limit=10_000)
    assert result.status in (SearchStatus.SAT, SearchStatus.UNSAT)
    assert (result.status is SearchStatus.SAT) == exists

    if result.status is SearchStatus.SAT:
        witness = {n: (0 if v == X else v) for n, v in result.witness.items()}
        values = _evaluate(circuit, witness)
        for node, value in targets:
            assert values[node] == value, "witness does not reproduce target"


def test_engine_state_restored_after_search():
    circuit = random_combinational_circuit(7)
    engine = ImplicationEngine(circuit)
    internal = [
        n for n in range(circuit.num_nodes)
        if circuit.types[n] not in (GateType.INPUT, GateType.CONST0,
                                    GateType.CONST1)
    ]
    target = internal[-1]
    assert engine.assume(target, ONE) or True
    before = list(engine.assignment.values)
    justify(engine, backtrack_limit=1000)
    assert list(engine.assignment.values) == before


def test_sat_without_search_when_all_justified():
    builder = CircuitBuilder("t")
    a, b = builder.input("a"), builder.input("b")
    g = builder.and_(a, b, name="g")
    builder.output("o", g)
    circuit = builder.build()
    engine = ImplicationEngine(circuit)
    assert engine.assume(g, ONE)  # backward implication justifies fully
    result = justify(engine)
    assert result.status is SearchStatus.SAT
    assert result.decisions == 0
    assert result.witness[a] == ONE and result.witness[b] == ONE


def test_branching_on_and_frontier():
    builder = CircuitBuilder("t")
    a, b, c = builder.input("a"), builder.input("b"), builder.input("c")
    g = builder.and_(a, b, c, name="g")
    builder.output("o", g)
    circuit = builder.build()
    engine = ImplicationEngine(circuit)
    assert engine.assume(g, ZERO)
    result = justify(engine)
    assert result.status is SearchStatus.SAT
    assert ZERO in (result.witness[a], result.witness[b], result.witness[c])


def test_unsat_on_redundant_conflict():
    """g = AND(a, NOT(a)) can never be 1."""
    builder = CircuitBuilder("t")
    a = builder.input("a")
    na = builder.not_(a, name="na")
    g = builder.and_(a, na, name="g")
    builder.output("o", g)
    circuit = builder.build()
    engine = ImplicationEngine(circuit)
    # Implication alone already contradicts here.
    assert not engine.assume(g, ONE)


def test_unsat_requiring_search():
    """XOR(a, a) = 1 is unsatisfiable but needs reconvergence reasoning."""
    builder = CircuitBuilder("t")
    a = builder.input("a")
    b1 = builder.buf(a, name="b1")
    b2 = builder.buf(a, name="b2")
    g = builder.xor(b1, b2, name="g")
    builder.output("o", g)
    circuit = builder.build()
    engine = ImplicationEngine(circuit)
    if engine.assume(g, ONE):
        result = justify(engine)
        assert result.status is SearchStatus.UNSAT
        assert result.backtracks >= 1


def test_abort_on_tiny_backtrack_limit():
    """With limit 0 an unavoidable backtrack must abort, not loop."""
    builder = CircuitBuilder("t")
    a = builder.input("a")
    b1 = builder.buf(a, name="b1")
    b2 = builder.buf(a, name="b2")
    g = builder.xor(b1, b2, name="g")
    builder.output("o", g)
    circuit = builder.build()
    engine = ImplicationEngine(circuit)
    if engine.assume(g, ONE):
        result = justify(engine, backtrack_limit=0)
        assert result.status is SearchStatus.ABORTED
