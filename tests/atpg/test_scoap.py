"""SCOAP measures: textbook values and guidance invariance."""

from repro.circuit.builder import CircuitBuilder
from repro.atpg.scoap import compute_scoap, make_choice_sorter, scoap_report


def _build(fn):
    builder = CircuitBuilder("t")
    fn(builder)
    return builder.build()


def test_primary_input_costs():
    circuit = _build(lambda b: b.output("o", b.buf(b.input("a"), name="g")))
    scoap = compute_scoap(circuit)
    a = circuit.id_of("a")
    assert scoap.cc0[a] == scoap.cc1[a] == 1


def test_and_gate_textbook_values():
    def build(b):
        b.output("o", b.and_(b.input("a"), b.input("b"), name="g"))

    circuit = _build(build)
    scoap = compute_scoap(circuit)
    g = circuit.id_of("g")
    assert scoap.cc1[g] == 3   # both inputs to 1: 1 + 1 + 1
    assert scoap.cc0[g] == 2   # one input to 0: 1 + 1


def test_nor_gate_swaps():
    def build(b):
        b.output("o", b.nor(b.input("a"), b.input("b"), name="g"))

    circuit = _build(build)
    scoap = compute_scoap(circuit)
    g = circuit.id_of("g")
    assert scoap.cc1[g] == 3   # all inputs 0
    assert scoap.cc0[g] == 2   # any input 1


def test_xor_parity_costs():
    def build(b):
        b.output("o", b.xor(b.input("a"), b.input("b"), name="g"))

    circuit = _build(build)
    scoap = compute_scoap(circuit)
    g = circuit.id_of("g")
    assert scoap.cc0[g] == 3 and scoap.cc1[g] == 3


def test_constant_nodes():
    def build(b):
        one = b.const1("one")
        b.output("o", b.buf(one, name="g"))

    circuit = _build(build)
    scoap = compute_scoap(circuit)
    one = circuit.id_of("one")
    assert scoap.cc1[one] == 0
    assert scoap.cc0[one] >= 10 ** 9  # impossible


def test_deep_chain_costs_grow():
    def build(b):
        node = b.input("a")
        for i in range(5):
            node = b.buf(node, name=f"b{i}")
        b.output("o", node)

    circuit = _build(build)
    scoap = compute_scoap(circuit)
    assert scoap.cc1[circuit.id_of("b4")] == 6  # 1 + 5 buffers


def test_observability_po_is_cheap():
    def build(b):
        a = b.input("a")
        c = b.input("c")
        g = b.and_(a, c, name="g")
        b.output("o", g)

    circuit = _build(build)
    scoap = compute_scoap(circuit)
    a = circuit.id_of("a")
    # Observing a through the AND needs c = 1: co(g)+cc1(c)+1.
    assert scoap.co[a] == scoap.co[circuit.id_of("g")] + 1 + 1


def test_choice_sorter_prefers_cheap():
    def build(b):
        easy = b.input("easy")
        hard = b.and_(b.input("x"), b.input("y"), b.input("z"), name="hard")
        b.output("o", b.or_(easy, hard, name="g"))

    circuit = _build(build)
    scoap = compute_scoap(circuit)
    sorter = make_choice_sorter(scoap)
    easy, hard = circuit.id_of("easy"), circuit.id_of("hard")
    ordered = sorter([(hard, 1), (easy, 1)])
    assert ordered[0][0] == easy


def test_guidance_never_changes_verdicts(fig1, pipeline):
    from repro.core.detector import DetectorOptions, detect_multi_cycle_pairs

    for circuit in (fig1, pipeline):
        plain = detect_multi_cycle_pairs(
            circuit, DetectorOptions(use_random_sim=False)
        )
        guided = detect_multi_cycle_pairs(
            circuit, DetectorOptions(use_random_sim=False, scoap_guidance=True)
        )
        assert plain.multi_cycle_pair_names() == guided.multi_cycle_pair_names()


def test_report_lists_hard_nodes(fig1):
    text = scoap_report(fig1)
    assert "CC0" in text and "CC1" in text
    assert len(text.splitlines()) > 3
