"""Trail semantics of the assignment store."""

from repro.atpg.assignment import Assignment
from repro.logic.values import ONE, X, ZERO


def test_initially_unassigned():
    assignment = Assignment(4)
    assert all(assignment.get(n) == X for n in range(4))
    assert assignment.num_assigned() == 0


def test_set_and_get():
    assignment = Assignment(4)
    assignment.set(2, ONE)
    assert assignment.get(2) == ONE
    assert assignment.num_assigned() == 1


def test_backtrack_restores_x():
    assignment = Assignment(4)
    assignment.set(0, ZERO)
    mark = assignment.checkpoint()
    assignment.set(1, ONE)
    assignment.set(2, ZERO)
    assignment.backtrack(mark)
    assert assignment.get(0) == ZERO
    assert assignment.get(1) == X
    assert assignment.get(2) == X


def test_nested_checkpoints():
    assignment = Assignment(6)
    marks = []
    for n in range(5):
        marks.append(assignment.checkpoint())
        assignment.set(n, n % 2)
    assignment.backtrack(marks[2])
    assert assignment.get(0) == ZERO
    assert assignment.get(1) == ONE
    assert all(assignment.get(n) == X for n in (2, 3, 4))


def test_assigned_since_preserves_order():
    assignment = Assignment(5)
    mark = assignment.checkpoint()
    assignment.set(3, ONE)
    assignment.set(1, ZERO)
    assert assignment.assigned_since(mark) == [(3, ONE), (1, ZERO)]


def test_backtrack_to_current_is_noop():
    assignment = Assignment(2)
    assignment.set(0, ONE)
    mark = assignment.checkpoint()
    assignment.backtrack(mark)
    assert assignment.get(0) == ONE
