"""Differential tests: packed implication closure vs the scalar engine.

The packed engine promises the *same* fixpoint as
:class:`~repro.atpg.implication.ImplicationEngine` on every lane — same
conflicts, same derived values, same X's — so the whole suite is
differential: seed both engines identically (random circuits with
self-loop FFs, constant-driven cones, learned tables, lane counts below
and above one 64-bit word) and compare states bit for bit.  On top of
the closure identity, the decision-session tests pin the end-to-end
contract of ``--packed-implication``: classifications, stages and case
records are byte-identical with the pre-pass on or off.
"""

import random

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.implication_db import implication_db
from repro.circuit.builder import CircuitBuilder
from repro.circuit.timeframe import expand_cached
from repro.circuit.topology import connected_ff_pairs
from repro.core.session import DecisionSession
from repro.atpg.implication import ImplicationEngine
from repro.atpg.packed_implication import (
    MAX_LANES,
    PackedImplicationEngine,
    packed_plan,
)

from tests.strategies import random_sequential_circuit, seeds


def _random_lanes(circuit, rng, max_lanes):
    """Per-lane random literal lists over arbitrary nodes."""
    lanes = []
    for _ in range(rng.randrange(1, max_lanes + 1)):
        count = rng.randrange(1, 4)
        lanes.append([
            (rng.randrange(circuit.num_nodes), rng.randrange(2))
            for _ in range(count)
        ])
    return lanes


def _assert_lanes_match_scalar(circuit, lane_literals, packed, learned=None):
    """Each packed lane must equal a fresh scalar closure of its seeds."""
    num_nodes = circuit.num_nodes
    conflicted = packed.conflict_lanes(np.arange(len(lane_literals)))
    for lane, literals in enumerate(lane_literals):
        scalar = ImplicationEngine(circuit, learned=learned)
        ok = scalar.assume_all(literals)
        assert (not ok) == bool(conflicted[lane]), (
            f"lane {lane}: scalar ok={ok}, packed conflict="
            f"{bool(conflicted[lane])} for seeds {literals}"
        )
        if not ok:
            continue  # conflicted lanes are frozen; only the flag counts
        nodes = np.arange(num_nodes)
        known, value = packed.read_nodes(nodes, np.full(num_nodes, lane))
        for node in range(num_nodes):
            expected = scalar.value(node)
            is_known = expected in (0, 1)
            assert is_known == bool(known[node]) and (
                not is_known or expected == value[node]
            ), (
                f"lane {lane} node {node}: scalar={expected} "
                f"packed=({known[node]}, {value[node]}) seeds {literals}"
            )


@given(seeds)
def test_packed_closure_matches_scalar(seed):
    """Lane-by-lane identity with fresh scalar closures (partial words,
    multi-word lane counts, self-loop FFs and constants included —
    the circuit strategy emits all of them)."""
    circuit = random_sequential_circuit(seed)
    rng = random.Random(seed ^ 0x51C817)
    lane_literals = _random_lanes(circuit, rng, max_lanes=130)
    packed = PackedImplicationEngine(circuit)
    packed.close(lane_literals)
    _assert_lanes_match_scalar(circuit, lane_literals, packed)


@given(seeds)
def test_packed_closure_matches_scalar_with_learned(seed):
    """Same identity with the global implication DB as the learned table."""
    circuit = random_sequential_circuit(seed)
    learned = implication_db(circuit)
    rng = random.Random(seed ^ 0xDB1E)
    lane_literals = _random_lanes(circuit, rng, max_lanes=70)
    packed = PackedImplicationEngine(circuit, learned=learned)
    packed.close(lane_literals)
    _assert_lanes_match_scalar(circuit, lane_literals, packed, learned=learned)


@given(seeds)
def test_packed_engine_reuse_is_stateless(seed):
    """Repeated closes on one engine equal fresh-engine closes (the
    incremental touched-row reset leaks nothing between closures)."""
    circuit = random_sequential_circuit(seed)
    rng = random.Random(seed ^ 0xAB12)
    packed = PackedImplicationEngine(circuit)
    for _ in range(3):
        lane_literals = _random_lanes(circuit, rng, max_lanes=20)
        packed.close(lane_literals)
        _assert_lanes_match_scalar(circuit, lane_literals, packed)


@given(seeds)
def test_close_matrix_matches_close(seed):
    """The array-staged seed path derives exactly what per-literal
    posting does (the session's fixed-width premise fast path)."""
    circuit = random_sequential_circuit(seed)
    rng = random.Random(seed ^ 0xC0FE)
    lanes = rng.randrange(1, 70)
    nodes = np.array(
        [
            [rng.randrange(circuit.num_nodes) for _ in range(3)]
            for _ in range(lanes)
        ],
        dtype=np.intp,
    )
    values = np.array(
        [[rng.randrange(2) for _ in range(3)] for _ in range(lanes)],
        dtype=np.uint8,
    )
    by_matrix = PackedImplicationEngine(circuit)
    by_matrix.close_matrix(nodes, values)
    literals = [
        list(zip(nodes[lane].tolist(), values[lane].tolist()))
        for lane in range(lanes)
    ]
    _assert_lanes_match_scalar(circuit, literals, by_matrix)


def test_constant_driven_cone_stays_x():
    """Scalar quirk preserved: constants are preset, never propagated,
    so a cone driven only by constants stays X in every lane."""
    build = CircuitBuilder()
    one = build.const1()
    zero = build.const0()
    pi = build.input("pi")
    const_and = build.and_(one, zero, name="const_and")
    mixed_or = build.or_(const_and, pi, name="mixed_or")
    build.output("po", mixed_or)
    circuit = build.build()
    packed = PackedImplicationEngine(circuit)
    packed.close([[(pi, 1)], [(pi, 0)]])
    known, _ = packed.read_nodes([const_and, const_and], [0, 1])
    assert not known.any(), "constant-only cone must stay X"
    _assert_lanes_match_scalar(circuit, [[(pi, 1)], [(pi, 0)]], packed)


def test_lane_capacity_is_enforced():
    circuit = random_sequential_circuit(0)
    packed = PackedImplicationEngine(circuit)
    try:
        packed.close([[(0, 1)]] * (MAX_LANES + 1))
    except ValueError:
        pass
    else:  # pragma: no cover - failure path
        raise AssertionError("lane overflow must be rejected")


def test_packed_plan_is_cached_per_version():
    circuit = random_sequential_circuit(3)
    assert packed_plan(circuit) is packed_plan(circuit)


@given(seeds, st.booleans())
def test_session_records_identical_packed_on_off(seed, share_prefix):
    """The end-to-end contract: ``packed="on"`` and ``"off"`` produce
    byte-identical classifications, stages and case records — launch
    groups smaller than one word, self-loops and constant cones
    included."""
    circuit = random_sequential_circuit(seed)
    pairs = connected_ff_pairs(circuit)
    if not pairs:
        return
    expansion = expand_cached(circuit, frames=2)
    scalar = DecisionSession(
        expansion, share_prefix=share_prefix, packed="off"
    )
    packed = DecisionSession(
        expansion, share_prefix=share_prefix, packed="on"
    )
    reference = scalar.decide_group(pairs)
    candidate = packed.decide_group(pairs)
    for (expected, _), (actual, _) in zip(reference, candidate):
        assert actual.classification == expected.classification
        assert actual.stage == expected.stage
        assert actual.cases == expected.cases
    assert scalar.stats()["pairs"] == packed.stats()["pairs"]
    stats = packed.stats()
    assert stats["packed_lanes"] == 4 * len(pairs)
    assert stats["packed_resolved"] + stats["packed_fallbacks"] == (
        stats["packed_lanes"]
    )


@given(seeds)
def test_session_records_identical_with_learned(seed):
    """Packed identity holds with the implication DB seeded per lane."""
    circuit = random_sequential_circuit(seed)
    pairs = connected_ff_pairs(circuit)
    if not pairs:
        return
    expansion = expand_cached(circuit, frames=2)
    learned = implication_db(expansion.comb)
    scalar = DecisionSession(expansion, learned=learned, packed="off")
    packed = DecisionSession(expansion, learned=learned, packed="on")
    for (expected, _), (actual, _) in zip(
        scalar.decide_group(pairs), packed.decide_group(pairs)
    ):
        assert actual.classification == expected.classification
        assert actual.stage == expected.stage
        assert actual.cases == expected.cases
