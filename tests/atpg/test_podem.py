"""The PODEM search must agree with the D-algorithm-style search.

Verdicts (SAT/UNSAT) are a property of the constraints, not of the search
order, so on every random target the two engines must agree — only their
decision/backtrack counts may differ (which is the paper's §4.5 point).
"""


from hypothesis import given
from hypothesis import strategies as st

from repro.circuit.builder import CircuitBuilder
from repro.circuit.gates import GateType
from repro.logic.simulator import evaluate_gate
from repro.logic.values import ONE, X, ZERO
from repro.atpg.implication import ImplicationEngine
from repro.atpg.justify import SearchStatus, justify
from repro.atpg.podem import podem_justify

from tests.strategies import random_combinational_circuit, seeds


def _evaluate(circuit, input_values):
    values = dict(input_values)
    for node in circuit.topo_order():
        gate_type = circuit.types[node]
        if gate_type == GateType.INPUT:
            values.setdefault(node, 0)
        elif gate_type == GateType.CONST0:
            values[node] = 0
        elif gate_type == GateType.CONST1:
            values[node] = 1
        else:
            values[node] = evaluate_gate(
                gate_type, [values[f] for f in circuit.fanins[node]]
            )
    return values


@given(seeds, st.integers(min_value=0, max_value=255))
def test_podem_agrees_with_dalg(seed, stimulus):
    circuit = random_combinational_circuit(seed)
    internal = [
        n for n in range(circuit.num_nodes)
        if circuit.types[n] not in (GateType.INPUT, GateType.CONST0,
                                    GateType.CONST1, GateType.OUTPUT)
    ]
    if not internal:
        return
    targets = [(internal[stimulus % len(internal)], (stimulus >> 4) & 1)]

    engine = ImplicationEngine(circuit)
    if not engine.assume_all(targets):
        return  # both engines are never consulted on contradictions
    dalg = justify(engine, backtrack_limit=100_000)
    podem = podem_justify(engine, backtrack_limit=100_000)
    assert dalg.status is podem.status

    if podem.status is SearchStatus.SAT:
        witness = {n: (0 if v == X else v) for n, v in podem.witness.items()}
        values = _evaluate(circuit, witness)
        for node, value in targets:
            assert values[node] == value


def test_podem_trivial_sat():
    builder = CircuitBuilder("t")
    a, b = builder.input("a"), builder.input("b")
    g = builder.and_(a, b, name="g")
    builder.output("o", g)
    circuit = builder.build()
    engine = ImplicationEngine(circuit)
    assert engine.assume(g, ONE)
    result = podem_justify(engine)
    assert result.status is SearchStatus.SAT
    assert result.witness[a] == ONE and result.witness[b] == ONE


def test_podem_needs_decision():
    builder = CircuitBuilder("t")
    a, b, c = builder.input("a"), builder.input("b"), builder.input("c")
    g = builder.and_(a, b, c, name="g")
    builder.output("o", g)
    circuit = builder.build()
    engine = ImplicationEngine(circuit)
    assert engine.assume(g, ZERO)
    result = podem_justify(engine)
    assert result.status is SearchStatus.SAT
    assert result.decisions >= 1


def test_podem_unsat_reconvergence():
    builder = CircuitBuilder("t")
    a = builder.input("a")
    b1 = builder.buf(a, name="b1")
    b2 = builder.buf(a, name="b2")
    g = builder.xor(b1, b2, name="g")
    builder.output("o", g)
    circuit = builder.build()
    engine = ImplicationEngine(circuit)
    if engine.assume(g, ONE):
        result = podem_justify(engine)
        assert result.status is SearchStatus.UNSAT


def test_podem_abort_at_limit():
    builder = CircuitBuilder("t")
    a = builder.input("a")
    b1 = builder.buf(a, name="b1")
    b2 = builder.buf(a, name="b2")
    g = builder.xor(b1, b2, name="g")
    builder.output("o", g)
    circuit = builder.build()
    engine = ImplicationEngine(circuit)
    if engine.assume(g, ONE):
        result = podem_justify(engine, backtrack_limit=0)
        assert result.status is SearchStatus.ABORTED


def test_podem_restores_engine():
    circuit = random_combinational_circuit(11)
    engine = ImplicationEngine(circuit)
    internal = [
        n for n in range(circuit.num_nodes)
        if circuit.types[n] not in (GateType.INPUT, GateType.CONST0,
                                    GateType.CONST1)
    ]
    engine.assume(internal[-1], ONE)
    before = list(engine.assignment.values)
    podem_justify(engine, backtrack_limit=1000)
    assert list(engine.assignment.values) == before


def test_detector_with_podem_engine(fig1):
    from repro.core.detector import DetectorOptions, detect_multi_cycle_pairs

    dalg = detect_multi_cycle_pairs(fig1)
    podem = detect_multi_cycle_pairs(
        fig1, DetectorOptions(search_engine="podem")
    )
    assert dalg.multi_cycle_pair_names() == podem.multi_cycle_pair_names()


def test_unknown_engine_rejected(fig1):
    import pytest

    from repro.circuit.timeframe import expand
    from repro.core.pair_analysis import PairAnalyzer

    with pytest.raises(ValueError):
        PairAnalyzer(expand(fig1, 2), search_engine="magic")
