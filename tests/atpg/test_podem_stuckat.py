"""Textbook PODEM vs the miter-based generator: verdicts must agree."""


from hypothesis import given

from repro.circuit.builder import CircuitBuilder
from repro.circuit.gates import GateType
from repro.logic.dvalues import D, DBAR, V0, V1, VX, eval_gate5, is_error, to_symbol
from repro.logic.simulator import evaluate_gate
from repro.atpg.podem_stuckat import PodemStuckAtAtpg
from repro.atpg.stuckat import FaultStatus, StuckAtAtpg, enumerate_faults

from tests.strategies import random_sequential_circuit, seeds


def test_dvalue_symbols():
    assert to_symbol(V0) == "0" and to_symbol(V1) == "1"
    assert to_symbol(D) == "D" and to_symbol(DBAR) == "D'"
    assert to_symbol(VX) == "X"


def test_dvalue_error_predicate():
    assert is_error(D) and is_error(DBAR)
    assert not is_error(V0) and not is_error(VX)


def test_eval_gate5_matches_componentwise():
    for a in (V0, V1, VX, D, DBAR):
        for b in (V0, V1, VX, D, DBAR):
            got = eval_gate5(GateType.AND, [a, b])
            assert got[0] == evaluate_gate(GateType.AND, [a[0], b[0]])
            assert got[1] == evaluate_gate(GateType.AND, [a[1], b[1]])


def test_d_calculus_identities():
    """The classic table: D AND 1 = D, D OR 1 = 1, D XOR D = 0, etc."""
    assert eval_gate5(GateType.AND, [D, V1]) == D
    assert eval_gate5(GateType.AND, [D, V0]) == V0
    assert eval_gate5(GateType.OR, [D, V1]) == V1
    assert eval_gate5(GateType.OR, [D, V0]) == D
    assert eval_gate5(GateType.NOT, [D]) == DBAR
    assert eval_gate5(GateType.XOR, [D, D]) == V0
    assert eval_gate5(GateType.XOR, [D, DBAR]) == V1
    assert eval_gate5(GateType.AND, [D, DBAR]) == V0


def test_s27_agrees_with_miter(s27_circuit):
    miter = StuckAtAtpg(s27_circuit).run()
    podem = PodemStuckAtAtpg(s27_circuit).run()
    for a, b in zip(miter.results, podem.results):
        assert a.fault == b.fault
        assert a.status == b.status


@given(seeds)
def test_generators_agree_on_random_circuits(seed):
    circuit = random_sequential_circuit(seed, max_inputs=3, max_dffs=3,
                                        max_gates=8)
    miter = StuckAtAtpg(circuit, backtrack_limit=100_000)
    podem = PodemStuckAtAtpg(circuit, backtrack_limit=100_000)
    for fault in enumerate_faults(circuit)[:10]:
        a = miter.generate_test(fault)
        b = podem.generate_test(fault)
        assert a.status == b.status, fault.name(circuit)


def test_podem_patterns_really_detect(fig1):
    """Simulate each PODEM pattern against the faulty circuit."""
    atpg = PodemStuckAtAtpg(fig1)
    comb = atpg.expansion.comb
    for fault in enumerate_faults(fig1):
        result = atpg.generate_test(fault)
        assert result.status is FaultStatus.DETECTED
        site = atpg.expansion.node_at[0][fault.node]
        values = atpg._simulate(result.pattern, site, fault.stuck_value)
        assert any(is_error(values[o]) for o in atpg._observe)


def test_podem_redundant_fault():
    builder = CircuitBuilder("red")
    a = builder.input("a")
    na = builder.not_(a, name="na")
    g = builder.and_(a, na, name="g")
    builder.output("o", builder.or_(g, builder.input("b"), name="out"))
    circuit = builder.build()
    atpg = PodemStuckAtAtpg(circuit)
    from repro.atpg.stuckat import Fault

    assert atpg.generate_test(Fault(g, 0)).status is FaultStatus.REDUNDANT
    assert atpg.generate_test(Fault(g, 1)).status is FaultStatus.DETECTED


def test_podem_abort_on_zero_budget(fig1):
    from repro.atpg.stuckat import Fault

    atpg = PodemStuckAtAtpg(fig1, backtrack_limit=0)
    # Pick a fault needing at least one flip: stuck value equal to the
    # easiest assignment... iterate until an ABORT or all detected.
    statuses = {atpg.generate_test(f).status for f in enumerate_faults(fig1)}
    assert FaultStatus.DETECTED in statuses  # zero budget still detects easy ones
