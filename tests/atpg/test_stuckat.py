"""Stuck-at ATPG: detected patterns must really detect; redundancy must
match SAT-based untestability."""

import itertools

from hypothesis import given

from repro.circuit.builder import CircuitBuilder
from repro.circuit.gates import GateType
from repro.logic.simulator import evaluate_gate
from repro.atpg.stuckat import (
    Fault,
    FaultStatus,
    StuckAtAtpg,
    enumerate_faults,
    run_atpg,
)

from tests.strategies import random_sequential_circuit, seeds


def _evaluate_with_fault(comb, input_values, fault_site, stuck):
    """Evaluate a combinational circuit with one node forced."""
    values = {}
    for node in comb.topo_order():
        gate_type = comb.types[node]
        if node == fault_site:
            values[node] = stuck
            continue
        if gate_type == GateType.INPUT:
            values[node] = input_values[node]
        elif gate_type == GateType.CONST0:
            values[node] = 0
        elif gate_type == GateType.CONST1:
            values[node] = 1
        else:
            values[node] = evaluate_gate(
                gate_type, [values[f] for f in comb.fanins[node]]
            )
    return values


def _observation_values(atpg, values):
    return tuple(values[n] for n in atpg._observe)


def test_s27_full_coverage(s27_circuit):
    report = run_atpg(s27_circuit)
    assert report.coverage == 1.0
    assert not report.aborted
    assert len(report.results) == 2 * (4 + 3 + 10)  # PIs + FFs + gates


def test_detected_patterns_really_detect(fig1):
    """Simulate good vs faulty circuit under each pattern: they must
    differ at an observation point."""
    atpg = StuckAtAtpg(fig1)
    comb = atpg.expansion.comb
    report = atpg.run()
    assert report.detected
    for result in report.detected:
        site = atpg.expansion.node_at[0][result.fault.node]
        good = _evaluate_with_fault(comb, result.pattern, -1, 0)
        bad = _evaluate_with_fault(
            comb, result.pattern, site, result.fault.stuck_value
        )
        assert _observation_values(atpg, good) != _observation_values(atpg, bad), (
            result.fault.name(fig1)
        )


def test_redundant_fault_detected_as_such():
    """x AND !x is constantly 0: its SA0 is textbook-redundant."""
    builder = CircuitBuilder("red")
    a = builder.input("a")
    na = builder.not_(a, name="na")
    g = builder.and_(a, na, name="g")
    out = builder.or_(g, builder.input("b"), name="out")
    builder.output("o", out)
    circuit = builder.build()
    atpg = StuckAtAtpg(circuit)
    result = atpg.generate_test(Fault(g, 0))
    assert result.status is FaultStatus.REDUNDANT
    # ... while its SA1 is testable (set b=0, observe the forced 1).
    result = atpg.generate_test(Fault(g, 1))
    assert result.status is FaultStatus.DETECTED


def test_unobservable_fault_is_redundant():
    """Logic feeding nothing cannot be tested."""
    builder = CircuitBuilder("dead")
    a = builder.input("a")
    builder.not_(a, name="dangling")
    builder.output("o", builder.buf(a, name="keep"))
    circuit = builder.build()
    atpg = StuckAtAtpg(circuit)
    result = atpg.generate_test(Fault(circuit.id_of("dangling"), 1))
    assert result.status is FaultStatus.REDUNDANT


@given(seeds)
def test_redundancy_matches_exhaustive_check(seed):
    """A fault is redundant iff NO input vector distinguishes it."""
    circuit = random_sequential_circuit(seed, max_inputs=2, max_dffs=2,
                                        max_gates=6)
    atpg = StuckAtAtpg(circuit, backtrack_limit=100_000)
    comb = atpg.expansion.comb
    faults = enumerate_faults(circuit)[:8]
    for fault in faults:
        result = atpg.generate_test(fault)
        site = atpg.expansion.node_at[0][fault.node]
        distinguishable = False
        free = comb.inputs
        for bits in itertools.product((0, 1), repeat=len(free)):
            inputs = dict(zip(free, bits))
            good = _evaluate_with_fault(comb, inputs, -1, 0)
            bad = _evaluate_with_fault(comb, inputs, site, fault.stuck_value)
            if _observation_values(atpg, good) != _observation_values(atpg, bad):
                distinguishable = True
                break
        assert (result.status is FaultStatus.DETECTED) == distinguishable


def test_enumerate_faults_excludes_output_markers(fig1):
    faults = enumerate_faults(fig1)
    output_nodes = set(fig1.outputs)
    assert all(f.node not in output_nodes for f in faults)


def test_report_accounting(fig1):
    report = run_atpg(fig1)
    assert (len(report.detected) + len(report.redundant)
            + len(report.aborted)) == len(report.results)
    assert 0.0 <= report.coverage <= 1.0
