"""Soundness and strength of the implication procedure.

*Soundness* is the critical property: every value the engine derives must
hold in **all** binary completions consistent with the assumptions — a
single unsound implication would let the detector claim multi-cycle pairs
that are not.  The property test enumerates completions on small random
combinational circuits.
"""

import itertools

from hypothesis import given
from hypothesis import strategies as st

from repro.circuit.builder import CircuitBuilder
from repro.circuit.gates import GateType
from repro.logic.simulator import evaluate_gate
from repro.logic.values import ONE, X, ZERO
from repro.atpg.implication import ImplicationEngine

from tests.strategies import random_combinational_circuit, seeds


def _completions(circuit, fixed):
    """Yield full input->node valuations consistent with ``fixed`` inputs."""
    inputs = circuit.inputs
    order = circuit.topo_order()
    for bits in itertools.product((0, 1), repeat=len(inputs)):
        values = {}
        ok = True
        for node, bit in zip(inputs, bits):
            if node in fixed and fixed[node] != bit:
                ok = False
                break
            values[node] = bit
        if not ok:
            continue
        for node in order:
            gate_type = circuit.types[node]
            if gate_type == GateType.INPUT:
                continue
            if gate_type == GateType.CONST0:
                values[node] = 0
            elif gate_type == GateType.CONST1:
                values[node] = 1
            else:
                values[node] = evaluate_gate(
                    gate_type, [values[f] for f in circuit.fanins[node]]
                )
        yield values


@given(seeds, st.integers(min_value=0, max_value=1023))
def test_implication_is_sound(seed, stimulus):
    """Derived values hold in every consistent completion; contradictions
    are only reported when no completion exists."""
    circuit = random_combinational_circuit(seed)
    engine = ImplicationEngine(circuit)

    # Assume a random subset of nodes at random values.
    assumptions = []
    for k, node in enumerate(range(circuit.num_nodes)):
        if circuit.types[node] == GateType.OUTPUT:
            continue
        if (stimulus >> (k % 10)) & 1 and len(assumptions) < 3:
            if circuit.types[node] not in (GateType.CONST0, GateType.CONST1):
                assumptions.append((node, (stimulus >> ((k + 3) % 10)) & 1))

    ok = engine.assume_all(assumptions)

    # Enumerate completions consistent with the *assumed node values*.
    consistent = []
    for values in _completions(circuit, {}):
        if all(values[n] == v for n, v in assumptions):
            consistent.append(values)

    if not ok:
        # Contradiction must mean the assumptions are truly unsatisfiable
        # *for implication-visible reasons*: at minimum they must not hold
        # in every completion trivially (weak direction checked below for
        # derived values; a conflict with existing completions is allowed
        # only when none are consistent).
        assert not consistent, "engine reported a contradiction but a model exists"
        return

    for node in range(circuit.num_nodes):
        derived = engine.value(node)
        if derived == X:
            continue
        for values in consistent:
            assert values[node] == derived, (
                f"unsound implication at node {circuit.names[node]}"
            )


def _engine_for(builder):
    circuit = builder.build()
    return circuit, ImplicationEngine(circuit)


def test_and_forward_controlling():
    builder = CircuitBuilder("t")
    a, b = builder.input("a"), builder.input("b")
    g = builder.and_(a, b, name="g")
    builder.output("o", g)
    circuit, engine = _engine_for(builder)
    assert engine.assume(a, ZERO)
    assert engine.value(g) == ZERO


def test_and_forward_all_noncontrolling():
    builder = CircuitBuilder("t")
    a, b = builder.input("a"), builder.input("b")
    g = builder.and_(a, b, name="g")
    builder.output("o", g)
    circuit, engine = _engine_for(builder)
    assert engine.assume_all([(a, ONE), (b, ONE)])
    assert engine.value(g) == ONE


def test_and_backward_output_one():
    builder = CircuitBuilder("t")
    a, b = builder.input("a"), builder.input("b")
    g = builder.and_(a, b, name="g")
    builder.output("o", g)
    circuit, engine = _engine_for(builder)
    assert engine.assume(g, ONE)
    assert engine.value(a) == ONE and engine.value(b) == ONE


def test_and_backward_last_free_input():
    builder = CircuitBuilder("t")
    a, b, c = builder.input("a"), builder.input("b"), builder.input("c")
    g = builder.and_(a, b, c, name="g")
    builder.output("o", g)
    circuit, engine = _engine_for(builder)
    assert engine.assume_all([(g, ZERO), (a, ONE), (b, ONE)])
    assert engine.value(c) == ZERO


def test_nor_rules():
    builder = CircuitBuilder("t")
    a, b = builder.input("a"), builder.input("b")
    g = builder.nor(a, b, name="g")
    builder.output("o", g)
    circuit, engine = _engine_for(builder)
    assert engine.assume(g, ONE)
    assert engine.value(a) == ZERO and engine.value(b) == ZERO


def test_xor_forward_and_backward():
    builder = CircuitBuilder("t")
    a, b = builder.input("a"), builder.input("b")
    g = builder.xor(a, b, name="g")
    builder.output("o", g)
    circuit, engine = _engine_for(builder)
    mark = engine.checkpoint()
    assert engine.assume_all([(a, ONE), (b, ONE)])
    assert engine.value(g) == ZERO
    engine.backtrack(mark)
    assert engine.assume_all([(g, ONE), (a, ZERO)])
    assert engine.value(b) == ONE


def test_xnor_backward():
    builder = CircuitBuilder("t")
    a, b = builder.input("a"), builder.input("b")
    g = builder.xnor(a, b, name="g")
    builder.output("o", g)
    circuit, engine = _engine_for(builder)
    assert engine.assume_all([(g, ONE), (a, ONE)])
    assert engine.value(b) == ONE


def test_not_bidirectional():
    builder = CircuitBuilder("t")
    a = builder.input("a")
    g = builder.not_(a, name="g")
    builder.output("o", g)
    circuit, engine = _engine_for(builder)
    mark = engine.checkpoint()
    assert engine.assume(a, ONE)
    assert engine.value(g) == ZERO
    engine.backtrack(mark)
    assert engine.assume(g, ONE)
    assert engine.value(a) == ZERO


def test_mux_select_known():
    builder = CircuitBuilder("t")
    s, d0, d1 = builder.input("s"), builder.input("d0"), builder.input("d1")
    g = builder.mux(s, d0, d1, name="g")
    builder.output("o", g)
    circuit, engine = _engine_for(builder)
    assert engine.assume_all([(s, ZERO), (d0, ONE)])
    assert engine.value(g) == ONE


def test_mux_backward_select_inference():
    """The paper's Fig. 2 step: out != d0 forces the select high."""
    builder = CircuitBuilder("t")
    s, d0, d1 = builder.input("s"), builder.input("d0"), builder.input("d1")
    g = builder.mux(s, d0, d1, name="g")
    builder.output("o", g)
    circuit, engine = _engine_for(builder)
    assert engine.assume_all([(d0, ZERO), (g, ONE)])
    assert engine.value(s) == ONE
    assert engine.value(d1) == ONE


def test_mux_equal_data_implies_output():
    builder = CircuitBuilder("t")
    s, d0, d1 = builder.input("s"), builder.input("d0"), builder.input("d1")
    g = builder.mux(s, d0, d1, name="g")
    builder.output("o", g)
    circuit, engine = _engine_for(builder)
    assert engine.assume_all([(d0, ONE), (d1, ONE)])
    assert engine.value(g) == ONE


def test_contradiction_detected():
    builder = CircuitBuilder("t")
    a, b = builder.input("a"), builder.input("b")
    g = builder.and_(a, b, name="g")
    builder.output("o", g)
    circuit, engine = _engine_for(builder)
    assert not engine.assume_all([(a, ZERO), (g, ONE)])


def test_backtrack_restores_unjustified_set():
    builder = CircuitBuilder("t")
    a, b, c = builder.input("a"), builder.input("b"), builder.input("c")
    g = builder.and_(a, b, c, name="g")
    builder.output("o", g)
    circuit, engine = _engine_for(builder)
    mark = engine.checkpoint()
    assert engine.assume(g, ZERO)  # unjustified: needs some input at 0
    assert engine.unjustified
    engine.backtrack(mark)
    assert not engine.unjustified
    assert engine.value(g) == X


def test_learned_implications_applied():
    builder = CircuitBuilder("t")
    a = builder.input("a")
    b = builder.input("b")
    g = builder.and_(a, b, name="g")
    builder.output("o", g)
    circuit = builder.build()
    learned = {(a, ONE): [(b, ONE)]}
    engine = ImplicationEngine(circuit, learned=learned)
    assert engine.assume(a, ONE)
    assert engine.value(b) == ONE
    assert engine.value(g) == ONE


def test_reset_clears_everything():
    builder = CircuitBuilder("t")
    a = builder.input("a")
    builder.output("o", builder.not_(a, name="g"))
    circuit, engine = _engine_for(builder)
    engine.assume(a, ONE)
    engine.reset()
    assert engine.value(a) == X


def test_constants_preassigned():
    builder = CircuitBuilder("t")
    one = builder.const1("one")
    a = builder.input("a")
    g = builder.and_(one, a, name="g")
    builder.output("o", g)
    circuit, engine = _engine_for(builder)
    assert engine.value(one) == ONE
    assert engine.assume(a, ONE)
    assert engine.value(g) == ONE


def test_fig2_walkthrough(fig1):
    """Reproduce the paper's Fig. 2: assuming (FF1(t), FF1(t+1),
    FF2(t+1)) = (0, 1, 0) on the 2-frame expansion implies FF2(t+2) = 0."""
    from repro.circuit.timeframe import expand

    expansion = expand(fig1, 2)
    engine = ImplicationEngine(expansion.comb)
    i = expansion.ff_index(fig1.id_of("FF1"))
    j = expansion.ff_index(fig1.id_of("FF2"))
    assert engine.assume_all([
        (expansion.ff_at[0][i], ZERO),
        (expansion.ff_at[1][i], ONE),
        (expansion.ff_at[1][j], ZERO),
    ])
    assert engine.value(expansion.ff_at[2][j]) == ZERO
