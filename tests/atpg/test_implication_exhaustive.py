"""Exhaustive per-gate implication strength and soundness.

For every gate type and every three-valued partial assignment of its pins
(inputs and output), the engine's fixpoint is compared against the ground
truth computed by enumeration:

* a pin value the engine derives must be FORCED (equal in all consistent
  binary completions) — soundness;
* a pin value that is forced and derivable from single-gate reasoning
  must be derived — per-gate completeness (the textbook forward/backward
  implication rules are exactly the single-gate-complete ones);
* the engine reports a contradiction iff no consistent completion exists.

This pins down the implication engine far more tightly than the random
property tests: every rule branch is hit for every gate type.
"""

import itertools

import pytest

from repro.circuit.builder import CircuitBuilder
from repro.circuit.gates import GateType
from repro.logic.simulator import evaluate_gate
from repro.logic.values import ONE, X, ZERO
from repro.atpg.implication import ImplicationEngine

_CASES = [
    (GateType.AND, 2), (GateType.AND, 3),
    (GateType.NAND, 2), (GateType.NAND, 3),
    (GateType.OR, 2), (GateType.OR, 3),
    (GateType.NOR, 2), (GateType.NOR, 3),
    (GateType.XOR, 2), (GateType.XOR, 3),
    (GateType.XNOR, 2),
    (GateType.NOT, 1), (GateType.BUF, 1),
    (GateType.MUX, 3),
]


def _single_gate(gate_type, arity):
    builder = CircuitBuilder("g")
    inputs = [builder.input(f"i{k}") for k in range(arity)]
    method = {
        GateType.AND: builder.and_, GateType.NAND: builder.nand,
        GateType.OR: builder.or_, GateType.NOR: builder.nor,
        GateType.XOR: builder.xor, GateType.XNOR: builder.xnor,
    }.get(gate_type)
    if method is not None:
        gate = method(*inputs, name="g")
    elif gate_type == GateType.NOT:
        gate = builder.not_(inputs[0], name="g")
    elif gate_type == GateType.BUF:
        gate = builder.buf(inputs[0], name="g")
    else:
        gate = builder.mux(*inputs, name="g")
    builder.output("o", gate)
    return builder.build(), inputs, gate


def _consistent_completions(gate_type, arity, pin_values):
    """All binary (inputs..., output) tuples consistent with the partials."""
    completions = []
    for bits in itertools.product((0, 1), repeat=arity):
        out = evaluate_gate(gate_type, list(bits))
        candidate = bits + (out,)
        if all(p == X or p == c for p, c in zip(pin_values, candidate)):
            completions.append(candidate)
    return completions


def _forced_values(completions, arity):
    """Per-pin forced value (or X) over the completion set."""
    forced = []
    for position in range(arity + 1):
        values = {c[position] for c in completions}
        forced.append(values.pop() if len(values) == 1 else X)
    return forced


@pytest.mark.parametrize("gate_type,arity", _CASES)
def test_fixpoint_is_sound_and_single_gate_complete(gate_type, arity):
    circuit, inputs, gate = _single_gate(gate_type, arity)
    pins = list(inputs) + [gate]
    for pin_values in itertools.product((ZERO, ONE, X), repeat=arity + 1):
        completions = _consistent_completions(gate_type, arity, pin_values)
        engine = ImplicationEngine(circuit)
        ok = engine.assume_all(
            [(pin, v) for pin, v in zip(pins, pin_values) if v != X]
        )
        if not completions:
            assert not ok, (
                f"{gate_type.name}: engine accepted inconsistent {pin_values}"
            )
            continue
        assert ok, (
            f"{gate_type.name}: engine rejected consistent {pin_values}"
        )
        forced = _forced_values(completions, arity)
        for pin, forced_value in zip(pins, forced):
            derived = engine.value(pin)
            if derived != X:
                # Soundness: anything derived must be forced.
                assert derived == forced_value, (
                    f"{gate_type.name} {pin_values}: derived "
                    f"{circuit.names[pin]}={derived}, forced={forced_value}"
                )
            else:
                # Single-gate completeness: anything forced must be derived.
                assert forced_value == X, (
                    f"{gate_type.name} {pin_values}: missed forced "
                    f"{circuit.names[pin]}={forced_value}"
                )
