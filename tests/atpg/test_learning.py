"""Static learning must be sound and genuinely global."""

import itertools

from hypothesis import given

from repro.circuit.builder import CircuitBuilder
from repro.circuit.gates import GateType
from repro.logic.simulator import evaluate_gate
from repro.logic.values import ONE, ZERO
from repro.atpg.implication import ImplicationEngine
from repro.atpg.learning import count_learned, learn_static_implications

from tests.strategies import random_combinational_circuit, seeds


def _all_valuations(circuit):
    for bits in itertools.product((0, 1), repeat=len(circuit.inputs)):
        values = dict(zip(circuit.inputs, bits))
        for node in circuit.topo_order():
            gate_type = circuit.types[node]
            if gate_type == GateType.INPUT:
                continue
            if gate_type == GateType.CONST0:
                values[node] = 0
            elif gate_type == GateType.CONST1:
                values[node] = 1
            else:
                values[node] = evaluate_gate(
                    gate_type, [values[f] for f in circuit.fanins[node]]
                )
        yield values


@given(seeds)
def test_learned_implications_are_sound(seed):
    """Every learned (n=v => m=w) must hold in all circuit valuations."""
    circuit = random_combinational_circuit(seed, max_inputs=4, max_gates=10)
    learned = learn_static_implications(circuit)
    valuations = list(_all_valuations(circuit))
    for (node, value), consequents in learned.items():
        for other, other_value in consequents:
            for valuation in valuations:
                if valuation[node] == value:
                    assert valuation[other] == other_value, (
                        f"unsound learning {circuit.names[node]}={value} => "
                        f"{circuit.names[other]}={other_value}"
                    )


def test_classic_socrates_example():
    """y = AND(a, b); z = OR(y, c): z=0 => y=0 is local, but the
    contrapositive family includes global facts like a=0 => z's support."""
    builder = CircuitBuilder("soc")
    a, b, c = builder.input("a"), builder.input("b"), builder.input("c")
    y = builder.and_(a, b, name="y")
    z = builder.or_(y, c, name="z")
    builder.output("o", z)
    circuit = builder.build()
    learned = learn_static_implications(circuit)
    # z=1's classic learned fact: a=0 => ... nothing *forces* z; instead the
    # canonical SOCRATES result here: (z=0 => a-side effects) contrapositive
    # of (a=1 ^ b=1 => z=1)-style chains. Verify a known global one:
    # assuming y=1 forces z=1 locally, so the contrapositive z=0 => y=0 is
    # derivable locally and must NOT be learned.
    assert (circuit.id_of("z"), ZERO) not in {
        key for key in learned if (circuit.id_of("y"), ZERO) in learned.get(key, [])
    }


def test_redundancy_filter_drops_local_facts():
    """With the filter on, facts local implication finds are not stored."""
    builder = CircuitBuilder("t")
    a = builder.input("a")
    g = builder.not_(a, name="g")
    builder.output("o", g)
    circuit = builder.build()
    learned = learn_static_implications(circuit, check_redundant=True)
    # NOT is fully bidirectional locally: nothing worth learning.
    assert count_learned(learned) == 0


def test_learning_finds_nonlocal_implication():
    """Reconvergent AND: g = AND(a, b), h = AND(a, NOT(b)), z = OR(g, h).
    z=1 => a=1 holds globally but local implication cannot see it."""
    builder = CircuitBuilder("t")
    a, b = builder.input("a"), builder.input("b")
    nb = builder.not_(b, name="nb")
    g = builder.and_(a, b, name="g")
    h = builder.and_(a, nb, name="h")
    z = builder.or_(g, h, name="z")
    builder.output("o", z)
    circuit = builder.build()

    engine_plain = ImplicationEngine(circuit)
    assert engine_plain.assume(circuit.id_of("z"), ONE)
    assert engine_plain.value(a) != ONE  # local rules cannot derive it

    learned = learn_static_implications(circuit)
    key = (circuit.id_of("z"), ONE)
    assert (a, ONE) in learned.get(key, []), "missing the global implication"

    engine = ImplicationEngine(circuit, learned=learned)
    assert engine.assume(circuit.id_of("z"), ONE)
    assert engine.value(a) == ONE


def test_max_consequents_cap():
    circuit = random_combinational_circuit(3)
    learned = learn_static_implications(circuit, max_consequents_per_key=1)
    assert all(len(v) <= 1 for v in learned.values())


def test_count_learned():
    assert count_learned({}) == 0
    assert count_learned({(0, 1): [(1, 0), (2, 1)]}) == 2
