"""Transition-fault ATPG and the multi-cycle relaxation link."""

from repro.circuit.builder import CircuitBuilder
from repro.core.detector import detect_multi_cycle_pairs
from repro.logic.simulator import Simulator
from repro.atpg.transition import (
    TransitionAtpg,
    TransitionFault,
    TransitionStatus,
    enumerate_transition_faults,
    relaxable_fault_sites,
    transition_relaxation_summary,
)


def test_fault_naming(fig1):
    fault = TransitionFault(fig1.id_of("EN2"), rising=True)
    assert fault.name(fig1) == "EN2/STR"
    assert fault.initial_value == 0 and fault.final_value == 1


def test_shift_register_all_transitions_testable(shift4):
    report = TransitionAtpg(shift4).run()
    assert report.coverage == 1.0
    assert not report.by_status(TransitionStatus.UNTESTABLE)


def test_detected_patterns_launch_and_capture(fig1):
    """Verify each pattern by 2-cycle simulation: the site really takes
    the initial value in the launch frame and the final value at capture."""
    atpg = TransitionAtpg(fig1)
    expansion = atpg.expansion
    report = atpg.run()
    checked = 0
    for result in report.by_status(TransitionStatus.DETECTED):
        sim = Simulator(fig1)
        pattern = result.pattern
        sim.set_all_state([
            pattern[expansion.ff_at[0][k]] for k in range(len(fig1.dffs))
        ])
        sim.set_all_inputs([pattern[n] for n in expansion.pi_at[0]])
        launch_value = sim.value(result.fault.node)
        sim.clock()
        sim.set_all_inputs([pattern[n] for n in expansion.pi_at[1]])
        capture_value = sim.value(result.fault.node)
        assert launch_value == result.fault.initial_value
        assert capture_value == result.fault.final_value
        checked += 1
    assert checked > 0


def test_constant_node_untestable():
    """A node tied to a constant can never transition."""
    builder = CircuitBuilder("const")
    a = builder.input("a")
    zero = builder.const0("zero")
    g = builder.and_(a, zero, name="g")  # g is constant 0
    ff = builder.dff("ff", d=builder.or_(g, a, name="h"))
    builder.output("o", ff)
    circuit = builder.build()
    atpg = TransitionAtpg(circuit)
    result = atpg.generate_test(TransitionFault(g, rising=True))
    assert result.status is TransitionStatus.UNTESTABLE


def test_hold_only_register_untestable():
    """A self-holding FF (D = Q) never toggles between frames."""
    builder = CircuitBuilder("hold")
    ff = builder.dff("ff")
    builder.drive(ff, ff)
    builder.output("o", ff)
    circuit = builder.build()
    atpg = TransitionAtpg(circuit)
    result = atpg.generate_test(TransitionFault(ff, rising=True))
    assert result.status is TransitionStatus.UNTESTABLE


def test_enumerate_covers_both_polarities(s27_circuit):
    faults = enumerate_transition_faults(s27_circuit)
    assert len(faults) == 2 * (4 + 3 + 10)


def test_relaxable_sites_definition_on_fig1(fig1):
    from repro.circuit.gates import GateType

    detection = detect_multi_cycle_pairs(fig1)
    relaxable = relaxable_fault_sites(fig1, detection)
    # OUT observes FF2 directly: FF2 is in a PO cone, never relaxable.
    assert fig1.id_of("FF2") not in relaxable
    # FF1's only sinks are FF1 and FF2, both multi-cycle: relaxable.
    assert fig1.id_of("FF1") in relaxable
    # Definition check: every (source, sink) pair routed through a
    # relaxable node must be multi-cycle.
    multi_cycle = set(detection.multi_cycle_pair_names())
    for node in relaxable:
        node_sources = {
            s for s in fig1.transitive_fanin([node])
            if fig1.types[s] == GateType.DFF
        }
        for sink in fig1.dffs:
            cone = fig1.transitive_fanin([fig1.next_state_node(sink)])
            if node not in cone:
                continue
            for source in node_sources:
                assert (fig1.names[source], fig1.names[sink]) in multi_cycle


def test_relaxation_summary_consistency(fig1):
    detection = detect_multi_cycle_pairs(fig1)
    summary = transition_relaxation_summary(fig1, detection)
    assert summary.total_faults == summary.detected + summary.untestable \
        + summary.aborted
    assert 0 <= summary.relaxed <= summary.detected


def test_pipeline_has_relaxed_faults():
    """In a spaced enable pipeline, the inter-bank cloud sites are fully
    covered by multi-cycle budgets."""
    from repro.circuit.library import enabled_pipeline

    circuit = enabled_pipeline(2, counter_width=2, spacing=2)
    detection = detect_multi_cycle_pairs(circuit)
    summary = transition_relaxation_summary(circuit, detection)
    assert summary.relaxed > 0
