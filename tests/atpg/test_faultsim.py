"""Fault simulation and fault-dropping ATPG."""

from hypothesis import given

from repro.atpg.faultsim import DroppingAtpg, fault_simulate
from repro.atpg.stuckat import (
    StuckAtAtpg,
    enumerate_faults,
    run_atpg,
)

from tests.strategies import random_sequential_circuit, seeds


def test_generated_patterns_detect_their_faults(s27_circuit):
    """Fault simulation must confirm every generator verdict."""
    atpg = StuckAtAtpg(s27_circuit)
    report = atpg.run()
    for result in report.detected:
        detected = fault_simulate(
            s27_circuit, [result.pattern], [result.fault]
        )
        assert detected[result.fault], result.fault.name(s27_circuit)


def test_empty_pattern_set_detects_nothing(fig1):
    faults = enumerate_faults(fig1)[:4]
    detected = fault_simulate(fig1, [], faults)
    assert not any(detected.values())


def test_random_patterns_partial_coverage(s27_circuit):
    """A single all-zero pattern detects some but not all faults."""
    atpg = StuckAtAtpg(s27_circuit)
    comb = atpg.expansion.comb
    pattern = {node: 0 for node in comb.inputs}
    detected = fault_simulate(s27_circuit, [pattern])
    hits = sum(detected.values())
    assert 0 < hits < len(detected)


def test_dropping_atpg_matches_plain_verdicts(s27_circuit):
    plain = run_atpg(s27_circuit)
    dropping = DroppingAtpg(s27_circuit).run()
    plain_status = {r.fault: r.status for r in plain.results}
    for result in dropping.report.results:
        assert result.status == plain_status[result.fault]


def test_dropping_atpg_compacts_test_set(s27_circuit):
    dropping = DroppingAtpg(s27_circuit).run()
    detected = len(dropping.report.detected)
    assert len(dropping.patterns) < detected, (
        "fault dropping should need fewer patterns than faults"
    )
    # And the compacted set really covers everything detected.
    coverage = fault_simulate(
        s27_circuit, dropping.patterns,
        [r.fault for r in dropping.report.detected],
    )
    assert all(coverage.values())


@given(seeds)
def test_dropping_equals_plain_on_random_circuits(seed):
    circuit = random_sequential_circuit(seed, max_inputs=2, max_dffs=2,
                                        max_gates=6)
    plain = run_atpg(circuit, backtrack_limit=100_000)
    dropping = DroppingAtpg(circuit, backtrack_limit=100_000).run()
    for a, b in zip(plain.results, dropping.report.results):
        assert a.fault == b.fault
        assert a.status == b.status


def test_multi_word_pattern_packing(fig1):
    """More than 64 patterns exercises the multi-word path."""
    atpg = StuckAtAtpg(fig1)
    comb = atpg.expansion.comb
    patterns = [
        {node: (index >> position) & 1
         for position, node in enumerate(comb.inputs)}
        for index in range(70)
    ]
    detected = fault_simulate(fig1, patterns)
    assert sum(detected.values()) == len(detected)  # 70 patterns cover fig1
