"""Public-API hygiene: exports resolve, docstrings exist, README works."""

import importlib
import pkgutil

import repro


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_readme_quickstart_snippet():
    from repro import MultiCycleDetector
    from repro.circuit.library import fig1_circuit

    result = MultiCycleDetector(fig1_circuit()).run()
    assert result.connected_pairs == 9
    assert len(result.multi_cycle_pair_names()) == 5


def _walk_modules():
    for module_info in pkgutil.walk_packages(repro.__path__, "repro."):
        if module_info.name.endswith("__main__"):
            continue  # importing it would run the CLI
        yield module_info.name


def test_every_module_imports_and_has_docstring():
    for name in _walk_modules():
        module = importlib.import_module(name)
        assert module.__doc__, f"{name} is missing a module docstring"


def test_every_public_callable_documented():
    """Public functions/classes of every module carry docstrings."""
    import inspect

    missing = []
    for name in _walk_modules():
        module = importlib.import_module(name)
        for attr_name, attr in vars(module).items():
            if attr_name.startswith("_"):
                continue
            if getattr(attr, "__module__", None) != name:
                continue
            if inspect.isclass(attr) or inspect.isfunction(attr):
                if not attr.__doc__:
                    missing.append(f"{name}.{attr_name}")
    assert not missing, f"undocumented public items: {missing}"


def test_version_string():
    assert repro.__version__.count(".") == 2
