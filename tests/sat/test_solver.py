"""Differential and unit tests for the CDCL solver."""

import itertools
import random

from hypothesis import given
from hypothesis import strategies as st

from repro.sat.solver import CdclSolver, SolveStatus


def _brute_sat(num_vars, clauses):
    for bits in itertools.product((0, 1), repeat=num_vars):
        if all(
            any(bits[abs(l) - 1] == (1 if l > 0 else 0) for l in clause)
            for clause in clauses
        ):
            return True
    return False


def _random_cnf(seed):
    rng = random.Random(seed)
    num_vars = rng.randint(1, 9)
    clauses = [
        [rng.choice([1, -1]) * rng.randint(1, num_vars)
         for _ in range(rng.randint(1, 3))]
        for _ in range(rng.randint(1, 30))
    ]
    return num_vars, clauses


@given(st.integers(min_value=0, max_value=10_000_000))
def test_solver_matches_brute_force(seed):
    num_vars, clauses = _random_cnf(seed)
    solver = CdclSolver()
    ok = all(solver.add_clause(clause) for clause in clauses)
    status = solver.solve() if ok else SolveStatus.UNSAT
    expected = _brute_sat(num_vars, clauses)
    assert (status is SolveStatus.SAT) == expected
    if status is SolveStatus.SAT:
        model = solver.model()
        for clause in clauses:
            assert any(
                model.get(abs(l), 0) == (1 if l > 0 else 0) for l in clause
            ), "model does not satisfy a clause"


def test_empty_clause_is_unsat():
    solver = CdclSolver()
    assert not solver.add_clause([])
    assert solver.solve() is SolveStatus.UNSAT


def test_unit_clauses_propagate_at_root():
    solver = CdclSolver()
    assert solver.add_clause([1])
    assert solver.add_clause([-1, 2])
    assert solver.solve() is SolveStatus.SAT
    assert solver.model_value(1) == 1
    assert solver.model_value(2) == 1


def test_contradictory_units():
    solver = CdclSolver()
    assert solver.add_clause([3])
    assert not solver.add_clause([-3])


def test_tautology_ignored():
    solver = CdclSolver()
    assert solver.add_clause([1, -1])
    assert solver.solve() is SolveStatus.SAT


def test_duplicate_literals_collapse():
    solver = CdclSolver()
    assert solver.add_clause([2, 2, 2])
    assert solver.solve() is SolveStatus.SAT
    assert solver.model_value(2) == 1


def test_assumptions_flip_result():
    solver = CdclSolver()
    for clause in ([1, 2], [-1, 3], [-2, 3]):
        solver.add_clause(clause)
    assert solver.solve([-3]) is SolveStatus.UNSAT
    assert solver.solve([3]) is SolveStatus.SAT
    assert solver.solve() is SolveStatus.SAT


def test_assumptions_are_honoured_in_model():
    solver = CdclSolver()
    solver.add_clause([1, 2, 3])
    assert solver.solve([-1, -2]) is SolveStatus.SAT
    assert solver.model_value(1) == 0
    assert solver.model_value(2) == 0
    assert solver.model_value(3) == 1


def test_incremental_reuse_many_assumption_sets():
    """The incremental pattern mc_sat relies on."""
    solver = CdclSolver()
    # x_i -> x_{i+1} chain.
    for i in range(1, 20):
        solver.add_clause([-i, i + 1])
    solver.add_clause([-20, -21])
    for _ in range(3):
        assert solver.solve([1]) is SolveStatus.SAT
        assert solver.solve([1, 21]) is SolveStatus.UNSAT
        assert solver.solve([21]) is SolveStatus.SAT


def test_pigeonhole_unsat():
    def pigeonhole(pigeons, holes):
        clauses = []
        def var(p, h):
            return p * holes + h + 1
        for p in range(pigeons):
            clauses.append([var(p, h) for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    clauses.append([-var(p1, h), -var(p2, h)])
        return clauses

    solver = CdclSolver()
    for clause in pigeonhole(5, 4):
        solver.add_clause(clause)
    assert solver.solve() is SolveStatus.UNSAT
    assert solver.stats.conflicts > 0
    assert solver.stats.learned_clauses > 0


def test_conflict_limit_yields_unknown():
    def pigeonhole_clauses():
        clauses = []
        def var(p, h):
            return p * 7 + h + 1
        for p in range(8):
            clauses.append([var(p, h) for h in range(7)])
        for h in range(7):
            for p1 in range(8):
                for p2 in range(p1 + 1, 8):
                    clauses.append([-var(p1, h), -var(p2, h)])
        return clauses

    solver = CdclSolver()
    for clause in pigeonhole_clauses():
        solver.add_clause(clause)
    assert solver.solve(conflict_limit=5) is SolveStatus.UNKNOWN


def test_restarts_happen_on_hard_instances():
    rng = random.Random(42)
    solver = CdclSolver()
    num_vars = 40
    for _ in range(170):  # near the 3-SAT phase transition
        clause = [rng.choice([1, -1]) * rng.randint(1, num_vars) for _ in range(3)]
        solver.add_clause(clause)
    solver.solve()
    assert solver.stats.decisions > 0


def test_model_value_of_unknown_var():
    solver = CdclSolver()
    solver.add_clause([1])
    solver.solve()
    assert solver.model_value(99) is None


def test_solve_after_unsat_stays_unsat():
    solver = CdclSolver()
    solver.add_clause([1])
    assert not solver.add_clause([-1])
    assert solver.solve() is SolveStatus.UNSAT
    assert solver.solve([2]) is SolveStatus.UNSAT


def _pigeonhole(pigeons, holes):
    clauses = []

    def var(p, h):
        return p * holes + h + 1

    for p in range(pigeons):
        clauses.append([var(p, h) for h in range(holes)])
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                clauses.append([-var(p1, h), -var(p2, h)])
    return clauses


def test_database_reduction_preserves_unsat():
    """php(8,7) forces thousands of conflicts; with a tiny learned-clause
    budget the reduction path must fire without breaking the proof."""
    solver = CdclSolver()
    solver.max_learned = 500
    for clause in _pigeonhole(8, 7):
        solver.add_clause(clause)
    assert solver.solve() is SolveStatus.UNSAT
    assert any(clause is None for clause in solver.clauses), (
        "expected the reduction to delete learned clauses"
    )


def test_database_reduction_preserves_sat_models():
    """Aggressive reduction on a satisfiable chain instance."""
    solver = CdclSolver()
    solver.max_learned = 1
    num_vars = 30
    for i in range(1, num_vars):
        solver.add_clause([-i, i + 1])
    solver.add_clause([1])
    assert solver.solve() is SolveStatus.SAT
    assert all(solver.model_value(v) == 1 for v in range(1, num_vars + 1))


def test_reduce_db_keeps_binary_drops_cold_ternary():
    solver = CdclSolver()
    solver.add_clause([1, 2])        # binary: always kept
    solver.add_clause([1, 2, 3])     # cold ternary: dropped
    solver.add_clause([1, 3, 4])     # warm ternary: kept (upper half)
    for cid in range(3):
        solver.is_learned[cid] = True
    solver.clause_activity[2] = 5.0
    solver._reduce_db()
    assert solver.clauses[0] is not None
    assert solver.clauses[1] is None
    assert solver.clauses[2] is not None
