"""The SAT-based baseline must agree with the brute-force oracle."""

import pytest
from hypothesis import given

from repro.core.brute import brute_force_mc_pairs
from repro.sat.mc_sat import SatMcDetector, sat_detect_multi_cycle_pairs

from tests.strategies import random_sequential_circuit, seeds


def test_fig1_matches_paper(fig1):
    result = sat_detect_multi_cycle_pairs(fig1)
    assert result.multi_cycle_pair_names() == [
        ("FF1", "FF1"), ("FF1", "FF2"), ("FF2", "FF2"),
        ("FF3", "FF2"), ("FF4", "FF1"),
    ]


def test_s27_has_no_mc_pairs(s27_circuit):
    result = sat_detect_multi_cycle_pairs(s27_circuit)
    assert result.multi_cycle_pairs == []
    assert result.connected_pairs == 7


@given(seeds)
def test_agrees_with_brute_force(seed):
    circuit = random_sequential_circuit(seed, max_inputs=2, max_dffs=3,
                                        max_gates=8)
    expected = brute_force_mc_pairs(circuit)
    result = sat_detect_multi_cycle_pairs(circuit)
    got = {(p.pair.source, p.pair.sink) for p in result.multi_cycle_pairs}
    assert got == expected


def test_modes_agree(pipeline):
    incremental = sat_detect_multi_cycle_pairs(pipeline, mode="incremental")
    per_pair = sat_detect_multi_cycle_pairs(pipeline, mode="per-pair")
    assert incremental.multi_cycle_pair_names() == per_pair.multi_cycle_pair_names()


def test_unknown_mode_rejected(fig1):
    with pytest.raises(ValueError):
        SatMcDetector(fig1, mode="quantum")


def test_self_loop_exclusion(fig1):
    result = sat_detect_multi_cycle_pairs(fig1, include_self_loops=False)
    names = result.multi_cycle_pair_names()
    assert ("FF1", "FF1") not in names
    assert ("FF3", "FF2") in names


def test_conflict_limit_marks_unknown(fig1):
    detector = SatMcDetector(fig1, conflict_limit=0)
    result = detector.run()
    # With a zero conflict budget some pairs may be unknown; none may be
    # spuriously classified multi-cycle.
    reference = {
        name
        for name in sat_detect_multi_cycle_pairs(fig1).multi_cycle_pair_names()
    }
    for pair_result in result.pair_results:
        name = (
            fig1.names[pair_result.pair.source],
            fig1.names[pair_result.pair.sink],
        )
        if pair_result.is_multi_cycle:
            assert name in reference
