"""Tseitin encoding: SAT models must agree with circuit simulation."""

import itertools

import pytest
from hypothesis import given

from repro.circuit.builder import CircuitBuilder
from repro.circuit.gates import GateType
from repro.circuit.timeframe import expand
from repro.logic.simulator import evaluate_gate
from repro.sat.solver import SolveStatus
from repro.sat.tseitin import encode_circuit

from tests.strategies import random_combinational_circuit, seeds


def _simulate(circuit, input_bits):
    values = dict(zip(circuit.inputs, input_bits))
    for node in circuit.topo_order():
        gate_type = circuit.types[node]
        if gate_type == GateType.INPUT:
            continue
        if gate_type == GateType.CONST0:
            values[node] = 0
        elif gate_type == GateType.CONST1:
            values[node] = 1
        else:
            values[node] = evaluate_gate(
                gate_type, [values[f] for f in circuit.fanins[node]]
            )
    return values


@given(seeds)
def test_every_input_vector_is_a_model(seed):
    """Forcing the PIs to a vector must yield exactly the simulated values."""
    circuit = random_combinational_circuit(seed, max_inputs=4, max_gates=10)
    encoding = encode_circuit(circuit)
    solver = encoding.solver
    for bits in itertools.product((0, 1), repeat=len(circuit.inputs)):
        assumptions = [
            encoding.lit(node, bit) for node, bit in zip(circuit.inputs, bits)
        ]
        assert solver.solve(assumptions) is SolveStatus.SAT
        expected = _simulate(circuit, bits)
        for node in range(circuit.num_nodes):
            got = solver.model_value(encoding.var_of[node])
            assert got == expected[node], (
                f"node {circuit.names[node]} mismatch on input {bits}"
            )


def test_impossible_internal_value_is_unsat():
    builder = CircuitBuilder("t")
    a = builder.input("a")
    na = builder.not_(a, name="na")
    g = builder.and_(a, na, name="g")
    builder.output("o", g)
    circuit = builder.build()
    encoding = encode_circuit(circuit)
    assert encoding.solver.solve([encoding.lit(g, 1)]) is SolveStatus.UNSAT
    assert encoding.solver.solve([encoding.lit(g, 0)]) is SolveStatus.SAT


def test_constants_are_fixed():
    builder = CircuitBuilder("t")
    one = builder.const1("one")
    builder.output("o", builder.buf(one, name="b"))
    circuit = builder.build()
    encoding = encode_circuit(circuit)
    assert encoding.solver.solve([encoding.lit(one, 0)]) is SolveStatus.UNSAT


def test_wide_gates_and_mux():
    builder = CircuitBuilder("t")
    ins = [builder.input(f"a{i}") for i in range(3)]
    wide_and = builder.and_(*ins, name="wa")
    wide_xor = builder.xor(*ins, name="wx")
    mux = builder.mux(ins[0], wide_and, wide_xor, name="m")
    builder.output("o", mux)
    circuit = builder.build()
    encoding = encode_circuit(circuit)
    solver = encoding.solver
    for bits in itertools.product((0, 1), repeat=3):
        assumptions = [encoding.lit(n, b) for n, b in zip(circuit.inputs, bits)]
        assert solver.solve(assumptions) is SolveStatus.SAT
        expected = _simulate(circuit, bits)
        assert solver.model_value(encoding.var_of[mux]) == expected[mux]


def test_rejects_sequential_circuits(fig1):
    with pytest.raises(ValueError):
        encode_circuit(fig1)


def test_expansion_encodes_cleanly(fig1):
    expansion = expand(fig1, 2)
    encoding = encode_circuit(expansion.comb)
    assert encoding.solver.solve() is SolveStatus.SAT
