"""DIMACS round-trips and parser robustness."""

import pytest

from repro.sat.dimacs import (
    DimacsFormatError,
    load_dimacs,
    parse_dimacs,
    solver_from_dimacs,
    write_dimacs,
)
from repro.sat.solver import SolveStatus


def test_parse_basic():
    num_vars, clauses = parse_dimacs("p cnf 3 2\n1 -2 0\n2 3 0\n")
    assert num_vars == 3
    assert clauses == [[1, -2], [2, 3]]


def test_parse_comments_and_trailer():
    text = "c a comment\np cnf 2 1\nc mid comment\n1 2 0\n%\n0\n"
    assert parse_dimacs(text)[1] == [[1, 2]]


def test_parse_multiline_clause():
    _, clauses = parse_dimacs("p cnf 3 1\n1\n-2\n3 0\n")
    assert clauses == [[1, -2, 3]]


def test_parse_missing_terminator():
    _, clauses = parse_dimacs("p cnf 2 1\n1 2")
    assert clauses == [[1, 2]]


def test_parse_grows_num_vars_beyond_header():
    num_vars, _ = parse_dimacs("p cnf 1 1\n7 0\n")
    assert num_vars == 7


@pytest.mark.parametrize("bad", ["p cnf x y", "p dnf 1 1", "1 two 0"])
def test_parse_rejects_malformed(bad):
    with pytest.raises(DimacsFormatError):
        parse_dimacs(bad)


def test_round_trip(tmp_path):
    clauses = [[1, -2], [2, 3, -4], [-1]]
    path = tmp_path / "f.cnf"
    write_dimacs(4, clauses, path, comments=["generated"])
    num_vars, parsed = load_dimacs(path)
    assert num_vars == 4
    assert parsed == clauses


def test_solver_from_dimacs():
    solver = solver_from_dimacs("p cnf 2 2\n1 0\n-1 2 0\n")
    assert solver.solve() is SolveStatus.SAT
    assert solver.model_value(2) == 1


def test_export_tseitin_encoding(tmp_path):
    """The MC 2-frame encoding can be shipped to external solvers."""
    from repro.circuit.library import fig1_circuit
    from repro.circuit.timeframe import expand
    from repro.sat.tseitin import encode_circuit

    expansion = expand(fig1_circuit(), 2)
    encoding = encode_circuit(expansion.comb)
    solver = encoding.solver
    clauses = [[solver._ext(l) for l in clause] for clause in solver.clauses]
    text = write_dimacs(solver.num_vars, clauses)
    reloaded = solver_from_dimacs(text)
    assert reloaded.solve() is SolveStatus.SAT
