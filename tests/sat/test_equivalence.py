"""Miter equivalence checking and FF observability."""

import pytest
from hypothesis import given

from repro.circuit.builder import CircuitBuilder
from repro.circuit.techmap import techmap
from repro.sat.equivalence import (
    check_sequential_equivalence_1step,
    ff_observable_at_outputs,
)

from tests.strategies import random_sequential_circuit, seeds


@given(seeds)
def test_techmap_is_equivalent(seed):
    """The technology mapper must be a behavioural no-op — proven by SAT."""
    circuit = random_sequential_circuit(seed)
    result = check_sequential_equivalence_1step(circuit, techmap(circuit))
    assert result.equivalent, result.differing_signal


def test_fig1_fig3_equivalent(fig1, fig3):
    assert check_sequential_equivalence_1step(fig1, fig3).equivalent


def test_detects_functional_difference():
    def build(flip):
        builder = CircuitBuilder("c")
        a, b = builder.input("a"), builder.input("b")
        gate = builder.nand(a, b, name="g") if flip else builder.and_(a, b, name="g")
        builder.dff("ff", d=gate)
        builder.output("o", gate)
        return builder.build()

    result = check_sequential_equivalence_1step(build(False), build(True))
    assert not result.equivalent
    assert result.differing_signal in ("g", "ff.next")
    assert result.counterexample is not None


def test_detects_interface_mismatch(fig1, s27_circuit):
    result = check_sequential_equivalence_1step(fig1, s27_circuit)
    assert not result.equivalent


def test_counterexample_distinguishes():
    """The returned assignment must actually produce different outputs."""
    from repro.logic.simulator import Simulator

    def build(flip):
        builder = CircuitBuilder("c")
        a, b = builder.input("a"), builder.input("b")
        ff = builder.dff("ff", d=a)
        gate = builder.or_(ff, b, name="g") if flip else builder.xor(ff, b, name="g")
        builder.output("o", gate)
        return builder.build()

    golden, revised = build(False), build(True)
    result = check_sequential_equivalence_1step(golden, revised)
    assert not result.equivalent
    cex = result.counterexample
    values = []
    for circuit in (golden, revised):
        sim = Simulator(circuit)
        sim.set_state({"ff": cex["ff@0"]})
        sim.set_inputs({"a": cex["a@0"], "b": cex["b@0"]})
        outs = sim.output_values()
        nexts = {d: sim.values[circuit.next_state_node(d)] for d in circuit.dffs}
        values.append((outs, nexts))
    assert values[0] != values[1]


def test_observability_fig1(fig1):
    """Only FF2 drives fig1's primary output directly; FF3/FF4 steer the
    MUX2 select whose effect shows one cycle later, FF1 via MUX2 data."""
    assert ff_observable_at_outputs(fig1, fig1.id_of("FF2"))
    # FF1 feeds OUT only through FF2 (a flip-flop boundary): unobservable
    # within the same cycle.
    assert not ff_observable_at_outputs(fig1, fig1.id_of("FF1"))


def test_observability_direct_wire():
    builder = CircuitBuilder("c")
    a = builder.input("a")
    ff = builder.dff("ff", d=a)
    builder.output("o", ff)
    circuit = builder.build()
    assert ff_observable_at_outputs(circuit, ff)


def test_observability_masked_ff():
    """A flip-flop ANDed with constant 0 can never reach the output."""
    builder = CircuitBuilder("c")
    a = builder.input("a")
    ff = builder.dff("ff", d=a)
    zero = builder.const0("zero")
    builder.output("o", builder.and_(ff, zero, name="g"))
    circuit = builder.build()
    assert not ff_observable_at_outputs(circuit, ff)


def test_observability_without_outputs():
    builder = CircuitBuilder("c")
    ff = builder.dff("ff")
    builder.drive(ff, builder.not_(ff, name="n"))
    circuit = builder.build(validate_result=True)
    assert not ff_observable_at_outputs(circuit, ff)


def test_observability_rejects_non_dff(fig1):
    with pytest.raises(ValueError):
        ff_observable_at_outputs(fig1, fig1.id_of("EN1"))
