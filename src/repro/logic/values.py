"""Three-valued logic algebra used throughout the library.

The detection pipeline reasons about partially assigned circuits, so every
signal carries one of three values:

* ``ZERO`` (0) — logic 0,
* ``ONE`` (1) — logic 1,
* ``X`` (2) — unknown / unassigned.

The encoding is chosen so that for the binary values the Python integer *is*
the logic value, which keeps the simulators and the implication engine free
of translation layers.  All gate evaluation helpers in this module accept and
return these small integers.
"""

from __future__ import annotations

from typing import Iterable

ZERO = 0
ONE = 1
X = 2

VALUES = (ZERO, ONE, X)
BINARY = (ZERO, ONE)

_NOT = (ONE, ZERO, X)

#: AND truth table indexed as ``_AND[a][b]``.
_AND = (
    (ZERO, ZERO, ZERO),
    (ZERO, ONE, X),
    (ZERO, X, X),
)

#: OR truth table indexed as ``_OR[a][b]``.
_OR = (
    (ZERO, ONE, X),
    (ONE, ONE, ONE),
    (X, ONE, X),
)

#: XOR truth table indexed as ``_XOR[a][b]``.
_XOR = (
    (ZERO, ONE, X),
    (ONE, ZERO, X),
    (X, X, X),
)


def v_not(a: int) -> int:
    """Return the three-valued negation of ``a``."""
    return _NOT[a]


def v_and(a: int, b: int) -> int:
    """Return the three-valued conjunction of ``a`` and ``b``."""
    return _AND[a][b]


def v_or(a: int, b: int) -> int:
    """Return the three-valued disjunction of ``a`` and ``b``."""
    return _OR[a][b]


def v_xor(a: int, b: int) -> int:
    """Return the three-valued exclusive-or of ``a`` and ``b``."""
    return _XOR[a][b]


def v_and_all(values: Iterable[int]) -> int:
    """Three-valued AND over an iterable (identity ``ONE`` when empty)."""
    result = ONE
    for value in values:
        result = _AND[result][value]
        if result == ZERO:
            return ZERO
    return result


def v_or_all(values: Iterable[int]) -> int:
    """Three-valued OR over an iterable (identity ``ZERO`` when empty)."""
    result = ZERO
    for value in values:
        result = _OR[result][value]
        if result == ONE:
            return ONE
    return result


def v_xor_all(values: Iterable[int]) -> int:
    """Three-valued XOR over an iterable (identity ``ZERO`` when empty)."""
    result = ZERO
    for value in values:
        result = _XOR[result][value]
    return result


def v_mux(select: int, d0: int, d1: int) -> int:
    """Three-valued 2:1 multiplexer: ``d0`` when ``select`` is 0, else ``d1``.

    When the select is unknown the output is known only if both data inputs
    agree on a binary value.
    """
    if select == ZERO:
        return d0
    if select == ONE:
        return d1
    if d0 == d1 and d0 != X:
        return d0
    return X


def is_binary(value: int) -> bool:
    """Return ``True`` for ``ZERO``/``ONE``, ``False`` for ``X``."""
    return value == ZERO or value == ONE


def to_char(value: int) -> str:
    """Render a logic value as ``'0'``, ``'1'`` or ``'X'``."""
    return "01X"[value]


def from_char(char: str) -> int:
    """Parse ``'0'``/``'1'``/``'X'`` (case-insensitive) into a logic value."""
    normalized = char.upper()
    if normalized == "0":
        return ZERO
    if normalized == "1":
        return ONE
    if normalized == "X":
        return X
    raise ValueError(f"not a logic value character: {char!r}")
