"""Compiled levelized simulation plans for the bit-parallel simulator.

The per-node evaluation loop of :class:`~repro.logic.bitsim.BitSimulator`
costs one Python dispatch plus several small numpy calls *per gate per
round*, so stage 1 of the paper's flow scales with interpreter overhead
rather than with the hardware.  A :class:`SimPlan` lowers a circuit once
into level-ordered, gate-type-batched index arrays; evaluating a round is
then a handful of whole-array ``np.bitwise_*.reduce`` kernels per level —
no per-gate Python at all.

Plan layout
-----------
* Nodes are grouped by combinational level (sources at level 0 are never
  evaluated), and within each level by gate type.
* Each batch carries an ``outputs`` vector of node ids and a ``fanins``
  gather matrix of shape ``(len(outputs), max_arity)``.  Rows shorter
  than ``max_arity`` are padded with the index of an *identity row*:
  AND/NAND rows pad with an all-ones row, OR/NOR/XOR/XNOR rows pad with
  an all-zeros row, so the padded reduce is exact.
* The two identity rows live at indices ``num_nodes`` (zeros) and
  ``num_nodes + 1`` (ones) of the simulator's extended value buffer —
  see :attr:`SimPlan.buffer_rows`.

Evaluation of a batch gathers ``buf[fanins]`` (shape ``(n, arity,
words)``), reduces over the arity axis with the batch's bitwise ufunc,
optionally complements (NAND/NOR/XNOR/NOT), and scatters into
``buf[outputs]``.  Because equal-level gates never depend on each other,
batches within a level may run in any order.

Ternary mode
------------
:meth:`SimPlan.run_ternary` evaluates the same batches over *two* bit
planes encoding {0, 1, X} per lane: a ``care`` plane (bit set ⇔ the lane
carries a known binary value) and a ``value`` plane (the binary value
where known, canonically 0 where X, so ``value ⊆ care`` always holds).
Under that canonical encoding the three-valued gate algebra of
:mod:`repro.logic.values` lowers to the same padded reduces::

    AND:  known1 = AND.reduce(value)          # all inputs known-1
          known0 = OR.reduce(care ^ value)    # some input known-0
          value' = known1, care' = known0 | known1   (NAND swaps planes)
    OR :  the dual (swap the reduces)
    XOR:  care' = AND.reduce(care), value' = XOR.reduce(value) & care'

and the identity rows extend naturally: both padding rows are fully
*known* (``care`` all ones), with the value plane zero / all-ones as in
binary mode — so the very same ``fanins`` gather matrices stay exact.
An optional pin set re-asserts caller-forced rows after every level,
which is how the hazard checker holds mid-circuit state nodes at X.

Plans are pure functions of the netlist; :func:`compiled_plan` caches
them on the circuit through :meth:`Circuit.derived`, so every simulator,
filter round and worker process sharing a circuit shares one plan.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit

_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)

#: gate types evaluated by a padded bitwise reduce: type -> (ufunc, invert,
#: pads-with-ones).  AND-like gates pad with the identity of AND (all ones);
#: OR/XOR-like gates pad with zeros.
_REDUCE_OPS = {
    GateType.AND: (np.bitwise_and, False, True),
    GateType.NAND: (np.bitwise_and, True, True),
    GateType.OR: (np.bitwise_or, False, False),
    GateType.NOR: (np.bitwise_or, True, False),
    GateType.XOR: (np.bitwise_xor, False, False),
    GateType.XNOR: (np.bitwise_xor, True, False),
}

#: single-fanin copy/complement types: type -> inverts.
_UNARY_OPS = {
    GateType.BUF: False,
    GateType.OUTPUT: False,
    GateType.NOT: True,
}


@dataclass(frozen=True)
class _ReduceBatch:
    """All same-type multi-input gates of one level, padded to one arity."""

    gate_type: GateType
    outputs: np.ndarray  # (n,) node ids
    fanins: np.ndarray  # (n, max_arity) gather matrix with identity padding


@dataclass(frozen=True)
class _UnaryBatch:
    """All BUF/OUTPUT (copy) or NOT (complement) gates of one level."""

    invert: bool
    outputs: np.ndarray  # (n,)
    sources: np.ndarray  # (n,)


@dataclass(frozen=True)
class _MuxBatch:
    """All MUX gates of one level: out = select ? d1 : d0."""

    outputs: np.ndarray  # (n,)
    selects: np.ndarray  # (n,)
    d0: np.ndarray  # (n,)
    d1: np.ndarray  # (n,)


class SimPlan:
    """A circuit lowered into levelized, type-batched evaluation kernels."""

    def __init__(self, circuit: Circuit) -> None:
        self.circuit_version = circuit.version
        self.num_nodes = circuit.num_nodes
        #: rows the value buffer must have: every node plus the two
        #: identity rows (zeros at ``num_nodes``, ones at ``num_nodes+1``).
        self.buffer_rows = circuit.num_nodes + 2
        self.pad_zeros = circuit.num_nodes
        self.pad_ones = circuit.num_nodes + 1
        self.levels: list[list[object]] = []
        self.num_batches = 0
        self._build(circuit)

    # ------------------------------------------------------------------
    # Lowering.
    # ------------------------------------------------------------------
    def _build(self, circuit: Circuit) -> None:
        level_of = circuit.levels()
        types = circuit.types
        fanins = circuit.fanins
        by_level: dict[int, dict[GateType, list[int]]] = {}
        for node_id, level in enumerate(level_of):
            gate_type = types[node_id]
            if gate_type in _REDUCE_OPS or gate_type in _UNARY_OPS \
                    or gate_type == GateType.MUX:
                by_level.setdefault(level, {}).setdefault(gate_type, []).append(
                    node_id
                )

        for level in sorted(by_level):
            batches: list[object] = []
            groups = by_level[level]
            # Deterministic batch order: fixed GateType enumeration order.
            for gate_type in GateType:
                nodes = groups.get(gate_type)
                if not nodes:
                    continue
                if gate_type in _UNARY_OPS:
                    batches.append(
                        _UnaryBatch(
                            invert=_UNARY_OPS[gate_type],
                            outputs=np.asarray(nodes, dtype=np.intp),
                            sources=np.asarray(
                                [fanins[n][0] for n in nodes], dtype=np.intp
                            ),
                        )
                    )
                elif gate_type == GateType.MUX:
                    batches.append(
                        _MuxBatch(
                            outputs=np.asarray(nodes, dtype=np.intp),
                            selects=np.asarray(
                                [fanins[n][0] for n in nodes], dtype=np.intp
                            ),
                            d0=np.asarray(
                                [fanins[n][1] for n in nodes], dtype=np.intp
                            ),
                            d1=np.asarray(
                                [fanins[n][2] for n in nodes], dtype=np.intp
                            ),
                        )
                    )
                else:
                    pad = (
                        self.pad_ones
                        if _REDUCE_OPS[gate_type][2]
                        else self.pad_zeros
                    )
                    arity = max(len(fanins[n]) for n in nodes)
                    matrix = np.full((len(nodes), arity), pad, dtype=np.intp)
                    for row, node_id in enumerate(nodes):
                        fins = fanins[node_id]
                        matrix[row, : len(fins)] = fins
                    batches.append(
                        _ReduceBatch(
                            gate_type=gate_type,
                            outputs=np.asarray(nodes, dtype=np.intp),
                            fanins=matrix,
                        )
                    )
            self.levels.append(batches)
            self.num_batches += len(batches)

    # ------------------------------------------------------------------
    # Evaluation.
    # ------------------------------------------------------------------
    def run(self, buf: np.ndarray) -> None:
        """Evaluate every combinational node into ``buf`` (extended buffer).

        ``buf`` must have :attr:`buffer_rows` rows; source rows (PIs, DFF
        outputs, constants) and the two identity rows are read, all
        combinational rows are overwritten level by level.
        """
        for batches in self.levels:
            for batch in batches:
                if isinstance(batch, _ReduceBatch):
                    ufunc, invert, _pad_ones = _REDUCE_OPS[batch.gate_type]
                    acc = ufunc.reduce(buf[batch.fanins], axis=1)
                    if invert:
                        np.invert(acc, out=acc)
                    buf[batch.outputs] = acc
                elif isinstance(batch, _UnaryBatch):
                    if batch.invert:
                        buf[batch.outputs] = ~buf[batch.sources]
                    else:
                        buf[batch.outputs] = buf[batch.sources]
                else:  # _MuxBatch
                    select = buf[batch.selects]
                    buf[batch.outputs] = (~select & buf[batch.d0]) | (
                        select & buf[batch.d1]
                    )

    def install_identity_rows(self, buf: np.ndarray) -> None:
        """Write the two padding rows of ``buf`` (zeros, then all ones)."""
        buf[self.pad_zeros] = 0
        buf[self.pad_ones] = _ALL_ONES

    # ------------------------------------------------------------------
    # Ternary (two-plane) evaluation.
    # ------------------------------------------------------------------
    def install_ternary_identity_rows(
        self, value: np.ndarray, care: np.ndarray
    ) -> None:
        """Write the padding rows of a two-plane buffer pair.

        Both identity rows are fully *known* (``care`` all ones); the
        value plane carries the same zeros/ones identities as in binary
        mode, so the shared ``fanins`` gather matrices pad exactly.
        """
        value[self.pad_zeros] = 0
        value[self.pad_ones] = _ALL_ONES
        care[self.pad_zeros] = _ALL_ONES
        care[self.pad_ones] = _ALL_ONES

    def run_ternary(
        self,
        value: np.ndarray,
        care: np.ndarray,
        pin_nodes: np.ndarray | None = None,
        pin_value: np.ndarray | None = None,
        pin_care: np.ndarray | None = None,
        pin_mask: np.ndarray | None = None,
    ) -> None:
        """Evaluate every combinational node three-valued, bit-parallel.

        ``value``/``care`` are two :attr:`buffer_rows`-row planes encoding
        one {0, 1, X} lane per bit (canonical: ``value & ~care == 0``;
        source rows must respect this).  ``pin_nodes`` optionally forces
        rows to ``pin_value``/``pin_care`` — the pins are re-asserted
        after every level, so a pinned *internal* node feeds its forced
        value to every higher level even though its own batch computes it
        (equal-level gates never read each other, so re-pinning at level
        granularity is exact).  ``pin_mask`` restricts the pin to a
        subset of lanes per row (set bits are forced, clear bits keep
        the computed planes); ``None`` pins every lane.
        """
        pinned = pin_nodes is not None and len(pin_nodes) > 0

        def assert_pins() -> None:
            if pin_mask is None:
                value[pin_nodes] = pin_value
                care[pin_nodes] = pin_care
            else:
                value[pin_nodes] = (
                    (value[pin_nodes] & ~pin_mask) | (pin_value & pin_mask)
                )
                care[pin_nodes] = (
                    (care[pin_nodes] & ~pin_mask) | (pin_care & pin_mask)
                )

        if pinned:
            assert_pins()
        for batches in self.levels:
            for batch in batches:
                if isinstance(batch, _ReduceBatch):
                    self._reduce_ternary(batch, value, care)
                elif isinstance(batch, _UnaryBatch):
                    src_v = value[batch.sources]
                    src_c = care[batch.sources]
                    if batch.invert:
                        value[batch.outputs] = src_c ^ src_v
                    else:
                        value[batch.outputs] = src_v
                    care[batch.outputs] = src_c
                else:  # _MuxBatch
                    self._mux_ternary(batch, value, care)
            if pinned:
                assert_pins()

    @staticmethod
    def _reduce_ternary(
        batch: _ReduceBatch, value: np.ndarray, care: np.ndarray
    ) -> None:
        gate_type = batch.gate_type
        v = value[batch.fanins]
        c = care[batch.fanins]
        if gate_type in (GateType.AND, GateType.NAND):
            known1 = np.bitwise_and.reduce(v, axis=1)
            known0 = np.bitwise_or.reduce(c ^ v, axis=1)
        elif gate_type in (GateType.OR, GateType.NOR):
            known1 = np.bitwise_or.reduce(v, axis=1)
            known0 = np.bitwise_and.reduce(c ^ v, axis=1)
        else:  # XOR / XNOR: known exactly when every input is known
            known = np.bitwise_and.reduce(c, axis=1)
            parity = np.bitwise_xor.reduce(v, axis=1)
            if gate_type == GateType.XNOR:
                np.invert(parity, out=parity)
            value[batch.outputs] = parity & known
            care[batch.outputs] = known
            return
        if gate_type in (GateType.NAND, GateType.NOR):
            known0, known1 = known1, known0
        value[batch.outputs] = known1
        care[batch.outputs] = known0 | known1

    @staticmethod
    def _mux_ternary(
        batch: _MuxBatch, value: np.ndarray, care: np.ndarray
    ) -> None:
        vs = value[batch.selects]
        cs = care[batch.selects]
        v0, c0 = value[batch.d0], care[batch.d0]
        v1, c1 = value[batch.d1], care[batch.d1]
        sel1 = vs  # canonical: select known-1 lanes
        sel0 = cs ^ vs  # select known-0 lanes
        sel_x = ~cs
        agree1 = v0 & v1  # both data known-1
        agree0 = (c0 ^ v0) & (c1 ^ v1)  # both data known-0
        value[batch.outputs] = (sel0 & v0) | (sel1 & v1) | (sel_x & agree1)
        care[batch.outputs] = (
            (sel0 & c0) | (sel1 & c1) | (sel_x & (agree0 | agree1))
        )


class TernaryScratch:
    """Reusable plane buffers for repeated ternary fixpoint sweeps.

    Packed fixpoint passes (the hazard checker's lane sweeps, the packed
    implication closure) allocate the same ``(planes, buffer_rows,
    words)`` uint64 stacks over and over; at the tiny word counts the
    decide stage uses, ``np.zeros`` setup is a measurable slice of a
    closure.  A scratch pool hands out one buffer per ``(planes,
    words)`` shape, zeroed on reuse, so steady-state closures allocate
    nothing.  Buffers are owned by the caller until the next request
    for the same shape — callers needing two live stacks must request
    distinct shapes (as the implication engine's state/accumulator
    stacks do).
    """

    def __init__(self, rows: int) -> None:
        self.rows = rows
        self._buffers: dict[tuple[int, int], np.ndarray] = {}

    def planes(self, count: int, words: int) -> np.ndarray:
        """A zeroed ``(count, rows, words)`` uint64 stack, reused by shape."""
        key = (count, words)
        buffer = self._buffers.get(key)
        if buffer is None:
            buffer = np.zeros((count, self.rows, words), dtype=np.uint64)
            self._buffers[key] = buffer
        else:
            buffer.fill(0)
        return buffer


def compiled_plan(circuit: Circuit) -> SimPlan:
    """The circuit's compiled simulation plan (cached per netlist version).

    Cached through :meth:`Circuit.derived`, so repeated simulator
    construction, filter rounds and pipeline stages all share one plan;
    mutating the circuit invalidates it automatically.  When an on-disk
    :class:`~repro.store.ArtifactStore` is active, the plan (pure numpy
    index arrays, no circuit reference) round-trips through it — warm
    runs skip the lowering entirely.
    """
    return circuit.derived("simplan", SimPlan, persist="simplan")
