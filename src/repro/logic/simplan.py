"""Compiled levelized simulation plans for the bit-parallel simulator.

The per-node evaluation loop of :class:`~repro.logic.bitsim.BitSimulator`
costs one Python dispatch plus several small numpy calls *per gate per
round*, so stage 1 of the paper's flow scales with interpreter overhead
rather than with the hardware.  A :class:`SimPlan` lowers a circuit once
into level-ordered, gate-type-batched index arrays; evaluating a round is
then a handful of whole-array ``np.bitwise_*.reduce`` kernels per level —
no per-gate Python at all.

Plan layout
-----------
* Nodes are grouped by combinational level (sources at level 0 are never
  evaluated), and within each level by gate type.
* Each batch carries an ``outputs`` vector of node ids and a ``fanins``
  gather matrix of shape ``(len(outputs), max_arity)``.  Rows shorter
  than ``max_arity`` are padded with the index of an *identity row*:
  AND/NAND rows pad with an all-ones row, OR/NOR/XOR/XNOR rows pad with
  an all-zeros row, so the padded reduce is exact.
* The two identity rows live at indices ``num_nodes`` (zeros) and
  ``num_nodes + 1`` (ones) of the simulator's extended value buffer —
  see :attr:`SimPlan.buffer_rows`.

Evaluation of a batch gathers ``buf[fanins]`` (shape ``(n, arity,
words)``), reduces over the arity axis with the batch's bitwise ufunc,
optionally complements (NAND/NOR/XNOR/NOT), and scatters into
``buf[outputs]``.  Because equal-level gates never depend on each other,
batches within a level may run in any order.

Plans are pure functions of the netlist; :func:`compiled_plan` caches
them on the circuit through :meth:`Circuit.derived`, so every simulator,
filter round and worker process sharing a circuit shares one plan.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit

_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)

#: gate types evaluated by a padded bitwise reduce: type -> (ufunc, invert,
#: pads-with-ones).  AND-like gates pad with the identity of AND (all ones);
#: OR/XOR-like gates pad with zeros.
_REDUCE_OPS = {
    GateType.AND: (np.bitwise_and, False, True),
    GateType.NAND: (np.bitwise_and, True, True),
    GateType.OR: (np.bitwise_or, False, False),
    GateType.NOR: (np.bitwise_or, True, False),
    GateType.XOR: (np.bitwise_xor, False, False),
    GateType.XNOR: (np.bitwise_xor, True, False),
}

#: single-fanin copy/complement types: type -> inverts.
_UNARY_OPS = {
    GateType.BUF: False,
    GateType.OUTPUT: False,
    GateType.NOT: True,
}


@dataclass(frozen=True)
class _ReduceBatch:
    """All same-type multi-input gates of one level, padded to one arity."""

    gate_type: GateType
    outputs: np.ndarray  # (n,) node ids
    fanins: np.ndarray  # (n, max_arity) gather matrix with identity padding


@dataclass(frozen=True)
class _UnaryBatch:
    """All BUF/OUTPUT (copy) or NOT (complement) gates of one level."""

    invert: bool
    outputs: np.ndarray  # (n,)
    sources: np.ndarray  # (n,)


@dataclass(frozen=True)
class _MuxBatch:
    """All MUX gates of one level: out = select ? d1 : d0."""

    outputs: np.ndarray  # (n,)
    selects: np.ndarray  # (n,)
    d0: np.ndarray  # (n,)
    d1: np.ndarray  # (n,)


class SimPlan:
    """A circuit lowered into levelized, type-batched evaluation kernels."""

    def __init__(self, circuit: Circuit) -> None:
        self.circuit_version = circuit.version
        self.num_nodes = circuit.num_nodes
        #: rows the value buffer must have: every node plus the two
        #: identity rows (zeros at ``num_nodes``, ones at ``num_nodes+1``).
        self.buffer_rows = circuit.num_nodes + 2
        self.pad_zeros = circuit.num_nodes
        self.pad_ones = circuit.num_nodes + 1
        self.levels: list[list[object]] = []
        self.num_batches = 0
        self._build(circuit)

    # ------------------------------------------------------------------
    # Lowering.
    # ------------------------------------------------------------------
    def _build(self, circuit: Circuit) -> None:
        level_of = circuit.levels()
        types = circuit.types
        fanins = circuit.fanins
        by_level: dict[int, dict[GateType, list[int]]] = {}
        for node_id, level in enumerate(level_of):
            gate_type = types[node_id]
            if gate_type in _REDUCE_OPS or gate_type in _UNARY_OPS \
                    or gate_type == GateType.MUX:
                by_level.setdefault(level, {}).setdefault(gate_type, []).append(
                    node_id
                )

        for level in sorted(by_level):
            batches: list[object] = []
            groups = by_level[level]
            # Deterministic batch order: fixed GateType enumeration order.
            for gate_type in GateType:
                nodes = groups.get(gate_type)
                if not nodes:
                    continue
                if gate_type in _UNARY_OPS:
                    batches.append(
                        _UnaryBatch(
                            invert=_UNARY_OPS[gate_type],
                            outputs=np.asarray(nodes, dtype=np.intp),
                            sources=np.asarray(
                                [fanins[n][0] for n in nodes], dtype=np.intp
                            ),
                        )
                    )
                elif gate_type == GateType.MUX:
                    batches.append(
                        _MuxBatch(
                            outputs=np.asarray(nodes, dtype=np.intp),
                            selects=np.asarray(
                                [fanins[n][0] for n in nodes], dtype=np.intp
                            ),
                            d0=np.asarray(
                                [fanins[n][1] for n in nodes], dtype=np.intp
                            ),
                            d1=np.asarray(
                                [fanins[n][2] for n in nodes], dtype=np.intp
                            ),
                        )
                    )
                else:
                    pad = (
                        self.pad_ones
                        if _REDUCE_OPS[gate_type][2]
                        else self.pad_zeros
                    )
                    arity = max(len(fanins[n]) for n in nodes)
                    matrix = np.full((len(nodes), arity), pad, dtype=np.intp)
                    for row, node_id in enumerate(nodes):
                        fins = fanins[node_id]
                        matrix[row, : len(fins)] = fins
                    batches.append(
                        _ReduceBatch(
                            gate_type=gate_type,
                            outputs=np.asarray(nodes, dtype=np.intp),
                            fanins=matrix,
                        )
                    )
            self.levels.append(batches)
            self.num_batches += len(batches)

    # ------------------------------------------------------------------
    # Evaluation.
    # ------------------------------------------------------------------
    def run(self, buf: np.ndarray) -> None:
        """Evaluate every combinational node into ``buf`` (extended buffer).

        ``buf`` must have :attr:`buffer_rows` rows; source rows (PIs, DFF
        outputs, constants) and the two identity rows are read, all
        combinational rows are overwritten level by level.
        """
        for batches in self.levels:
            for batch in batches:
                if isinstance(batch, _ReduceBatch):
                    ufunc, invert, _pad_ones = _REDUCE_OPS[batch.gate_type]
                    acc = ufunc.reduce(buf[batch.fanins], axis=1)
                    if invert:
                        np.invert(acc, out=acc)
                    buf[batch.outputs] = acc
                elif isinstance(batch, _UnaryBatch):
                    if batch.invert:
                        buf[batch.outputs] = ~buf[batch.sources]
                    else:
                        buf[batch.outputs] = buf[batch.sources]
                else:  # _MuxBatch
                    select = buf[batch.selects]
                    buf[batch.outputs] = (~select & buf[batch.d0]) | (
                        select & buf[batch.d1]
                    )

    def install_identity_rows(self, buf: np.ndarray) -> None:
        """Write the two padding rows of ``buf`` (zeros, then all ones)."""
        buf[self.pad_zeros] = 0
        buf[self.pad_ones] = _ALL_ONES


def compiled_plan(circuit: Circuit) -> SimPlan:
    """The circuit's compiled simulation plan (cached per netlist version).

    Cached through :meth:`Circuit.derived`, so repeated simulator
    construction, filter rounds and pipeline stages all share one plan;
    mutating the circuit invalidates it automatically.
    """
    return circuit.derived("simplan", SimPlan)
