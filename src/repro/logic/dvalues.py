"""Roth's 5-valued D-calculus as a composite good/faulty algebra.

Classic ATPG reasons over five values — 0, 1, X, D (good 1 / faulty 0)
and D̄ (good 0 / faulty 1).  This module represents each as a *pair* of
three-valued components ``(good, faulty)`` and lifts the ordinary gate
algebra componentwise, which is exactly the D-calculus (and generalises
it: the pair form is the full 9-valued algebra, of which Roth's five
values are the consistent states reachable from a single fault).

Used by :mod:`repro.atpg.podem_stuckat`, the textbook PODEM test
generator.
"""

from __future__ import annotations

from repro.circuit.gates import GateType
from repro.logic.simulator import evaluate_gate
from repro.logic.values import ONE, X, ZERO

#: the five classic values as (good, faulty) component pairs
V0 = (ZERO, ZERO)
V1 = (ONE, ONE)
VX = (X, X)
D = (ONE, ZERO)
DBAR = (ZERO, ONE)

DValue = tuple[int, int]


def is_error(value: DValue) -> bool:
    """True for D/D̄ — the fault effect is visible on this line."""
    good, faulty = value
    return good != X and faulty != X and good != faulty


def is_known(value: DValue) -> bool:
    """True when both components are binary (no X anywhere)."""
    return value[0] != X and value[1] != X


def to_symbol(value: DValue) -> str:
    """Render as 0/1/X/D/D'/partial."""
    if value == V0:
        return "0"
    if value == V1:
        return "1"
    if value == D:
        return "D"
    if value == DBAR:
        return "D'"
    if value == VX:
        return "X"
    return f"({'01X'[value[0]]}/{'01X'[value[1]]})"


def eval_gate5(gate_type: GateType, values: list[DValue]) -> DValue:
    """Evaluate one gate over composite values, componentwise."""
    good = evaluate_gate(gate_type, [v[0] for v in values])
    faulty = evaluate_gate(gate_type, [v[1] for v in values])
    return (good, faulty)
