"""Bit-parallel (64 patterns per word) logic simulation on numpy arrays.

Implements the machinery behind Section 4.3 of the paper: random patterns
are packed into ``uint64`` words, one word batch simulates 64 independent
patterns at once, and the MC-condition check per FF pair becomes three
bitwise operations.  With a word-batch width ``W`` the simulator evaluates
``64 * W`` patterns per pass over the netlist.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit

_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


class BitSimulator:
    """Evaluate the combinational part over packed 64-bit pattern words.

    ``values`` has shape ``(num_nodes, words)``; bit ``b`` of word ``w``
    of row ``n`` is node ``n``'s value in pattern ``64*w + b``.
    """

    def __init__(self, circuit: Circuit, words: int = 4) -> None:
        if words < 1:
            raise ValueError("words must be >= 1")
        self.circuit = circuit
        self.words = words
        self._order = [
            n
            for n in circuit.topo_order()
            if circuit.types[n]
            not in (GateType.INPUT, GateType.DFF, GateType.CONST0, GateType.CONST1)
        ]
        self.values = np.zeros((circuit.num_nodes, words), dtype=np.uint64)
        for node_id in circuit.ids_of_type(GateType.CONST1):
            self.values[node_id] = _ALL_ONES

    def randomize_sources(self, rng: np.random.Generator) -> None:
        """Fill every PI and DFF output with fresh random pattern words."""
        source_ids = self.circuit.inputs + self.circuit.dffs
        if source_ids:
            random_words = rng.integers(
                0, 1 << 64, size=(len(source_ids), self.words), dtype=np.uint64
            )
            self.values[source_ids] = random_words

    def set_word(self, node_id: int, word: np.ndarray) -> None:
        """Set one node's pattern words (shape ``(words,)``)."""
        self.values[node_id] = word

    def comb_eval(self) -> None:
        """Evaluate all combinational nodes in topological order."""
        values = self.values
        types = self.circuit.types
        fanins = self.circuit.fanins
        for node_id in self._order:
            gate_type = types[node_id]
            fins = fanins[node_id]
            if gate_type in (GateType.BUF, GateType.OUTPUT):
                values[node_id] = values[fins[0]]
            elif gate_type == GateType.NOT:
                values[node_id] = ~values[fins[0]]
            elif gate_type == GateType.AND or gate_type == GateType.NAND:
                acc = values[fins[0]].copy()
                for fanin in fins[1:]:
                    acc &= values[fanin]
                values[node_id] = ~acc if gate_type == GateType.NAND else acc
            elif gate_type == GateType.OR or gate_type == GateType.NOR:
                acc = values[fins[0]].copy()
                for fanin in fins[1:]:
                    acc |= values[fanin]
                values[node_id] = ~acc if gate_type == GateType.NOR else acc
            elif gate_type == GateType.XOR or gate_type == GateType.XNOR:
                acc = values[fins[0]].copy()
                for fanin in fins[1:]:
                    acc ^= values[fanin]
                values[node_id] = ~acc if gate_type == GateType.XNOR else acc
            elif gate_type == GateType.MUX:
                select = values[fins[0]]
                values[node_id] = (~select & values[fins[1]]) | (select & values[fins[2]])
            else:  # pragma: no cover - defensive
                raise ValueError(f"unexpected gate type {gate_type}")

    def clock(self) -> None:
        """Capture every DFF's D value (call after :meth:`comb_eval`)."""
        dffs = self.circuit.dffs
        next_nodes = [self.circuit.next_state_node(d) for d in dffs]
        captured = self.values[next_nodes].copy()
        self.values[dffs] = captured

    def state_matrix(self) -> np.ndarray:
        """Current DFF pattern words, shape ``(num_dffs, words)``."""
        return self.values[self.circuit.dffs].copy()

    def next_state_matrix(self) -> np.ndarray:
        """Pattern words at each DFF's D input, shape ``(num_dffs, words)``."""
        next_nodes = [self.circuit.next_state_node(d) for d in self.circuit.dffs]
        return self.values[next_nodes].copy()


def simulate_frames(
    circuit: Circuit, rng: np.random.Generator, frames: int, words: int = 4
) -> list[np.ndarray]:
    """Simulate ``frames`` clock cycles from random state/input patterns.

    Returns the DFF pattern matrices at times ``t`` through ``t+frames``
    (``frames + 1`` matrices).  Fresh random primary inputs are applied in
    every cycle.
    """
    sim = BitSimulator(circuit, words)
    sim.randomize_sources(rng)
    states = [sim.state_matrix()]
    pis = circuit.inputs
    for frame in range(frames):
        if frame > 0 and pis:
            sim.values[pis] = rng.integers(
                0, 1 << 64, size=(len(pis), words), dtype=np.uint64
            )
        sim.comb_eval()
        sim.clock()
        states.append(sim.state_matrix())
    return states


def simulate_three_frames(
    circuit: Circuit, rng: np.random.Generator, words: int = 4
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Simulate two clock cycles from random state/input patterns.

    Returns ``(S0, S1, S2)``: the DFF pattern matrices at times ``t``,
    ``t+1`` and ``t+2``, exactly the quantities the MC-condition filter of
    Section 4.3 needs.
    """
    s0, s1, s2 = simulate_frames(circuit, rng, frames=2, words=words)
    return s0, s1, s2
