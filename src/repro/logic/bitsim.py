"""Bit-parallel (64 patterns per word) logic simulation on numpy arrays.

Implements the machinery behind Section 4.3 of the paper: random patterns
are packed into ``uint64`` words, one word batch simulates 64 independent
patterns at once, and the MC-condition check per FF pair becomes three
bitwise operations.  With a word-batch width ``W`` the simulator evaluates
``64 * W`` patterns per pass over the netlist.

Two evaluation strategies share one simulator:

* ``plan="compiled"`` (default) — the levelized, gate-type-batched
  :class:`~repro.logic.simplan.SimPlan`; a few whole-array kernels per
  level, no per-gate Python.  Plans are cached on the circuit, so every
  simulator of the same netlist shares one.
* ``plan="python"`` — the original per-node loop, kept as the reference
  implementation the compiled plan is property-tested against.

Both produce bit-identical values.  Simulators are designed to be
*reused*: :func:`simulate_frames` accepts a caller-held simulator and
refreshes its sources in place instead of reallocating buffers per round.

:class:`TernarySimulator` extends the same compiled plan to three-valued
lanes — two bit planes (value/care) encode {0, 1, X} per bit, and the
plan's ternary kernels settle all lanes at once.  The hazard checker
packs one Eichelberger witness per lane and reads every glitch verdict
in one sweep.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit
from repro.logic.simplan import SimPlan, compiled_plan

_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)

#: accepted ``plan`` arguments besides a :class:`SimPlan` instance.
PLAN_MODES = ("compiled", "python")


class BitSimulator:
    """Evaluate the combinational part over packed 64-bit pattern words.

    ``values`` has shape ``(num_nodes, words)``; bit ``b`` of word ``w``
    of row ``n`` is node ``n``'s value in pattern ``64*w + b``.  It is a
    view into a slightly larger internal buffer whose two extra rows hold
    the compiled plan's padding identities; assigning to ``values``
    copies into the buffer, so plan evaluation keeps working after
    wholesale replacement.
    """

    def __init__(
        self,
        circuit: Circuit,
        words: int = 4,
        plan: SimPlan | str = "compiled",
    ) -> None:
        if words < 1:
            raise ValueError("words must be >= 1")
        self.circuit = circuit
        self.words = words
        if isinstance(plan, SimPlan):
            self.plan: SimPlan | None = plan
        elif plan == "compiled":
            self.plan = compiled_plan(circuit)
        elif plan == "python":
            self.plan = None
        else:
            raise ValueError(
                f"unknown plan {plan!r}; expected a SimPlan or one of "
                f"{PLAN_MODES}"
            )
        if self.plan is not None and self.plan.num_nodes != circuit.num_nodes:
            raise ValueError("plan was compiled for a different circuit")
        self._order = [
            n
            for n in circuit.topo_order()
            if circuit.types[n]
            not in (GateType.INPUT, GateType.DFF, GateType.CONST0, GateType.CONST1)
        ] if self.plan is None else []
        self._buf = np.zeros((circuit.num_nodes + 2, words), dtype=np.uint64)
        self._buf[circuit.num_nodes + 1] = _ALL_ONES
        for node_id in circuit.ids_of_type(GateType.CONST1):
            self._buf[node_id] = _ALL_ONES

    @property
    def values(self) -> np.ndarray:
        """Per-node pattern words, shape ``(num_nodes, words)`` (a view)."""
        return self._buf[: self.circuit.num_nodes]

    @values.setter
    def values(self, matrix: np.ndarray) -> None:
        expected = (self.circuit.num_nodes, self.words)
        if tuple(matrix.shape) != expected:
            raise ValueError(
                f"values must have shape {expected}, got {tuple(matrix.shape)}"
            )
        self._buf[: self.circuit.num_nodes] = matrix

    def randomize_sources(self, rng: np.random.Generator) -> None:
        """Fill every PI and DFF output with fresh random pattern words."""
        source_ids = self.circuit.inputs + self.circuit.dffs
        if source_ids:
            random_words = rng.integers(
                0, 1 << 64, size=(len(source_ids), self.words), dtype=np.uint64
            )
            self.values[source_ids] = random_words

    def set_word(self, node_id: int, word: np.ndarray) -> None:
        """Set one node's pattern words (shape ``(words,)``)."""
        self.values[node_id] = word

    def comb_eval(self) -> None:
        """Evaluate all combinational nodes in topological order."""
        if self.plan is not None:
            self.plan.run(self._buf)
        else:
            self._comb_eval_python()

    def _comb_eval_python(self) -> None:
        """Reference per-node evaluation loop (the pre-plan implementation)."""
        values = self.values
        types = self.circuit.types
        fanins = self.circuit.fanins
        for node_id in self._order:
            gate_type = types[node_id]
            fins = fanins[node_id]
            if gate_type in (GateType.BUF, GateType.OUTPUT):
                values[node_id] = values[fins[0]]
            elif gate_type == GateType.NOT:
                values[node_id] = ~values[fins[0]]
            elif gate_type == GateType.AND or gate_type == GateType.NAND:
                acc = values[fins[0]].copy()
                for fanin in fins[1:]:
                    acc &= values[fanin]
                values[node_id] = ~acc if gate_type == GateType.NAND else acc
            elif gate_type == GateType.OR or gate_type == GateType.NOR:
                acc = values[fins[0]].copy()
                for fanin in fins[1:]:
                    acc |= values[fanin]
                values[node_id] = ~acc if gate_type == GateType.NOR else acc
            elif gate_type == GateType.XOR or gate_type == GateType.XNOR:
                acc = values[fins[0]].copy()
                for fanin in fins[1:]:
                    acc ^= values[fanin]
                values[node_id] = ~acc if gate_type == GateType.XNOR else acc
            elif gate_type == GateType.MUX:
                select = values[fins[0]]
                values[node_id] = (~select & values[fins[1]]) | (select & values[fins[2]])
            else:  # pragma: no cover - defensive
                raise ValueError(f"unexpected gate type {gate_type}")

    def clock(self) -> None:
        """Capture every DFF's D value (call after :meth:`comb_eval`)."""
        dffs = self.circuit.dffs
        next_nodes = [self.circuit.next_state_node(d) for d in dffs]
        captured = self.values[next_nodes].copy()
        self.values[dffs] = captured

    def state_matrix(self) -> np.ndarray:
        """Current DFF pattern words, shape ``(num_dffs, words)``."""
        return self.values[self.circuit.dffs].copy()

    def next_state_matrix(self) -> np.ndarray:
        """Pattern words at each DFF's D input, shape ``(num_dffs, words)``."""
        next_nodes = [self.circuit.next_state_node(d) for d in self.circuit.dffs]
        return self.values[next_nodes].copy()


class TernarySimulator:
    """Two-plane {0, 1, X} bit-parallel evaluation on the compiled plan.

    Each bit position is one independent three-valued *lane*: the
    ``care`` plane marks lanes with a known binary value and the
    ``value`` plane carries that value (canonically 0 on X lanes, so
    ``value & ~care == 0`` everywhere).  One :meth:`comb_eval` settles
    all combinational nodes of all ``64 * words`` lanes with the same
    handful of whole-array kernels per level that binary mode uses —
    this is what lets the hazard checker evaluate every witness of every
    FF pair in one sweep instead of per-case dict walks.

    Constant nodes are preset known; INPUT and DFF rows are sources the
    caller seeds (:meth:`set_source_planes` or direct plane writes —
    unseeded sources default to X).
    """

    def __init__(self, circuit: Circuit, words: int = 4) -> None:
        if words < 1:
            raise ValueError("words must be >= 1")
        self.circuit = circuit
        self.words = words
        self.plan = compiled_plan(circuit)
        rows = self.plan.buffer_rows
        self._value = np.zeros((rows, words), dtype=np.uint64)
        self._care = np.zeros((rows, words), dtype=np.uint64)
        self.plan.install_ternary_identity_rows(self._value, self._care)
        self._reset_constants()

    def _reset_constants(self) -> None:
        for node_id in self.circuit.ids_of_type(GateType.CONST0):
            self._value[node_id] = 0
            self._care[node_id] = _ALL_ONES
        for node_id in self.circuit.ids_of_type(GateType.CONST1):
            self._value[node_id] = _ALL_ONES
            self._care[node_id] = _ALL_ONES

    @property
    def value(self) -> np.ndarray:
        """Value plane, shape ``(num_nodes, words)`` (a view)."""
        return self._value[: self.circuit.num_nodes]

    @property
    def care(self) -> np.ndarray:
        """Care plane, shape ``(num_nodes, words)`` (a view)."""
        return self._care[: self.circuit.num_nodes]

    def clear_sources(self) -> None:
        """Reset every source lane to X (constants stay known)."""
        self.value[:] = 0
        self.care[:] = 0
        self._reset_constants()

    def set_source_planes(
        self, nodes, value: np.ndarray, care: np.ndarray
    ) -> None:
        """Seed source rows from packed planes (canonicalised on write)."""
        value = np.asarray(value, dtype=np.uint64)
        care = np.asarray(care, dtype=np.uint64)
        self.value[nodes] = value & care
        self.care[nodes] = care

    def comb_eval(
        self,
        pin_nodes: np.ndarray | None = None,
        pin_value: np.ndarray | None = None,
        pin_care: np.ndarray | None = None,
        pin_mask: np.ndarray | None = None,
    ) -> None:
        """Settle all combinational nodes; optional pins override rows.

        Pinned rows (see :meth:`SimPlan.run_ternary
        <repro.logic.simplan.SimPlan.run_ternary>`) keep their forced
        value/care planes even when the plan would compute them — the
        hazard checker pins the frame-1 state nodes this way.
        ``pin_mask`` limits the pin to a subset of lanes per row; clear
        lanes keep their computed planes.
        """
        self.plan.run_ternary(
            self._value, self._care, pin_nodes, pin_value, pin_care, pin_mask
        )

    def lane_value(self, node_id: int, lane: int) -> int:
        """The {0, 1, X} value of one node in one lane (scalar readback)."""
        from repro.logic.values import X

        word, bit = divmod(lane, 64)
        if not (int(self._care[node_id, word]) >> bit) & 1:
            return X
        return (int(self._value[node_id, word]) >> bit) & 1


def pack_lane_matrix(matrix: np.ndarray, words: int) -> np.ndarray:
    """Pack a ``(rows, lanes)`` 0/1 matrix into ``(rows, words)`` uint64.

    Lane ``l`` lands in bit ``l % 64`` of word ``l // 64`` (little-endian
    bit order), matching :class:`TernarySimulator` lane indexing.
    ``lanes`` may be anything up to ``64 * words``; missing lanes pack
    as 0.
    """
    rows, lanes = matrix.shape
    if lanes > 64 * words:
        raise ValueError(f"{lanes} lanes do not fit in {words} words")
    packed = np.zeros((rows, words * 8), dtype=np.uint8)
    bits = np.packbits(matrix.astype(np.uint8), axis=1, bitorder="little")
    packed[:, : bits.shape[1]] = bits
    return packed.view(np.uint64)


def simulate_frames(
    circuit: Circuit,
    rng: np.random.Generator,
    frames: int,
    words: int = 4,
    sim: BitSimulator | None = None,
) -> list[np.ndarray]:
    """Simulate ``frames`` clock cycles from random state/input patterns.

    Returns the DFF pattern matrices at times ``t`` through ``t+frames``
    (``frames + 1`` matrices).  Fresh random primary inputs are applied in
    every cycle.  Passing a caller-held ``sim`` (of the same circuit and
    word width) reuses its buffers: sources are refreshed in place and no
    arrays are reallocated, which is what lets the random filter run
    thousands of rounds without rebuilding the simulator.  The RNG stream
    consumed is identical either way, so results do not depend on reuse.
    """
    if sim is None:
        sim = BitSimulator(circuit, words)
    elif sim.circuit is not circuit or sim.words != words:
        raise ValueError("sim was built for a different circuit or word width")
    sim.randomize_sources(rng)
    states = [sim.state_matrix()]
    pis = circuit.inputs
    for frame in range(frames):
        if frame > 0 and pis:
            sim.values[pis] = rng.integers(
                0, 1 << 64, size=(len(pis), words), dtype=np.uint64
            )
        sim.comb_eval()
        sim.clock()
        states.append(sim.state_matrix())
    return states


def simulate_three_frames(
    circuit: Circuit,
    rng: np.random.Generator,
    words: int = 4,
    sim: BitSimulator | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Simulate two clock cycles from random state/input patterns.

    Returns ``(S0, S1, S2)``: the DFF pattern matrices at times ``t``,
    ``t+1`` and ``t+2``, exactly the quantities the MC-condition filter of
    Section 4.3 needs.
    """
    s0, s1, s2 = simulate_frames(circuit, rng, frames=2, words=words, sim=sim)
    return s0, s1, s2
