"""Subpackage repro.logic.

Importing the simulators here would recreate a circular import
(``repro.circuit.gates`` pulls ``repro.logic.values``), so the heavy
modules — :mod:`repro.logic.bitsim`, :mod:`repro.logic.simplan`,
:mod:`repro.logic.simulator` — are imported directly by their users.
"""
