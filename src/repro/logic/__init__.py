"""Subpackage repro.logic."""
