"""Value Change Dump (VCD) tracing for the three-valued simulator.

Wraps a :class:`~repro.logic.simulator.Simulator` and records the values
of selected signals after every clock edge, emitting standard IEEE 1364
VCD text that any waveform viewer (GTKWave etc.) understands.  Used by the
examples to visualise the paper's Fig. 1 three-cycle data transport.
"""

from __future__ import annotations

import io
from pathlib import Path

from repro.circuit.netlist import Circuit
from repro.logic.simulator import Simulator
from repro.logic.values import X

#: printable identifier characters per the VCD grammar
_ID_CHARS = "".join(chr(c) for c in range(33, 127))


def _identifier(index: int) -> str:
    """Short VCD identifier for the ``index``-th traced signal."""
    base = len(_ID_CHARS)
    chars = []
    index += 1
    while index:
        index, digit = divmod(index - 1, base)
        chars.append(_ID_CHARS[digit])
    return "".join(reversed(chars))


def _value_char(value: int) -> str:
    return "x" if value == X else str(value)


class VcdTracer:
    """Records signal values per clock cycle and serialises them as VCD.

    Typical use::

        sim = Simulator(circuit)
        tracer = VcdTracer(sim, signals=["FF1", "FF2", "EN2"])
        sim.set_all_state([0, 0, 0, 0])
        tracer.sample()            # time 0
        for _ in range(8):
            sim.clock()
            tracer.sample()
        tracer.write("trace.vcd")
    """

    def __init__(
        self,
        simulator: Simulator,
        signals: list[str] | None = None,
        timescale: str = "1ns",
        clock_period: int = 10,
    ) -> None:
        self.simulator = simulator
        circuit = simulator.circuit
        if signals is None:
            signals = [circuit.names[n] for n in circuit.inputs] + [
                circuit.names[n] for n in circuit.dffs
            ]
        self.signals = list(signals)
        self._nodes = [circuit.id_of(name) for name in self.signals]
        self._ids = [_identifier(i) for i in range(len(self.signals))]
        self.timescale = timescale
        self.clock_period = clock_period
        #: per-sample tuples of signal values
        self.samples: list[tuple[int, ...]] = []

    def sample(self) -> None:
        """Record the current value of every traced signal."""
        values = self.simulator.values
        self.samples.append(tuple(values[n] for n in self._nodes))

    def dumps(self) -> str:
        """Serialise the recorded samples as VCD text."""
        circuit = self.simulator.circuit
        out = io.StringIO()
        out.write(f"$timescale {self.timescale} $end\n")
        out.write(f"$scope module {circuit.name} $end\n")
        for name, ident in zip(self.signals, self._ids):
            out.write(f"$var wire 1 {ident} {name} $end\n")
        out.write("$upscope $end\n$enddefinitions $end\n")

        previous: tuple[int, ...] | None = None
        for step, sample in enumerate(self.samples):
            changes = [
                (value, ident)
                for value, prev_value, ident in zip(
                    sample,
                    previous if previous is not None else (None,) * len(sample),
                    self._ids,
                )
                if value != prev_value
            ]
            if changes or previous is None:
                out.write(f"#{step * self.clock_period}\n")
                if previous is None:
                    out.write("$dumpvars\n")
                for value, ident in changes:
                    out.write(f"{_value_char(value)}{ident}\n")
                if previous is None:
                    out.write("$end\n")
            previous = sample
        return out.getvalue()

    def write(self, path: str | Path) -> None:
        Path(path).write_text(self.dumps())


def trace_circuit(
    circuit: Circuit,
    cycles: int,
    initial_state: list[int] | None = None,
    inputs_per_cycle: list[dict[str, int]] | None = None,
    signals: list[str] | None = None,
) -> VcdTracer:
    """Convenience one-shot: simulate ``cycles`` clocks and return the trace."""
    sim = Simulator(circuit)
    if initial_state is not None:
        sim.set_all_state(initial_state)
    tracer = VcdTracer(sim, signals)
    if inputs_per_cycle and inputs_per_cycle[0]:
        sim.set_inputs(inputs_per_cycle[0])
    sim.comb_eval()
    tracer.sample()
    for cycle in range(cycles):
        if inputs_per_cycle is not None and cycle < len(inputs_per_cycle):
            sim.set_inputs(inputs_per_cycle[cycle])
        sim.clock()
        tracer.sample()
    return tracer
