"""Cycle-accurate three-valued simulator for sequential circuits.

Used to validate ATPG witnesses (a claimed single-cycle pattern must really
toggle the sink flip-flop), to cross-check the bit-parallel simulator, and
by the examples.  Evaluation is full-circuit in topological order — simple
and adequate, since the performance-critical random filtering uses
:mod:`repro.logic.bitsim` instead.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit
from repro.logic.values import (
    ONE,
    X,
    ZERO,
    v_and,
    v_mux,
    v_not,
    v_or,
    v_xor,
)


def evaluate_gate(gate_type: GateType, values: Sequence[int]) -> int:
    """Evaluate one combinational gate over three-valued inputs."""
    if gate_type in (GateType.BUF, GateType.OUTPUT):
        return values[0]
    if gate_type == GateType.NOT:
        return v_not(values[0])
    if gate_type == GateType.AND:
        result = ONE
        for value in values:
            result = v_and(result, value)
        return result
    if gate_type == GateType.NAND:
        result = ONE
        for value in values:
            result = v_and(result, value)
        return v_not(result)
    if gate_type == GateType.OR:
        result = ZERO
        for value in values:
            result = v_or(result, value)
        return result
    if gate_type == GateType.NOR:
        result = ZERO
        for value in values:
            result = v_or(result, value)
        return v_not(result)
    if gate_type == GateType.XOR:
        result = ZERO
        for value in values:
            result = v_xor(result, value)
        return result
    if gate_type == GateType.XNOR:
        result = ZERO
        for value in values:
            result = v_xor(result, value)
        return v_not(result)
    if gate_type == GateType.MUX:
        return v_mux(values[0], values[1], values[2])
    raise ValueError(f"not a combinational gate: {gate_type}")


class Simulator:
    """Three-valued simulator with explicit state and clocking.

    Typical use::

        sim = Simulator(circuit)
        sim.set_state({"FF1": 0, "FF2": 0})
        sim.set_inputs({"IN": 1})
        sim.comb_eval()
        sim.clock()          # advances every DFF to its D value
    """

    def __init__(self, circuit: Circuit) -> None:
        self.circuit = circuit
        self._order = circuit.topo_order()
        self.values: list[int] = [X] * circuit.num_nodes
        for node_id in circuit.ids_of_type(GateType.CONST0):
            self.values[node_id] = ZERO
        for node_id in circuit.ids_of_type(GateType.CONST1):
            self.values[node_id] = ONE
        self._dirty = True

    # ------------------------------------------------------------------
    # Stimulus.
    # ------------------------------------------------------------------
    def _resolve(self, key: int | str) -> int:
        return key if isinstance(key, int) else self.circuit.id_of(key)

    def set_inputs(self, assignment: Mapping[int | str, int]) -> None:
        """Set primary-input values (node ids or names)."""
        for key, value in assignment.items():
            node_id = self._resolve(key)
            if self.circuit.types[node_id] != GateType.INPUT:
                raise ValueError(f"{self.circuit.names[node_id]!r} is not an input")
            self.values[node_id] = value
        self._dirty = True

    def set_state(self, assignment: Mapping[int | str, int]) -> None:
        """Force flip-flop outputs to given values (initialisation)."""
        for key, value in assignment.items():
            node_id = self._resolve(key)
            if self.circuit.types[node_id] != GateType.DFF:
                raise ValueError(f"{self.circuit.names[node_id]!r} is not a DFF")
            self.values[node_id] = value
        self._dirty = True

    def set_all_inputs(self, values: Sequence[int]) -> None:
        """Set every primary input, in creation order."""
        self.set_inputs(dict(zip(self.circuit.inputs, values, strict=True)))

    def set_all_state(self, values: Sequence[int]) -> None:
        """Set every flip-flop, in creation order."""
        self.set_state(dict(zip(self.circuit.dffs, values, strict=True)))

    # ------------------------------------------------------------------
    # Evaluation.
    # ------------------------------------------------------------------
    def comb_eval(self) -> None:
        """Propagate current inputs/state through the combinational logic."""
        values = self.values
        types = self.circuit.types
        fanins = self.circuit.fanins
        for node_id in self._order:
            gate_type = types[node_id]
            if gate_type in (GateType.INPUT, GateType.DFF, GateType.CONST0,
                             GateType.CONST1):
                continue
            values[node_id] = evaluate_gate(
                gate_type, [values[f] for f in fanins[node_id]]
            )
        self._dirty = False

    def clock(self) -> None:
        """Advance one clock cycle: every DFF captures its D-input value."""
        if self._dirty:
            self.comb_eval()
        captured = {
            dff: self.values[self.circuit.next_state_node(dff)]
            for dff in self.circuit.dffs
        }
        for dff, value in captured.items():
            self.values[dff] = value
        self.comb_eval()

    # ------------------------------------------------------------------
    # Observation.
    # ------------------------------------------------------------------
    def value(self, key: int | str) -> int:
        """Current value of a node (evaluating combinationally if stale)."""
        if self._dirty:
            self.comb_eval()
        return self.values[self._resolve(key)]

    def state(self) -> dict[str, int]:
        """Current flip-flop values keyed by name."""
        if self._dirty:
            self.comb_eval()
        return {self.circuit.names[d]: self.values[d] for d in self.circuit.dffs}

    def output_values(self) -> dict[str, int]:
        """Current primary-output values keyed by name."""
        if self._dirty:
            self.comb_eval()
        return {self.circuit.names[o]: self.values[o] for o in self.circuit.outputs}

    def run(
        self,
        cycles: int,
        inputs_per_cycle: Sequence[Mapping[int | str, int]] | None = None,
    ) -> list[dict[str, int]]:
        """Clock ``cycles`` times, optionally applying per-cycle inputs.

        Returns the flip-flop state *after* each clock edge.
        """
        trace = []
        for cycle in range(cycles):
            if inputs_per_cycle is not None:
                self.set_inputs(inputs_per_cycle[cycle])
            self.clock()
            trace.append(self.state())
        return trace
