"""Process-wide active-store registry.

:meth:`Circuit.derived <repro.circuit.netlist.Circuit.derived>` layers
the on-disk :class:`~repro.store.ArtifactStore` underneath its in-memory
cache *transparently* — call sites opt in with a ``persist`` kind and
never touch the store directly.  The seam between the two is this
module: one process-global active store, installed by the detector (from
``DetectorOptions.cache_dir``), the CLI, or the ``REPRO_CACHE_DIR``
environment variable, and absent by default (pure in-memory behaviour,
exactly as before the store existed).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator

from repro.store.artifact_store import DEFAULT_MAX_BYTES, ArtifactStore

_ACTIVE: ArtifactStore | None = None


def active_store() -> ArtifactStore | None:
    """The process's active artifact store, or ``None`` (store disabled)."""
    return _ACTIVE


def activate_store(
    target: str | Path | ArtifactStore,
    max_bytes: int = DEFAULT_MAX_BYTES,
) -> ArtifactStore:
    """Install ``target`` as the process's active store and return it.

    Re-activating the same directory keeps the existing instance (and
    its counters); a different directory replaces it.
    """
    global _ACTIVE
    if isinstance(target, ArtifactStore):
        _ACTIVE = target
        return _ACTIVE
    root = Path(target)
    if _ACTIVE is None or _ACTIVE.root != root:
        _ACTIVE = ArtifactStore(root, max_bytes=max_bytes)
    return _ACTIVE


def deactivate_store() -> None:
    """Remove the active store (derived caches fall back to memory-only)."""
    global _ACTIVE
    _ACTIVE = None


def resolve_cache_dir(cache_dir: str | None) -> str | None:
    """An explicit ``cache_dir`` or the ``REPRO_CACHE_DIR`` fallback."""
    if cache_dir:
        return cache_dir
    return os.environ.get("REPRO_CACHE_DIR") or None


@contextmanager
def store_enabled(
    cache_dir: str | Path | None,
    max_bytes: int = DEFAULT_MAX_BYTES,
) -> Iterator[ArtifactStore | None]:
    """Scope an active store to a ``with`` block (``None`` dir = no-op).

    Restores the previously active store (or none) on exit, so nested
    runs with different cache directories compose.
    """
    if cache_dir is None:
        yield _ACTIVE
        return
    previous = _ACTIVE
    store = activate_store(cache_dir, max_bytes=max_bytes)
    try:
        yield store
    finally:
        globals()["_ACTIVE"] = previous
