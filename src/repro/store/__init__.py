"""Content-addressed on-disk artifact store (``repro.store``).

The caching seam behind :meth:`Circuit.derived
<repro.circuit.netlist.Circuit.derived>`: expensive derived artifacts
(compiled simulation plans, packed reach matrices, the implication DB,
lint/sweep reports, detection pair records) are addressed by the
circuit's content digest and shared across processes through an
atomically-written, LRU-bounded, self-healing store directory.  See
:mod:`repro.store.artifact_store` for the on-disk format and
:mod:`repro.store.runtime` for process-wide activation.
"""

from repro.store.artifact_store import (
    DEFAULT_MAX_BYTES,
    SCHEMA_VERSIONS,
    ArtifactStore,
    schema_version,
)
from repro.store.runtime import (
    activate_store,
    active_store,
    deactivate_store,
    resolve_cache_dir,
    store_enabled,
)

__all__ = [
    "ArtifactStore",
    "DEFAULT_MAX_BYTES",
    "SCHEMA_VERSIONS",
    "activate_store",
    "active_store",
    "deactivate_store",
    "resolve_cache_dir",
    "schema_version",
    "store_enabled",
]
