"""Shared-memory backplane: publish derived artifacts once, attach N times.

The decision pool used to ship each worker a pickled circuit plus the
2-frame expansion, and every worker then *rebuilt* its own private
SimPlan / CsrArrays / PackedPlan — so worker spawn cost and aggregate
peak RSS scaled with the worker count.  The backplane inverts that: the
parent encodes each numpy-heavy artifact with the same flat-buffer
codecs the on-disk store uses (:mod:`repro.store.codecs`), lays the
blobs out 64-byte aligned in one ``multiprocessing.shared_memory``
block, and ships only the tiny :class:`BackplaneHandle` (name + offsets)
through the worker initializer.  Each worker attaches the block and
decodes zero-copy views — the big arrays live in shared pages, mapped
once, regardless of N.

Lifetime rules:

* The parent (:class:`PublishedBackplane`) owns the block: it closes and
  unlinks it when the pool shuts down.  On Linux the mapping survives
  the unlink, so a worker mid-decode is never torn.
* A worker (:class:`AttachedBackplane`) never unlinks.  Its decoded
  arrays keep the underlying mmap alive through numpy's ``base`` chain;
  the attachment object itself just needs to outlive ``decode`` — the
  worker main loop keeps it in scope for the process lifetime.
* Both sides share the parent's ``resource_tracker`` (fork inherits it,
  spawn ships its fd), so the attach-side registration dedups against
  the create-side one and the parent's unlink retires it — no leaked
  shared-memory warnings at exit.

Publishing and attaching are both best-effort at the call sites: a
failed publish (e.g. ``/dev/shm`` exhausted) or a failed attach degrades
to the pre-backplane behaviour — workers rebuild from the pickled
circuit — without changing any verdict.
"""

from __future__ import annotations

from typing import Any, NamedTuple, Sequence

from repro.store.codecs import decode_payload, encode_payload
from repro.store.flatbuf import ALIGN


def _align(offset: int) -> int:
    return (offset + ALIGN - 1) // ALIGN * ALIGN


class BackplaneHandle(NamedTuple):
    """What workers receive: the block name and its table of contents."""

    #: ``multiprocessing.shared_memory`` block name.
    name: str
    #: total payload bytes in the block.
    size: int
    #: per-artifact ``(kind, offset, nbytes)`` rows, offsets 64-aligned.
    entries: tuple[tuple[str, int, int], ...]


class PublishedBackplane:
    """Parent-side owner of one published shared-memory block."""

    def __init__(self, handle: BackplaneHandle, shm: Any) -> None:
        self.handle = handle
        self._shm: Any = shm

    @property
    def kinds(self) -> tuple[str, ...]:
        """Artifact kinds in the block, in publication order."""
        return tuple(kind for kind, _, _ in self.handle.entries)

    @property
    def nbytes(self) -> int:
        """Published payload size (for the trace event)."""
        return self.handle.size

    def close_and_unlink(self) -> None:
        """Release the block (idempotent; mapped workers are unaffected)."""
        shm = self._shm
        self._shm = None
        if shm is None:
            return
        try:
            shm.close()
        except (BufferError, OSError):
            pass
        try:
            shm.unlink()
        except (FileNotFoundError, OSError):
            pass


def publish(artifacts: Sequence[tuple[str, Any]]) -> PublishedBackplane:
    """Encode ``(kind, payload)`` pairs into one fresh shared block.

    Raises on failure (out of shared memory, codec error) — callers
    treat publishing as best-effort and fall back to pickled shipping.
    """
    from multiprocessing import shared_memory

    blobs = [(kind, encode_payload(kind, payload)) for kind, payload in artifacts]
    entries: list[tuple[str, int, int]] = []
    offset = 0
    for kind, blob in blobs:
        offset = _align(offset)
        entries.append((kind, offset, len(blob)))
        offset += len(blob)
    shm = shared_memory.SharedMemory(create=True, size=max(1, offset))
    try:
        for (_, start, nbytes), (_, blob) in zip(entries, blobs):
            shm.buf[start: start + nbytes] = blob
    except BaseException:
        shm.close()
        shm.unlink()
        raise
    handle = BackplaneHandle(shm.name, offset, tuple(entries))
    return PublishedBackplane(handle, shm)


class AttachedBackplane:
    """Worker-side view of a published block: decode, adopt, reuse.

    Decoding happens eagerly in ``__init__`` so an unreadable block
    raises before the worker reports ready (the caller falls back to a
    rebuild).  Keep the instance alive while its artifacts are in use —
    it anchors the shared mapping alongside numpy's ``base`` chain.
    """

    def __init__(self, handle: BackplaneHandle) -> None:
        from multiprocessing import shared_memory

        shm: Any = shared_memory.SharedMemory(name=handle.name)
        # The decoded views alias this mapping for the process lifetime;
        # the destructor's close() would raise (and log) BufferError at
        # interpreter teardown while they still exist.  Unmapping is the
        # process exit's job — make close a no-op on this instance.
        shm.close = lambda: None
        self._shm = shm
        buf = self._shm.buf
        self.artifacts: dict[str, Any] = {}
        for kind, start, nbytes in handle.entries:
            self.artifacts[kind] = decode_payload(
                kind, buf[start: start + nbytes]
            )

    @property
    def kinds(self) -> tuple[str, ...]:
        """Artifact kinds decoded from the block."""
        return tuple(self.artifacts)

    @property
    def shared_learned(self) -> Any:
        """The shared implication DB, when one was published."""
        return self.artifacts.get("implication-db")

    def adopt(self, circuit: Any) -> Any:
        """Weld the decoded artifacts onto ``circuit``'s derived caches.

        Returns the re-attached
        :class:`~repro.circuit.timeframe.TimeFrameExpansion` (or ``None``
        when the block carries no expansion).  The expansion's comb
        circuit adopts the decoded CSR/SimPlan/PackedPlan under the keys
        ``Circuit.derived`` builds them for, so the worker's engine
        preparation finds shared views instead of rebuilding.
        """
        detached = self.artifacts.get("expansion")
        if detached is None:
            return None
        expansion = detached.attach(circuit)
        comb = expansion.comb
        for kind in ("csr-arrays", "simplan", "packed-implication"):
            artifact = self.artifacts.get(kind)
            if artifact is not None:
                comb.adopt_derived(kind, artifact)
        return expansion
