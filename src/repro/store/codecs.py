"""Flat-buffer codecs for the numpy-heavy derived artifact kinds.

Each codec lowers one derived structure into ``(meta, arrays)`` for
:mod:`repro.store.flatbuf` and rebuilds it from the decoded views.  The
design rule is *zero-copy where it matters*: big payloads (bitmap rows,
gather matrices, CSR flats) stay views into the source buffer — a store
mmap or a shared-memory block — while the small Python-object shells
around them (frozen batch dataclasses, per-node tuples, name tables) are
rebuilt, since those are cheap relative to what used to be a full
``pickle.load`` copy or an O(nodes + edges) rebuild.

Registered kinds (:data:`FLAT_KINDS`):

``simplan``
    :class:`~repro.logic.simplan.SimPlan` — level/batch descriptors in
    the meta, one segment per batch index array.
``csr-arrays``
    :class:`~repro.circuit.csr.CsrArrays` — the ``*_np`` views alias
    the buffer directly; row tuples and ``array('i')`` mirrors rebuild.
``ff-reach`` / ``sink-reach``
    :class:`~repro.circuit.topology.FFReach` /
    :class:`~repro.circuit.topology.SinkReach` — the packed ``uint64``
    row matrix is the whole payload.
``packed-implication``
    :class:`~repro.atpg.packed_implication.PackedPlan` — gate records
    and consumer lists CSR-flattened; the embedded SimPlan handle is
    dropped (the engine never reads it after lowering).
``implication-db``
    :class:`~repro.analysis.implication_db.ImplicationDB` — the two CSR
    arrays, mirroring its ``__reduce__``.
``expansion``
    :class:`~repro.circuit.timeframe.TimeFrameExpansion` — the expanded
    combinational circuit (types, fanin CSR, name table) plus the
    ``ff_at``/``pi_at``/``po_at``/``node_at`` maps.  Decoding yields a
    :class:`DetachedExpansion`; callers re-attach the sequential circuit
    with :meth:`DetachedExpansion.attach`.

The envelope helpers (:func:`encode_payload` / :func:`decode_payload`)
wrap a codec in the kind + schema-version header shared by the on-disk
store and the shared-memory backplane, so both transports validate and
decode identically.
"""

from __future__ import annotations

from array import array
from typing import Any, Callable

import numpy as np

from repro.store.flatbuf import FlatBufferError, pack, unpack

_Encoded = tuple[dict[str, Any], dict[str, Any]]
_Encoder = Callable[[Any], _Encoded]
_Decoder = Callable[[dict[str, Any], dict[str, Any]], object]


def _int_array(values: Any, dtype: str = "<i8") -> Any:
    return np.asarray(values, dtype=np.dtype(dtype))


def _csr_rows(rows: Any) -> tuple[Any, Any]:
    """Flatten an iterable of int rows into (offsets, flat) int64 arrays."""
    offsets = [0]
    flat: list[int] = []
    for row in rows:
        flat.extend(row)
        offsets.append(len(flat))
    return _int_array(offsets), _int_array(flat)


def _rows_back(offsets: Any, flat: Any) -> list[tuple[int, ...]]:
    off = offsets.tolist()
    values = flat.tolist()
    return [
        tuple(values[off[i]: off[i + 1]]) for i in range(len(off) - 1)
    ]


def _typed_i(view: Any) -> array:
    """Rebuild an ``array('i')`` mirror of an int32 segment view."""
    mirror = array("i")
    mirror.frombytes(view.tobytes())
    return mirror


# ----------------------------------------------------------------------
# simplan
# ----------------------------------------------------------------------
def _encode_simplan(plan: Any) -> _Encoded:
    from repro.logic.simplan import _MuxBatch, _ReduceBatch, _UnaryBatch

    levels: list[list[dict[str, int]]] = []
    arrays: dict[str, Any] = {}
    index = 0
    for batches in plan.levels:
        level: list[dict[str, int]] = []
        for batch in batches:
            prefix = f"b{index}."
            if isinstance(batch, _ReduceBatch):
                level.append({"k": 0, "t": int(batch.gate_type)})
                arrays[prefix + "outputs"] = batch.outputs
                arrays[prefix + "fanins"] = batch.fanins
            elif isinstance(batch, _UnaryBatch):
                level.append({"k": 1, "t": int(batch.invert)})
                arrays[prefix + "outputs"] = batch.outputs
                arrays[prefix + "sources"] = batch.sources
            elif isinstance(batch, _MuxBatch):
                level.append({"k": 2, "t": 0})
                arrays[prefix + "outputs"] = batch.outputs
                arrays[prefix + "selects"] = batch.selects
                arrays[prefix + "d0"] = batch.d0
                arrays[prefix + "d1"] = batch.d1
            else:  # pragma: no cover - future batch kinds must be added here
                raise FlatBufferError(
                    f"unknown SimPlan batch type {type(batch).__name__}"
                )
            index += 1
        levels.append(level)
    meta = {
        "version": plan.circuit_version,
        "num_nodes": plan.num_nodes,
        "levels": levels,
    }
    return meta, arrays


def _decode_simplan(meta: dict[str, Any], arrays: dict[str, Any]) -> object:
    from repro.circuit.gates import GateType
    from repro.logic.simplan import SimPlan, _MuxBatch, _ReduceBatch, _UnaryBatch

    plan = SimPlan.__new__(SimPlan)
    plan.circuit_version = int(meta["version"])
    plan.num_nodes = int(meta["num_nodes"])
    plan.buffer_rows = plan.num_nodes + 2
    plan.pad_zeros = plan.num_nodes
    plan.pad_ones = plan.num_nodes + 1
    plan.levels = []
    plan.num_batches = 0
    index = 0
    for level in meta["levels"]:
        batches: list[object] = []
        for descriptor in level:
            prefix = f"b{index}."
            kind = int(descriptor["k"])
            if kind == 0:
                batches.append(_ReduceBatch(
                    gate_type=GateType(int(descriptor["t"])),
                    outputs=arrays[prefix + "outputs"],
                    fanins=arrays[prefix + "fanins"],
                ))
            elif kind == 1:
                batches.append(_UnaryBatch(
                    invert=bool(descriptor["t"]),
                    outputs=arrays[prefix + "outputs"],
                    sources=arrays[prefix + "sources"],
                ))
            else:
                batches.append(_MuxBatch(
                    outputs=arrays[prefix + "outputs"],
                    selects=arrays[prefix + "selects"],
                    d0=arrays[prefix + "d0"],
                    d1=arrays[prefix + "d1"],
                ))
            index += 1
        plan.levels.append(batches)
        plan.num_batches += len(batches)
    return plan


# ----------------------------------------------------------------------
# csr-arrays
# ----------------------------------------------------------------------
def _encode_csr(csr: Any) -> _Encoded:
    meta = {"num_nodes": csr.num_nodes}
    arrays = {
        "types": np.frombuffer(csr.types, dtype=np.uint8),
        "fanin_offsets": csr.fanin_offsets_np,
        "fanin_flat": csr.fanin_flat_np,
        "fanout_offsets": csr.fanout_offsets_np,
        "fanout_flat": csr.fanout_flat_np,
        "levels": csr.levels_np,
        "const0": _int_array(csr.const0),
        "const1": _int_array(csr.const1),
        "inputs": _int_array(csr.inputs),
    }
    return meta, arrays


def _decode_csr(meta: dict[str, Any], arrays: dict[str, Any]) -> object:
    from repro.circuit.csr import CsrArrays

    types = arrays["types"].tobytes()
    fanins = tuple(_rows_back(arrays["fanin_offsets"], arrays["fanin_flat"]))
    fanouts = tuple(
        _rows_back(arrays["fanout_offsets"], arrays["fanout_flat"])
    )
    return CsrArrays(
        num_nodes=int(meta["num_nodes"]),
        types=types,
        fanin_offsets=_typed_i(arrays["fanin_offsets"]),
        fanin_flat=_typed_i(arrays["fanin_flat"]),
        fanout_offsets=_typed_i(arrays["fanout_offsets"]),
        fanout_flat=_typed_i(arrays["fanout_flat"]),
        fanins=fanins,
        fanouts=fanouts,
        levels=tuple(arrays["levels"].tolist()),
        const0=tuple(arrays["const0"].tolist()),
        const1=tuple(arrays["const1"].tolist()),
        inputs=tuple(arrays["inputs"].tolist()),
        types_np=arrays["types"],
        levels_np=arrays["levels"],
        fanin_offsets_np=arrays["fanin_offsets"],
        fanin_flat_np=arrays["fanin_flat"],
        fanout_offsets_np=arrays["fanout_offsets"],
        fanout_flat_np=arrays["fanout_flat"],
    )


# ----------------------------------------------------------------------
# ff-reach / sink-reach
# ----------------------------------------------------------------------
def _encode_ff_reach(reach: Any) -> _Encoded:
    meta = {"words": reach.words}
    return meta, {"dffs": _int_array(reach.dffs), "rows": reach.rows}


def _decode_ff_reach(meta: dict[str, Any], arrays: dict[str, Any]) -> object:
    from repro.circuit.topology import FFReach

    return FFReach(
        dffs=tuple(arrays["dffs"].tolist()),
        words=int(meta["words"]),
        rows=arrays["rows"],
    )


def _encode_sink_reach(reach: Any) -> _Encoded:
    meta = {"words": reach.words, "blocked": bool(reach.blocked)}
    return meta, {"dffs": _int_array(reach.dffs), "rows": reach.rows}


def _decode_sink_reach(meta: dict[str, Any], arrays: dict[str, Any]) -> object:
    from repro.circuit.topology import SinkReach

    return SinkReach(
        dffs=tuple(arrays["dffs"].tolist()),
        words=int(meta["words"]),
        rows=arrays["rows"],
        blocked=bool(meta["blocked"]),
    )


# ----------------------------------------------------------------------
# packed-implication
# ----------------------------------------------------------------------
def _encode_packed(plan: Any) -> _Encoded:
    meta = {
        "version": plan.circuit_version,
        "num_nodes": plan.num_nodes,
        "buffer_rows": plan.buffer_rows,
    }
    kinds = [g[0] for g in plan.gates]
    ctrls = [g[1] for g in plan.gates]
    invs = [g[2] for g in plan.gates]
    tainted = [g[3] for g in plan.gates]
    outs = [g[5] for g in plan.gates]
    fanin_offsets, fanin_flat = _csr_rows(g[4] for g in plan.gates)
    consumer_offsets, consumer_flat = _csr_rows(plan.consumers)
    arrays = {
        "kinds": _int_array(kinds, "|u1"),
        "ctrls": _int_array(ctrls, "|u1"),
        "invs": _int_array(invs, "|u1"),
        "tainted": _int_array(tainted, "|u1"),
        "outs": _int_array(outs),
        "fanin_offsets": fanin_offsets,
        "fanin_flat": fanin_flat,
        "consumer_offsets": consumer_offsets,
        "consumer_flat": consumer_flat,
        "driver": _int_array(plan.driver),
        "preset1": _int_array(plan.preset1),
        "preset0": _int_array(plan.preset0),
    }
    return meta, arrays


def _decode_packed(meta: dict[str, Any], arrays: dict[str, Any]) -> object:
    from repro.atpg.packed_implication import PackedPlan

    plan = PackedPlan.__new__(PackedPlan)
    plan.circuit_version = int(meta["version"])
    plan.num_nodes = int(meta["num_nodes"])
    plan.buffer_rows = int(meta["buffer_rows"])
    # The lowering-time SimPlan handle is not part of the closure kernel's
    # state; the engine reads only gates/consumers/driver/presets.
    plan.sim = None
    kinds = arrays["kinds"].tolist()
    ctrls = arrays["ctrls"].tolist()
    invs = arrays["invs"].tolist()
    tainted = arrays["tainted"].tolist()
    outs = arrays["outs"].tolist()
    off = arrays["fanin_offsets"].tolist()
    flat = arrays["fanin_flat"].tolist()
    plan.gates = tuple(
        (
            kinds[i], ctrls[i], invs[i], tainted[i],
            tuple(flat[off[i]: off[i + 1]]), outs[i],
        )
        for i in range(len(kinds))
    )
    plan.consumers = tuple(
        _rows_back(arrays["consumer_offsets"], arrays["consumer_flat"])
    )
    plan.driver = tuple(arrays["driver"].tolist())
    plan.preset1 = tuple(arrays["preset1"].tolist())
    plan.preset0 = tuple(arrays["preset0"].tolist())
    return plan


# ----------------------------------------------------------------------
# implication-db
# ----------------------------------------------------------------------
def _encode_implication_db(db: Any) -> _Encoded:
    meta = {"num_nodes": db.num_nodes, "build_seconds": db.build_seconds}
    arrays = {
        "offsets": np.frombuffer(db.offsets, dtype=np.int32),
        "flat": (
            np.frombuffer(db.flat, dtype=np.int32)
            if len(db.flat)
            else np.empty(0, dtype=np.int32)
        ),
        "impossible": _int_array(db.impossible),
    }
    return meta, arrays


def _decode_implication_db(
    meta: dict[str, Any], arrays: dict[str, Any]
) -> object:
    from repro.analysis.implication_db import ImplicationDB

    return ImplicationDB(
        int(meta["num_nodes"]),
        _typed_i(arrays["offsets"]),
        _typed_i(arrays["flat"]),
        tuple(arrays["impossible"].tolist()),
        build_seconds=float(meta["build_seconds"]),
    )


# ----------------------------------------------------------------------
# expansion
# ----------------------------------------------------------------------
class DetachedExpansion:
    """A decoded time-frame expansion awaiting its sequential circuit.

    The flat payload carries the expanded combinational circuit and the
    frame maps, but *not* the sequential source netlist (every consumer
    already holds it — it is the store address / the pickled worker
    argument).  :meth:`attach` welds the two back into a full
    :class:`~repro.circuit.timeframe.TimeFrameExpansion`.
    """

    def __init__(
        self,
        frames: int,
        num_sequential_nodes: int,
        comb: Any,
        ff_at: list[list[int]],
        pi_at: list[list[int]],
        po_at: list[list[int]],
        node_at: list[list[int]],
    ) -> None:
        self.frames = frames
        self.num_sequential_nodes = num_sequential_nodes
        self.comb = comb
        self.ff_at = ff_at
        self.pi_at = pi_at
        self.po_at = po_at
        self.node_at = node_at

    def attach(self, sequential: Any) -> Any:
        """Bind ``sequential`` and return the full expansion."""
        from repro.circuit.timeframe import TimeFrameExpansion

        if sequential.num_nodes != self.num_sequential_nodes:
            raise FlatBufferError(
                "detached expansion does not match the sequential circuit "
                f"({self.num_sequential_nodes} vs {sequential.num_nodes} nodes)"
            )
        return TimeFrameExpansion(
            sequential, self.comb, self.frames,
            self.ff_at, self.pi_at, self.po_at, self.node_at,
        )


def _encode_names(names: list[str]) -> tuple[Any, Any]:
    encoded = [name.encode("utf-8") for name in names]
    offsets = [0]
    for blob in encoded:
        offsets.append(offsets[-1] + len(blob))
    joined = b"".join(encoded)
    return (
        np.frombuffer(joined, dtype=np.uint8)
        if joined
        else np.empty(0, dtype=np.uint8),
        _int_array(offsets),
    )


def _decode_names(blob: Any, offsets: Any) -> list[str]:
    raw = blob.tobytes()
    bounds = offsets.tolist()
    return [
        raw[bounds[i]: bounds[i + 1]].decode("utf-8")
        for i in range(len(bounds) - 1)
    ]


def _encode_expansion(expansion: Any) -> _Encoded:
    comb = expansion.comb
    name_blob, name_offsets = _encode_names(comb.names)
    fanin_offsets, fanin_flat = _csr_rows(comb.fanins)
    meta = {
        "frames": expansion.frames,
        "comb_name": comb.name,
        "comb_version": comb.version,
        "num_sequential_nodes": expansion.sequential.num_nodes,
    }
    arrays = {
        "types": _int_array([int(t) for t in comb.types], "|u1"),
        "fanin_offsets": fanin_offsets,
        "fanin_flat": fanin_flat,
        "name_blob": name_blob,
        "name_offsets": name_offsets,
        "ff_at": _int_array(expansion.ff_at),
        "pi_at": _int_array(expansion.pi_at),
        "po_at": _int_array(expansion.po_at),
        "node_at": _int_array(expansion.node_at),
    }
    return meta, arrays


def _decode_expansion(meta: dict[str, Any], arrays: dict[str, Any]) -> object:
    from repro.circuit.gates import GateType
    from repro.circuit.netlist import Circuit

    comb = Circuit(str(meta["comb_name"]))
    comb.types = [GateType(t) for t in arrays["types"].tolist()]
    comb.fanins = _rows_back(arrays["fanin_offsets"], arrays["fanin_flat"])
    comb.names = _decode_names(arrays["name_blob"], arrays["name_offsets"])
    comb._name_to_id = {name: i for i, name in enumerate(comb.names)}
    comb._version = int(meta["comb_version"])
    return DetachedExpansion(
        frames=int(meta["frames"]),
        num_sequential_nodes=int(meta["num_sequential_nodes"]),
        comb=comb,
        ff_at=arrays["ff_at"].tolist(),
        pi_at=arrays["pi_at"].tolist(),
        po_at=arrays["po_at"].tolist(),
        node_at=arrays["node_at"].tolist(),
    )


# ----------------------------------------------------------------------
# Registry and envelope.
# ----------------------------------------------------------------------
_CODECS: dict[str, tuple[_Encoder, _Decoder]] = {
    "simplan": (_encode_simplan, _decode_simplan),
    "csr-arrays": (_encode_csr, _decode_csr),
    "ff-reach": (_encode_ff_reach, _decode_ff_reach),
    "sink-reach": (_encode_sink_reach, _decode_sink_reach),
    "packed-implication": (_encode_packed, _decode_packed),
    "implication-db": (_encode_implication_db, _decode_implication_db),
    "expansion": (_encode_expansion, _decode_expansion),
}

#: artifact kinds stored and shared in the flat-buffer layout.
FLAT_KINDS = frozenset(_CODECS)


def is_flat_kind(kind: str) -> bool:
    """Whether ``kind`` round-trips through the flat-buffer layout."""
    return kind in _CODECS


def encode_payload(kind: str, payload: Any) -> bytes:
    """Serialize one artifact with the kind + schema envelope."""
    from repro.store.artifact_store import schema_version

    encoder, _ = _CODECS[kind]
    meta, arrays = encoder(payload)
    return pack(
        {"kind": kind, "schema": schema_version(kind), "artifact": meta},
        arrays,
    )


def decode_payload(kind: str, buffer: Any) -> object:
    """Validate the envelope of one flat blob and decode the artifact.

    Raises :class:`~repro.store.flatbuf.FlatBufferError` on any mismatch
    (wrong kind, schema skew, truncation) — the store maps that to its
    corrupt-entry self-heal, the backplane to a rebuild fallback.
    """
    from repro.store.artifact_store import schema_version

    meta, arrays = unpack(buffer)
    if (
        not isinstance(meta, dict)
        or meta.get("kind") != kind
        or meta.get("schema") != schema_version(kind)
    ):
        raise FlatBufferError(f"flat envelope mismatch for kind {kind!r}")
    _, decoder = _CODECS[kind]
    return decoder(meta["artifact"], arrays)


def decode_view(kind: str, view: Any) -> object:
    """Decode a pre-parsed :class:`~repro.store.flatbuf.FlatView`."""
    from repro.store.artifact_store import schema_version

    meta = view.meta
    if (
        not isinstance(meta, dict)
        or meta.get("kind") != kind
        or meta.get("schema") != schema_version(kind)
    ):
        raise FlatBufferError(f"flat envelope mismatch for kind {kind!r}")
    _, decoder = _CODECS[kind]
    return decoder(meta["artifact"], view.arrays)
