"""Content-addressed, process-shared on-disk artifact store.

Derived analysis structures — compiled simulation plans, packed reach
matrices, the global implication DB, lint/sweep reports, detection pair
records — are expensive to build and pure functions of the netlist
content.  :class:`ArtifactStore` keeps them on disk, addressed by a
content digest (see :meth:`~repro.circuit.netlist.Circuit.content_key`),
so repeated runs of the same netlist — in the same process, a later
process, or a concurrent one — load instead of rebuild.

Design rules:

* **Atomic writes.**  Every entry is written to a unique temporary file
  in the same directory and published with ``os.replace`` — readers
  never observe a partial entry, and two processes racing to publish the
  same key both succeed (last writer wins with identical bytes).
* **Versioned schemas.**  Each artifact kind carries a schema tag
  (:data:`SCHEMA_VERSIONS`) baked into both the file name and the
  serialized envelope; loading checks it, so a library upgrade that
  changes an artifact's layout silently invalidates old entries instead
  of deserializing garbage into the new code.
* **Corrupt-entry self-heal.**  A truncated or unreadable entry (torn
  disk write, version skew, bit rot) is deleted on first touch and
  reported as a miss — the caller rebuilds and republishes.
* **Size-bounded LRU eviction.**  ``max_bytes`` caps the store; when a
  write pushes the total over it, the least-recently-*used* entries go
  first (loads touch the file mtime).
* **Two layouts.**  Small report-like kinds are pickled envelopes
  (``.pkl``); the numpy-heavy kinds in
  :data:`repro.store.codecs.FLAT_KINDS` use the flat-buffer layout
  (``.rfb``, :mod:`repro.store.flatbuf`) so a warm load memory-maps the
  file and hands out zero-copy array views instead of ``pickle.load``
  copies.
* **Pin-while-mapped eviction safety.**  A flat entry whose mmap is
  still referenced by live array views is *pinned*: the LRU sweep skips
  it rather than unlinking a file a run is actively reading.  The pin is
  dropped automatically (``weakref.finalize`` on the mmap) when the last
  view dies.  Linux would keep the mapping alive across an unlink
  anyway; pinning additionally keeps the bytes on disk so a concurrent
  warm process still hits.

Counters (``hits`` / ``misses`` / ``stores`` / ``evictions`` /
``corrupt``) accumulate per instance; :meth:`stats` snapshots them for
the pipeline's cache trace event and the CLI summary line.
"""

from __future__ import annotations

import os
import pickle
import time
import weakref
from pathlib import Path
from typing import Any

#: Schema version per artifact kind.  Bump a kind's version whenever its
#: serialized layout changes; unknown kinds default to version 1.
SCHEMA_VERSIONS: dict[str, int] = {
    "simplan": 2,
    "csr-arrays": 1,
    "ff-reach": 2,
    "sink-reach": 2,
    "implication-db": 2,
    "packed-implication": 1,
    "expansion": 1,
    "lint-report": 1,
    "sweep-report": 1,
    "pair-records": 1,
}

#: default store size bound: 1 GiB.
DEFAULT_MAX_BYTES = 1 << 30

_SUFFIX_PICKLE = ".pkl"
_SUFFIX_FLAT = ".rfb"


def schema_version(kind: str) -> int:
    """The current schema tag of one artifact kind."""
    return SCHEMA_VERSIONS.get(kind, 1)


def _is_flat(kind: str) -> bool:
    # Lazy: the codec registry pulls numpy; report-only callers skip it.
    from repro.store.codecs import is_flat_kind

    return is_flat_kind(kind)


def _unpin(pinned: dict[str, int], key: str) -> None:
    """Drop one pin reference (module-level so the store itself can die)."""
    count = pinned.get(key, 0)
    if count <= 1:
        pinned.pop(key, None)
    else:
        pinned[key] = count - 1


class ArtifactStore:
    """One on-disk artifact store rooted at ``root`` (created lazily)."""

    def __init__(
        self, root: str | Path, max_bytes: int = DEFAULT_MAX_BYTES
    ) -> None:
        self.root = Path(root)
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.corrupt = 0
        #: live-mmap pin counts per entry path (see module docstring).
        self._pinned: dict[str, int] = {}
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # Addressing.
    # ------------------------------------------------------------------
    def address(self, kind: str, content_key: str, extra: str = "") -> str:
        """The store address of one artifact: content key plus salt.

        ``extra`` folds artifact parameters (e.g. an options fingerprint)
        into the address without the caller hashing them itself.
        """
        if extra:
            import hashlib

            return hashlib.sha256(
                f"{content_key}\x1f{extra}".encode()
            ).hexdigest()
        return content_key

    def _path(self, kind: str, address: str) -> Path:
        suffix = _SUFFIX_FLAT if _is_flat(kind) else _SUFFIX_PICKLE
        return (
            self.root / kind / f"{address}-v{schema_version(kind)}{suffix}"
        )

    # ------------------------------------------------------------------
    # Load / save.
    # ------------------------------------------------------------------
    def load(self, kind: str, address: str) -> object | None:
        """The stored artifact, or ``None`` on miss/corruption.

        A successful load touches the entry's mtime (the LRU clock); a
        corrupt entry is deleted (self-heal) and counted.  Flat kinds
        decode zero-copy from an mmap of the entry, which stays pinned
        against LRU eviction while any decoded view is alive.
        """
        path = self._path(kind, address)
        try:
            if _is_flat(kind):
                payload = self._load_flat(kind, path)
            else:
                payload = self._load_pickle(kind, path)
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            # Torn write, truncation, version skew: heal by deletion.
            self.corrupt += 1
            self.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        try:
            now = time.time()
            os.utime(path, (now, now))
        except OSError:
            pass  # entry may have been evicted by a peer; the load stands
        self.hits += 1
        return payload

    def _load_pickle(self, kind: str, path: Path) -> object:
        with open(path, "rb") as fh:
            envelope = pickle.load(fh)
        if (
            not isinstance(envelope, dict)
            or envelope.get("kind") != kind
            or envelope.get("schema") != schema_version(kind)
        ):
            raise ValueError("schema mismatch")
        return envelope["payload"]

    def _load_flat(self, kind: str, path: Path) -> object:
        from repro.store import codecs, flatbuf

        view = flatbuf.read_file(path)
        try:
            payload = codecs.decode_view(kind, view)
        except Exception:
            # A decode failure's traceback may still reference array
            # views over the mapping; GC unmaps once it is handled.
            try:
                view.buffer.close()
            except BufferError:
                pass
            raise
        self._pin(path, view.buffer)
        return payload

    def _pin(self, path: Path, mapped: Any) -> None:
        """Pin ``path`` against eviction for the lifetime of ``mapped``.

        The unpin finalizer closes over the pin dict, not the store, so
        an abandoned store instance does not linger until its last view
        dies.
        """
        key = str(path)
        self._pinned[key] = self._pinned.get(key, 0) + 1
        weakref.finalize(mapped, _unpin, self._pinned, key)

    def save(self, kind: str, address: str, payload: object) -> None:
        """Publish one artifact atomically, then enforce the size bound."""
        path = self._path(kind, address)
        path.parent.mkdir(parents=True, exist_ok=True)
        if _is_flat(kind):
            from repro.store.codecs import encode_payload

            data = encode_payload(kind, payload)
        else:
            data = pickle.dumps(
                {
                    "kind": kind,
                    "schema": schema_version(kind),
                    "payload": payload,
                },
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        tmp = path.parent / (
            f".{path.name}.{os.getpid()}.{time.monotonic_ns()}.tmp"
        )
        try:
            tmp.write_bytes(data)
            os.replace(tmp, path)
        except OSError:
            # A full or read-only store degrades to a no-op cache.
            try:
                tmp.unlink()
            except OSError:
                pass
            return
        self.stores += 1
        self._evict()

    # ------------------------------------------------------------------
    # Eviction and introspection.
    # ------------------------------------------------------------------
    def _entries(self) -> list[tuple[float, int, Path]]:
        """Every published entry as ``(mtime, size, path)``."""
        entries: list[tuple[float, int, Path]] = []
        if not self.root.is_dir():
            return entries
        for kind_dir in self.root.iterdir():
            if not kind_dir.is_dir():
                continue
            for pattern in (f"*{_SUFFIX_PICKLE}", f"*{_SUFFIX_FLAT}"):
                for path in kind_dir.glob(pattern):
                    try:
                        stat = path.stat()
                    except OSError:
                        continue  # evicted by a peer mid-scan
                    entries.append((stat.st_mtime, stat.st_size, path))
        return entries

    def total_bytes(self) -> int:
        """Current on-disk size of every published entry."""
        return sum(size for _, size, _ in self._entries())

    def _evict(self) -> None:
        """Delete least-recently-used entries until under ``max_bytes``.

        Entries whose mmap is pinned by live array views are skipped —
        evicting them would tear the backing file out from under a run
        in progress (and lose the bytes for concurrent warm processes).
        """
        entries = self._entries()
        total = sum(size for _, size, _ in entries)
        if total <= self.max_bytes:
            return
        for _, size, path in sorted(entries):
            if self._pinned.get(str(path), 0) > 0:
                continue
            try:
                path.unlink()
            except OSError:
                continue  # already gone (peer eviction): size freed anyway
            self.evictions += 1
            total -= size
            if total <= self.max_bytes:
                break

    def stats(self) -> dict[str, int]:
        """Snapshot of the instance counters (for traces and the CLI)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "corrupt": self.corrupt,
        }

    def usage(self) -> dict[str, dict[str, int]]:
        """Per-kind entry counts and byte totals (for ``repro cache``)."""
        usage: dict[str, dict[str, int]] = {}
        for _, size, path in self._entries():
            kind = path.parent.name
            bucket = usage.setdefault(kind, {"entries": 0, "bytes": 0})
            bucket["entries"] += 1
            bucket["bytes"] += size
        return usage

    def clear(self) -> tuple[int, int]:
        """Unlink every published entry; ``(entries, bytes)`` removed.

        Explicit clearing ignores pins: live mappings survive the unlink
        (the pages stay resident until the last view dies) — only the
        on-disk copy goes.
        """
        removed = 0
        freed = 0
        for _, size, path in self._entries():
            try:
                path.unlink()
            except OSError:
                continue
            removed += 1
            freed += size
        return removed, freed
