"""Content-addressed, process-shared on-disk artifact store.

Derived analysis structures — compiled simulation plans, packed reach
matrices, the global implication DB, lint/sweep reports, detection pair
records — are expensive to build and pure functions of the netlist
content.  :class:`ArtifactStore` keeps them on disk, addressed by a
content digest (see :meth:`~repro.circuit.netlist.Circuit.content_key`),
so repeated runs of the same netlist — in the same process, a later
process, or a concurrent one — load instead of rebuild.

Design rules:

* **Atomic writes.**  Every entry is written to a unique temporary file
  in the same directory and published with ``os.replace`` — readers
  never observe a partial entry, and two processes racing to publish the
  same key both succeed (last writer wins with identical bytes).
* **Versioned schemas.**  Each artifact kind carries a schema tag
  (:data:`SCHEMA_VERSIONS`) baked into both the file name and the
  pickled envelope; loading checks it, so a library upgrade that changes
  an artifact's layout silently invalidates old entries instead of
  unpickling garbage into the new code.
* **Corrupt-entry self-heal.**  A truncated or unreadable entry (torn
  disk write, version skew, bit rot) is deleted on first touch and
  reported as a miss — the caller rebuilds and republishes.
* **Size-bounded LRU eviction.**  ``max_bytes`` caps the store; when a
  write pushes the total over it, the least-recently-*used* entries go
  first (loads touch the file mtime).

Counters (``hits`` / ``misses`` / ``stores`` / ``evictions`` /
``corrupt``) accumulate per instance; :meth:`stats` snapshots them for
the pipeline's cache trace event and the CLI summary line.
"""

from __future__ import annotations

import os
import pickle
import time
from pathlib import Path

#: Schema version per artifact kind.  Bump a kind's version whenever its
#: pickled layout changes; unknown kinds default to version 1.
SCHEMA_VERSIONS: dict[str, int] = {
    "simplan": 1,
    "ff-reach": 1,
    "sink-reach": 1,
    "implication-db": 1,
    "lint-report": 1,
    "sweep-report": 1,
    "pair-records": 1,
}

#: default store size bound: 1 GiB.
DEFAULT_MAX_BYTES = 1 << 30

_SUFFIX = ".pkl"


def schema_version(kind: str) -> int:
    """The current schema tag of one artifact kind."""
    return SCHEMA_VERSIONS.get(kind, 1)


class ArtifactStore:
    """One on-disk artifact store rooted at ``root`` (created lazily)."""

    def __init__(
        self, root: str | Path, max_bytes: int = DEFAULT_MAX_BYTES
    ) -> None:
        self.root = Path(root)
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.corrupt = 0
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # Addressing.
    # ------------------------------------------------------------------
    def address(self, kind: str, content_key: str, extra: str = "") -> str:
        """The store address of one artifact: content key plus salt.

        ``extra`` folds artifact parameters (e.g. an options fingerprint)
        into the address without the caller hashing them itself.
        """
        if extra:
            import hashlib

            return hashlib.sha256(
                f"{content_key}\x1f{extra}".encode()
            ).hexdigest()
        return content_key

    def _path(self, kind: str, address: str) -> Path:
        return (
            self.root / kind / f"{address}-v{schema_version(kind)}{_SUFFIX}"
        )

    # ------------------------------------------------------------------
    # Load / save.
    # ------------------------------------------------------------------
    def load(self, kind: str, address: str) -> object | None:
        """The stored artifact, or ``None`` on miss/corruption.

        A successful load touches the entry's mtime (the LRU clock); a
        corrupt entry is deleted (self-heal) and counted.
        """
        path = self._path(kind, address)
        try:
            with open(path, "rb") as fh:
                envelope = pickle.load(fh)
            if (
                not isinstance(envelope, dict)
                or envelope.get("kind") != kind
                or envelope.get("schema") != schema_version(kind)
            ):
                raise ValueError("schema mismatch")
            payload = envelope["payload"]
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            # Torn write, truncation, version skew: heal by deletion.
            self.corrupt += 1
            self.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        try:
            now = time.time()
            os.utime(path, (now, now))
        except OSError:
            pass  # entry may have been evicted by a peer; the load stands
        self.hits += 1
        return payload

    def save(self, kind: str, address: str, payload: object) -> None:
        """Publish one artifact atomically, then enforce the size bound."""
        path = self._path(kind, address)
        path.parent.mkdir(parents=True, exist_ok=True)
        envelope = {
            "kind": kind,
            "schema": schema_version(kind),
            "payload": payload,
        }
        tmp = path.parent / (
            f".{path.name}.{os.getpid()}.{time.monotonic_ns()}.tmp"
        )
        try:
            with open(tmp, "wb") as fh:
                pickle.dump(envelope, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except OSError:
            # A full or read-only store degrades to a no-op cache.
            try:
                tmp.unlink()
            except OSError:
                pass
            return
        self.stores += 1
        self._evict()

    # ------------------------------------------------------------------
    # Eviction and introspection.
    # ------------------------------------------------------------------
    def _entries(self) -> list[tuple[float, int, Path]]:
        """Every published entry as ``(mtime, size, path)``."""
        entries: list[tuple[float, int, Path]] = []
        if not self.root.is_dir():
            return entries
        for kind_dir in self.root.iterdir():
            if not kind_dir.is_dir():
                continue
            for path in kind_dir.glob(f"*{_SUFFIX}"):
                try:
                    stat = path.stat()
                except OSError:
                    continue  # evicted by a peer mid-scan
                entries.append((stat.st_mtime, stat.st_size, path))
        return entries

    def total_bytes(self) -> int:
        """Current on-disk size of every published entry."""
        return sum(size for _, size, _ in self._entries())

    def _evict(self) -> None:
        """Delete least-recently-used entries until under ``max_bytes``."""
        entries = self._entries()
        total = sum(size for _, size, _ in entries)
        if total <= self.max_bytes:
            return
        for _, size, path in sorted(entries):
            try:
                path.unlink()
            except OSError:
                continue  # already gone (peer eviction): size freed anyway
            self.evictions += 1
            total -= size
            if total <= self.max_bytes:
                break

    def stats(self) -> dict[str, int]:
        """Snapshot of the instance counters (for traces and the CLI)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "corrupt": self.corrupt,
        }
