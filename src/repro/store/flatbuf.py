"""Flat-buffer serialization: one JSON header + contiguous array segments.

The artifact store (PR 8) pickled every derived structure.  Pickle is
fine for small reports, but the numpy-heavy artifacts — compiled
simulation plans, CSR adjacency, packed reach bitmaps, the implication
DB — are dominated by large contiguous arrays, and ``pickle.load``
*copies* every one of them into fresh heap memory per process.  This
module defines a trivially mmap-able layout instead::

    offset 0   magic ``b"RFB1"``
    offset 4   uint32 little-endian header length ``H``
    offset 8   ``H`` bytes of UTF-8 JSON: ``{"meta": ..., "segments":
               [[name, dtype, shape, rel_offset, nbytes], ...]}``
    data       each segment's raw bytes, 64-byte aligned relative to
               ``data_start = align64(8 + H)``

Segment offsets in the header are relative to ``data_start``, so the
header can be serialized without a fixed-point iteration on its own
length.  Decoding (:func:`unpack` / :func:`read_file`) returns zero-copy
read-only ``np.frombuffer`` views over the source buffer — an ``mmap``
of the store file or a ``multiprocessing.shared_memory`` block — so a
warm load or a worker attach costs page faults, not deserialization.
The views keep the underlying buffer alive through their ``base`` chain;
the store's eviction pinning hooks a ``weakref.finalize`` onto the mmap
object to learn when the last view dies.
"""

from __future__ import annotations

import json
import mmap
import struct
from pathlib import Path
from typing import Any

import numpy as np

#: file magic of the flat-buffer layout (version baked into the tag).
MAGIC = b"RFB1"

#: segment alignment in bytes (one cache line; keeps uint64 rows aligned).
ALIGN = 64

_HEADER_FMT = "<I"
_HEADER_PREFIX = len(MAGIC) + struct.calcsize(_HEADER_FMT)


class FlatBufferError(ValueError):
    """Raised for truncated, misaligned or non-flat-buffer payloads."""


def _align(offset: int) -> int:
    return (offset + ALIGN - 1) // ALIGN * ALIGN


def pack(meta: Any, arrays: dict[str, Any]) -> bytes:
    """Serialize ``meta`` (JSON-able) plus named arrays into one blob.

    Arrays are stored C-contiguous in dict order; zero-length arrays are
    legal (their segment is empty).  ``meta`` must round-trip through
    JSON — keep it to plain dicts/lists/strings/numbers.
    """
    contiguous = {
        name: np.ascontiguousarray(arr) for name, arr in arrays.items()
    }
    segments: list[list[Any]] = []
    rel = 0
    for name, arr in contiguous.items():
        rel = _align(rel)
        segments.append(
            [name, arr.dtype.str, list(arr.shape), rel, arr.nbytes]
        )
        rel += arr.nbytes
    header = json.dumps(
        {"meta": meta, "segments": segments}, separators=(",", ":")
    ).encode("utf-8")
    data_start = _align(_HEADER_PREFIX + len(header))
    blob = bytearray(data_start + rel)
    blob[: len(MAGIC)] = MAGIC
    struct.pack_into(_HEADER_FMT, blob, len(MAGIC), len(header))
    blob[_HEADER_PREFIX: _HEADER_PREFIX + len(header)] = header
    for (name, _dtype, _shape, offset, nbytes), arr in zip(
        segments, contiguous.values()
    ):
        if nbytes:
            start = data_start + offset
            blob[start: start + nbytes] = arr.tobytes()
    return bytes(blob)


def unpack(buffer: Any) -> tuple[Any, dict[str, Any]]:
    """Decode one flat buffer into ``(meta, {name: array_view})``.

    ``buffer`` is any object exposing the buffer protocol (bytes, an
    ``mmap``, a ``memoryview`` of shared memory).  The returned arrays
    are zero-copy read-only views into it — the caller must keep the
    buffer alive for as long as any view is (numpy's ``base`` chain does
    this automatically for the views themselves).
    """
    view = memoryview(buffer)
    total = view.nbytes
    if total < _HEADER_PREFIX or bytes(view[: len(MAGIC)]) != MAGIC:
        raise FlatBufferError("not a flat-buffer payload (bad magic)")
    (header_len,) = struct.unpack_from(_HEADER_FMT, view, len(MAGIC))
    if _HEADER_PREFIX + header_len > total:
        raise FlatBufferError("truncated flat-buffer header")
    try:
        header = json.loads(
            bytes(view[_HEADER_PREFIX: _HEADER_PREFIX + header_len])
        )
        segments = header["segments"]
        meta = header["meta"]
    except (ValueError, KeyError, TypeError) as exc:
        raise FlatBufferError(f"corrupt flat-buffer header: {exc}") from exc
    data_start = _align(_HEADER_PREFIX + header_len)
    arrays: dict[str, Any] = {}
    for entry in segments:
        try:
            name, dtype_str, shape, rel, nbytes = entry
            dtype = np.dtype(dtype_str)
            count = int(nbytes) // dtype.itemsize if dtype.itemsize else 0
        except (ValueError, TypeError) as exc:
            raise FlatBufferError(
                f"corrupt flat-buffer segment table: {exc}"
            ) from exc
        start = data_start + int(rel)
        if start + int(nbytes) > total:
            raise FlatBufferError(f"truncated segment {name!r}")
        arr = np.frombuffer(buffer, dtype=dtype, count=count, offset=start)
        arr = arr.reshape(tuple(shape))
        if arr.flags.writeable:
            arr.flags.writeable = False
        arrays[str(name)] = arr
    return meta, arrays


class FlatView:
    """One decoded flat-buffer file: meta, array views, and their mmap.

    The array views alias :attr:`buffer`; dropping the view object is
    fine, the views themselves keep the mmap alive.  :attr:`buffer` is
    exposed so the store can pin the backing file against eviction for
    the mmap's lifetime (``weakref.finalize`` on it).
    """

    def __init__(self, meta: Any, arrays: dict[str, Any], buffer: Any) -> None:
        self.meta = meta
        self.arrays = arrays
        self.buffer = buffer


def write_file(path: str | Path, meta: Any, arrays: dict[str, Any]) -> None:
    """Write one flat-buffer file (not atomic — callers rename into place)."""
    Path(path).write_bytes(pack(meta, arrays))


def read_file(path: str | Path) -> FlatView:
    """Memory-map one flat-buffer file and decode it zero-copy.

    Raises ``FileNotFoundError`` on a missing file and
    :class:`FlatBufferError` on a malformed one.  The mapping is
    ``ACCESS_READ`` — every view is read-only, and the mapping survives
    the file being unlinked by a peer process (Linux semantics), so a
    concurrent eviction can never tear data out from under a live run.
    """
    with open(path, "rb") as fh:
        try:
            mapped = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
        except ValueError as exc:  # zero-length file
            raise FlatBufferError("empty flat-buffer file") from exc
    try:
        meta, arrays = unpack(mapped)
    except FlatBufferError:
        # The in-flight exception's traceback still references unpack's
        # frame — and with it a memoryview export of the mapping — so an
        # eager close() can raise BufferError.  Garbage collection unmaps
        # once the exception is handled; eviction safety does not depend
        # on it (the mapping survives unlink anyway).
        try:
            mapped.close()
        except BufferError:
            pass
        raise
    return FlatView(meta, arrays, mapped)
