"""repro — implication-based multi-cycle path detection for sequential circuits.

A from-scratch reproduction of H. Higuchi, *"An Implication-based Method to
Detect Multi-Cycle Paths in Large Sequential Circuits"*, DAC 2002: the
implication/ATPG detection pipeline, the static-hazard validity checks, and
the SAT-based and BDD-based baselines it is compared against — plus every
substrate they need (netlist model, simulators, CDCL SAT solver, ROBDD
package, benchmark generator, STA).

Quick start::

    from repro import MultiCycleDetector
    from repro.circuit.library import fig1_circuit

    result = MultiCycleDetector(fig1_circuit()).run()
    print(result.multi_cycle_pair_names())

See README.md for the architecture overview and DESIGN.md for the
paper-to-module map.
"""

from repro.circuit.builder import CircuitBuilder
from repro.circuit.netlist import Circuit, CircuitError, validate
from repro.circuit.topology import FFPair, connected_ff_pairs
from repro.core.deciders import (
    PairDecider,
    available_engines,
    create_decider,
    register_decider,
)
from repro.core.detector import (
    DetectorOptions,
    MultiCycleDetector,
    detect_multi_cycle_pairs,
)
from repro.core.extended import condition2_extension
from repro.core.hazard import HazardChecker, check_hazards
from repro.core.kcycle import (
    KCycleAnalyzer,
    KCycleDetector,
    is_k_cycle_pair,
    max_cycles,
)
from repro.core.pipeline import (
    AnalysisContext,
    DecisionStage,
    HazardStage,
    Pipeline,
    RandomFilterStage,
    TopologyStage,
    default_pipeline,
)
from repro.core.ternary_hazard import TernaryHazardChecker, ternary_check_hazards
from repro.core.result import Classification, DetectionResult, PairResult, Stage
from repro.core.sensitization import SensitizationMode
from repro.core.trace import Tracer, open_trace, read_trace

__version__ = "1.1.0"

__all__ = [
    "AnalysisContext",
    "Circuit",
    "CircuitBuilder",
    "CircuitError",
    "Classification",
    "DecisionStage",
    "DetectionResult",
    "DetectorOptions",
    "FFPair",
    "HazardChecker",
    "HazardStage",
    "KCycleAnalyzer",
    "KCycleDetector",
    "MultiCycleDetector",
    "PairDecider",
    "PairResult",
    "Pipeline",
    "RandomFilterStage",
    "SensitizationMode",
    "Stage",
    "TernaryHazardChecker",
    "TopologyStage",
    "Tracer",
    "available_engines",
    "check_hazards",
    "condition2_extension",
    "connected_ff_pairs",
    "create_decider",
    "default_pipeline",
    "detect_multi_cycle_pairs",
    "is_k_cycle_pair",
    "max_cycles",
    "open_trace",
    "read_trace",
    "register_decider",
    "ternary_check_hazards",
    "validate",
]
