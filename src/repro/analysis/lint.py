"""Lint pass: collect every structural finding of a netlist at once.

``circuit/netlist.validate`` answers "is this netlist usable?" with a
single exception; this pass answers "what is wrong (or suspicious) about
it?" with a complete :class:`~repro.analysis.diagnostics.LintReport`:

* every violation :func:`repro.circuit.netlist.check` collects — fanin
  arity, multi-driven OUTPUT/DFF, dangling fanin ids, OUTPUT-as-fanin,
  and each combinational cycle with its full path — as ERRORs,
* dangling fanout-free combinational gates and flip-flops nothing reads
  (dead logic the sweep pass can remove) as WARNINGs,
* unused primary inputs and constant-driven flip-flops as INFOs.

The report is cached per netlist version through ``Circuit.derived``, so
the pipeline's ``--lint`` gate and the ``repro lint`` CLI share one run.
:func:`lint_file` extends the same reporting to reader failures: a
malformed ``.bench``/``.v`` file produces a single ``parse-error``
diagnostic carrying the reader's file/line context instead of leaking an
exception.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.circuit.gates import COMBINATIONAL_TYPES, GateType
from repro.circuit.netlist import Circuit, CircuitError, check
from repro.analysis.diagnostics import (
    Diagnostic,
    LintError,
    LintReport,
    Severity,
)

#: :meth:`Circuit.derived` cache key for the lint report.
_DERIVED_KEY = "lint-report"

#: accepted pipeline lint policies.
LINT_MODES = ("off", "warn", "strict")


def _build(circuit: Circuit) -> LintReport:
    diagnostics: list[Diagnostic] = []
    names = circuit.names

    for violation in check(circuit):
        diagnostics.append(Diagnostic(
            violation.code,
            Severity.ERROR,
            violation.message,
            tuple(names[n] for n in violation.nodes if 0 <= n < circuit.num_nodes),
        ))

    for node_id in range(circuit.num_nodes):
        gate_type = circuit.types[node_id]
        fanouts = circuit.fanouts(node_id)
        if gate_type in COMBINATIONAL_TYPES and gate_type != GateType.OUTPUT:
            if not fanouts:
                diagnostics.append(Diagnostic(
                    "dangling-gate",
                    Severity.WARNING,
                    f"gate {names[node_id]!r} ({gate_type.name}) drives nothing",
                    (names[node_id],),
                ))
        elif gate_type == GateType.DFF:
            if not fanouts:
                diagnostics.append(Diagnostic(
                    "unread-dff",
                    Severity.WARNING,
                    f"flip-flop {names[node_id]!r} is never read",
                    (names[node_id],),
                ))
            fanins = circuit.fanins[node_id]
            if fanins and circuit.types[fanins[0]] in (
                GateType.CONST0, GateType.CONST1
            ):
                const = "0" if circuit.types[fanins[0]] == GateType.CONST0 else "1"
                diagnostics.append(Diagnostic(
                    "constant-dff",
                    Severity.INFO,
                    f"flip-flop {names[node_id]!r} always loads constant {const}",
                    (names[node_id],),
                ))
        elif gate_type == GateType.INPUT and not fanouts:
            diagnostics.append(Diagnostic(
                "unused-input",
                Severity.INFO,
                f"primary input {names[node_id]!r} is unused",
                (names[node_id],),
            ))
    return LintReport(circuit.name, diagnostics)


def lint(circuit: Circuit) -> LintReport:
    """The circuit's full lint report (cached; store-persisted).

    Diagnostics embed node names, so the cache entry is name-scoped and
    the store address includes the name table.
    """
    return circuit.derived(
        _DERIVED_KEY, _build, scope="names", persist="lint-report"
    )


def enforce(circuit: Circuit, mode: str) -> LintReport | None:
    """Apply one pipeline lint policy; the detector's entry gate.

    * ``"off"`` — no lint run; falls back to the classic raising
      :func:`~repro.circuit.netlist.validate` (first error only).
    * ``"warn"`` — run the full lint; raise :class:`LintError` listing
      *all* errors when any exist, emit :class:`LintWarning` for the rest.
    * ``"strict"`` — as ``warn`` but warnings are rejected too.

    Returns the report (``None`` in ``"off"`` mode).  The verdicts of a
    run that passes the gate are identical across all three modes — the
    pass only validates and annotates, it never rewrites the circuit.
    """
    if mode == "off":
        from repro.circuit.netlist import validate

        validate(circuit)
        return None
    if mode not in LINT_MODES:
        raise ValueError(f"unknown lint mode {mode!r}; expected one of {LINT_MODES}")
    report = lint(circuit)
    rejected = report.errors if mode == "warn" else (
        report.errors + report.warnings
    )
    if rejected:
        details = "; ".join(d.message for d in rejected)
        raise LintError(
            report,
            f"lint ({mode}) rejected {circuit.name!r}: "
            f"{len(rejected)} finding(s): {details}",
        )
    if mode == "warn":
        import warnings

        for diagnostic in report.warnings:
            warnings.warn(diagnostic.format(), LintWarning, stacklevel=3)
    return report


class LintWarning(UserWarning):
    """Category for non-fatal lint findings surfaced in ``warn`` mode."""


def lint_file(path: str | Path) -> LintReport:
    """Lint one netlist file (``.v`` Verilog, otherwise ``.bench``).

    Reader failures become a single ``parse-error`` ERROR diagnostic with
    the reader's file/line context preserved, so a malformed file yields a
    report instead of an exception; well-formed files get the full
    structural lint of :func:`lint`.
    """
    path = Path(path)
    try:
        # check=False: a parseable-but-structurally-broken file should
        # reach the lint pass below so *all* findings are reported, not
        # just the first validation failure.
        if path.suffix == ".v":
            from repro.circuit import verilog

            circuit = verilog.load(path, check=False)
        else:
            from repro.circuit import bench

            circuit = bench.load(path, check=False)
    except CircuitError as exc:
        message = str(exc)
        line_match = re.search(r"\bline (\d+)\b", message)
        return LintReport(path.name, [Diagnostic(
            "parse-error",
            Severity.ERROR,
            message,
            file=str(path),
            line=int(line_match.group(1)) if line_match else None,
        )])
    report = lint(circuit)
    return LintReport(path.name, [
        Diagnostic(d.code, d.severity, d.message, d.nodes, file=str(path))
        for d in report.diagnostics
    ])
