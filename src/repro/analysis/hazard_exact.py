"""Exact SAT-backed hazard classification of multi-cycle FF pairs.

The paper's two path-search checks bracket the exact static-hazard
condition: static sensitization is the optimistic lower bound (a found
path comes with a justification-verified vector, so the glitch is real)
and static co-sensitization is the safe upper bound (a pair it clears
cannot glitch).  Pairs where the bounds disagree were previously left
with a conservative "maybe" — this module closes the gap by deciding
the condition *exactly*, following Komarath-Saurabh's formulation of
hazard detection as a decision problem, on the shared incremental SAT
decider:

    is there a binary assignment to the 2-frame expansion's inputs that
    (1) satisfies the case premise ``FF_i(t) = a``, ``FF_i(t+1) = 1-a``,
        ``FF_j(t+1) = FF_j(t+2) = b``, and
    (2) drives the sink's data input ``FF_j(t+2)`` to X when the
        *source's* second-frame state entry alone is replaced by X in an
        Eichelberger-style ternary re-evaluation of the second frame?

Condition (2) is encoded dual-rail: every second-frame node ``n`` gets
two literals ``p_n`` ("the ternary value can be 1") and ``q_n`` ("can
be 0"), with ``X == p AND q``; the Kleene gate algebra then becomes
plain monotone AND/OR structure over the rails, sharing the solver with
the binary Tseitin plane of the whole expansion.  Each state entry
carries a *force-X selector* variable so one encoding serves every pair
under assumptions, exactly like the SAT MC decider shares its CNF.

The resulting three-way classification per pair:

* ``safe`` — no satisfiable case glitches (UNSAT everywhere, or the
  co-sensitization bound already cleared the pair),
* ``glitch-proven`` — a sensitizable path or a SAT witness proves it,
* ``glitch-possible`` — only when a resource limit (path search and
  conflict limit both) leaves the pair undecided; flagged downstream.

With a per-gate min/max delay annotation (:mod:`repro.sta.delays`) the
checker additionally re-filters glitch-proven pairs: the SAT witness
fixes the ternary X-set, and an earliest/latest arrival sweep over it
decides whether the reconverging transition can actually produce a
pulse at the sink (``latest > earliest``).  Equal-delay single-path
glitch reports die here — a lone clean edge is not a hazard.
"""

from __future__ import annotations

from typing import Iterable

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit
from repro.circuit.timeframe import TimeFrameExpansion, expand_cached
from repro.circuit.topology import FFPair
from repro.logic.simulator import evaluate_gate
from repro.logic.values import X
from repro.core.hazard import HazardChecker
from repro.core.result import (
    HazardVerdictKind,
    PairHazardVerdict,
    PairResult,
)
from repro.core.sensitization import SensitizationMode
from repro.core.ternary_hazard import ternary_eval
from repro.sat.solver import CdclSolver, SolveStatus
from repro.sat.tseitin import CircuitEncoding, encode_circuit
from repro.sta.delays import GateDelays

#: Dual-rail representation of one ternary signal: ``(p, q)`` literals
#: with ``p`` = "can evaluate to 1" and ``q`` = "can evaluate to 0".
Rail = tuple[int, int]

#: Counter keys of :attr:`ExactHazardChecker.counters` / :meth:`summary`.
COUNTER_KEYS = (
    "checked",
    "disagreement",
    "resolved",
    "safe",
    "glitch_possible",
    "glitch_proven",
    "sat_solves",
    "sat",
    "unsat",
    "unknown",
    "delay_filtered",
)


def empty_exact_summary() -> dict[str, float | int]:
    """The summary of an exact pass that saw no multi-cycle pairs."""
    summary: dict[str, float | int] = {key: 0 for key in COUNTER_KEYS}
    summary["resolution_fraction"] = 1.0
    return summary


def _and_var(solver: CdclSolver, lits: list[int]) -> int:
    """Literal equivalent to the conjunction of ``lits``."""
    if len(lits) == 1:
        return lits[0]
    out = solver.new_var()
    for lit in lits:
        solver.add_clause([-out, lit])
    solver.add_clause([out] + [-lit for lit in lits])
    return out


def _or_var(solver: CdclSolver, lits: list[int]) -> int:
    """Literal equivalent to the disjunction of ``lits``."""
    if len(lits) == 1:
        return lits[0]
    out = solver.new_var()
    for lit in lits:
        solver.add_clause([out, -lit])
    solver.add_clause([-out] + list(lits))
    return out


def _xor_rail(solver: CdclSolver, a: Rail, b: Rail) -> Rail:
    """Kleene XOR over two rails (X wins whenever either side is X)."""
    pa, qa = a
    pb, qb = b
    p = _or_var(solver, [_and_var(solver, [pa, qb]), _and_var(solver, [qa, pb])])
    q = _or_var(solver, [_and_var(solver, [pa, pb]), _and_var(solver, [qa, qb])])
    return p, q


def verdict_flags_pair(verdict: PairHazardVerdict) -> bool:
    """Whether a verdict keeps the pair on the hazard-flagged list.

    ``glitch-proven`` pairs are flagged unless the delay filter showed
    the pulse cannot form; ``glitch-possible`` is flagged conservatively.
    """
    if verdict.verdict is HazardVerdictKind.GLITCH_POSSIBLE:
        return True
    if verdict.verdict is HazardVerdictKind.GLITCH_PROVEN:
        return not verdict.delay_safe
    return False


class ExactHazardChecker:
    """Three-way exact hazard classifier over a shared 2-frame expansion.

    The two path-search bounds run first (they are cheap and decide the
    vast majority of pairs); only bounds-disagreeing or limit-hit pairs
    reach the SAT encoding, which is built lazily and then shared by
    every remaining pair through assumptions.
    """

    def __init__(
        self,
        circuit: Circuit,
        expansion: TimeFrameExpansion | None = None,
        *,
        backtrack_limit: int = 50,
        max_attempts: int = 5000,
        conflict_limit: int = 100_000,
        delays: GateDelays | None = None,
    ) -> None:
        self.circuit = circuit
        if expansion is None:
            expansion = expand_cached(circuit, frames=2)
        elif expansion.frames < 2:
            raise ValueError("the exact hazard check needs a 2-frame expansion")
        self.expansion = expansion
        self.conflict_limit = conflict_limit
        self.delays = delays
        self._sens = HazardChecker(
            circuit,
            SensitizationMode.STATIC_SENSITIZATION,
            backtrack_limit=backtrack_limit,
            max_attempts=max_attempts,
            expansion=expansion,
        )
        self._cosens = HazardChecker(
            circuit,
            SensitizationMode.STATIC_CO_SENSITIZATION,
            backtrack_limit=backtrack_limit,
            max_attempts=max_attempts,
            expansion=expansion,
        )
        self.counters: dict[str, int] = {key: 0 for key in COUNTER_KEYS}
        self._solver: CdclSolver | None = None
        self._encoding: CircuitEncoding | None = None
        self._rails: dict[int, Rail] = {}
        #: second-frame state entry node -> force-X selector variable
        self._force: dict[int, int] = {}
        self._x_of: dict[int, int] = {}
        #: (sequential node, second-frame copy) in topological order
        self._frame_gates: list[tuple[int, int]] = []

    # ------------------------------------------------------------------
    # Classification.
    # ------------------------------------------------------------------
    def check_pair(self, pair_result: PairResult) -> PairHazardVerdict:
        """Classify one multi-cycle pair as safe / possible / proven."""
        self.counters["checked"] += 1
        cases = HazardChecker._satisfiable_cases(pair_result)
        verdict = self._classify(pair_result, cases)
        self.counters[verdict.verdict.value.replace("-", "_")] += 1
        if verdict.delay_safe:
            self.counters["delay_filtered"] += 1
        return verdict

    def check_pairs(
        self, pair_results: Iterable[PairResult]
    ) -> list[PairHazardVerdict]:
        return [self.check_pair(p) for p in pair_results]

    def summary(self) -> dict[str, float | int]:
        """Counter snapshot plus the bench-gated resolution fraction."""
        summary: dict[str, float | int] = dict(self.counters)
        disagreement = self.counters["disagreement"]
        resolved = self.counters["resolved"]
        summary["resolution_fraction"] = (
            1.0 if disagreement == 0 else resolved / disagreement
        )
        return summary

    def _classify(
        self, pair_result: PairResult, cases: list[tuple[int, int]]
    ) -> PairHazardVerdict:
        pair = pair_result.pair
        if not cases:
            # Every premise contradicts: the source cannot toggle while
            # the sink holds, so there is no transition to glitch with.
            return PairHazardVerdict(pair, HazardVerdictKind.SAFE, "cases")
        sens = self._sens.check_pair(pair_result)
        proven = sens.has_potential_hazard and not sens.limited
        if not proven:
            cosens = self._cosens.check_pair(pair_result)
            if not cosens.has_potential_hazard:
                return PairHazardVerdict(
                    pair, HazardVerdictKind.SAFE, "cosensitize"
                )
        elif self.delays is None:
            # The lower bound proved the glitch and no delay filter needs
            # an input witness: done without touching the solver.
            return PairHazardVerdict(
                pair,
                HazardVerdictKind.GLITCH_PROVEN,
                "sensitize",
                witness_case=sens.witness_case,
            )
        disagreeing = not proven
        if disagreeing:
            self.counters["disagreement"] += 1
        case, witness, unknown = self._solve_pair(pair, cases)
        if witness is not None:
            if disagreeing:
                self.counters["resolved"] += 1
            delay_safe: bool | None = None
            if self.delays is not None:
                delay_safe = not self._survives_delays(pair, witness)
            return PairHazardVerdict(
                pair,
                HazardVerdictKind.GLITCH_PROVEN,
                "exact",
                witness_case=case,
                witness=witness,
                delay_safe=delay_safe,
            )
        if unknown:
            if proven:
                # Conflict limit hit, but the lower bound already proved
                # the glitch — only the delay-filter witness is missing.
                return PairHazardVerdict(
                    pair,
                    HazardVerdictKind.GLITCH_PROVEN,
                    "sensitize",
                    witness_case=sens.witness_case,
                )
            return PairHazardVerdict(
                pair, HazardVerdictKind.GLITCH_POSSIBLE, "exact"
            )
        if disagreeing:
            self.counters["resolved"] += 1
        return PairHazardVerdict(pair, HazardVerdictKind.SAFE, "exact")

    # ------------------------------------------------------------------
    # SAT decision.
    # ------------------------------------------------------------------
    def _solve_pair(
        self, pair: FFPair, cases: list[tuple[int, int]]
    ) -> tuple[tuple[int, int] | None, dict[int, int] | None, bool]:
        """Try every satisfiable case; returns (case, witness, unknown)."""
        self._ensure_encoding()
        solver = self._solver
        encoding = self._encoding
        assert solver is not None and encoding is not None
        expansion = self.expansion
        source = expansion.ff_index(pair.source)
        sink = expansion.ff_index(pair.sink)
        source_node = expansion.ff_at[1][source]
        target = expansion.ff_at[2][sink]
        ffi_t = expansion.ff_at[0][source]
        ffj_t1 = expansion.ff_at[1][sink]
        base = [
            selector if node == source_node else -selector
            for node, selector in self._force.items()
        ]
        base.append(self._x_lit(target))
        unknown = False
        for a, b in cases:
            assumptions = base + [
                encoding.lit(ffi_t, a),
                encoding.lit(source_node, 1 - a),
                encoding.lit(ffj_t1, b),
                encoding.lit(target, b),
            ]
            self.counters["sat_solves"] += 1
            status = solver.solve(assumptions, conflict_limit=self.conflict_limit)
            if status is SolveStatus.SAT:
                self.counters["sat"] += 1
                witness: dict[int, int] = {}
                for node in expansion.comb.inputs:
                    value = solver.model_value(encoding.var_of[node])
                    witness[node] = 0 if value is None else value
                return (a, b), witness, unknown
            if status is SolveStatus.UNKNOWN:
                self.counters["unknown"] += 1
                unknown = True
            else:
                self.counters["unsat"] += 1
        return None, None, unknown

    def _ensure_encoding(self) -> None:
        """Lazily build the shared binary + dual-rail encoding."""
        if self._solver is not None:
            return
        expansion = self.expansion
        circuit = self.circuit
        solver = CdclSolver()
        encoding = encode_circuit(expansion.comb, solver)
        rails = self._rails
        # Second-frame state entries settle at their binary value unless
        # the pair's force-X selector is assumed (the toggling source).
        for node in dict.fromkeys(expansion.ff_at[1]):
            selector = solver.new_var()
            value = encoding.lit(node, 1)
            rails[node] = (
                _or_var(solver, [selector, value]),
                _or_var(solver, [selector, -value]),
            )
            self._force[node] = selector
        # Second-frame primary inputs settle at their free binary value.
        for node in expansion.pi_at[1]:
            rails.setdefault(node, (encoding.lit(node, 1), encoding.lit(node, 0)))
        # Second-frame gate copies, in topological order.
        node_map = expansion.node_at[1]
        for node in circuit.topo_order():
            gate_type = circuit.types[node]
            if gate_type in (GateType.INPUT, GateType.DFF):
                continue
            copy = node_map[node]
            fanin_rails = [rails[node_map[f]] for f in circuit.fanins[node]]
            rails[copy] = self._gate_rail(
                solver, encoding, gate_type, copy, fanin_rails
            )
            self._frame_gates.append((node, copy))
        self._solver = solver
        self._encoding = encoding

    @staticmethod
    def _gate_rail(
        solver: CdclSolver,
        encoding: CircuitEncoding,
        gate_type: GateType,
        copy: int,
        fanins: list[Rail],
    ) -> Rail:
        """Dual-rail Kleene semantics of one gate (see module docstring)."""
        if gate_type in (GateType.CONST0, GateType.CONST1):
            return encoding.lit(copy, 1), encoding.lit(copy, 0)
        if gate_type in (GateType.BUF, GateType.OUTPUT):
            return fanins[0]
        if gate_type == GateType.NOT:
            p, q = fanins[0]
            return q, p
        if gate_type == GateType.AND:
            return (
                _and_var(solver, [p for p, _ in fanins]),
                _or_var(solver, [q for _, q in fanins]),
            )
        if gate_type == GateType.NAND:
            return (
                _or_var(solver, [q for _, q in fanins]),
                _and_var(solver, [p for p, _ in fanins]),
            )
        if gate_type == GateType.OR:
            return (
                _or_var(solver, [p for p, _ in fanins]),
                _and_var(solver, [q for _, q in fanins]),
            )
        if gate_type == GateType.NOR:
            return (
                _and_var(solver, [q for _, q in fanins]),
                _or_var(solver, [p for p, _ in fanins]),
            )
        if gate_type in (GateType.XOR, GateType.XNOR):
            rail = fanins[0]
            for operand in fanins[1:]:
                rail = _xor_rail(solver, rail, operand)
            if gate_type == GateType.XNOR:
                rail = (rail[1], rail[0])
            return rail
        if gate_type == GateType.MUX:
            (ps, qs), (p0, q0), (p1, q1) = fanins
            p = _or_var(
                solver,
                [_and_var(solver, [ps, p1]), _and_var(solver, [qs, p0])],
            )
            q = _or_var(
                solver,
                [_and_var(solver, [ps, q1]), _and_var(solver, [qs, q0])],
            )
            return p, q
        raise ValueError(f"unhandled gate type {gate_type}")

    def _x_lit(self, node: int) -> int:
        """Literal asserting node ``node`` evaluates to X (lazy per sink)."""
        cached = self._x_of.get(node)
        if cached is None:
            solver = self._solver
            assert solver is not None
            p, q = self._rails[node]
            cached = _and_var(solver, [p, q])
            self._x_of[node] = cached
        return cached

    # ------------------------------------------------------------------
    # Delay-annotated re-filter.
    # ------------------------------------------------------------------
    def _survives_delays(self, pair: FFPair, witness: dict[int, int]) -> bool:
        """Earliest/latest arrival sweep over the witness's X-set.

        The transition leaves the source's state entry at time 0; every
        X node accumulates ``min``/``max`` gate delays along its X
        fanins.  A pulse can only form at the sink when the latest
        arrival strictly exceeds the earliest — reconvergence with
        delay spread, per the classic static-hazard timing argument.
        """
        delays = self.delays
        assert delays is not None
        expansion = self.expansion
        comb = expansion.comb
        source_node = expansion.ff_at[1][expansion.ff_index(pair.source)]
        target = expansion.ff_at[2][expansion.ff_index(pair.sink)]
        full = ternary_eval(
            comb, {node: witness.get(node, 0) for node in comb.inputs}
        )
        # Second-frame ternary values: state entries pinned at their
        # settled value, the source's entry alone replaced by X.
        phase: dict[int, int] = {node: full[node] for node in self._force}
        phase[source_node] = X
        for node in expansion.pi_at[1]:
            phase.setdefault(node, full[node])
        earliest: dict[int, float] = {source_node: 0.0}
        latest: dict[int, float] = {source_node: 0.0}
        names = self.circuit.names
        node_map = expansion.node_at[1]
        for node, copy in self._frame_gates:
            gate_type = self.circuit.types[node]
            if gate_type == GateType.CONST0:
                phase[copy] = 0
                continue
            if gate_type == GateType.CONST1:
                phase[copy] = 1
                continue
            fanins = [node_map[f] for f in self.circuit.fanins[node]]
            phase[copy] = evaluate_gate(gate_type, [phase[f] for f in fanins])
            if phase[copy] != X:
                continue
            spread = [f for f in fanins if phase[f] == X and f in earliest]
            if not spread:
                continue
            interval = delays.interval(names[node])
            earliest[copy] = min(earliest[f] for f in spread) + interval.min
            latest[copy] = max(latest[f] for f in spread) + interval.max
        if target not in latest:
            return False
        return latest[target] > earliest[target]
