"""Compiled global implication database (the analysis layer's third pass).

:mod:`repro.atpg.learning` computes SOCRATES-style contrapositives with a
per-key cap and is rebuilt wherever a decision session wants one.  This
module lifts that knowledge to a *global database* built once per netlist
version and cached through ``Circuit.derived``:

1. **Probe** — for every non-constant node ``n`` and value ``v``, assume
   ``n = v`` on a fresh :class:`~repro.atpg.implication.ImplicationEngine`
   and record the local fixpoint.  Each derived ``m = w`` yields a direct
   edge ``(n,v) ⇒ (m,w)`` and the contrapositive ``(m,¬w) ⇒ (n,¬v)``; a
   *failed* assumption makes the literal impossible, encoded as the
   self-contradiction ``(n,v) ⇒ (n,¬v)``.
2. **Close** — the literal graph (2 literals per node) is condensed with
   Tarjan's SCC algorithm and transitively closed sinks-first using
   big-int bitsets, so indirect chains (direct through contrapositive
   through direct ...) become single hops.  A closure containing both
   polarities of any node marks the antecedent literal impossible.
3. **Compile** — per-literal consequent lists are filtered against the
   literal's own local fixpoint (an engine re-derives those for free, the
   SOCRATES criterion), sorted, and packed into CSR offset/flat arrays.

The resulting :class:`ImplicationDB` duck-types the engine's learned-table
protocol (``.get((node, value), default)`` + truthiness), so
:class:`~repro.atpg.implication.ImplicationEngine` consumes it unchanged
on its hot path, and it pickles as the two CSR arrays only — cheap to ship
to decision workers.  Soundness and node-reorder invariance are property
tested in ``tests/analysis/test_implication_db.py``.
"""

from __future__ import annotations

import time
from array import array
from typing import Iterator, Sequence

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit
from repro.logic.values import BINARY
from repro.atpg.implication import ImplicationEngine

#: :meth:`Circuit.derived` cache key for the database.
_DERIVED_KEY = "implication-db"


class ImplicationDB:
    """Transitively-closed global implication table in CSR form.

    Literals are packed as ``2 * node + value``.  ``offsets`` has
    ``2 * num_nodes + 1`` entries; the consequents of literal ``lit`` are
    ``flat[offsets[lit]:offsets[lit + 1]]``, sorted ascending.  The class
    implements the read side of the engine's ``LearnedTable`` protocol.
    """

    def __init__(
        self,
        num_nodes: int,
        offsets: array,
        flat: array,
        impossible: Sequence[int] = (),
        build_seconds: float = 0.0,
    ) -> None:
        self.num_nodes = num_nodes
        self.offsets = offsets
        self.flat = flat
        #: literals proven unsatisfiable (their lists self-contradict).
        self.impossible = tuple(impossible)
        #: wall-clock build time; 0.0 when rebuilt from a pickle.
        self.build_seconds = build_seconds
        self._table: dict[tuple[int, int], tuple[tuple[int, int], ...]] = {}
        for lit in range(2 * num_nodes):
            start, end = offsets[lit], offsets[lit + 1]
            if start == end:
                continue
            self._table[(lit >> 1, lit & 1)] = tuple(
                (c >> 1, c & 1) for c in flat[start:end]
            )

    # -- LearnedTable protocol (the engine's hot path) -----------------
    def get(
        self,
        key: tuple[int, int],
        default: Sequence[tuple[int, int]] = (),
    ) -> Sequence[tuple[int, int]]:
        return self._table.get(key, default)

    def __bool__(self) -> bool:
        return bool(self._table)

    def __contains__(self, key: tuple[int, int]) -> bool:
        return key in self._table

    def __len__(self) -> int:
        return len(self._table)

    def keys(self) -> Iterator[tuple[int, int]]:
        return iter(self._table)

    # -- introspection --------------------------------------------------
    @property
    def num_keys(self) -> int:
        return len(self._table)

    @property
    def num_edges(self) -> int:
        return len(self.flat)

    def consequents(self, node: int, value: int) -> tuple[tuple[int, int], ...]:
        """Every ``(m, w)`` the database implies from ``node = value``."""
        return self._table.get((node, value), ())

    def stats(self) -> dict[str, float | int]:
        """Summary block for results/reports/benchmarks."""
        return {
            "nodes": self.num_nodes,
            "keys": self.num_keys,
            "edges": self.num_edges,
            "impossible": len(self.impossible),
            "build_seconds": self.build_seconds,
        }

    def __reduce__(self):
        # Pickle the CSR arrays only; the key table is rebuilt on load.
        return (
            ImplicationDB,
            (self.num_nodes, self.offsets, self.flat, self.impossible,
             self.build_seconds),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ImplicationDB(nodes={self.num_nodes}, keys={self.num_keys}, "
            f"edges={self.num_edges}, impossible={len(self.impossible)})"
        )


def _tarjan_sccs(num_lits: int, edges: list[list[int]]) -> list[list[int]]:
    """Iterative Tarjan; SCCs are emitted sinks-first (reverse topo)."""
    index = [0] * num_lits
    low = [0] * num_lits
    on_stack = bytearray(num_lits)
    visited = bytearray(num_lits)
    stack: list[int] = []
    sccs: list[list[int]] = []
    counter = 1

    for root in range(num_lits):
        if visited[root]:
            continue
        work: list[tuple[int, int]] = [(root, 0)]
        while work:
            lit, pos = work[-1]
            if pos == 0:
                visited[lit] = 1
                index[lit] = low[lit] = counter
                counter += 1
                stack.append(lit)
                on_stack[lit] = 1
            succ = edges[lit]
            advanced = False
            while pos < len(succ):
                child = succ[pos]
                pos += 1
                if not visited[child]:
                    work[-1] = (lit, pos)
                    work.append((child, 0))
                    advanced = True
                    break
                if on_stack[child]:
                    low[lit] = min(low[lit], index[child])
            if advanced:
                continue
            work.pop()
            if low[lit] == index[lit]:
                component: list[int] = []
                while True:
                    member = stack.pop()
                    on_stack[member] = 0
                    component.append(member)
                    if member == lit:
                        break
                sccs.append(component)
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[lit])
    return sccs


def build_implication_db(
    circuit: Circuit,
    max_consequents_per_key: int | None = None,
) -> ImplicationDB:
    """Probe, close and compile the global implication database.

    ``max_consequents_per_key`` optionally truncates each literal's sorted
    consequent list (``None`` keeps the full closure); impossible literals
    always keep their single self-contradiction entry.
    """
    started = time.perf_counter()
    engine = ImplicationEngine(circuit)
    num_nodes = circuit.num_nodes
    num_lits = 2 * num_nodes

    # -- phase 1: probe every literal's local fixpoint ------------------
    edges: list[list[int]] = [[] for _ in range(num_lits)]
    fixpoints: list[frozenset[int]] = [frozenset()] * num_lits
    probe_impossible = bytearray(num_lits)
    const_types = (GateType.CONST0, GateType.CONST1)
    for node in range(num_nodes):
        if circuit.types[node] in const_types:
            continue
        for value in BINARY:
            lit = 2 * node + value
            mark = engine.checkpoint()
            before = engine.assignment.num_assigned()
            ok = engine.assume(node, value)
            if ok:
                derived = [
                    2 * m + w
                    for m, w in engine.assignment.assigned_since(before)
                    if m != node
                ]
                fixpoints[lit] = frozenset(derived)
                edges[lit].extend(derived)
                # Contrapositive: m = !w  =>  node = !value.
                for d in derived:
                    edges[d ^ 1].append(lit ^ 1)
            else:
                probe_impossible[lit] = 1
                edges[lit].append(lit ^ 1)
            engine.backtrack(mark)

    # -- phase 2: transitive closure over the literal graph -------------
    # Tarjan pops SCCs sinks-first, so each component's closure bitset can
    # union its successors' finished bitsets immediately.
    sccs = _tarjan_sccs(num_lits, edges)
    scc_of = [0] * num_lits
    for scc_id, component in enumerate(sccs):
        for lit in component:
            scc_of[lit] = scc_id
    closure_of_scc: list[int] = [0] * len(sccs)
    for scc_id, component in enumerate(sccs):
        bits = 0
        for lit in component:
            bits |= 1 << lit
            for child in edges[lit]:
                child_scc = scc_of[child]
                if child_scc != scc_id:
                    bits |= closure_of_scc[child_scc]
        closure_of_scc[scc_id] = bits

    # Both polarities of some node in a closure = contradiction; the mask
    # 0b...010101 pairs bit 2m with bit 2m+1.
    polarity_mask = (4 ** num_nodes - 1) // 3

    # -- phase 3: compile per-literal consequent lists ------------------
    offsets = array("i", [0] * (num_lits + 1))
    flat = array("i")
    impossible: list[int] = []
    for lit in range(num_lits):
        node = lit >> 1
        if circuit.types[node] in const_types:
            offsets[lit + 1] = len(flat)
            continue
        closure = closure_of_scc[scc_of[lit]] & ~(1 << lit)
        contradicted = bool(closure & (closure >> 1) & polarity_mask)
        if probe_impossible[lit] or (closure >> (lit ^ 1)) & 1 or contradicted:
            impossible.append(lit)
            flat.append(lit ^ 1)
            offsets[lit + 1] = len(flat)
            continue
        fixpoint = fixpoints[lit]
        consequents = [
            c for c in _iter_bits(closure) if c not in fixpoint
        ]
        if max_consequents_per_key is not None:
            consequents = consequents[:max_consequents_per_key]
        flat.extend(consequents)
        offsets[lit + 1] = len(flat)

    return ImplicationDB(
        num_nodes, offsets, flat, impossible,
        build_seconds=time.perf_counter() - started,
    )


def _iter_bits(bits: int) -> Iterator[int]:
    """Indices of set bits, ascending."""
    while bits:
        low = bits & -bits
        yield low.bit_length() - 1
        bits ^= low


def implication_db(circuit: Circuit) -> ImplicationDB:
    """The circuit's global implication DB (cached per netlist version).

    Persisted to the on-disk artifact store when one is active; the DB
    pickles as CSR arrays only, so warm runs skip the fixpoint probe and
    the transitive closure entirely (``build_seconds`` reads 0.0 then).
    """
    return circuit.derived(
        _DERIVED_KEY, build_implication_db, persist="implication-db"
    )
