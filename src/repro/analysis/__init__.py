"""Static netlist analysis: lint, constant sweep, global implication DB.

Three passes that run once per :class:`~repro.circuit.netlist.Circuit`
and cache their results through ``Circuit.derived``:

* :func:`lint` / :func:`lint_file` — collect *every* structural finding
  into a :class:`LintReport` (the ``repro lint`` subcommand and the
  pipeline's ``--lint {off,warn,strict}`` gate),
* :func:`sweep` / :func:`simplified` — constant propagation, duplicate
  detection and dead-logic analysis, annotate-or-simplify,
* :func:`implication_db` / :func:`build_implication_db` — the compiled
  global implication database consumed by the ATPG deciders.

A fourth, per-detection pass lives here too:
:class:`ExactHazardChecker` — the SAT-backed exact three-way hazard
classification behind ``--hazard-check exact`` (see ``docs/hazards.md``).

See ``docs/architecture.md`` ("The analysis layer") for pass ordering and
the annotate-vs-simplify contract.
"""

from repro.analysis.diagnostics import (
    Diagnostic,
    LintError,
    LintReport,
    Severity,
)
from repro.analysis.hazard_exact import ExactHazardChecker, verdict_flags_pair
from repro.analysis.implication_db import (
    ImplicationDB,
    build_implication_db,
    implication_db,
)
from repro.analysis.lint import LINT_MODES, LintWarning, enforce, lint, lint_file
from repro.analysis.sweep import SweepReport, simplified, sweep

__all__ = [
    "Diagnostic",
    "ExactHazardChecker",
    "ImplicationDB",
    "LINT_MODES",
    "LintError",
    "LintReport",
    "LintWarning",
    "Severity",
    "SweepReport",
    "build_implication_db",
    "enforce",
    "implication_db",
    "lint",
    "lint_file",
    "simplified",
    "sweep",
    "verdict_flags_pair",
]
