"""Sweep pass: constant propagation, dead logic and duplicate gates.

The pass runs three classic netlist reductions over the combinational part
of a circuit and reports them without touching the netlist (annotate):

* **constant propagation** — three-valued evaluation from the CONST0/CONST1
  sources through the combinational gates (DFF outputs stay ``X``: no
  assumption is made about reachable states),
* **structural hashing** — gates of the same type over the same (mapped)
  fanins compute the same function; each later duplicate is recorded
  against its earliest topological representative,
* **dead logic** — combinational gates whose output can reach no primary
  output and no flip-flop D input.

:func:`sweep` only *annotates* — it returns a cached
:class:`SweepReport` and never rewrites the circuit, so every verdict
downstream of a plain report is unaffected.  :func:`simplified` is the
explicit opt-in rewrite: it builds a fresh circuit with constants folded,
duplicates merged and dead gates dropped, preserving the PI/PO/DFF
interface by name — the differential tests prove the result is
simulation-equivalent on :class:`~repro.logic.bitsim.BitSimulator`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.gates import COMBINATIONAL_TYPES, GateType
from repro.circuit.netlist import Circuit, validate
from repro.circuit.structhash import COMMUTATIVE as _COMMUTATIVE
from repro.logic.simulator import evaluate_gate
from repro.logic.values import BINARY, ONE, X, ZERO

#: :meth:`Circuit.derived` cache key for the sweep report.
_DERIVED_KEY = "sweep-report"

#: Types the sweep may fold or drop.  OUTPUT nodes are combinational but
#: part of the circuit interface, so they are annotated only.
_SWEEPABLE = COMBINATIONAL_TYPES - {GateType.OUTPUT}


@dataclass(frozen=True)
class SweepReport:
    """What the sweep pass would remove from one circuit.

    All three sets name nodes of the *original* circuit; they may overlap
    (a constant gate that nothing reads is both constant and dead).
    """

    name: str
    #: combinational gate name -> proven constant value (0/1).  OUTPUT
    #: nodes with a constant driver are included for reporting.
    constants: dict[str, int]
    #: duplicate gate name -> name of its structural representative.
    equivalences: dict[str, str]
    #: combinational gates reaching no OUTPUT and no DFF D input.
    dead: tuple[str, ...]
    #: distinct internal gates :func:`simplified` can eliminate (the three
    #: sets above may overlap, and OUTPUT nodes are never removed).
    num_removable: int

    def format(self) -> str:
        """Multi-line human-readable rendering, header included."""
        lines = [
            f"{self.name}: {len(self.constants)} constant, "
            f"{len(self.equivalences)} duplicate, {len(self.dead)} dead"
        ]
        lines.extend(
            f"  constant {name} = {value}"
            for name, value in self.constants.items()
        )
        lines.extend(
            f"  duplicate {name} == {rep}"
            for name, rep in self.equivalences.items()
        )
        lines.extend(f"  dead {name}" for name in self.dead)
        return "\n".join(lines)


def _const_values(circuit: Circuit) -> list[int]:
    """Three-valued fixpoint from the constant sources (DFF/PI are X)."""
    values = [X] * circuit.num_nodes
    for node_id in circuit.ids_of_type(GateType.CONST0):
        values[node_id] = ZERO
    for node_id in circuit.ids_of_type(GateType.CONST1):
        values[node_id] = ONE
    for node_id in circuit.topo_order():
        if circuit.types[node_id] in COMBINATIONAL_TYPES:
            values[node_id] = evaluate_gate(
                circuit.types[node_id],
                [values[f] for f in circuit.fanins[node_id]],
            )
    return values


def _analyze(circuit: Circuit) -> tuple[list[int], dict[int, int], set[int]]:
    """Core sweep analysis over node ids.

    Returns ``(values, rep, live)``: the constant-propagation values, the
    duplicate -> representative map, and the set of live node ids.
    """
    values = _const_values(circuit)

    # Structural hashing.  A fanin is keyed by its representative, or by a
    # negative sentinel (-1/-2) once it is a proven constant, so chains of
    # duplicates and constant-fed duplicates still collide.
    def fanin_key(fanin: int) -> int:
        if values[fanin] in BINARY and circuit.types[fanin] != GateType.DFF:
            return -1 - values[fanin]
        return rep.get(fanin, fanin)

    rep: dict[int, int] = {}
    seen: dict[tuple[GateType, tuple[int, ...]], int] = {}
    for node_id in circuit.topo_order():
        gate_type = circuit.types[node_id]
        if gate_type not in _SWEEPABLE or values[node_id] in BINARY:
            continue
        mapped = tuple(fanin_key(f) for f in circuit.fanins[node_id])
        if gate_type in _COMMUTATIVE:
            mapped = tuple(sorted(mapped))
        key = (gate_type, mapped)
        if key in seen:
            rep[node_id] = seen[key]
        else:
            seen[key] = node_id

    # transitive_fanin stops at DFFs (they are sources), so the D-input
    # cones must be rooted explicitly.
    roots = list(circuit.outputs) + [
        circuit.fanins[d][0] for d in circuit.dffs if circuit.fanins[d]
    ]
    live = circuit.transitive_fanin(roots)
    return values, rep, live


def _build(circuit: Circuit) -> SweepReport:
    values, rep, live = _analyze(circuit)
    names = circuit.names
    constants = {
        names[n]: values[n]
        for n in range(circuit.num_nodes)
        if values[n] in BINARY and circuit.types[n] in COMBINATIONAL_TYPES
    }
    equivalences = {names[dup]: names[r] for dup, r in rep.items()}
    dead = tuple(
        names[n]
        for n in range(circuit.num_nodes)
        if n not in live and circuit.types[n] in _SWEEPABLE
    )
    removable = {
        n for n in range(circuit.num_nodes)
        if circuit.types[n] in _SWEEPABLE
        and (values[n] in BINARY or n in rep or n not in live)
    }
    return SweepReport(
        circuit.name, constants, equivalences, dead, len(removable)
    )


def sweep(circuit: Circuit) -> SweepReport:
    """The circuit's sweep report (cached; persisted when a store is on).

    The report embeds node names, so the cache entry is name-scoped and
    the store address includes the name table.
    """
    return circuit.derived(
        _DERIVED_KEY, _build, scope="names", persist="sweep-report"
    )


def _fresh_name(circuit: Circuit, base: str) -> str:
    name = base
    while name in circuit:
        name += "_"
    return name


def simplified(circuit: Circuit, name: str | None = None) -> Circuit:
    """Build the swept circuit: fold constants, merge duplicates, drop dead.

    The PI/PO/DFF interface is preserved exactly (same names, same creation
    order), so the result is simulation-equivalent to the input for every
    initial state and input sequence; only unreachable/duplicate internal
    gates disappear.  The input circuit is never modified.
    """
    values, rep, _live = _analyze(circuit)

    def resolve(node_id: int) -> int | tuple[str, int]:
        # -> surviving old node id, or ("const", value) for folded gates.
        while True:
            if (values[node_id] in BINARY
                    and circuit.types[node_id] in _SWEEPABLE):
                return ("const", values[node_id])
            if circuit.types[node_id] in (GateType.CONST0, GateType.CONST1):
                return ("const", ZERO if circuit.types[node_id] == GateType.CONST0 else ONE)
            if node_id in rep:
                node_id = rep[node_id]
                continue
            return node_id

    # Mark every old node the interface transitively needs, walking the
    # *resolved* fanin graph so dropped gates pull nothing in.
    needed: set[int] = set()
    need_const = [False, False]
    stack: list[int] = (
        list(circuit.inputs) + list(circuit.dffs) + list(circuit.outputs)
    )
    while stack:
        node_id = stack.pop()
        if node_id in needed:
            continue
        needed.add(node_id)
        for fanin in circuit.fanins[node_id]:
            target = resolve(fanin)
            if isinstance(target, tuple):
                need_const[target[1]] = True
            elif target not in needed:
                stack.append(target)

    result = Circuit(name or circuit.name)
    new_id: dict[int, int] = {}
    const_ids: list[int | None] = [None, None]
    for value in (ZERO, ONE):
        if need_const[value]:
            gate_type = GateType.CONST0 if value == ZERO else GateType.CONST1
            const_name = _fresh_name(result, f"sweep_const{value}")
            const_ids[value] = result.add_node(gate_type, (), const_name)

    def mapped(old_fanin: int) -> int:
        target = resolve(old_fanin)
        if isinstance(target, tuple):
            const_id = const_ids[target[1]]
            assert const_id is not None
            return const_id
        return new_id[target]

    # DFFs may feed gates above them in id order, so create every needed
    # node first and wire fanins in a second pass (mirrors the reader).
    order = [n for n in range(circuit.num_nodes) if n in needed]
    for node_id in order:
        new_id[node_id] = result.add_node(
            circuit.types[node_id], (), circuit.names[node_id]
        )
    for node_id in order:
        result.set_fanins(
            new_id[node_id],
            tuple(mapped(f) for f in circuit.fanins[node_id]),
        )
    validate(result)
    return result
