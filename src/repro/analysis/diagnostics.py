"""Structured diagnostics for the static netlist-analysis passes.

A :class:`Diagnostic` is one finding — a structural violation, a
suspicious-but-legal construct, or an informational note — with a stable
machine-readable ``code``, a :class:`Severity`, the node names involved
and (for reader-level findings) the source file/line it came from.  The
lint pass (:mod:`repro.analysis.lint`) collects *all* of them instead of
stopping at the first error, and a :class:`LintReport` carries the full
set plus the policy helpers the pipeline's ``--lint {off,warn,strict}``
flag is built on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum

from repro.circuit.netlist import CircuitError


class Severity(IntEnum):
    """Diagnostic severity, ordered so comparisons read naturally."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a static-analysis pass."""

    #: stable machine-readable tag (``"comb-cycle"``, ``"dangling-gate"``,
    #: ``"parse-error"``, ...).
    code: str
    severity: Severity
    message: str
    #: names of the nodes involved (for ``comb-cycle`` the full path).
    nodes: tuple[str, ...] = ()
    #: source file the finding refers to (reader-level diagnostics).
    file: str | None = None
    #: 1-based source line, when known.
    line: int | None = None

    def format(self) -> str:
        """Render as ``[file:line: ]SEVERITY code: message``."""
        prefix = ""
        if self.file is not None:
            prefix = self.file
            if self.line is not None:
                prefix += f":{self.line}"
            prefix += ": "
        return f"{prefix}{self.severity} {self.code}: {self.message}"


class LintError(CircuitError):
    """Raised when lint policy rejects a circuit; carries the full report.

    Subclasses :class:`~repro.circuit.netlist.CircuitError` so callers
    that guarded ``validate`` keep working when lint gates the pipeline.
    """

    def __init__(self, report: "LintReport", message: str) -> None:
        super().__init__(message)
        self.report = report


@dataclass
class LintReport:
    """Every diagnostic the lint pass found for one circuit or file."""

    name: str
    diagnostics: list[Diagnostic] = field(default_factory=list)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def infos(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.INFO]

    def by_code(self, code: str) -> list[Diagnostic]:
        """All diagnostics carrying ``code``."""
        return [d for d in self.diagnostics if d.code == code]

    def codes(self) -> set[str]:
        return {d.code for d in self.diagnostics}

    def ok(self, strict: bool = False) -> bool:
        """Clean under the given policy?

        Default policy passes with warnings/infos; ``strict`` additionally
        rejects warnings (infos never fail).
        """
        threshold = Severity.WARNING if strict else Severity.ERROR
        return all(d.severity < threshold for d in self.diagnostics)

    def format(self) -> str:
        """Multi-line human-readable rendering, header included."""
        count = len(self.diagnostics)
        noun = "diagnostic" if count == 1 else "diagnostics"
        lines = [f"{self.name}: {count} {noun}"]
        lines.extend(f"  {d.format()}" for d in self.diagnostics)
        return "\n".join(lines)
