"""The benchmark suite: a size ladder echoing the paper's Table 1.

Each entry is a synthetic stand-in for an ISCAS89 circuit of comparable
scale (see DESIGN.md for why the originals cannot be shipped).  Names carry
the approximate gate count.  ``suite("small")`` is the default for tests
and quick benchmark runs; ``suite("full")`` adds the large entries used for
the headline Table 1 reproduction.
"""

from __future__ import annotations

from repro.circuit.netlist import Circuit
from repro.circuit.library import fig1_circuit, s27
from repro.bench_gen.synth import CircuitSpec, generate

#: Specs in increasing size; tuples of (profile levels that include them).
_SPECS: list[tuple[CircuitSpec, tuple[str, ...]]] = [
    (CircuitSpec("syn040", num_inputs=3, counter_width=2, num_banks=3,
                 bank_width=3, logic_per_bank=8, spacing=2,
                 plain_registers=3, shift_tail=3, seed=11), ("tiny", "small", "full")),
    (CircuitSpec("syn090", num_inputs=4, counter_width=3, num_banks=4,
                 bank_width=4, logic_per_bank=12, spacing=2,
                 plain_registers=5, shift_tail=5, seed=23), ("tiny", "small", "full")),
    (CircuitSpec("syn170", num_inputs=5, counter_width=3, num_banks=5,
                 bank_width=6, logic_per_bank=16, spacing=2,
                 plain_registers=8, shift_tail=8, hard_enables=True, seed=37), ("small", "full")),
    (CircuitSpec("syn330", num_inputs=6, counter_width=4, num_banks=6,
                 bank_width=8, logic_per_bank=24, spacing=3,
                 plain_registers=12, shift_tail=12, hard_enables=True, seed=41), ("small", "full")),
    (CircuitSpec("syn700", num_inputs=8, counter_width=4, num_banks=8,
                 bank_width=10, logic_per_bank=40, spacing=2,
                 plain_registers=20, shift_tail=16, hard_enables=True, seed=53), ("medium", "full")),
    (CircuitSpec("syn1500", num_inputs=10, counter_width=5, num_banks=10,
                 bank_width=14, logic_per_bank=70, spacing=3,
                 plain_registers=30, shift_tail=24, hard_enables=True, seed=67), ("medium", "full")),
    (CircuitSpec("syn3000", num_inputs=12, counter_width=5, num_banks=12,
                 bank_width=20, logic_per_bank=120, spacing=3,
                 plain_registers=40, shift_tail=32, hard_enables=True, seed=79), ("large", "full")),
    (CircuitSpec("syn6000", num_inputs=16, counter_width=6, num_banks=14,
                 bank_width=28, logic_per_bank=220, spacing=3,
                 plain_registers=60, shift_tail=48, hard_enables=True, seed=97), ("large", "full")),
]

#: The streaming-scale ladder (10k–100k gates, hundreds to thousands of
#: FFs): the memory/wall-time curve circuits of the ``scale`` bench tier
#: and the RSS-capped CI smoke.  Deliberately *not* part of the profile
#: suites — a 100k-gate circuit in ``suite("full")`` would drag every
#: experiment, while the scale runner only needs one circuit per process
#: (``spec_by_name`` + :func:`~repro.bench_gen.synth.generate`).  The
#: ``plain_registers`` counts stay small on purpose: always-loading
#: registers observe every bank, so they contribute ``num_ffs × plain``
#: connected pairs — dense pair growth belongs to the profile ladder,
#: the scale ladder grows *circuit* size at a decidable pair count.
SCALE_SPECS: list[CircuitSpec] = [
    CircuitSpec("syn12000", num_inputs=12, counter_width=5, num_banks=16,
                bank_width=36, logic_per_bank=640, spacing=3,
                plain_registers=10, shift_tail=40, hard_enables=True, seed=101),
    CircuitSpec("syn20000", num_inputs=14, counter_width=5, num_banks=18,
                bank_width=44, logic_per_bank=900, spacing=3,
                plain_registers=12, shift_tail=60, hard_enables=True, seed=113),
    CircuitSpec("syn50000", num_inputs=16, counter_width=6, num_banks=28,
                bank_width=72, logic_per_bank=1700, spacing=3,
                plain_registers=14, shift_tail=80, hard_enables=True, seed=127),
    CircuitSpec("syn100000", num_inputs=20, counter_width=6, num_banks=36,
                bank_width=84, logic_per_bank=2500, spacing=3,
                plain_registers=16, shift_tail=100, hard_enables=True, seed=131),
]

PROFILES = ("tiny", "small", "medium", "large", "full")


def suite(profile: str = "small") -> list[Circuit]:
    """Benchmark circuits of the given profile, smallest first.

    Profiles are cumulative by construction: every circuit tagged for a
    smaller profile that is also tagged ``full`` appears in ``full``.  The
    embedded real circuits (s27 and the paper's Fig. 1) lead every profile.
    """
    if profile not in PROFILES:
        raise ValueError(f"unknown profile {profile!r}; choose from {PROFILES}")
    circuits: list[Circuit] = [s27(), fig1_circuit()]
    if profile == "full":
        wanted = [spec for spec, _tags in _SPECS]
    else:
        wanted = [spec for spec, tags in _SPECS if profile in tags]
    circuits.extend(generate(spec) for spec in wanted)
    return circuits


def spec_by_name(name: str) -> CircuitSpec:
    """Look up a suite or scale-ladder spec by name (raises ``KeyError``)."""
    for spec, _tags in _SPECS:
        if spec.name == name:
            return spec
    for spec in SCALE_SPECS:
        if spec.name == name:
            return spec
    raise KeyError(name)


def scale_specs() -> list[CircuitSpec]:
    """The streaming-scale ladder (10k–100k gates), smallest first."""
    return list(SCALE_SPECS)


def all_specs() -> list[CircuitSpec]:
    """Every synthetic spec of the ladder, smallest first."""
    return [spec for spec, _tags in _SPECS]
