"""Structural building blocks for the synthetic benchmark generator.

The ISCAS89 suite the paper evaluates on is not redistributable, so
:mod:`repro.bench_gen` synthesises circuits from the ingredients that make
multi-cycle paths arise in real designs (see DESIGN.md "Substitutions"):

* free-running counters,
* decoded load-enable signals,
* enable-gated (MUX-hold) register banks,
* always-loading registers,
* random combinational logic clouds between banks.

Every block takes a :class:`~repro.circuit.builder.CircuitBuilder` plus a
``random.Random`` where needed, and returns the signal/FF ids it created.
"""

from __future__ import annotations

import random

from repro.circuit.builder import CircuitBuilder


def add_counter(builder: CircuitBuilder, width: int, prefix: str) -> list[int]:
    """Free-running binary up-counter; returns its FF ids (LSB first)."""
    bits = [builder.dff(f"{prefix}_q{i}") for i in range(width)]
    carry = builder.const1(f"{prefix}_cin")
    for i, bit in enumerate(bits):
        builder.drive(bit, builder.xor(bit, carry, name=f"{prefix}_n{i}"))
        if i < width - 1:
            carry = builder.and_(bit, carry, name=f"{prefix}_c{i}")
    return bits


def add_decoder(
    builder: CircuitBuilder, counter_bits: list[int], value: int, prefix: str
) -> int:
    """AND-decode of ``counter == value``; returns the enable signal."""
    literals = []
    for i, bit in enumerate(counter_bits):
        if (value >> i) & 1:
            literals.append(bit)
        else:
            literals.append(builder.not_(bit, name=f"{prefix}_n{i}"))
    if len(literals) == 1:
        return builder.buf(literals[0], name=prefix)
    return builder.and_(*literals, name=prefix)


def add_msb_decoder(
    builder: CircuitBuilder, counter_bits: list[int], prefix: str
) -> int:
    """Enable that is simply the counter's MSB (a *partial* state decode).

    Registers gated this way load during half the counter period.  A
    toggle at such a register tells the implication engine only that the
    MSB was 1 at launch time — the successor state stays partially
    unknown, so proving a downstream exact-decoded bank untouched requires
    the ATPG backtrack search (carry-chain case analysis), not just local
    implications.  This is the ingredient that populates the ATPG column
    of Table 2.
    """
    return builder.buf(counter_bits[-1], name=prefix)


def add_random_logic(
    builder: CircuitBuilder,
    inputs: list[int],
    num_gates: int,
    rng: random.Random,
    prefix: str,
    num_outputs: int | None = None,
) -> list[int]:
    """Random combinational DAG over ``inputs``; returns output signals.

    Gates draw fanins from earlier signals (inputs plus already-created
    gates), biased toward recent ones so depth grows with size.  Inverting
    and non-inverting gate types are mixed to keep the logic unbiased.
    """
    if not inputs:
        raise ValueError("random logic needs at least one input signal")
    pool = list(inputs)
    makers = ["and", "or", "nand", "nor", "xor", "not"]
    for g in range(num_gates):
        kind = rng.choice(makers)
        name = f"{prefix}_g{g}"
        if kind == "not" or len(pool) == 1:
            node = builder.not_(rng.choice(pool), name=name)
        else:
            span = max(2, len(pool) // 2)
            a = pool[rng.randrange(max(0, len(pool) - span), len(pool))]
            b = pool[rng.randrange(len(pool))]
            if kind == "and":
                node = builder.and_(a, b, name=name)
            elif kind == "or":
                node = builder.or_(a, b, name=name)
            elif kind == "nand":
                node = builder.nand(a, b, name=name)
            elif kind == "nor":
                node = builder.nor(a, b, name=name)
            else:
                node = builder.xor(a, b, name=name)
        pool.append(node)
    count = num_outputs if num_outputs is not None else min(len(pool), 8)
    return pool[-count:]


def add_enabled_bank(
    builder: CircuitBuilder,
    enable: int,
    data: list[int],
    prefix: str,
) -> list[int]:
    """Bank of MUX-hold registers loading ``data`` when ``enable`` is high."""
    return [
        builder.enabled_dff(f"{prefix}_r{i}", enable, signal)
        for i, signal in enumerate(data)
    ]


def add_plain_bank(
    builder: CircuitBuilder, data: list[int], prefix: str
) -> list[int]:
    """Bank of always-loading registers (a rich source of 1-cycle pairs)."""
    return [
        builder.dff(f"{prefix}_r{i}", d=signal) for i, signal in enumerate(data)
    ]
