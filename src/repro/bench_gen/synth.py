"""Synthetic ISCAS89-like sequential circuit generator.

One :class:`CircuitSpec` describes a design in the style the paper's
benchmarks exhibit: a control part (free-running counter + decoded
load enables) steering a datapath of register banks joined by random logic
clouds, plus always-loading pipeline registers and primary outputs.

Multi-cycle FF pairs arise between banks whose decoded load states are more
than one counter step apart (exactly the paper's Fig. 1 mechanism scaled
up); single-cycle pairs come from the always-loading registers, the counter
itself and adjacent-state banks.  Generation is deterministic per
``(spec, seed)``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.circuit.builder import CircuitBuilder
from repro.circuit.netlist import Circuit
from repro.bench_gen.blocks import (
    add_counter,
    add_decoder,
    add_enabled_bank,
    add_msb_decoder,
    add_plain_bank,
    add_random_logic,
)


@dataclass(frozen=True)
class CircuitSpec:
    """Parameters of one synthetic benchmark circuit."""

    name: str
    num_inputs: int = 4
    counter_width: int = 3
    num_banks: int = 4
    bank_width: int = 4
    #: random gates in the cloud between consecutive banks
    logic_per_bank: int = 16
    #: counter steps between consecutive banks' load states (>= 2 yields
    #: multi-cycle pairs between them; 1 yields single-cycle pairs)
    spacing: int = 2
    #: always-loading registers appended after the last bank
    plain_registers: int = 4
    #: length of an always-shifting register chain (pure 1-cycle pairs)
    shift_tail: int = 0
    #: give every second bank a partial (MSB-only) load decode; the pairs
    #: into the following exact-decoded bank then need the ATPG search
    hard_enables: bool = False
    seed: int = 1

    def __post_init__(self) -> None:
        if self.num_banks < 1 or self.bank_width < 1:
            raise ValueError("need at least one bank register")
        if self.counter_width < 1:
            raise ValueError("counter_width must be >= 1")
        if self.num_inputs < 1:
            raise ValueError("need at least one primary input")


def generate(spec: CircuitSpec) -> Circuit:
    """Build the circuit described by ``spec`` (deterministic)."""
    rng = random.Random(spec.seed)
    builder = CircuitBuilder(spec.name)

    inputs = [builder.input(f"pi{i}") for i in range(spec.num_inputs)]
    counter = add_counter(builder, spec.counter_width, "cnt")
    modulus = 1 << spec.counter_width

    banks: list[list[int]] = []
    previous_data = inputs
    for bank_index in range(spec.num_banks):
        if spec.hard_enables and bank_index % 2 == 0:
            # Partial decode: load whenever the counter MSB is 1.  The
            # next (exact-decoded) bank must target a state outside the
            # one-step successors of that half-range, i.e. a value in
            # [1, modulus/2 - 1].
            enable = add_msb_decoder(builder, counter, f"en{bank_index}")
        else:
            decode_value = (bank_index * spec.spacing) % modulus
            if spec.hard_enables:
                span = max(1, modulus // 2 - 1)
                decode_value = 1 + (bank_index * spec.spacing) % span
            enable = add_decoder(builder, counter, decode_value, f"en{bank_index}")
        cloud = add_random_logic(
            builder,
            previous_data,
            spec.logic_per_bank,
            rng,
            f"cl{bank_index}",
            num_outputs=spec.bank_width,
        )
        bank = add_enabled_bank(builder, enable, cloud, f"b{bank_index}")
        banks.append(bank)
        # The next cloud reads this bank plus a stirring primary input.
        previous_data = bank + [rng.choice(inputs)]

    if spec.plain_registers:
        # Always-loading registers observing every bank: a dense source of
        # single-cycle pairs for the random-simulation stage to drop.
        sources = [ff for bank in banks for ff in bank] + counter
        cloud = add_random_logic(
            builder,
            sources,
            max(spec.plain_registers, spec.logic_per_bank // 2),
            rng,
            "clp",
            num_outputs=spec.plain_registers,
        )
        plain = add_plain_bank(builder, cloud, "p")
    else:
        plain = []

    tail: list[int] = []
    if spec.shift_tail:
        head = plain[0] if plain else banks[-1][0]
        previous = head
        for index in range(spec.shift_tail):
            stage = builder.dff(f"sh{index}", d=previous)
            tail.append(stage)
            previous = stage

    observers = banks[-1] + plain + tail
    for index, signal in enumerate(observers[: max(1, len(observers) // 2)]):
        builder.output(f"po{index}", signal)
    return builder.build()


@dataclass
class GeneratedCircuit:
    """A spec together with its realised circuit (for suite reports)."""

    spec: CircuitSpec
    circuit: Circuit = field(init=False)

    def __post_init__(self) -> None:
        self.circuit = generate(self.spec)
