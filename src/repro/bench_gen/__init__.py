"""Subpackage repro.bench_gen."""
