"""Stuck-at fault test generation (the classic ATPG the paper builds on).

The paper's detector is "based on ATPG techniques"; this module provides
the canonical such workload — single stuck-at fault test generation — on
top of the same implication engine and justification search, both as a
substrate demonstration and as an extra correctness cross-check (redundant
faults are UNSAT instances, exactly the "likely redundant target" regime
§4.5 discusses).

Faults are injected under the full-scan assumption: the circuit's state is
controllable/observable, so test generation runs on the 1-frame expansion
with flip-flop outputs as pseudo-inputs and D-inputs as pseudo-outputs.
For each fault the fanout cone of the fault site is duplicated with the
site tied to the stuck value; a test exists iff some observation point of
the good and faulty cones can differ, decided by the justification search.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from enum import Enum

from repro.circuit.gates import COMBINATIONAL_TYPES, GateType
from repro.circuit.netlist import Circuit
from repro.circuit.timeframe import TimeFrameExpansion, expand
from repro.logic.values import ONE, X, ZERO
from repro.atpg.implication import ImplicationEngine
from repro.atpg.justify import SearchStatus, justify


@dataclass(frozen=True)
class Fault:
    """Single stuck-at fault on a node's output (sequential-circuit node)."""

    node: int
    stuck_value: int

    def name(self, circuit: Circuit) -> str:
        return f"{circuit.names[self.node]}/SA{self.stuck_value}"


class FaultStatus(Enum):
    """Outcome of test generation for one fault."""

    DETECTED = "detected"
    REDUNDANT = "redundant"
    ABORTED = "aborted"


@dataclass
class FaultResult:
    fault: Fault
    status: FaultStatus
    #: test pattern keyed by the expansion's free-input node ids
    #: (``expansion.ff_at[0]`` state bits and ``expansion.pi_at[0]`` inputs)
    pattern: dict[int, int] | None = None


@dataclass
class AtpgReport:
    circuit: Circuit
    results: list[FaultResult]
    total_seconds: float

    @property
    def detected(self) -> list[FaultResult]:
        return [r for r in self.results if r.status is FaultStatus.DETECTED]

    @property
    def redundant(self) -> list[FaultResult]:
        return [r for r in self.results if r.status is FaultStatus.REDUNDANT]

    @property
    def aborted(self) -> list[FaultResult]:
        return [r for r in self.results if r.status is FaultStatus.ABORTED]

    @property
    def coverage(self) -> float:
        """Detected / testable (the usual fault-coverage definition)."""
        testable = len(self.results) - len(self.redundant)
        if testable == 0:
            return 1.0
        return len(self.detected) / testable


def enumerate_faults(circuit: Circuit) -> list[Fault]:
    """Both stuck-at faults on every PI, FF output and gate output."""
    sites = [
        n
        for n in range(circuit.num_nodes)
        if circuit.types[n] not in (GateType.OUTPUT, GateType.CONST0,
                                    GateType.CONST1)
    ]
    return [Fault(node, v) for node in sites for v in (ZERO, ONE)]


def build_fault_miter(
    comb: Circuit,
    site: int,
    stuck_value: int,
    observe: list[int],
) -> tuple[Circuit, int]:
    """Good circuit + faulty fanout cone of ``site`` + OR of observation XORs.

    Shared by the stuck-at and transition-fault generators.  Returns the
    miter circuit and its output node; the output is constant 0 when the
    site reaches no observation point.
    """
    miter = comb.copy(f"{comb.name}_miter")
    cone = comb.transitive_fanout([site])
    dup: dict[int, int] = {}
    const_type = GateType.CONST1 if stuck_value == ONE else GateType.CONST0
    dup[site] = miter.add_node(const_type, (), f"{comb.names[site]}__flt")
    for node in comb.topo_order():
        if node not in cone or node == site:
            continue
        if comb.types[node] not in COMBINATIONAL_TYPES:
            continue
        fanins = tuple(dup.get(f, f) for f in comb.fanins[node])
        dup[node] = miter.add_node(
            comb.types[node], fanins, f"{comb.names[node]}__flt"
        )
    xors = []
    for observation in observe:
        faulty = dup.get(observation)
        if faulty is None:
            continue  # fault cannot reach this observation point
        xors.append(
            miter.add_node(
                GateType.XOR, (observation, faulty),
                f"{comb.names[observation]}__xor",
            )
        )
    if not xors:
        out = miter.add_node(GateType.CONST0, (), "__miter_const")
        return miter, out
    out = miter.add_node(GateType.OR, tuple(xors), "__miter")
    return miter, out


class StuckAtAtpg:
    """Per-fault test generation over a shared 1-frame expansion."""

    def __init__(self, circuit: Circuit, backtrack_limit: int = 200) -> None:
        self.circuit = circuit
        self.backtrack_limit = backtrack_limit
        self.expansion: TimeFrameExpansion = expand(circuit, frames=1)
        # Observation points: PO drivers and next-state nodes (full scan).
        comb = self.expansion.comb
        candidates = [comb.fanins[po][0] for po in comb.outputs]
        candidates.extend(self.expansion.ff_at[1])
        # Two FFs may share a D driver and a PO may observe it too: dedupe.
        self._observe = list(dict.fromkeys(candidates))

    def generate_test(self, fault: Fault) -> FaultResult:
        """Build the fault miter and search for a distinguishing pattern."""
        comb = self.expansion.comb
        site = self.expansion.node_at[0][fault.node]
        miter, out_node = build_fault_miter(
            comb, site, fault.stuck_value, self._observe
        )
        engine = ImplicationEngine(miter)
        if not engine.assume(out_node, ONE):
            return FaultResult(fault, FaultStatus.REDUNDANT)
        result = justify(engine, self.backtrack_limit)
        if result.status is SearchStatus.UNSAT:
            return FaultResult(fault, FaultStatus.REDUNDANT)
        if result.status is SearchStatus.ABORTED:
            return FaultResult(fault, FaultStatus.ABORTED)
        pattern: dict[int, int] = {}
        for node in comb.inputs:
            miter_node = miter.id_of(comb.names[node])
            value = result.witness.get(miter_node, X)
            pattern[node] = ZERO if value == X else value
        return FaultResult(fault, FaultStatus.DETECTED, pattern)

    def run(self, faults: list[Fault] | None = None) -> AtpgReport:
        started = time.perf_counter()
        if faults is None:
            faults = enumerate_faults(self.circuit)
        results = [self.generate_test(fault) for fault in faults]
        return AtpgReport(
            self.circuit, results, time.perf_counter() - started
        )


def run_atpg(circuit: Circuit, backtrack_limit: int = 200) -> AtpgReport:
    """Convenience wrapper: full-scan stuck-at ATPG over all faults."""
    return StuckAtAtpg(circuit, backtrack_limit).run()
