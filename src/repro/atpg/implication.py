"""The implication procedure at the core of the paper's method.

"As you can see, the MC condition is nothing but [an] implication relation.
Thus our method utilizes [the] implication procedure as much as possible"
(Section 4).  Given a partial assignment over a combinational circuit, the
procedure derives every *mandatory* value a gate-local analysis can find:

* forward — a controlling input fixes a gate's output; fully assigned
  inputs fix it too;
* backward — a non-controlled output forces all inputs non-controlling; a
  controlled output with a single unassigned input and no controlling input
  yet forces that input controlling; parity gates with one unknown input
  are solved; multiplexer select/data relations are propagated both ways.

A derived value clashing with an existing one is a *contradiction*, which
proves the assumed combination impossible — that single fact settles most
multi-cycle FF pairs (Table 2: more than 80 % of them fall to implication).

The engine additionally applies *learned* global implications
(:mod:`repro.atpg.learning`) whenever a node is assigned, and maintains the
set of *unjustified* gates that the backtrack search of
:mod:`repro.atpg.justify` branches on.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.circuit.gates import CONTROLLING, GateType
from repro.circuit.netlist import Circuit
from repro.logic.values import ONE, X, ZERO
from repro.atpg.assignment import Assignment

#: Learned-implication table type: ``(node, value) -> ((node, value), ...)``.
LearnedTable = Mapping[tuple[int, int], Sequence[tuple[int, int]]]


class ImplicationEngine:
    """Mandatory-assignment propagation over one combinational circuit.

    The engine is created once per expanded circuit and reused across all
    FF pairs; :meth:`checkpoint`/:meth:`backtrack` bracket each analysis.
    """

    def __init__(self, circuit: Circuit, learned: LearnedTable | None = None) -> None:
        self.circuit = circuit
        self.types = list(circuit.types)
        self.fanins = [tuple(f) for f in circuit.fanins]
        self.fanouts = [tuple(circuit.fanouts(n)) for n in range(circuit.num_nodes)]
        self.levels = circuit.levels()
        self.assignment = Assignment(circuit.num_nodes)
        self.learned = dict(learned) if learned else {}
        #: gates whose assigned output is not yet justified by their inputs
        self.unjustified: set[int] = set()
        self._queue: list[int] = []
        self._conflict = False
        for node in circuit.ids_of_type(GateType.CONST0):
            self.assignment.set(node, ZERO)
        for node in circuit.ids_of_type(GateType.CONST1):
            self.assignment.set(node, ONE)
        self._base_mark = self.assignment.checkpoint()

    # ------------------------------------------------------------------
    # Public interface.
    # ------------------------------------------------------------------
    def value(self, node: int) -> int:
        return self.assignment.values[node]

    def checkpoint(self) -> tuple[int, tuple[int, ...]]:
        """Snapshot for :meth:`backtrack` (trail mark + unjustified set)."""
        return self.assignment.checkpoint(), tuple(self.unjustified)

    def backtrack(self, mark: tuple[int, tuple[int, ...]]) -> None:
        trail_mark, unjustified = mark
        self.assignment.backtrack(trail_mark)
        self.unjustified = set(unjustified)
        self._queue.clear()
        self._conflict = False

    def assume(self, node: int, value: int) -> bool:
        """Assign ``node := value`` and run implications to a fixpoint.

        Returns ``False`` when the assumption contradicts the current
        assignment (directly or through implication); the caller is then
        expected to backtrack to its checkpoint.
        """
        if not self._post(node, value):
            return False
        return self._propagate()

    def assume_all(self, assignments: Iterable[tuple[int, int]]) -> bool:
        """Assume several assignments; stops at the first contradiction."""
        for node, value in assignments:
            if not self._post(node, value):
                return False
        return self._propagate()

    def reset(self) -> None:
        """Drop everything assumed since construction."""
        self.assignment.backtrack(self._base_mark)
        self.unjustified.clear()
        self._queue.clear()
        self._conflict = False

    # ------------------------------------------------------------------
    # Assignment + propagation internals.
    # ------------------------------------------------------------------
    def _post(self, node: int, value: int) -> bool:
        """Record an assignment and schedule affected gates."""
        current = self.assignment.values[node]
        if current != X:
            if current != value:
                self._conflict = True
                return False
            return True
        self.assignment.set(node, value)
        queue = self._queue
        queue.append(node)
        for fanout in self.fanouts[node]:
            queue.append(fanout)
        for other, other_value in self.learned.get((node, value), ()):
            if not self._post(other, other_value):
                return False
        return True

    def _propagate(self) -> bool:
        """Run gate-local implications until fixpoint or contradiction."""
        queue = self._queue
        while queue:
            gate = queue.pop()
            if not self._imply_gate(gate):
                queue.clear()
                self._conflict = True
                return False
        return True

    def _imply_gate(self, gate: int) -> bool:
        """(Re-)derive mandatory values around ``gate``; update J-status."""
        gate_type = self.types[gate]
        values = self.assignment.values
        fanins = self.fanins[gate]

        if gate_type in (GateType.INPUT, GateType.CONST0, GateType.CONST1,
                         GateType.DFF):
            return True

        if gate_type in (GateType.BUF, GateType.OUTPUT, GateType.NOT):
            invert = gate_type == GateType.NOT
            source = fanins[0]
            in_value = values[source]
            out_value = values[gate]
            ok = True
            if in_value != X:
                ok = self._post(gate, in_value ^ invert if in_value != X else X)
            elif out_value != X:
                ok = self._post(source, out_value ^ invert)
            self._update_justified(gate, justified=values[source] != X or values[gate] == X)
            return ok

        if gate_type in CONTROLLING:
            return self._imply_cgate(gate, gate_type, fanins)

        if gate_type in (GateType.XOR, GateType.XNOR):
            return self._imply_parity(gate, gate_type == GateType.XNOR, fanins)

        if gate_type == GateType.MUX:
            return self._imply_mux(gate, fanins)

        raise AssertionError(f"unhandled gate type {gate_type}")  # pragma: no cover

    def _imply_cgate(self, gate: int, gate_type: GateType, fanins: tuple[int, ...]) -> bool:
        """AND/NAND/OR/NOR implications via controlling-value reasoning."""
        controlling, inverted = CONTROLLING[gate_type]
        controlled_out = controlling ^ inverted
        noncontrolled_out = (1 - controlling) ^ inverted
        values = self.assignment.values

        num_x = 0
        has_controlling = False
        unknown = -1
        for fanin in fanins:
            value = values[fanin]
            if value == X:
                num_x += 1
                unknown = fanin
            elif value == controlling:
                has_controlling = True

        # Forward.
        if has_controlling:
            if not self._post(gate, controlled_out):
                return False
        elif num_x == 0:
            if not self._post(gate, noncontrolled_out):
                return False

        # Backward.
        out_value = values[gate]
        if out_value == noncontrolled_out:
            if has_controlling:
                return False
            for fanin in fanins:
                if values[fanin] == X and not self._post(fanin, 1 - controlling):
                    return False
            self._update_justified(gate, justified=True)
        elif out_value == controlled_out:
            if has_controlling:
                self._update_justified(gate, justified=True)
            elif num_x == 0:
                return False
            elif num_x == 1:
                if not self._post(unknown, controlling):
                    return False
                self._update_justified(gate, justified=True)
            else:
                self._update_justified(gate, justified=False)
        else:  # output still X
            self._update_justified(gate, justified=True)
        return True

    def _imply_parity(self, gate: int, inverted: bool, fanins: tuple[int, ...]) -> bool:
        """XOR/XNOR implications: solvable whenever at most one pin is X."""
        values = self.assignment.values
        parity = 1 if inverted else 0
        num_x = 0
        unknown = -1
        for fanin in fanins:
            value = values[fanin]
            if value == X:
                num_x += 1
                unknown = fanin
            else:
                parity ^= value

        if num_x == 0:
            self._update_justified(gate, justified=True)
            return self._post(gate, parity)

        out_value = values[gate]
        if out_value != X and num_x == 1:
            if not self._post(unknown, parity ^ out_value):
                return False
            self._update_justified(gate, justified=True)
        else:
            self._update_justified(gate, justified=out_value == X)
        return True

    def _imply_mux(self, gate: int, fanins: tuple[int, ...]) -> bool:
        """2:1 multiplexer implications (select, d0, d1)."""
        values = self.assignment.values
        select, d0, d1 = fanins

        sel_value = values[select]
        if sel_value != X:
            chosen = d1 if sel_value == ONE else d0
            chosen_value = values[chosen]
            out_value = values[gate]
            ok = True
            if chosen_value != X:
                ok = self._post(gate, chosen_value)
            elif out_value != X:
                ok = self._post(chosen, out_value)
            self._update_justified(
                gate, justified=values[chosen] != X or values[gate] == X
            )
            return ok

        d0_value = values[d0]
        d1_value = values[d1]
        if d0_value != X and d0_value == d1_value:
            if not self._post(gate, d0_value):
                return False
            self._update_justified(gate, justified=True)
            return True

        out_value = values[gate]
        if out_value != X:
            if d0_value != X and d0_value != out_value:
                if not self._post(select, ONE):
                    return False
                return self._imply_mux(gate, fanins)
            if d1_value != X and d1_value != out_value:
                if not self._post(select, ZERO):
                    return False
                return self._imply_mux(gate, fanins)
            self._update_justified(gate, justified=False)
        else:
            self._update_justified(gate, justified=True)
        return True

    def _update_justified(self, gate: int, justified: bool) -> None:
        if justified:
            self.unjustified.discard(gate)
        else:
            self.unjustified.add(gate)

    # ------------------------------------------------------------------
    # Introspection helpers (tests, examples, the Fig. 2 walkthrough).
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, int]:
        """Current non-X values keyed by node name."""
        return {
            self.circuit.names[n]: v
            for n, v in enumerate(self.assignment.values)
            if v != X
        }
