"""The implication procedure at the core of the paper's method.

"As you can see, the MC condition is nothing but [an] implication relation.
Thus our method utilizes [the] implication procedure as much as possible"
(Section 4).  Given a partial assignment over a combinational circuit, the
procedure derives every *mandatory* value a gate-local analysis can find:

* forward — a controlling input fixes a gate's output; fully assigned
  inputs fix it too;
* backward — a non-controlled output forces all inputs non-controlling; a
  controlled output with a single unassigned input and no controlling input
  yet forces that input controlling; parity gates with one unknown input
  are solved; multiplexer select/data relations are propagated both ways.

A derived value clashing with an existing one is a *contradiction*, which
proves the assumed combination impossible — that single fact settles most
multi-cycle FF pairs (Table 2: more than 80 % of them fall to implication).

The engine additionally applies *learned* global implications
(:mod:`repro.atpg.learning`) whenever a node is assigned, and maintains the
set of *unjustified* gates that the backtrack search of
:mod:`repro.atpg.justify` branches on.

State layout
------------
All structural data (gate-type codes, fanin/fanout adjacency, levels)
comes from the circuit's shared :class:`~repro.circuit.csr.CsrArrays`, so
constructing an engine after the first over the same netlist is O(1).
Values live in a flat ``bytearray`` behind :class:`Assignment`'s undo
trail; unjustified-set changes are recorded on a second trail of signed
ops (``gate`` = added, ``~gate`` = removed).  A :meth:`checkpoint` is
therefore two integers and :meth:`backtrack` is O(changes undone) — the
property the shared-launch decision sessions
(:mod:`repro.core.session`) lean on when thousands of case analyses share
one engine.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.circuit.csr import csr_arrays
from repro.circuit.gates import CONTROLLING, GateType
from repro.circuit.netlist import Circuit
from repro.logic.values import ONE, X, ZERO
from repro.atpg.assignment import Assignment

#: Learned-implication table type: ``(node, value) -> ((node, value), ...)``.
LearnedTable = Mapping[tuple[int, int], Sequence[tuple[int, int]]]

#: ``(trail length, justification-trail length)`` — see :meth:`checkpoint`.
Mark = tuple[int, int]

# Gate-type codes as plain ints: the hot loop dispatches on these instead
# of enum identities (GateType is an IntEnum, so the codes are the values).
_OUTPUT = int(GateType.OUTPUT)
_BUF = int(GateType.BUF)
_NOT = int(GateType.NOT)
_XOR = int(GateType.XOR)
_XNOR = int(GateType.XNOR)
_MUX = int(GateType.MUX)

#: per-type controlling value (255 = the type has none) and inversion flag.
_CTRL_VAL = [255] * (max(GateType) + 1)
_CTRL_INV = [0] * (max(GateType) + 1)
for _gt, (_cv, _inv) in CONTROLLING.items():
    _CTRL_VAL[_gt] = _cv
    _CTRL_INV[_gt] = int(_inv)


class ImplicationEngine:
    """Mandatory-assignment propagation over one combinational circuit.

    The engine is created once per expanded circuit and reused across all
    FF pairs; :meth:`checkpoint`/:meth:`backtrack` bracket each analysis.
    """

    def __init__(self, circuit: Circuit, learned: LearnedTable | None = None) -> None:
        self.circuit = circuit
        graph = csr_arrays(circuit)
        self.graph = graph
        #: shared, immutable structural views (also the public API other
        #: layers — justify, podem, learning — navigate the circuit by).
        self.types = graph.types
        self.fanins = graph.fanins
        self.fanouts = graph.fanouts
        self.levels = graph.levels
        self.assignment = Assignment(circuit.num_nodes)
        # ``learned`` is either a plain dict table (copied, the legacy
        # static-learning path) or any read-only object implementing
        # ``.get((node, value), default)`` + truthiness — in particular
        # the compiled :class:`~repro.analysis.implication_db.ImplicationDB`.
        if learned is None:
            self.learned: LearnedTable = {}
        elif isinstance(learned, dict):
            self.learned = dict(learned)
        else:
            self.learned = learned
        #: gates whose assigned output is not yet justified by their inputs
        self.unjustified: set[int] = set()
        #: undo log for :attr:`unjustified`: ``gate`` added, ``~gate`` removed.
        self._jtrail: list[int] = []
        self._queue: list[int] = []
        self._conflict = False
        #: total assignments posted (assumed + implied) over the lifetime.
        self.implications = 0
        for node in graph.const0:
            self.assignment.set(node, ZERO)
        for node in graph.const1:
            self.assignment.set(node, ONE)
        self._base_mark: Mark = (self.assignment.checkpoint(), 0)

    # ------------------------------------------------------------------
    # Public interface.
    # ------------------------------------------------------------------
    def value(self, node: int) -> int:
        return self.assignment.values[node]

    def checkpoint(self) -> Mark:
        """O(1) snapshot for :meth:`backtrack` (two trail lengths)."""
        return (len(self.assignment.trail), len(self._jtrail))

    def backtrack(self, mark: Mark) -> None:
        trail_mark, jtrail_mark = mark
        self.assignment.backtrack(trail_mark)
        jtrail = self._jtrail
        unjustified = self.unjustified
        while len(jtrail) > jtrail_mark:
            op = jtrail.pop()
            if op >= 0:
                unjustified.discard(op)
            else:
                unjustified.add(~op)
        self._queue.clear()
        self._conflict = False

    def assume(self, node: int, value: int) -> bool:
        """Assign ``node := value`` and run implications to a fixpoint.

        Returns ``False`` when the assumption contradicts the current
        assignment (directly or through implication); the caller is then
        expected to backtrack to its checkpoint.
        """
        if not self._post(node, value):
            return False
        return self._propagate()

    def assume_all(self, assignments: Iterable[tuple[int, int]]) -> bool:
        """Assume several assignments; stops at the first contradiction."""
        for node, value in assignments:
            if not self._post(node, value):
                return False
        return self._propagate()

    def reset(self) -> None:
        """Drop everything assumed since construction."""
        self.backtrack(self._base_mark)

    # ------------------------------------------------------------------
    # Assignment + propagation internals.
    # ------------------------------------------------------------------
    def _post(self, node: int, value: int) -> bool:
        """Record an assignment and schedule affected gates."""
        values = self.assignment.values
        current = values[node]
        if current != X:
            if current != value:
                self._conflict = True
                return False
            return True
        values[node] = value
        self.assignment.trail.append(node)
        self.implications += 1
        queue = self._queue
        queue.append(node)
        queue.extend(self.fanouts[node])
        if self.learned:
            for other, other_value in self.learned.get((node, value), ()):
                if not self._post(other, other_value):
                    return False
        return True

    def _propagate(self) -> bool:
        """Run gate-local implications until fixpoint or contradiction."""
        queue = self._queue
        while queue:
            gate = queue.pop()
            if not self._imply_gate(gate):
                queue.clear()
                self._conflict = True
                return False
        return True

    def _imply_gate(self, gate: int) -> bool:
        """(Re-)derive mandatory values around ``gate``; update J-status."""
        gate_type = self.types[gate]

        controlling = _CTRL_VAL[gate_type]
        if controlling != 255:
            return self._imply_cgate(
                gate, controlling, _CTRL_INV[gate_type], self.fanins[gate]
            )

        if gate_type == _BUF or gate_type == _OUTPUT or gate_type == _NOT:
            values = self.assignment.values
            invert = 1 if gate_type == _NOT else 0
            source = self.fanins[gate][0]
            in_value = values[source]
            out_value = values[gate]
            ok = True
            if in_value != X:
                ok = self._post(gate, in_value ^ invert)
            elif out_value != X:
                ok = self._post(source, out_value ^ invert)
            self._update_justified(gate, justified=values[source] != X or values[gate] == X)
            return ok

        if gate_type == _XOR or gate_type == _XNOR:
            return self._imply_parity(gate, gate_type == _XNOR, self.fanins[gate])

        if gate_type == _MUX:
            return self._imply_mux(gate, self.fanins[gate])

        # INPUT / DFF / CONST nodes carry no gate-local rule.
        return True

    def _imply_cgate(
        self, gate: int, controlling: int, inverted: int, fanins: tuple[int, ...]
    ) -> bool:
        """AND/NAND/OR/NOR implications via controlling-value reasoning."""
        controlled_out = controlling ^ inverted
        noncontrolled_out = (1 - controlling) ^ inverted
        values = self.assignment.values

        num_x = 0
        has_controlling = False
        unknown = -1
        for fanin in fanins:
            value = values[fanin]
            if value == X:
                num_x += 1
                unknown = fanin
            elif value == controlling:
                has_controlling = True

        # Forward.
        if has_controlling:
            if not self._post(gate, controlled_out):
                return False
        elif num_x == 0:
            if not self._post(gate, noncontrolled_out):
                return False

        # Backward.
        out_value = values[gate]
        if out_value == noncontrolled_out:
            if has_controlling:
                return False
            for fanin in fanins:
                if values[fanin] == X and not self._post(fanin, 1 - controlling):
                    return False
            self._update_justified(gate, justified=True)
        elif out_value == controlled_out:
            if has_controlling:
                self._update_justified(gate, justified=True)
            elif num_x == 0:
                return False
            elif num_x == 1:
                if not self._post(unknown, controlling):
                    return False
                self._update_justified(gate, justified=True)
            else:
                self._update_justified(gate, justified=False)
        else:  # output still X
            self._update_justified(gate, justified=True)
        return True

    def _imply_parity(self, gate: int, inverted: bool, fanins: tuple[int, ...]) -> bool:
        """XOR/XNOR implications: solvable whenever at most one pin is X."""
        values = self.assignment.values
        parity = 1 if inverted else 0
        num_x = 0
        unknown = -1
        for fanin in fanins:
            value = values[fanin]
            if value == X:
                num_x += 1
                unknown = fanin
            else:
                parity ^= value

        if num_x == 0:
            self._update_justified(gate, justified=True)
            return self._post(gate, parity)

        out_value = values[gate]
        if out_value != X and num_x == 1:
            if not self._post(unknown, parity ^ out_value):
                return False
            self._update_justified(gate, justified=True)
        else:
            self._update_justified(gate, justified=out_value == X)
        return True

    def _imply_mux(self, gate: int, fanins: tuple[int, ...]) -> bool:
        """2:1 multiplexer implications (select, d0, d1)."""
        values = self.assignment.values
        select, d0, d1 = fanins

        sel_value = values[select]
        if sel_value != X:
            chosen = d1 if sel_value == ONE else d0
            chosen_value = values[chosen]
            out_value = values[gate]
            ok = True
            if chosen_value != X:
                ok = self._post(gate, chosen_value)
            elif out_value != X:
                ok = self._post(chosen, out_value)
            self._update_justified(
                gate, justified=values[chosen] != X or values[gate] == X
            )
            return ok

        d0_value = values[d0]
        d1_value = values[d1]
        if d0_value != X and d0_value == d1_value:
            if not self._post(gate, d0_value):
                return False
            self._update_justified(gate, justified=True)
            return True

        out_value = values[gate]
        if out_value != X:
            if d0_value != X and d0_value != out_value:
                if not self._post(select, ONE):
                    return False
                return self._imply_mux(gate, fanins)
            if d1_value != X and d1_value != out_value:
                if not self._post(select, ZERO):
                    return False
                return self._imply_mux(gate, fanins)
            self._update_justified(gate, justified=False)
        else:
            self._update_justified(gate, justified=True)
        return True

    def _update_justified(self, gate: int, justified: bool) -> None:
        unjustified = self.unjustified
        if justified:
            if gate in unjustified:
                unjustified.discard(gate)
                self._jtrail.append(~gate)
        elif gate not in unjustified:
            unjustified.add(gate)
            self._jtrail.append(gate)

    # ------------------------------------------------------------------
    # Introspection helpers (tests, examples, the Fig. 2 walkthrough).
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, int]:
        """Current non-X values keyed by node name."""
        return {
            self.circuit.names[n]: v
            for n, v in enumerate(self.assignment.values)
            if v != X
        }
