"""Backtrack search proving assumptions justifiable or impossible.

Step 4.1.4 of the paper: after the implication procedure has derived every
mandatory value, a D-algorithm-flavoured search either finds an input/state
pattern consistent with the assumed values (the MC condition is violated —
the FF pair is single-cycle) or proves that none exists (the pair is
multi-cycle for this case).  The paper chose a D-algorithm-based engine
over PODEM because values are assigned to internal nodes directly and the
"fault" is likely redundant; our search shares that shape — it branches on
the *justification frontier* (assigned gates whose output is not implied by
their inputs) and relies on the implication engine to prune.

The number of backtracks is bounded (the paper used 50 by default); hitting
the bound yields :attr:`SearchStatus.ABORTED` and the pair is reported
*undecided* (conservatively treated as single-cycle downstream).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.circuit.csr import csr_arrays
from repro.circuit.gates import CONTROLLING, GateType
from repro.logic.values import ONE, X, ZERO
from repro.atpg.implication import ImplicationEngine, Mark


class SearchStatus(Enum):
    """Outcome of a justification search."""

    SAT = "sat"
    UNSAT = "unsat"
    ABORTED = "aborted"


@dataclass
class SearchResult:
    status: SearchStatus
    #: values of the free INPUT nodes when SAT (X entries are don't-cares)
    witness: dict[int, int] | None = None
    decisions: int = 0
    backtracks: int = 0


@dataclass
class _Frame:
    choices: list[tuple[int, int]]
    index: int = 0
    mark: Mark | None = None


def _choices_for(engine: ImplicationEngine, gate: int) -> list[tuple[int, int]]:
    """Single assignments that could justify ``gate``'s assigned output."""
    gate_type = engine.types[gate]
    values = engine.assignment.values
    fanins = engine.fanins[gate]

    if gate_type in CONTROLLING:
        controlling, _ = CONTROLLING[gate_type]
        return [(f, controlling) for f in fanins if values[f] == X]
    if gate_type in (GateType.XOR, GateType.XNOR):
        for fanin in fanins:
            if values[fanin] == X:
                return [(fanin, ZERO), (fanin, ONE)]
        return []
    if gate_type == GateType.MUX:
        select = fanins[0]
        return [(select, ZERO), (select, ONE)]
    # BUF/NOT/OUTPUT gates are always settled by implication.
    return []  # pragma: no cover - defensive


def _pick(engine: ImplicationEngine) -> int:
    """Choose the unjustified gate closest to the inputs (lowest level)."""
    levels = engine.levels
    return min(engine.unjustified, key=lambda g: (levels[g], g))


def extract_witness(engine: ImplicationEngine) -> dict[int, int]:
    """Free-input values of the current (satisfying) assignment.

    Reads the cached INPUT-node list of the circuit's shared
    :class:`~repro.circuit.csr.CsrArrays` — every SAT case used to
    type-scan all ``num_nodes`` rows to find the same handful of free
    inputs.
    """
    value = engine.value
    return {node: value(node) for node in csr_arrays(engine.circuit).inputs}


def justify(
    engine: ImplicationEngine,
    backtrack_limit: int = 50,
    choice_sorter=None,
) -> SearchResult:
    """Search for an input pattern consistent with the current assignment.

    The engine must already be at an implication fixpoint (i.e. the last
    ``assume`` returned ``True``).  On every outcome — including SAT — the
    engine is restored to the state it was called in; a SAT witness is
    returned explicitly instead of being left in the engine.

    ``choice_sorter`` optionally reorders each frontier gate's candidate
    decisions (e.g. SCOAP-guided, :func:`repro.atpg.scoap.make_choice_sorter`);
    ordering affects cost only, never verdicts.
    """
    if not engine.unjustified:
        return SearchResult(SearchStatus.SAT, extract_witness(engine))

    def choices_of(gate: int) -> list[tuple[int, int]]:
        options = _choices_for(engine, gate)
        return choice_sorter(options) if choice_sorter else options

    outer_mark = engine.checkpoint()
    decisions = 0
    backtracks = 0
    stack = [_Frame(choices_of(_pick(engine)))]

    while stack:
        frame = stack[-1]
        if frame.mark is not None:
            engine.backtrack(frame.mark)
            frame.mark = None
            backtracks += 1
            if backtracks > backtrack_limit:
                engine.backtrack(outer_mark)
                return SearchResult(
                    SearchStatus.ABORTED, decisions=decisions, backtracks=backtracks
                )
        if frame.index >= len(frame.choices):
            stack.pop()
            continue
        node, value = frame.choices[frame.index]
        frame.index += 1
        frame.mark = engine.checkpoint()
        decisions += 1
        if engine.assume(node, value):
            if not engine.unjustified:
                witness = extract_witness(engine)
                engine.backtrack(frame.mark)
                engine.backtrack(outer_mark)
                return SearchResult(
                    SearchStatus.SAT, witness, decisions=decisions, backtracks=backtracks
                )
            stack.append(_Frame(choices_of(_pick(engine))))
        # On a conflict the frame's mark is undone at the top of the loop
        # and the next choice is tried.

    engine.backtrack(outer_mark)
    return SearchResult(
        SearchStatus.UNSAT, decisions=decisions, backtracks=backtracks
    )
