"""Trail-based value assignment store with O(1) checkpoint/undo.

The implication engine and the backtrack search share this store: every
assignment is pushed onto a trail, a *checkpoint* is just the trail length,
and backtracking pops assignments back to a checkpoint.  This is the same
mechanism SAT solvers use and is what makes the per-pair, per-case analysis
of Section 4 cheap — state is never copied.

Values live in a flat ``bytearray`` (one byte per node, ``X`` encoded as
2), so a store over a large expanded circuit costs one contiguous buffer
instead of a list of boxed ints.
"""

from __future__ import annotations

from repro.logic.values import X


class Assignment:
    """Three-valued assignment over dense node ids with an undo trail."""

    def __init__(self, num_nodes: int) -> None:
        self.values = bytearray([X]) * num_nodes
        self.trail: list[int] = []

    def checkpoint(self) -> int:
        """Mark the current trail position for a later :meth:`backtrack`."""
        return len(self.trail)

    def backtrack(self, mark: int) -> None:
        """Undo every assignment made after ``mark``."""
        values = self.values
        trail = self.trail
        while len(trail) > mark:
            values[trail.pop()] = X

    def set(self, node: int, value: int) -> None:
        """Record ``node := value``; caller must ensure the node was X."""
        self.values[node] = value
        self.trail.append(node)

    def get(self, node: int) -> int:
        return self.values[node]

    def assigned_since(self, mark: int) -> list[tuple[int, int]]:
        """(node, value) pairs assigned after ``mark``, in trail order."""
        return [(n, self.values[n]) for n in self.trail[mark:]]

    def num_assigned(self) -> int:
        return len(self.trail)
