"""SCOAP testability measures and search guidance.

Goldstein's SCOAP metrics estimate how hard it is to *control* a node to
0/1 (``CC0``/``CC1``) and to *observe* it at an output (``CO``); classic
ATPG uses them to order backtrace decisions toward the cheapest
justification.  Here they serve two purposes:

* a testability report (`scoap_report`) over any circuit, and
* an optional decision-ordering heuristic for the justification search —
  when branching on an AND-family frontier gate, try the input that is
  *easiest to set to the controlling value* first
  (:func:`make_choice_sorter`), an ablation the benchmarks quantify.

DFF outputs and primary inputs both count as directly controllable
(cost 1), matching the full-scan view the expansions already take.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit

_INF = 10 ** 9


@dataclass
class Scoap:
    """Controllability/observability numbers per node."""

    circuit: Circuit
    cc0: list[int]
    cc1: list[int]
    co: list[int]

    def controllability(self, node: int, value: int) -> int:
        return self.cc1[node] if value else self.cc0[node]


def compute_scoap(circuit: Circuit) -> Scoap:
    """Compute combinational SCOAP measures for ``circuit``.

    Sequential nodes (DFF outputs) are treated as scan-controllable /
    scan-observable with unit cost, so the numbers describe one frame.
    """
    n = circuit.num_nodes
    cc0 = [_INF] * n
    cc1 = [_INF] * n

    for node in circuit.topo_order():
        gate_type = circuit.types[node]
        fanins = circuit.fanins[node]
        if gate_type in (GateType.INPUT, GateType.DFF):
            cc0[node] = cc1[node] = 1
        elif gate_type == GateType.CONST0:
            cc0[node], cc1[node] = 0, _INF
        elif gate_type == GateType.CONST1:
            cc0[node], cc1[node] = _INF, 0
        elif gate_type in (GateType.BUF, GateType.OUTPUT):
            cc0[node] = cc0[fanins[0]] + 1
            cc1[node] = cc1[fanins[0]] + 1
        elif gate_type == GateType.NOT:
            cc0[node] = cc1[fanins[0]] + 1
            cc1[node] = cc0[fanins[0]] + 1
        elif gate_type in (GateType.AND, GateType.NAND):
            all_ones = min(sum(cc1[f] for f in fanins) + 1, _INF)
            some_zero = min(cc0[f] for f in fanins) + 1
            if gate_type == GateType.AND:
                cc1[node], cc0[node] = all_ones, some_zero
            else:
                cc0[node], cc1[node] = all_ones, some_zero
        elif gate_type in (GateType.OR, GateType.NOR):
            all_zeros = min(sum(cc0[f] for f in fanins) + 1, _INF)
            some_one = min(cc1[f] for f in fanins) + 1
            if gate_type == GateType.OR:
                cc0[node], cc1[node] = all_zeros, some_one
            else:
                cc1[node], cc0[node] = all_zeros, some_one
        elif gate_type in (GateType.XOR, GateType.XNOR):
            # Fold pairwise: cost of parity-0 / parity-1 over the inputs.
            even, odd = cc0[fanins[0]], cc1[fanins[0]]
            for fanin in fanins[1:]:
                even, odd = (
                    min(even + cc0[fanin], odd + cc1[fanin]),
                    min(even + cc1[fanin], odd + cc0[fanin]),
                )
            if gate_type == GateType.XOR:
                cc0[node], cc1[node] = even + 1, odd + 1
            else:
                cc0[node], cc1[node] = odd + 1, even + 1
        elif gate_type == GateType.MUX:
            select, d0, d1 = fanins
            cc0[node] = min(cc0[select] + cc0[d0], cc1[select] + cc0[d1]) + 1
            cc1[node] = min(cc0[select] + cc1[d0], cc1[select] + cc1[d1]) + 1
        else:  # pragma: no cover - defensive
            raise ValueError(f"unhandled gate type {gate_type}")

    # Observability: reverse topological sweep from POs and D inputs.
    co = [_INF] * n
    for po in circuit.outputs:
        co[po] = 0
    for dff in circuit.dffs:
        co[circuit.next_state_node(dff)] = min(
            co[circuit.next_state_node(dff)], 1
        )
    for node in reversed(circuit.topo_order()):
        gate_type = circuit.types[node]
        if co[node] == _INF and gate_type != GateType.OUTPUT:
            pass  # may still be set through a fanout below
        for fanin_pos, fanin in enumerate(circuit.fanins[node]):
            cost = co[node]
            if cost == _INF:
                continue
            others = [
                f for k, f in enumerate(circuit.fanins[node]) if k != fanin_pos
            ]
            if gate_type in (GateType.BUF, GateType.OUTPUT, GateType.NOT):
                extra = 0
            elif gate_type in (GateType.AND, GateType.NAND):
                extra = sum(cc1[f] for f in others)
            elif gate_type in (GateType.OR, GateType.NOR):
                extra = sum(cc0[f] for f in others)
            elif gate_type in (GateType.XOR, GateType.XNOR):
                extra = sum(min(cc0[f], cc1[f]) for f in others)
            elif gate_type == GateType.MUX:
                select, d0, d1 = circuit.fanins[node]
                if fanin == select:
                    extra = min(cc0[d0] + cc1[d1], cc1[d0] + cc0[d1])
                elif fanin == d0:
                    extra = cc0[select]
                else:
                    extra = cc1[select]
            elif gate_type == GateType.DFF:
                extra = 0
            else:
                continue
            candidate = min(cost + extra + 1, _INF)
            if candidate < co[fanin]:
                co[fanin] = candidate
    return Scoap(circuit, cc0, cc1, co)


def make_choice_sorter(scoap: Scoap):
    """Choice-ordering callable for the justification search.

    Sorts candidate ``(node, value)`` decisions by the SCOAP cost of
    achieving them, cheapest first — the classic "easiest controlling
    input" heuristic.
    """

    def sorter(choices: list[tuple[int, int]]) -> list[tuple[int, int]]:
        return sorted(
            choices, key=lambda nv: scoap.controllability(nv[0], nv[1])
        )

    return sorter


def scoap_report(circuit: Circuit, worst: int = 10) -> str:
    """Text report: the hardest-to-control and hardest-to-observe nodes."""
    scoap = compute_scoap(circuit)
    rows = []
    for node in range(circuit.num_nodes):
        if circuit.types[node] == GateType.OUTPUT:
            continue
        rows.append((
            max(scoap.cc0[node], scoap.cc1[node]),
            scoap.co[node],
            circuit.names[node],
            scoap.cc0[node],
            scoap.cc1[node],
        ))
    rows.sort(reverse=True)
    lines = [f"{'node':>16}  {'CC0':>6}  {'CC1':>6}  {'CO':>6}"]
    for controllability, co, name, cc0, cc1 in rows[:worst]:
        co_text = "inf" if co >= _INF else str(co)
        lines.append(f"{name:>16}  {cc0:>6}  {cc1:>6}  {co_text:>6}")
    return "\n".join(lines)
