"""PODEM-style justification search (the paper's rejected alternative).

Section 4.5 of the paper: "we adopted [a] D-algorithm based method because
it assigns values to internal nodes directly and tries to detect
contradictions faster than [a] PODEM based method" — the target "fault" of
the MC check is likely redundant, so conflicts should surface early.

To make that design decision measurable, this module implements the PODEM
counterpart: decisions are made **only on primary inputs**.  Each round
picks an unjustified gate, *backtraces* its objective through X-valued
lines to an unassigned input, assigns it, and lets the implication engine
propagate; a conflict flips the input, two conflicts backtrack.  The
result interface matches :func:`repro.atpg.justify.justify`, and the
ablation benchmark (`benchmarks/bench_search_engines.py`) compares the two
on the same pair workload.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.gates import CONTROLLING, GateType
from repro.logic.values import ONE, X, ZERO
from repro.atpg.implication import ImplicationEngine, Mark
from repro.atpg.justify import SearchResult, SearchStatus, extract_witness


def _objective_for(engine: ImplicationEngine, gate: int) -> tuple[int, int]:
    """An (node, value) objective whose achievement helps justify ``gate``."""
    gate_type = engine.types[gate]
    values = engine.assignment.values
    fanins = engine.fanins[gate]
    if gate_type in CONTROLLING:
        controlling, _ = CONTROLLING[gate_type]
        for fanin in fanins:
            if values[fanin] == X:
                return fanin, controlling
    elif gate_type == GateType.MUX:
        select = fanins[0]
        if values[select] == X:
            return select, ZERO
        data = fanins[2] if values[select] == ONE else fanins[1]
        if values[data] == X:
            return data, values[gate]
    elif gate_type in (GateType.XOR, GateType.XNOR):
        parity = ONE if gate_type == GateType.XNOR else ZERO
        unknown = -1
        for fanin in fanins:
            value = values[fanin]
            if value == X:
                unknown = fanin
            else:
                parity ^= value
        if unknown != -1:
            target = values[gate]
            return unknown, (parity ^ target) if target != X else ZERO
    raise AssertionError("unjustified gate without an objective")  # pragma: no cover


def _backtrace(engine: ImplicationEngine, node: int, value: int) -> tuple[int, int]:
    """Walk an objective backwards through X lines to an unassigned input."""
    types = engine.types
    values = engine.assignment.values
    while types[node] not in (GateType.INPUT,):
        gate_type = types[node]
        fanins = engine.fanins[node]
        if gate_type in CONTROLLING:
            controlling, inverted = CONTROLLING[gate_type]
            needed = value ^ inverted
            # needed == controlling: one controlling input suffices;
            # otherwise every input must be non-controlling — either way
            # we walk into some X fanin asking for ``needed``.
            nxt = next((f for f in fanins if values[f] == X), None)
            if nxt is None:  # pragma: no cover - defensive
                break
            node, value = nxt, needed
        elif gate_type in (GateType.NOT,):
            node, value = fanins[0], value ^ 1
        elif gate_type in (GateType.BUF, GateType.OUTPUT):
            node = fanins[0]
        elif gate_type in (GateType.XOR, GateType.XNOR):
            parity = ONE if gate_type == GateType.XNOR else ZERO
            unknown = None
            for fanin in fanins:
                fanin_value = values[fanin]
                if fanin_value == X and unknown is None:
                    unknown = fanin
                elif fanin_value != X:
                    parity ^= fanin_value
            if unknown is None:  # pragma: no cover - defensive
                break
            node, value = unknown, value ^ parity
        elif gate_type == GateType.MUX:
            select, d0, d1 = fanins
            if values[select] == X:
                node, value = select, ZERO
            else:
                node = d1 if values[select] == ONE else d0
        else:  # pragma: no cover - constants cannot be X
            break
    return node, value


@dataclass
class _Decision:
    node: int
    value: int
    mark: Mark
    flipped: bool = False


def podem_justify(
    engine: ImplicationEngine, backtrack_limit: int = 50
) -> SearchResult:
    """PODEM counterpart of :func:`repro.atpg.justify.justify`.

    Complete over primary-input assignments: when every input is assigned,
    implication either conflicts or justifies every gate, so the verdict
    matches the D-algorithm-style search — only the exploration order (and
    hence the cost profile) differs.
    """
    if not engine.unjustified:
        return SearchResult(SearchStatus.SAT, extract_witness(engine))

    outer_mark = engine.checkpoint()
    decisions = 0
    backtracks = 0
    stack: list[_Decision] = []

    def undo_to_flippable() -> bool:
        """Pop flipped decisions; flip the newest unflipped one."""
        nonlocal backtracks
        while stack:
            decision = stack[-1]
            engine.backtrack(decision.mark)
            backtracks += 1
            if backtracks > backtrack_limit:
                return False
            if decision.flipped:
                stack.pop()
                continue
            decision.flipped = True
            decision.value ^= 1
            decision.mark = engine.checkpoint()
            if engine.assume(decision.node, decision.value):
                return True
            # Flipping also conflicts: keep unwinding.
            engine.backtrack(decision.mark)
            backtracks += 1
            if backtracks > backtrack_limit:
                return False
            stack.pop()
        return False

    while True:
        if not engine.unjustified:
            witness = extract_witness(engine)
            engine.backtrack(outer_mark)
            return SearchResult(
                SearchStatus.SAT, witness, decisions=decisions,
                backtracks=backtracks,
            )
        gate = min(engine.unjustified, key=lambda g: (engine.levels[g], g))
        objective = _objective_for(engine, gate)
        node, value = _backtrace(engine, *objective)
        if engine.types[node] != GateType.INPUT or engine.value(node) != X:
            # Backtrace dead-ends (can only happen on defensive breaks):
            # treat like a conflict.
            ok = False
        else:
            decision = _Decision(node, value, engine.checkpoint())
            decisions += 1
            ok = engine.assume(node, value)
            if ok:
                stack.append(decision)
            else:
                engine.backtrack(decision.mark)
                backtracks += 1
                if backtracks > backtrack_limit:
                    engine.backtrack(outer_mark)
                    return SearchResult(
                        SearchStatus.ABORTED, decisions=decisions,
                        backtracks=backtracks,
                    )
                decision.flipped = True
                decision.value ^= 1
                decision.mark = engine.checkpoint()
                if engine.assume(decision.node, decision.value):
                    stack.append(decision)
                    ok = True
        if not ok:
            if not undo_to_flippable():
                engine.backtrack(outer_mark)
                status = (
                    SearchStatus.ABORTED
                    if backtracks > backtrack_limit
                    else SearchStatus.UNSAT
                )
                return SearchResult(
                    status, decisions=decisions, backtracks=backtracks
                )
