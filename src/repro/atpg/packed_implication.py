"""Bit-parallel implication closure: 64 assumption cases per uint64 word.

The decide stage settles each surviving FF pair by running the scalar
:class:`~repro.atpg.implication.ImplicationEngine` once per ``(a, b)``
case — four closures per pair, each a Python-level worklist loop.  On
the synthetic ladder that stage now dominates the whole pipeline.  The
cases are *independent*: each one seeds the same 2-frame expansion with
three literals (``FFi@t = a``, ``FFi@t+1 = 1-a``, ``FFj@t+1 = b``) and
asks what the closure forces at ``FFj@t+2``.  Independence is exactly
the precondition for lane packing (PR 4 proved the recipe for hazard
validation): this module runs ONE closure whose state is the two-plane
{0, 1, X} ternary encoding of :mod:`~repro.logic.simplan` — a ``care``
plane (bit set ⇔ lane holds a known binary value) and a ``value`` plane
(canonical ``value ⊆ care``) — with 64 lanes per uint64 word, up to
:data:`MAX_LANES` per closure.

Lowering and kernel
-------------------
:class:`PackedPlan` lowers the circuit through the compiled SimPlan:
its levelized, identity-padded gate batches become per-gate records
(kind, controlling value, inversion, real fanin rows), a node → consumer
map, and the preset rows (identity pads and constants) extracted from
``install_ternary_identity_rows``.  The closure kernel is a dirty-gate
worklist over those records.  Per-node lane words are held as Python
integers — at decide-stage lane counts (4–8 uint64 limbs) CPython
bigint bitwise ops cost tens of nanoseconds, far below numpy's per-call
dispatch on the same data, and the cost of a closure scales with the
*activity cone* of the seeds rather than with circuit size (the same
property that lets the scalar engine stream 100k-gate circuits).  The
numpy planes of a :class:`~repro.logic.simplan.TernaryScratch` are
retained as the staging buffers that translate between array-shaped
seed matrices and the per-node lane words.

Exactness contract
------------------
The engine computes, per lane, the *same* fixpoint the scalar engine
reaches, including its deliberate quirks:

* Constants are preset (``care`` set, ``posted`` clear), never
  enqueued: a cone driven only by constants stays X.  A gate is
  *const-tainted* when some fanin is a CONST0/CONST1 node; only tainted
  gates AND an activity mask (``posted`` at the gate or any fanin) into
  their forward forces.  Untainted gates need no mask — every known bit
  on their fanins is posted, so any derivation is activity-covered by
  construction.  Backward rules never need the mask: they fire only on
  a known *gate output*, and gate outputs become known only by posting.
* A gate is (re-)examined exactly when itself or a fanin changed:
  posting a node marks its consumer gates dirty, and its driver gate
  too when the post came from a backward rule, a seed, or a learned
  consequence.  A gate's own *forward* post never re-marks it (its
  backward rules run against the post-forward output state in the same
  visit, mirroring the scalar engine's single ``_imply_gate`` visit);
  its *backward* posts do, because forcing one gate's fanin can unlock
  a derivation on a sibling gate reading the same node.
* Learned implications (launch-prefix static learning, the global
  implication DB) are applied to every *posted* literal, recursively,
  via the same two-argument ``learned.get((node, value), ())`` protocol
  the scalar engine uses.
* Conflicts are recorded per lane in a ``conflict`` mask.  A conflicted
  lane is frozen — it derives nothing further, its state is never read
  back, and only the flag is observable, exactly like the scalar
  engine's failed ``assume``.

The scalar engine remains the oracle: any lane the packed closure
leaves open (target still X after the stability probe, or known with
the non-implied polarity so a search is required) falls back to the
per-case :class:`~repro.core.session.DecisionSession` path, and the
differential tests assert byte-identical ``pair_records`` either way.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.circuit.csr import csr_arrays
from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit
from repro.logic.simplan import (
    SimPlan,
    TernaryScratch,
    _MuxBatch,
    _ReduceBatch,
    _UnaryBatch,
    compiled_plan,
)

#: lane capacity of one closure: 8 uint64 words of 64 cases.
MAX_LANE_WORDS = 8
MAX_LANES = 64 * MAX_LANE_WORDS

_KIND_CGATE = 0  # AND / NAND / OR / NOR
_KIND_PARITY = 1  # XOR / XNOR
_KIND_UNARY = 2  # BUF / OUTPUT / NOT
_KIND_MUX = 3

#: controlling input value / output inversion per controlled gate type.
_CGATE_SHAPE = {
    GateType.AND: (0, 0),
    GateType.NAND: (0, 1),
    GateType.OR: (1, 0),
    GateType.NOR: (1, 1),
}


class PackedPlan:
    """Per-gate lowering of the compiled SimPlan for packed implication.

    Pure function of the netlist — cached via :func:`packed_plan` /
    :meth:`Circuit.derived` so sessions, workers and benches sharing a
    circuit share one plan.

    Attributes:
        gates: per-gate ``(kind, ctrl, out_inv, tainted, fanins, out)``
            records in level order; ``fanins`` holds only real node
            rows (identity pads are dropped — they are preset known).
        consumers: per-node tuple of gate indices reading that node.
        driver: per-node index of the gate driving it (-1 for none).
        preset1: rows preset to known-1 (CONST1 and value-1 pad rows).
        preset0: rows preset to known-0 (CONST0 and value-0 pad rows).
    """

    def __init__(self, circuit: Circuit) -> None:
        sim = compiled_plan(circuit)
        csr = csr_arrays(circuit)
        self.circuit_version = circuit.version
        self.num_nodes = sim.num_nodes
        self.buffer_rows = sim.buffer_rows
        # Only read during lowering; absent (None) on plans decoded from
        # the flat-buffer layout, which carry the lowered records only.
        self.sim: SimPlan | None = sim
        num_nodes = sim.num_nodes
        is_const = bytearray(sim.buffer_rows)
        for row in csr.const0 + csr.const1:
            is_const[row] = 1

        gates: list[tuple[int, int, int, int, tuple[int, ...], int]] = []
        for level in sim.levels:
            for batch in level:
                if isinstance(batch, _ReduceBatch):
                    shape = _CGATE_SHAPE.get(batch.gate_type)
                    if shape:
                        kind, (ctrl, inv) = _KIND_CGATE, shape
                    else:
                        kind, ctrl = _KIND_PARITY, 0
                        inv = int(batch.gate_type == GateType.XNOR)
                    rows = batch.fanins.tolist()
                elif isinstance(batch, _UnaryBatch):
                    kind, ctrl, inv = _KIND_UNARY, 0, int(batch.invert)
                    rows = [[src] for src in batch.sources.tolist()]
                else:  # _MuxBatch
                    kind, ctrl, inv = _KIND_MUX, 0, 0
                    rows = [
                        list(fi)
                        for fi in zip(
                            batch.selects.tolist(),
                            batch.d0.tolist(),
                            batch.d1.tolist(),
                        )
                    ]
                for out, fanin_row in zip(batch.outputs.tolist(), rows):
                    if kind == _KIND_MUX:
                        fanins = tuple(fanin_row)  # positional: sel, d0, d1
                    else:
                        fanins = tuple(
                            fi for fi in fanin_row if fi < num_nodes
                        )
                    tainted = int(any(is_const[fi] for fi in fanins))
                    gates.append((kind, ctrl, inv, tainted, fanins, out))
        self.gates = tuple(gates)

        consumer_lists: list[list[int]] = [[] for _ in range(sim.buffer_rows)]
        driver = [-1] * sim.buffer_rows
        for gi, (_, _, _, _, fanins, out) in enumerate(gates):
            driver[out] = gi
            for fi in set(fanins):
                if fi < num_nodes and not is_const[fi]:
                    consumer_lists[fi].append(gi)
        self.consumers = tuple(tuple(lst) for lst in consumer_lists)
        self.driver = tuple(driver)

        # Identity pad rows and their values, via the SimPlan installer.
        probe = np.zeros((2, sim.buffer_rows, 1), dtype=np.uint64)
        sim.install_ternary_identity_rows(probe[0], probe[1])
        pad_rows = np.flatnonzero(probe[1][:, 0]).tolist()
        pad1 = {row for row in pad_rows if probe[0][row, 0]}
        self.preset1 = tuple(sorted(pad1) + sorted(csr.const1))
        self.preset0 = tuple(
            sorted(set(pad_rows) - pad1) + sorted(csr.const0)
        )


def packed_plan(circuit: Circuit) -> PackedPlan:
    """The circuit's packed implication plan (cached per netlist version)."""
    return circuit.derived(
        "packed-implication", PackedPlan, persist="packed-implication"
    )


class PackedImplicationEngine:
    """Fixpoint implication closure over up to :data:`MAX_LANES` lanes.

    One engine per (circuit, learned table); :meth:`close` runs a fresh
    closure over per-lane seed literals, :meth:`extend` continues the
    converged closure with extra literals (the stability probe of the
    decide stage).  Per-node state is reset incrementally — only rows
    the previous closure touched are cleared — so repeated closes cost
    activity, not circuit size.
    """

    def __init__(
        self,
        circuit: Circuit,
        learned: Mapping | None = None,
    ) -> None:
        self.circuit = circuit
        self.plan = packed_plan(circuit)
        self.learned = learned if learned else None
        rows = self.plan.buffer_rows
        self._scratch = TernaryScratch(rows)
        self._value = [0] * rows
        self._care = [0] * rows
        self._posted = [0] * rows
        self._dirty = bytearray(len(self.plan.gates))
        self._pending: list[int] = []
        self._wave: list[int] = []
        self._sign = 0  # +1 ascending wave, -1 descending, 0 idle
        self._cursor = 0
        self._touched: list[int] = []
        self._conflict = 0
        self._full = 0
        self.lanes = 0
        self.closures = 0
        self.visits = 0
        for row in self.plan.preset1:
            self._value[row] = -1
            self._care[row] = -1
        for row in self.plan.preset0:
            self._care[row] = -1

    # ------------------------------------------------------------------
    # Public API.
    # ------------------------------------------------------------------
    def close(self, cases: Sequence[Iterable[tuple[int, int]]]) -> None:
        """Run the closure of per-lane seed literal lists from scratch.

        ``cases[lane]`` is an iterable of ``(node, value)`` literals.
        Conflicting seeds on one lane — including a self-loop pair
        seeding one node both ways — raise that lane's conflict bit
        exactly like the scalar engine's failing ``assume_all``.
        """
        self._reset(len(cases))
        for lane, literals in enumerate(cases):
            bit = 1 << lane
            for node, value in literals:
                if value:
                    self._post(node, bit, 0)
                else:
                    self._post(node, 0, bit)
        self._propagate()

    def close_matrix(self, nodes: np.ndarray, values: np.ndarray) -> None:
        """:meth:`close` fast path: ``(lanes, k)`` seed node/value arrays.

        Row ``lane`` seeds ``nodes[lane, j] := values[lane, j]`` for all
        ``j`` — the decide stage's fixed three-literal premises, staged
        through the ternary scratch planes so the per-node lane words
        are built by a handful of array scatters instead of a Python
        loop over every literal.
        """
        lanes, _width = nodes.shape
        self._reset(lanes)
        words = (lanes + 63) >> 6
        planes = self._scratch.planes(2, words)
        lane_ids = np.arange(lanes, dtype=np.intp)
        word_col = np.broadcast_to((lane_ids >> 6)[:, None], nodes.shape)
        bits = (np.uint64(1) << (lane_ids & 63).astype(np.uint64))[:, None]
        bits = np.broadcast_to(bits, nodes.shape)
        ones = values.astype(bool)
        np.bitwise_or.at(
            planes[1], (nodes[ones], word_col[ones]), bits[ones]
        )
        zeros = ~ones
        np.bitwise_or.at(
            planes[0], (nodes[zeros], word_col[zeros]), bits[zeros]
        )
        for node in np.unique(nodes).tolist():
            m1 = int.from_bytes(planes[1, node].tobytes(), "little")
            m0 = int.from_bytes(planes[0, node].tobytes(), "little")
            planes[1, node] = 0
            planes[0, node] = 0
            self._post(node, m1, m0)
        self._propagate()

    def extend(self, literals: Iterable[tuple[int, int, int]]) -> None:
        """Continue the converged closure with ``(lane, node, value)`` posts.

        A literal equal to the lane's existing value is a no-op (the
        scalar ``assume`` of an agreeing value succeeds without work); a
        disagreeing one conflicts the lane.  Snapshot
        :meth:`conflict_lanes` around the call to see which lanes the
        extension newly contradicted.
        """
        for lane, node, value in literals:
            bit = 1 << lane
            if value:
                self._post(node, bit, 0)
            else:
                self._post(node, 0, bit)
        self._propagate()

    def conflict_lanes(self, lanes: np.ndarray | Sequence[int]) -> np.ndarray:
        """Boolean conflict flag per requested lane."""
        conflict = self._conflict
        return np.fromiter(
            ((conflict >> int(lane)) & 1 for lane in lanes),
            dtype=bool,
            count=len(lanes),
        )

    def read_nodes(
        self,
        nodes: np.ndarray | Sequence[int],
        lanes: np.ndarray | Sequence[int],
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per (node, lane): ``(known, value)`` uint8 vectors."""
        count = len(nodes)
        known = np.zeros(count, dtype=np.uint8)
        value = np.zeros(count, dtype=np.uint8)
        care_list = self._care
        value_list = self._value
        for i, (node, lane) in enumerate(zip(nodes, lanes)):
            shift = int(lane)
            known[i] = (care_list[node] >> shift) & 1
            value[i] = (value_list[node] >> shift) & 1
        return known, value

    # ------------------------------------------------------------------
    # Closure state.
    # ------------------------------------------------------------------
    def _reset(self, lanes: int) -> None:
        if not 0 < lanes <= MAX_LANES:
            raise ValueError(f"lane count {lanes} outside 1..{MAX_LANES}")
        value, care, posted = self._value, self._care, self._posted
        for row in self._touched:
            value[row] = 0
            care[row] = 0
            posted[row] = 0
        self._touched = []
        self._conflict = 0
        self._full = (1 << lanes) - 1
        self.lanes = lanes
        self.closures += 1

    # ------------------------------------------------------------------
    # Posting and propagation.
    # ------------------------------------------------------------------
    def _post(self, node: int, m1: int, m0: int, from_gate: int = -1) -> None:
        """Join force masks into a node's planes; flag conflicts.

        ``from_gate`` suppresses re-marking the forcing gate itself —
        a forward post already ran its backward rules against the
        post-forward state in the same visit.
        """
        value, care = self._value, self._care
        v = value[node]
        c = care[node]
        conf = (m1 & (c ^ v)) | (m0 & v) | (m1 & m0)
        if conf:
            self._conflict |= conf
            # conflicted lanes derive nothing further — their state is
            # never read back, and freezing them stops garbage churn
        new = (m1 | m0) & ~c & ~self._conflict & self._full
        if not new:
            return
        value[node] = v | (m1 & new)
        care[node] = c | new
        self._posted[node] |= new
        self._touched.append(node)
        dirty = self._dirty
        sign = self._sign
        cursor = self._cursor
        wave = self._wave
        pending = self._pending
        for gi in self.plan.consumers[node]:
            if not dirty[gi]:
                dirty[gi] = 1
                if (gi - cursor) * sign > 0:
                    heappush(wave, sign * gi)
                else:
                    pending.append(gi)
        gi = self.plan.driver[node]
        if gi >= 0 and gi != from_gate and not dirty[gi]:
            dirty[gi] = 1
            if (gi - cursor) * sign > 0:
                heappush(wave, sign * gi)
            else:
                pending.append(gi)
        learned = self.learned
        if learned is not None:
            mask1 = m1 & new
            mask0 = new ^ mask1
            if mask1:
                for cnode, cval in learned.get((node, 1), ()):
                    if cval:
                        self._post(cnode, mask1, 0)
                    else:
                        self._post(cnode, 0, mask1)
            if mask0:
                for cnode, cval in learned.get((node, 0), ()):
                    if cval:
                        self._post(cnode, mask0, 0)
                    else:
                        self._post(cnode, 0, mask0)

    def _propagate(self) -> None:
        """Drain dirty gates in alternating directional waves.

        A wave visits its gates in level order (ascending, then the
        next wave descending, like the scalar-validated forward/reverse
        sweeps).  Marks landing ahead of the wave cursor fold into the
        running wave — later gates see earlier derivations in the same
        pass — while marks at or behind it wait for the next wave, so a
        gate collects all its pending fanin changes into one visit
        instead of re-running per change event.
        """
        dirty = self._dirty
        gates = self.plan.gates
        visits = 0
        sign = 1
        while self._pending:
            wave = [sign * gi for gi in self._pending]
            heapify(wave)
            self._wave = wave
            self._pending = []
            self._sign = sign
            while wave:
                gi = sign * heappop(wave)
                self._cursor = gi
                dirty[gi] = 0
                visits += 1
                self._visit(gi, gates[gi])
            sign = -sign
        self._sign = 0
        self.visits += visits

    # ------------------------------------------------------------------
    # Gate rules: forward + backward in one visit.
    # ------------------------------------------------------------------
    def _visit(
        self,
        gi: int,
        gate: tuple[int, int, int, int, tuple[int, ...], int],
    ) -> None:
        kind, ctrl, inv, tainted, fanins, out = gate
        value, care = self._value, self._care
        full = self._full
        if kind == _KIND_CGATE:
            if ctrl:
                has_ctrl = 0
                all_nc = full
                for fi in fanins:
                    v = value[fi]
                    has_ctrl |= v
                    all_nc &= care[fi] ^ v
            else:
                has_ctrl = 0
                all_nc = full
                for fi in fanins:
                    v = value[fi]
                    has_ctrl |= care[fi] ^ v
                    all_nc &= v
            if ctrl ^ inv:
                f1, f0 = has_ctrl, all_nc
            else:
                f1, f0 = all_nc, has_ctrl
            if tainted:
                act = self._posted[out]
                for fi in fanins:
                    act |= self._posted[fi]
                f1 &= act
                f0 &= act
            self._post(out, f1, f0, from_gate=gi)
            vo = value[out]
            co = care[out]
            if not co:
                return
            # Backward: output noncontrolled → every X input forced
            # noncontrolling; output controlled with no known
            # controlling input and exactly one X input → that input
            # forced controlling.
            if ctrl ^ inv:
                out_nc, out_ctl = co ^ vo, vo
            else:
                out_nc, out_ctl = vo, co ^ vo
            mask_b = out_ctl & ~has_ctrl
            if mask_b:
                seen = 0
                multi = 0
                for fi in fanins:
                    x = ~care[fi] & full
                    multi |= seen & x
                    seen |= x
                mask_b &= seen & ~multi
            if not (out_nc | mask_b):
                return
            if ctrl:
                b1, b0 = mask_b, out_nc
            else:
                b1, b0 = out_nc, mask_b
            for fi in fanins:
                x = ~care[fi] & full
                if x:
                    self._post(fi, b1 & x, b0 & x)
            return
        if kind == _KIND_UNARY:
            src = fanins[0]
            sv = value[src]
            sc = care[src]
            f1 = sc ^ sv if inv else sv
            f0 = sc ^ f1
            if tainted:
                act = self._posted[out] | self._posted[src]
                f1 &= act
                f0 &= act
            self._post(out, f1, f0, from_gate=gi)
            vo = value[out]
            co = care[out]
            mask = co & ~sc
            if mask:  # known output, X source: copy through the inversion
                m1 = mask & ((co ^ vo) if inv else vo)
                self._post(src, m1, mask ^ m1)
            return
        if kind == _KIND_PARITY:
            known = full
            par = 0
            for fi in fanins:
                known &= care[fi]
                par ^= value[fi]
            if inv:
                par = ~par & full
            f1 = known & par
            f0 = known ^ f1
            if tainted:
                act = self._posted[out]
                for fi in fanins:
                    act |= self._posted[fi]
                f1 &= act
                f0 &= act
            self._post(out, f1, f0, from_gate=gi)
            vo = value[out]
            co = care[out]
            if not co:
                return
            # Backward: known output with exactly one X input → that
            # input is the parity of the output and the known inputs (X
            # fanins contribute 0 to ``par``, so ``par ^ vo`` is exact).
            seen = 0
            multi = 0
            for fi in fanins:
                x = ~care[fi] & full
                multi |= seen & x
                seen |= x
            mask = co & seen & ~multi
            if not mask:
                return
            forced = par ^ vo
            for fi in fanins:
                m = mask & ~care[fi]
                if m:
                    self._post(fi, m & forced, m & ~forced & full)
            return
        # MUX: fanins are positional (select, d0, d1).
        sel, da, db = fanins
        vs = value[sel]
        cs = care[sel]
        v0 = value[da]
        c0 = care[da]
        v1 = value[db]
        c1 = care[db]
        sel1 = vs
        sel0 = cs ^ vs
        sel_x = ~cs & full
        agree1 = v0 & v1
        agree0 = (c0 ^ v0) & (c1 ^ v1)
        f1 = (sel0 & v0) | (sel1 & v1) | (sel_x & agree1)
        dcare = (sel0 & c0) | (sel1 & c1) | (sel_x & (agree0 | agree1))
        f0 = dcare ^ f1
        if tainted:
            act = (
                self._posted[out]
                | self._posted[sel]
                | self._posted[da]
                | self._posted[db]
            )
            f1 &= act
            f0 &= act
        self._post(out, f1, f0, from_gate=gi)
        vo = value[out]
        co = care[out]
        if not co:
            return
        # Backward: known select copies the output onto the chosen data
        # leg (a disagreeing known leg conflicts, as the scalar forward
        # post would); X select with a known data leg disagreeing with
        # the known output forces the select to the other leg.
        kn0 = co ^ vo
        m1 = sel1 & co
        if m1:
            self._post(db, m1 & vo, m1 & kn0)
        m0 = sel0 & co
        if m0:
            self._post(da, m0 & vo, m0 & kn0)
        sel_pick = sel_x & co
        if sel_pick:
            m_sel1 = sel_pick & c0 & (v0 ^ vo)
            if m_sel1:
                self._post(sel, m_sel1, 0)
            m_sel0 = sel_pick & c1 & (v1 ^ vo)
            if m_sel0:
                self._post(sel, 0, m_sel0)
