"""Subpackage repro.atpg."""
