"""Transition-delay fault test generation and multi-cycle relaxation.

The paper's introduction lists "ATPG for delay faults" among the users of
multi-cycle information, citing Lai/Krstic/Cheng's functionally testable
path delay faults [10].  This module realises that connection:

* **Test generation** — a *slow-to-rise* (or *slow-to-fall*) fault at node
  ``n`` is tested launch-on-capture style over the 2-frame expansion: the
  first frame sets ``n`` to the initial value, the second frame sets it to
  the final value *and* propagates the (late) transition to an observation
  point — encoded as the frame-2 stuck-at miter at the initial value, so
  the whole machinery reuses the implication engine and justification
  search.

* **Relaxation classification** — a transition fault is *multi-cycle
  relaxed* when every FF pair whose combinational cone contains the fault
  site is a detected multi-cycle pair (and the site feeds no primary
  output or single-cycle cone): its extra delay only matters against the
  relaxed k-period budget, so the at-speed test need not run at the base
  clock.  This is exactly what multi-cycle knowledge buys a delay-fault
  flow.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from enum import Enum

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit
from repro.circuit.timeframe import TimeFrameExpansion, expand
from repro.logic.values import ONE, X, ZERO
from repro.atpg.implication import ImplicationEngine
from repro.atpg.justify import SearchStatus, justify
from repro.atpg.stuckat import build_fault_miter
from repro.core.result import DetectionResult


@dataclass(frozen=True)
class TransitionFault:
    """Slow-to-rise (``rising=True``) or slow-to-fall fault at a node."""

    node: int
    rising: bool

    def name(self, circuit: Circuit) -> str:
        kind = "STR" if self.rising else "STF"
        return f"{circuit.names[self.node]}/{kind}"

    @property
    def initial_value(self) -> int:
        return ZERO if self.rising else ONE

    @property
    def final_value(self) -> int:
        return ONE if self.rising else ZERO


class TransitionStatus(Enum):
    """Outcome of transition-fault test generation."""

    DETECTED = "detected"
    UNTESTABLE = "untestable"
    ABORTED = "aborted"


@dataclass
class TransitionResult:
    fault: TransitionFault
    status: TransitionStatus
    #: launch-on-capture pattern over the 2-frame expansion's free inputs
    pattern: dict[int, int] | None = None


@dataclass
class TransitionReport:
    circuit: Circuit
    results: list[TransitionResult]
    total_seconds: float

    def by_status(self, status: TransitionStatus) -> list[TransitionResult]:
        return [r for r in self.results if r.status is status]

    @property
    def coverage(self) -> float:
        """Detected / testable."""
        untestable = len(self.by_status(TransitionStatus.UNTESTABLE))
        testable = len(self.results) - untestable
        if testable == 0:
            return 1.0
        return len(self.by_status(TransitionStatus.DETECTED)) / testable


def enumerate_transition_faults(circuit: Circuit) -> list[TransitionFault]:
    """Both transition faults on every PI, FF output and gate output."""
    sites = [
        n
        for n in range(circuit.num_nodes)
        if circuit.types[n] not in (GateType.OUTPUT, GateType.CONST0,
                                    GateType.CONST1)
    ]
    return [
        TransitionFault(node, rising)
        for node in sites
        for rising in (True, False)
    ]


class TransitionAtpg:
    """Launch-on-capture transition ATPG over a shared 2-frame expansion."""

    def __init__(self, circuit: Circuit, backtrack_limit: int = 200) -> None:
        self.circuit = circuit
        self.backtrack_limit = backtrack_limit
        self.expansion: TimeFrameExpansion = expand(circuit, frames=2)
        comb = self.expansion.comb
        # Observation in the *capture* frame: frame-2 POs and state at t+2.
        observe = list(self.expansion.po_at[1])
        observe = [comb.fanins[po][0] for po in observe]
        observe.extend(self.expansion.ff_at[2])
        self._observe = list(dict.fromkeys(observe))

    def generate_test(self, fault: TransitionFault) -> TransitionResult:
        """Find a launch-on-capture pattern pair or prove none exists."""
        comb = self.expansion.comb
        site_launch = self.expansion.node_at[0][fault.node]
        site_capture = self.expansion.node_at[1][fault.node]
        # A late transition behaves like the site stuck at its initial
        # value during the capture cycle.
        miter, out_node = build_fault_miter(
            comb, site_capture, fault.initial_value, self._observe
        )
        engine = ImplicationEngine(miter)
        ok = engine.assume_all([
            (miter_node(miter, comb, site_launch), fault.initial_value),
            (miter_node(miter, comb, site_capture), fault.final_value),
            (out_node, ONE),
        ])
        if not ok:
            return TransitionResult(fault, TransitionStatus.UNTESTABLE)
        result = justify(engine, self.backtrack_limit)
        if result.status is SearchStatus.UNSAT:
            return TransitionResult(fault, TransitionStatus.UNTESTABLE)
        if result.status is SearchStatus.ABORTED:
            return TransitionResult(fault, TransitionStatus.ABORTED)
        pattern = {}
        for node in comb.inputs:
            value = result.witness.get(miter.id_of(comb.names[node]), X)
            pattern[node] = ZERO if value == X else value
        return TransitionResult(fault, TransitionStatus.DETECTED, pattern)

    def run(self, faults: list[TransitionFault] | None = None
            ) -> TransitionReport:
        started = time.perf_counter()
        if faults is None:
            faults = enumerate_transition_faults(self.circuit)
        results = [self.generate_test(fault) for fault in faults]
        return TransitionReport(
            self.circuit, results, time.perf_counter() - started
        )


def miter_node(miter: Circuit, comb: Circuit, node: int) -> int:
    """The miter's copy of an expansion node (good side, same name)."""
    return miter.id_of(comb.names[node])


def relaxable_fault_sites(
    circuit: Circuit, detection: DetectionResult
) -> set[int]:
    """Nodes whose transition faults only matter against relaxed budgets.

    A site ``n`` qualifies when every register-to-register path through it
    has a multi-cycle budget and no unrelaxed path exists, i.e.

    * for every pair (source FF, sink FF) with ``n`` on a path between
      them — source in ``n``'s fanin cone, ``n`` in the sink's D cone —
      the pair is a detected multi-cycle pair,
    * ``n`` lies on at least one such register-to-register path,
    * ``n`` does not reach a primary output combinationally, and
    * ``n`` is not combinationally reachable from a primary input
      (PI-to-FF and FF-to-PO paths keep their single-cycle budget —
      FF-pair analysis says nothing about them).
    """
    multi_cycle = {
        (p.pair.source, p.pair.sink) for p in detection.multi_cycle_pairs
    }

    # Per-node DFF support and PI reachability by one topological DP.
    sources: list[frozenset[int]] = [frozenset()] * circuit.num_nodes
    pi_reachable = [False] * circuit.num_nodes
    for node in circuit.topo_order():
        gate_type = circuit.types[node]
        if gate_type == GateType.DFF:
            sources[node] = frozenset({node})
        elif gate_type == GateType.INPUT:
            pi_reachable[node] = True
        elif gate_type in (GateType.CONST0, GateType.CONST1):
            pass
        else:
            merged: set[int] = set()
            for fanin in circuit.fanins[node]:
                merged |= sources[fanin]
                pi_reachable[node] = pi_reachable[node] or pi_reachable[fanin]
            sources[node] = frozenset(merged)

    po_cone: set[int] = set()
    for po in circuit.outputs:
        po_cone |= circuit.transitive_fanin([circuit.fanins[po][0]])

    relaxable: set[int] = set()
    blocked: set[int] = set()
    on_some_path: set[int] = set()
    for sink in circuit.dffs:
        cone = circuit.transitive_fanin([circuit.next_state_node(sink)])
        for node in cone:
            relevant = sources[node]
            if not relevant:
                continue
            on_some_path.add(node)
            if any((source, sink) not in multi_cycle for source in relevant):
                blocked.add(node)
    for node in on_some_path:
        if node in blocked or node in po_cone or pi_reachable[node]:
            continue
        relaxable.add(node)
    return relaxable


@dataclass
class RelaxationSummary:
    total_faults: int
    detected: int
    untestable: int
    aborted: int
    #: detected faults whose site timing is covered by multi-cycle budgets
    relaxed: int


def transition_relaxation_summary(
    circuit: Circuit,
    detection: DetectionResult,
    backtrack_limit: int = 200,
) -> RelaxationSummary:
    """The [10]-flavoured experiment: how many transition faults need
    at-speed testing only against a relaxed (multi-cycle) clock?"""
    atpg = TransitionAtpg(circuit, backtrack_limit)
    report = atpg.run()
    relaxable = relaxable_fault_sites(circuit, detection)
    relaxed = sum(
        1
        for result in report.by_status(TransitionStatus.DETECTED)
        if result.fault.node in relaxable
    )
    return RelaxationSummary(
        total_faults=len(report.results),
        detected=len(report.by_status(TransitionStatus.DETECTED)),
        untestable=len(report.by_status(TransitionStatus.UNTESTABLE)),
        aborted=len(report.by_status(TransitionStatus.ABORTED)),
        relaxed=relaxed,
    )
