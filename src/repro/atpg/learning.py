"""Static learning of global implications (SOCRATES [11] style).

Local implications only see one gate at a time; *static learning*
pre-computes global relations of the form ``m = w  ⇒  n = v`` that local
rules cannot derive.  The classic recipe: for every node ``n`` and value
``v``, assume ``n = v``, run the implication procedure and record each
derived assignment ``m = w``; by contraposition ``m = ¬w ⇒ n = ¬v`` holds
and is worth remembering exactly when the implication engine cannot derive
it on its own.

The paper enables static learning for the handful of circuits that need
large backtrack limits (s9234, s13207, prolog, ...); it is likewise
optional here (``DetectorOptions.static_learning``) because the quadratic
pre-pass only pays off when ATPG would otherwise thrash.
"""

from __future__ import annotations

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit
from repro.logic.values import BINARY
from repro.atpg.implication import ImplicationEngine


def learn_static_implications(
    circuit: Circuit,
    max_consequents_per_key: int = 16,
    check_redundant: bool = True,
) -> dict[tuple[int, int], list[tuple[int, int]]]:
    """Pre-compute a learned-implication table for ``circuit``.

    Returns a mapping ``(node, value) -> [(node, value), ...]`` suitable for
    :class:`~repro.atpg.implication.ImplicationEngine`'s ``learned``
    argument.  With ``check_redundant`` (the SOCRATES learning criterion in
    its practical form) a contrapositive is kept only when a fresh
    implication run from its antecedent fails to reproduce it, so the table
    holds genuinely *global* knowledge.
    """
    engine = ImplicationEngine(circuit)
    learned: dict[tuple[int, int], list[tuple[int, int]]] = {}
    candidates: list[tuple[int, int, int, int]] = []

    skip_types = (GateType.CONST0, GateType.CONST1)
    for node in range(circuit.num_nodes):
        if circuit.types[node] in skip_types:
            continue
        for value in BINARY:
            mark = engine.checkpoint()
            before = engine.assignment.num_assigned()
            ok = engine.assume(node, value)
            if ok:
                for derived, derived_value in engine.assignment.assigned_since(before):
                    if derived == node:
                        continue
                    # Contrapositive: derived = !derived_value  =>  node = !value.
                    candidates.append((derived, 1 - derived_value, node, 1 - value))
            engine.backtrack(mark)
            # A failed assumption means node is constant; local implication
            # rediscovers that instantly, so nothing needs to be learned.

    for antecedent, antecedent_value, consequent, consequent_value in candidates:
        key = (antecedent, antecedent_value)
        bucket = learned.get(key)
        if bucket is not None and len(bucket) >= max_consequents_per_key:
            continue
        if check_redundant:
            mark = engine.checkpoint()
            ok = engine.assume(antecedent, antecedent_value)
            already = ok and engine.value(consequent) == consequent_value
            engine.backtrack(mark)
            if already or not ok:
                continue
        entry = (consequent, consequent_value)
        if bucket is None:
            learned[key] = [entry]
        elif entry not in bucket:
            bucket.append(entry)

    return learned


def count_learned(learned) -> int:
    """Total number of learned implication entries (for reports/tests).

    Accepts both the plain dict table built here and the compiled
    :class:`~repro.analysis.implication_db.ImplicationDB` (which exposes
    its edge count directly).
    """
    edges = getattr(learned, "num_edges", None)
    if edges is not None:
        return edges
    return sum(len(v) for v in learned.values())
