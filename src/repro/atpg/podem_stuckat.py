"""Textbook PODEM stuck-at test generation over the D-calculus.

The second classic ATPG formulation (next to the miter-based one in
:mod:`repro.atpg.stuckat`): decisions are made on primary inputs only,
the circuit is 5-valued-simulated forward after each decision, and the
objective alternates between *activating* the fault (drive the site to
the complement of the stuck value) and *propagating* the D through a
D-frontier gate by setting its X side inputs non-controlling.  Objectives
are backtraced through X lines to an unassigned input; conflicts flip the
last decision, two conflicts backtrack.

Both generators must agree fault-for-fault (DETECTED/REDUNDANT); the test
suite enforces that, making each a differential check of the other.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.gates import CONTROLLING, GateType
from repro.circuit.netlist import Circuit
from repro.circuit.timeframe import TimeFrameExpansion, expand
from repro.logic.dvalues import (
    D,
    DValue,
    V0,
    V1,
    VX,
    eval_gate5,
    is_error,
)
from repro.logic.values import ONE, X, ZERO
from repro.atpg.stuckat import Fault, FaultResult, FaultStatus


@dataclass
class _Decision:
    node: int
    value: int
    flipped: bool = False


class PodemStuckAtAtpg:
    """PODEM over the 1-frame expansion (full-scan, like the miter ATPG)."""

    def __init__(self, circuit: Circuit, backtrack_limit: int = 500) -> None:
        self.circuit = circuit
        self.backtrack_limit = backtrack_limit
        self.expansion: TimeFrameExpansion = expand(circuit, frames=1)
        comb = self.expansion.comb
        self._order = [
            n for n in comb.topo_order()
            if comb.types[n] not in (GateType.INPUT,)
        ]
        observe = [comb.fanins[po][0] for po in comb.outputs]
        observe.extend(self.expansion.ff_at[1])
        self._observe = list(dict.fromkeys(observe))

    # ------------------------------------------------------------------
    def _simulate(self, assignment: dict[int, int], site: int, stuck: int
                  ) -> list[DValue]:
        comb = self.expansion.comb
        values: list[DValue] = [VX] * comb.num_nodes
        for node in comb.inputs:
            bit = assignment.get(node, X)
            values[node] = (bit, bit)
        if site in comb.inputs:
            good = assignment.get(site, X)
            values[site] = (good, stuck)
        for node in self._order:
            gate_type = comb.types[node]
            if gate_type == GateType.CONST0:
                value: DValue = V0
            elif gate_type == GateType.CONST1:
                value = V1
            else:
                value = eval_gate5(
                    gate_type, [values[f] for f in comb.fanins[node]]
                )
            if node == site:
                value = (value[0], stuck)
            values[node] = value
        return values

    def _d_frontier(self, values: list[DValue]) -> list[int]:
        comb = self.expansion.comb
        frontier = []
        for node in self._order:
            if values[node][0] != X and values[node][1] != X:
                continue
            if any(is_error(values[f]) for f in comb.fanins[node]):
                frontier.append(node)
        return frontier

    def _objective(self, values: list[DValue], site: int, stuck: int
                   ) -> tuple[int, int] | None:
        """Next (node, good-value) objective, or None when stuck."""
        comb = self.expansion.comb
        site_value = values[site]
        if site_value[0] == X:
            return site, 1 - stuck  # activate the fault
        if site_value[0] == stuck:
            return None  # activation contradicted: hopeless under this cube
        if not is_error(site_value):
            return None
        for gate in self._d_frontier(values):
            gate_type = comb.types[gate]
            entry = CONTROLLING.get(gate_type)
            if entry is not None:
                controlling, _ = entry
                for fanin in comb.fanins[gate]:
                    if values[fanin] == VX:
                        return fanin, 1 - controlling
                continue
            if gate_type == GateType.MUX:
                select, d0, d1 = comb.fanins[gate]
                if values[select] == VX:
                    error_on = d1 if is_error(values[d1]) else d0
                    return select, (ONE if error_on == d1 else ZERO)
                for fanin in (d0, d1):
                    if values[fanin] == VX:
                        return fanin, ZERO
                continue
            # XOR/XNOR/NOT/BUF propagate unconditionally once inputs known.
            for fanin in comb.fanins[gate]:
                if values[fanin] == VX:
                    return fanin, ZERO
        return None

    def _backtrace(self, values: list[DValue], node: int, value: int
                   ) -> tuple[int, int] | None:
        comb = self.expansion.comb
        while comb.types[node] != GateType.INPUT:
            gate_type = comb.types[node]
            fanins = comb.fanins[node]
            entry = CONTROLLING.get(gate_type)
            if entry is not None:
                controlling, inverted = entry
                needed = value ^ inverted
                nxt = next(
                    (f for f in fanins if values[f][0] == X), None
                )
                if nxt is None:
                    return None
                node, value = nxt, needed
            elif gate_type == GateType.NOT:
                node, value = fanins[0], value ^ 1
            elif gate_type in (GateType.BUF, GateType.OUTPUT):
                node = fanins[0]
            elif gate_type in (GateType.XOR, GateType.XNOR):
                parity = 1 if gate_type == GateType.XNOR else 0
                unknown = None
                for fanin in fanins:
                    component = values[fanin][0]
                    if component == X and unknown is None:
                        unknown = fanin
                    elif component != X:
                        parity ^= component
                if unknown is None:
                    return None
                node, value = unknown, value ^ parity
            elif gate_type == GateType.MUX:
                select, d0, d1 = fanins
                if values[select][0] == X:
                    node, value = select, ZERO
                else:
                    node = d1 if values[select][0] == ONE else d0
            else:  # constants
                return None
        if values[node][0] != X:
            return None
        return node, value

    # ------------------------------------------------------------------
    def generate_test(self, fault: Fault) -> FaultResult:
        comb = self.expansion.comb
        site = self.expansion.node_at[0][fault.node]
        stuck = fault.stuck_value
        assignment: dict[int, int] = {}
        stack: list[_Decision] = []
        backtracks = 0

        while True:
            values = self._simulate(assignment, site, stuck)
            if any(is_error(values[o]) for o in self._observe):
                pattern = {
                    node: assignment.get(node, ZERO) for node in comb.inputs
                }
                return FaultResult(fault, FaultStatus.DETECTED, pattern)
            objective = self._objective(values, site, stuck)
            decision = None
            if objective is not None:
                decision = self._backtrace(values, *objective)
            if decision is None:
                # Dead end: flip the most recent unflipped decision.
                while stack:
                    last = stack[-1]
                    backtracks += 1
                    if backtracks > self.backtrack_limit:
                        return FaultResult(fault, FaultStatus.ABORTED)
                    if last.flipped:
                        del assignment[last.node]
                        stack.pop()
                        continue
                    last.flipped = True
                    last.value ^= 1
                    assignment[last.node] = last.value
                    break
                else:
                    return FaultResult(fault, FaultStatus.REDUNDANT)
                continue
            node, value = decision
            assignment[node] = value
            stack.append(_Decision(node, value))

    def run(self, faults: list[Fault] | None = None):
        from repro.atpg.stuckat import AtpgReport, enumerate_faults
        import time

        started = time.perf_counter()
        if faults is None:
            faults = enumerate_faults(self.circuit)
        results = [self.generate_test(fault) for fault in faults]
        return AtpgReport(self.circuit, results, time.perf_counter() - started)
