"""Bit-parallel stuck-at fault simulation and fault-dropping ATPG.

Test generation is only half of a test flow; the other half is *fault
simulation* — given patterns, which faults do they catch?  This module
simulates one fault against 64·`words` packed patterns at a time (the
same uint64 machinery as the random filter) by re-evaluating only the
fault site's fanout cone, and uses it two ways:

* :func:`fault_simulate` — coverage of a pattern set over a fault list;
* :class:`DroppingAtpg` — the classic accelerated flow: generate a test
  for the first undetected fault, fault-simulate the pattern against all
  remaining faults, drop everything it detects, repeat.  Produces far
  fewer patterns than one-per-fault generation while detecting the same
  faults (asserted against the plain generator in the tests).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit
from repro.logic.bitsim import BitSimulator
from repro.atpg.stuckat import (
    AtpgReport,
    Fault,
    FaultResult,
    FaultStatus,
    StuckAtAtpg,
    enumerate_faults,
)

_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


def _pack_patterns(comb: Circuit, patterns: list[dict[int, int]]) -> np.ndarray:
    """Pack per-pattern input dicts into a (num_nodes, words) uint64 array."""
    words = (len(patterns) + 63) // 64
    packed = np.zeros((comb.num_nodes, words), dtype=np.uint64)
    for index, pattern in enumerate(patterns):
        word, bit = divmod(index, 64)
        mask = np.uint64(1 << bit)
        for node, value in pattern.items():
            if value:
                packed[node][word] |= mask
    return packed


class FaultSimulator:
    """Simulates faults of a sequential circuit's 1-frame expansion."""

    def __init__(self, atpg: StuckAtAtpg) -> None:
        self.atpg = atpg
        self.comb = atpg.expansion.comb
        self._observe = atpg._observe
        self._fanout_cache: dict[int, list[int]] = {}

    def _cone_order(self, site: int) -> list[int]:
        if site not in self._fanout_cache:
            cone = self.comb.transitive_fanout([site])
            self._fanout_cache[site] = [
                n for n in self.comb.topo_order()
                if n in cone and n != site
                and self.comb.types[n] not in (GateType.INPUT,)
            ]
        return self._fanout_cache[site]

    def detected_mask(
        self, good: BitSimulator, fault: Fault
    ) -> int:
        """Bitmask (as python int over all words) of patterns detecting
        ``fault``, given a good-circuit simulation ``good``."""
        comb = self.comb
        site = self.atpg.expansion.node_at[0][fault.node]
        words = good.words
        faulty = good.values.copy()
        faulty[site] = np.zeros(words, dtype=np.uint64) if not fault.stuck_value \
            else np.full(words, _ALL_ONES, dtype=np.uint64)

        types = comb.types
        fanins = comb.fanins
        for node in self._cone_order(site):
            gate_type = types[node]
            fins = fanins[node]
            if gate_type in (GateType.BUF, GateType.OUTPUT):
                faulty[node] = faulty[fins[0]]
            elif gate_type == GateType.NOT:
                faulty[node] = ~faulty[fins[0]]
            elif gate_type in (GateType.AND, GateType.NAND):
                acc = faulty[fins[0]].copy()
                for fanin in fins[1:]:
                    acc &= faulty[fanin]
                faulty[node] = ~acc if gate_type == GateType.NAND else acc
            elif gate_type in (GateType.OR, GateType.NOR):
                acc = faulty[fins[0]].copy()
                for fanin in fins[1:]:
                    acc |= faulty[fanin]
                faulty[node] = ~acc if gate_type == GateType.NOR else acc
            elif gate_type in (GateType.XOR, GateType.XNOR):
                acc = faulty[fins[0]].copy()
                for fanin in fins[1:]:
                    acc ^= faulty[fanin]
                faulty[node] = ~acc if gate_type == GateType.XNOR else acc
            elif gate_type == GateType.MUX:
                select = faulty[fins[0]]
                faulty[node] = (~select & faulty[fins[1]]) | (select & faulty[fins[2]])

        mask = 0
        for observe in self._observe:
            diff = good.values[observe] ^ faulty[observe]
            for word_index in range(words):
                mask |= int(diff[word_index]) << (64 * word_index)
        return mask


def fault_simulate(
    circuit: Circuit,
    patterns: list[dict[int, int]],
    faults: list[Fault] | None = None,
) -> dict[Fault, bool]:
    """Which of ``faults`` does the pattern set detect?

    Patterns are dicts over the 1-frame expansion's free-input node ids
    (the format the generators emit).
    """
    atpg = StuckAtAtpg(circuit)
    simulator = FaultSimulator(atpg)
    comb = atpg.expansion.comb
    if faults is None:
        faults = enumerate_faults(circuit)
    if not patterns:
        return {fault: False for fault in faults}

    words = (len(patterns) + 63) // 64
    good = BitSimulator(comb, words=words)
    good.values = _pack_patterns(comb, patterns)
    for node in comb.ids_of_type(GateType.CONST1):
        good.values[node] = _ALL_ONES
    good.comb_eval()

    valid_mask = (1 << len(patterns)) - 1
    return {
        fault: bool(simulator.detected_mask(good, fault) & valid_mask)
        for fault in faults
    }


@dataclass
class DroppingAtpgResult:
    report: AtpgReport
    #: the compacted test set (one dict per generated pattern)
    patterns: list[dict[int, int]]


class DroppingAtpg:
    """Generate-then-drop ATPG: each new pattern is fault-simulated
    against every remaining fault, so most faults never reach the
    generator."""

    def __init__(self, circuit: Circuit, backtrack_limit: int = 200) -> None:
        self.circuit = circuit
        self.atpg = StuckAtAtpg(circuit, backtrack_limit)

    def run(self, faults: list[Fault] | None = None) -> DroppingAtpgResult:
        started = time.perf_counter()
        if faults is None:
            faults = enumerate_faults(self.circuit)
        simulator = FaultSimulator(self.atpg)
        comb = self.atpg.expansion.comb

        results: dict[Fault, FaultResult] = {}
        patterns: list[dict[int, int]] = []
        remaining = list(faults)
        while remaining:
            fault = remaining.pop(0)
            result = self.atpg.generate_test(fault)
            results[fault] = result
            if result.status is not FaultStatus.DETECTED:
                continue
            patterns.append(result.pattern)
            # Drop every remaining fault this single pattern also detects.
            good = BitSimulator(comb, words=1)
            good.values = _pack_patterns(comb, [result.pattern])
            for node in comb.ids_of_type(GateType.CONST1):
                good.values[node] = _ALL_ONES
            good.comb_eval()
            still_remaining = []
            for other in remaining:
                if simulator.detected_mask(good, other) & 1:
                    results[other] = FaultResult(
                        other, FaultStatus.DETECTED, result.pattern
                    )
                else:
                    still_remaining.append(other)
            remaining = still_remaining

        ordered = [results[fault] for fault in faults]
        report = AtpgReport(self.circuit, ordered,
                            time.perf_counter() - started)
        return DroppingAtpgResult(report, patterns)
