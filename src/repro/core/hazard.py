"""Static-hazard validation of detected multi-cycle FF pairs (Section 5).

The MC condition only constrains *settled* values, so the non-path-based
detectors (ours, the SAT-based and the BDD-based ones) can be optimistic:
relaxing the timing of a pair whose sink can glitch may break the circuit
once a gate on the glitch path becomes slow.  This module re-validates each
detected multi-cycle pair:

for every assignment case whose premise is satisfiable (the source really
can toggle that way), it asks whether a path from the source's new value
(``FF_i(t+1)``, feeding the second time frame) to the sink's data input
(``FF_j(t+2)``) is statically sensitizable / co-sensitizable under that
case; if so, the transition may reach the sink as a static hazard and the
pair is *flagged* (dropped from the verified set).

The result reproduces the paper's Table 3 ordering:

    pairs(before) >= pairs(after sensitize) >= pairs(after co-sensitize)

because co-sensitization over-approximates the exact sensitization
condition (safe) while sensitization under-approximates it (optimistic,
and survivors may depend on one another — Section 5.2).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.circuit.gates import COMBINATIONAL_TYPES
from repro.circuit.netlist import Circuit
from repro.circuit.timeframe import TimeFrameExpansion, expand_cached
from repro.logic.values import BINARY
from repro.atpg.implication import ImplicationEngine
from repro.core.result import CaseOutcome, DetectionResult, PairResult
from repro.core.sensitization import (
    PathSearchOutcome,
    SensitizationMode,
    find_sensitizable_path,
)


@dataclass
class PairHazardReport:
    """Hazard verdict for one multi-cycle pair."""

    pair_result: PairResult
    has_potential_hazard: bool
    #: a witnessing (case, path-node-ids) when a hazard path was found
    witness_case: tuple[int, int] | None = None
    witness_path: list[int] | None = None
    #: True when a resource limit forced the conservative verdict
    limited: bool = False


@dataclass
class HazardCheckResult:
    """Aggregate over all multi-cycle pairs of a detection run."""

    mode: SensitizationMode
    reports: list[PairHazardReport]
    total_seconds: float

    @property
    def verified_pairs(self) -> list[PairResult]:
        """Multi-cycle pairs with no potential hazard under this mode."""
        return [r.pair_result for r in self.reports if not r.has_potential_hazard]

    @property
    def flagged_pairs(self) -> list[PairResult]:
        return [r.pair_result for r in self.reports if r.has_potential_hazard]


class HazardChecker:
    """Checks detected MC pairs for static hazards on a shared expansion."""

    def __init__(
        self,
        circuit: Circuit,
        mode: SensitizationMode = SensitizationMode.STATIC_CO_SENSITIZATION,
        backtrack_limit: int = 50,
        max_attempts: int = 5000,
        expansion: TimeFrameExpansion | None = None,
    ) -> None:
        self.circuit = circuit
        self.mode = mode
        self.backtrack_limit = backtrack_limit
        self.max_attempts = max_attempts
        if expansion is None:
            expansion = expand_cached(circuit, frames=2)
        elif expansion.frames < 2:
            raise ValueError("the hazard check needs a 2-frame expansion")
        self.expansion = expansion
        self.engine = ImplicationEngine(self.expansion.comb)
        # The hazard path must lie inside the second frame's combinational
        # logic (the cycle t+1 -> t+2 in which the relaxed propagation runs).
        self._frame2_nodes = frozenset(
            self.expansion.node_at[1][n]
            for n in range(circuit.num_nodes)
            if circuit.types[n] in COMBINATIONAL_TYPES
        )

    def check_pair(self, pair_result: PairResult) -> PairHazardReport:
        """Decide whether one multi-cycle pair may see a static hazard."""
        expansion = self.expansion
        pair = pair_result.pair
        source = expansion.ff_index(pair.source)
        sink = expansion.ff_index(pair.sink)
        ffi_t = expansion.ff_at[0][source]
        ffi_t1 = expansion.ff_at[1][source]
        ffj_t1 = expansion.ff_at[1][sink]
        ffj_t2 = expansion.ff_at[2][sink]

        limited = False
        for case in self._satisfiable_cases(pair_result):
            a, b = case
            mark = self.engine.checkpoint()
            premise = [(ffi_t, a), (ffi_t1, 1 - a), (ffj_t1, b), (ffj_t2, b)]
            if not self.engine.assume_all(premise):
                self.engine.backtrack(mark)
                continue
            result = find_sensitizable_path(
                self.engine,
                source=ffi_t1,
                target=ffj_t2,
                allowed=self._frame2_nodes,
                mode=self.mode,
                backtrack_limit=self.backtrack_limit,
                max_attempts=self.max_attempts,
            )
            self.engine.backtrack(mark)
            if result.outcome is PathSearchOutcome.FOUND:
                return PairHazardReport(
                    pair_result,
                    has_potential_hazard=True,
                    witness_case=case,
                    witness_path=result.path,
                )
            if result.outcome is PathSearchOutcome.UNKNOWN:
                limited = True
        if limited:
            # Resource limit: conservatively flag the pair.
            return PairHazardReport(pair_result, has_potential_hazard=True, limited=True)
        return PairHazardReport(pair_result, has_potential_hazard=False)

    @staticmethod
    def _satisfiable_cases(pair_result: PairResult) -> list[tuple[int, int]]:
        """Assignment cases whose premise is satisfiable.

        Contradiction cases cannot produce the transition at all; if the
        detector recorded no case data (e.g. the pair came from an external
        tool), every case is checked.
        """
        if not pair_result.cases:
            return [(a, b) for a in BINARY for b in BINARY]
        return [
            (c.a, c.b)
            for c in pair_result.cases
            if c.outcome in (CaseOutcome.IMPLIED_STABLE, CaseOutcome.PROVED_STABLE)
        ]


def check_hazards(
    circuit: Circuit,
    detection: DetectionResult,
    mode: SensitizationMode = SensitizationMode.STATIC_CO_SENSITIZATION,
    backtrack_limit: int = 50,
    max_attempts: int = 5000,
) -> HazardCheckResult:
    """Validate every multi-cycle pair of ``detection`` against hazards."""
    started = time.perf_counter()
    checker = HazardChecker(
        circuit, mode, backtrack_limit=backtrack_limit, max_attempts=max_attempts
    )
    reports = [checker.check_pair(p) for p in detection.multi_cycle_pairs]
    return HazardCheckResult(
        mode=mode, reports=reports, total_seconds=time.perf_counter() - started
    )


class HazardClass:
    """Three-way classification keys (see :func:`classify_hazards`)."""

    SAFE = "safe"
    HAZARDOUS = "hazardous"
    DEPENDENT = "dependent"


def classify_hazards(
    circuit: Circuit,
    detection: DetectionResult,
    backtrack_limit: int = 50,
    max_attempts: int = 5000,
) -> dict[str, list[PairResult]]:
    """Partition multi-cycle pairs per the paper's summary sentence.

    "One-tenth of the multi-cycle FF pairs ... may have static hazards at
    the input of FFs and three-tenth of them may depend on one another":

    * ``hazardous`` — flagged by the static *sensitization* check: a
      hazard path exists outright; the pair must not be relaxed.
    * ``dependent`` — clean under sensitization but flagged by
      *co-sensitization*: every would-be hazard path is blocked by a side
      input, so the pair is only safe as long as the blocking paths keep
      their own timing (§5.2's inter-pair dependency).
    * ``safe`` — clean under both conditions; relaxable unconditionally.
    """
    sensitize = check_hazards(
        circuit, detection, SensitizationMode.STATIC_SENSITIZATION,
        backtrack_limit=backtrack_limit, max_attempts=max_attempts,
    )
    cosensitize = check_hazards(
        circuit, detection, SensitizationMode.STATIC_CO_SENSITIZATION,
        backtrack_limit=backtrack_limit, max_attempts=max_attempts,
    )
    flagged_sens = {
        (r.pair_result.pair.source, r.pair_result.pair.sink)
        for r in sensitize.reports
        if r.has_potential_hazard
    }
    flagged_cosens = {
        (r.pair_result.pair.source, r.pair_result.pair.sink)
        for r in cosensitize.reports
        if r.has_potential_hazard
    }
    classes: dict[str, list[PairResult]] = {
        HazardClass.SAFE: [],
        HazardClass.HAZARDOUS: [],
        HazardClass.DEPENDENT: [],
    }
    for pair_result in detection.multi_cycle_pairs:
        key = (pair_result.pair.source, pair_result.pair.sink)
        if key in flagged_sens:
            classes[HazardClass.HAZARDOUS].append(pair_result)
        elif key in flagged_cosens:
            classes[HazardClass.DEPENDENT].append(pair_result)
        else:
            classes[HazardClass.SAFE].append(pair_result)
    return classes
