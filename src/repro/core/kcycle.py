"""k-cycle FF pair detection (the extension noted at the end of §4.1).

"Though this algorithm is to detect multi-cycle FF pairs, it can be easily
extended to detect k-cycle FF pairs (k = 3, 4, ...) by increasing the
number of time frames in Step 3."

A pair ``(FF_i, FF_j)`` is a *k-cycle pair* when a transition at the source
guarantees the sink stays stable for the next ``k`` clock edges::

    FF_i(t) != FF_i(t+1)  ==>  FF_j(t+1) = FF_j(t+2) = ... = FF_j(t+k)

so the paths may legally take up to ``k`` cycles.  ``k = 2`` coincides with
the MC condition.  The analysis expands ``k`` frames and checks the
violation ``∃ m: FF_j(t+m) != FF_j(t+m+1)`` case by case; in the paper's
Fig. 1 the pair (FF1, FF2) is a 3-cycle pair (its Gray counter needs three
clocks between the decoded launch and capture states) but not a 4-cycle
pair.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.circuit.netlist import Circuit, validate
from repro.circuit.timeframe import expand_cached
from repro.circuit.topology import FFPair
from repro.logic.values import BINARY
from repro.atpg.implication import ImplicationEngine
from repro.atpg.justify import SearchStatus, justify
from repro.core.result import Classification, PairResult, Stage
from repro.core.session import launch_runs
from repro.core.trace import ProgressFn, Tracer


@dataclass
class KCycleResult:
    pair: FFPair
    k: int
    classification: Classification


class KCycleAnalyzer:
    """Decides the k-cycle property on a shared k-frame expansion."""

    def __init__(
        self,
        circuit: Circuit,
        k: int,
        backtrack_limit: int = 50,
        expansion=None,
    ) -> None:
        if k < 2:
            raise ValueError("k must be >= 2")
        validate(circuit)
        if expansion is not None and expansion.frames < k:
            raise ValueError(f"k-cycle analysis needs a {k}-frame expansion")
        self.circuit = circuit
        self.k = k
        self.backtrack_limit = backtrack_limit
        self.expansion = (
            expansion if expansion is not None else expand_cached(circuit, frames=k)
        )
        self.engine = ImplicationEngine(self.expansion.comb)

    def analyze(self, pair: FFPair) -> KCycleResult:
        """Classify ``pair`` against the k-cycle condition."""
        return self.analyze_run([pair])[0][0]

    def analyze_run(
        self,
        pairs: Sequence[FFPair],
        clock: Callable[[], float] = time.perf_counter,
    ) -> list[tuple[KCycleResult, float]]:
        """Classify a run of same-source pairs, sharing the launch prefix.

        All ``pairs`` must share one launch FF.  The launch assumptions
        ``FF_i(t) = a, FF_i(t+1) = 1-a`` are propagated once per ``a``
        and reused by every pair's capture cases — the same confluence
        argument as :class:`~repro.core.session.DecisionSession`, so
        classifications match the one-pair-at-a-time flow exactly.
        Returns ``(result, seconds)`` with per-pair wall time (prefix
        propagation is billed to the pair that triggered it).
        """
        expansion = self.expansion
        engine = self.engine
        source = expansion.ff_index(pairs[0].source)
        ffi_t = expansion.ff_at[0][source]
        ffi_t1 = expansion.ff_at[1][source]
        sink_rows = []
        for pair in pairs:
            sink = expansion.ff_index(pair.sink)
            sink_rows.append(
                [expansion.ff_at[f][sink] for f in range(1, self.k + 1)]
            )

        verdicts: list[Classification | None] = [None] * len(pairs)
        seconds = [0.0] * len(pairs)
        for a in BINARY:
            prefix_mark = None
            prefix_ok = True
            for index, sink_nodes in enumerate(sink_rows):
                if verdicts[index] is not None:
                    continue
                started = clock()
                if prefix_mark is None:
                    prefix_mark = engine.checkpoint()
                    prefix_ok = engine.assume_all(
                        [(ffi_t, a), (ffi_t1, 1 - a)]
                    )
                if prefix_ok:
                    verdicts[index] = self._capture_cases(sink_nodes)
                # prefix contradiction: every b case is vacuous for the
                # whole run under this launch polarity.
                seconds[index] += clock() - started
            if prefix_mark is not None:
                engine.backtrack(prefix_mark)
        return [
            (
                KCycleResult(
                    pair, self.k, verdicts[index] or Classification.MULTI_CYCLE
                ),
                seconds[index],
            )
            for index, pair in enumerate(pairs)
        ]

    def _capture_cases(self, sink_nodes: list[int]) -> Classification | None:
        """Run both capture cases on top of an already-assumed launch.

        Returns a settling verdict, or ``None`` when neither case decides
        the pair under the current launch polarity."""
        engine = self.engine
        for b in BINARY:
            mark = engine.checkpoint()
            if not engine.assume(sink_nodes[0], b):
                engine.backtrack(mark)
                continue
            # Prove stability frame by frame: given the sink held ``b``
            # through t+m, no pattern may set FF_j(t+m+1) = !b.
            violated = False
            undecided = False
            for successor in sink_nodes[1:]:
                value = engine.value(successor)
                if value == b:
                    continue
                sub_mark = engine.checkpoint()
                can_flip = engine.assume(successor, 1 - b)
                if can_flip:
                    result = justify(engine, self.backtrack_limit)
                    if result.status is SearchStatus.SAT:
                        violated = True
                    elif result.status is SearchStatus.ABORTED:
                        undecided = True
                        violated = True  # conservative: stop this case
                engine.backtrack(sub_mark)
                if violated:
                    break
                # No justifiable flip exists.  Assume stability and move
                # on; if even that contradicts, the whole premise is
                # unsatisfiable and the case holds vacuously.
                if not engine.assume(successor, b):
                    break
            engine.backtrack(mark)
            if undecided:
                return Classification.UNDECIDED
            if violated:
                return Classification.SINGLE_CYCLE
        return None


def is_k_cycle_pair(
    circuit: Circuit, pair: FFPair, k: int, backtrack_limit: int = 50
) -> bool:
    """True when every path of ``pair`` may take up to ``k`` cycles."""
    result = KCycleAnalyzer(circuit, k, backtrack_limit).analyze(pair)
    return result.classification is Classification.MULTI_CYCLE


def max_cycles(
    circuit: Circuit,
    pair: FFPair,
    k_max: int = 8,
    backtrack_limit: int = 50,
) -> int:
    """Largest ``k <= k_max`` for which ``pair`` is a k-cycle pair.

    Returns 1 when the pair is not even a 2-cycle (multi-cycle) pair.  The
    k-cycle property is monotone (stability through t+k implies stability
    through t+k-1), so a linear scan upward is exact.
    """
    best = 1
    for k in range(2, k_max + 1):
        if not is_k_cycle_pair(circuit, pair, k, backtrack_limit):
            break
        best = k
    return best


@dataclass
class KCycleDetectionResult:
    """Outcome of the full k-cycle pipeline over one circuit."""

    circuit: Circuit
    k: int
    connected_pairs: int
    pair_results: list[KCycleResult]
    sim_dropped: int
    total_seconds: float

    @property
    def k_cycle_pairs(self) -> list[KCycleResult]:
        return [
            r for r in self.pair_results
            if r.classification is Classification.MULTI_CYCLE
        ]

    def k_cycle_pair_names(self) -> list[tuple[str, str]]:
        names = self.circuit.names
        return sorted(
            (names[r.pair.source], names[r.pair.sink])
            for r in self.k_cycle_pairs
        )


class KCycleDecider:
    """Pipeline decider wrapping :class:`KCycleAnalyzer`.

    Not in the global registry (it is parameterised by ``k``); the
    k-cycle detector passes an instance straight to its decision stage,
    which also makes it shardable across worker processes.
    """

    def __init__(self, k: int, backtrack_limit: int = 50) -> None:
        self.name = f"kcycle-{k}"
        self.k = k
        self.frames = k
        self.backtrack_limit = backtrack_limit

    def prepare(self, ctx) -> None:
        self._analyzer = KCycleAnalyzer(
            ctx.circuit, self.k, self.backtrack_limit,
            expansion=ctx.expansion(self.frames),
        )
        self._clock = ctx.clock

    def decide(self, pair: FFPair) -> PairResult:
        result = self._analyzer.analyze(pair)
        return PairResult(pair, result.classification, Stage.DECISION)

    def decide_group(self, pairs: Sequence[FFPair]):
        """Settle a chunk, sharing launch prefixes within same-source runs."""
        decided = []
        for start, end in launch_runs(pairs):
            for result, seconds in self._analyzer.analyze_run(
                pairs[start:end], clock=self._clock
            ):
                decided.append(
                    (
                        PairResult(result.pair, result.classification,
                                   Stage.DECISION),
                        seconds,
                    )
                )
        return decided


class KCycleDetector:
    """Full pipeline for k-cycle pairs: structural filter, k-frame random
    simulation, then implication/ATPG on a shared k-frame expansion —
    the paper's Step-3 extension applied to the whole flow.

    Runs on the staged pipeline of :mod:`repro.core.pipeline`, so it
    inherits the parallel executor (``workers``) and the structured
    trace layer for free."""

    def __init__(
        self,
        circuit: Circuit,
        k: int,
        backtrack_limit: int = 50,
        sim_words: int = 4,
        sim_max_rounds: int = 256,
        sim_seed: int = 2002,
        sim_plan: str = "compiled",
        sim_round_batch: int = 8,
        include_self_loops: bool = True,
        workers: int = 1,
        parallel_threshold: int = 128,
        chunk_pairs: int = 0,
        streaming: str = "auto",
        max_pairs_in_flight: int = 8192,
        tracer: Tracer | None = None,
        progress: ProgressFn | None = None,
    ) -> None:
        if k < 2:
            raise ValueError("k must be >= 2")
        validate(circuit)
        self.circuit = circuit
        self.k = k
        self.backtrack_limit = backtrack_limit
        self.sim_words = sim_words
        self.sim_max_rounds = sim_max_rounds
        self.sim_seed = sim_seed
        self.sim_plan = sim_plan
        self.sim_round_batch = sim_round_batch
        self.include_self_loops = include_self_loops
        self.workers = workers
        self.parallel_threshold = parallel_threshold
        self.chunk_pairs = chunk_pairs
        self.streaming = streaming
        self.max_pairs_in_flight = max_pairs_in_flight
        self.tracer = tracer
        self.progress = progress

    def run(self) -> KCycleDetectionResult:
        from repro.core.pipeline import (
            AnalysisContext,
            DecisionStage,
            DetectorOptions,
            Pipeline,
            RandomFilterStage,
            TopologyStage,
        )
        from repro.core.streaming import StreamingStage, streaming_enabled

        options = DetectorOptions(
            sim_words=self.sim_words,
            sim_max_rounds=self.sim_max_rounds,
            sim_seed=self.sim_seed,
            sim_plan=self.sim_plan,
            sim_round_batch=self.sim_round_batch,
            backtrack_limit=self.backtrack_limit,
            include_self_loops=self.include_self_loops,
            workers=self.workers,
            parallel_threshold=self.parallel_threshold,
            chunk_pairs=self.chunk_pairs,
            streaming=self.streaming,
            max_pairs_in_flight=self.max_pairs_in_flight,
        )
        ctx = AnalysisContext(
            self.circuit, options, tracer=self.tracer, progress=self.progress
        )
        decider = KCycleDecider(self.k, self.backtrack_limit)
        if streaming_enabled(options, self.circuit):
            pipeline = Pipeline([StreamingStage(decider, frames=self.k)])
        else:
            pipeline = Pipeline([
                TopologyStage(),
                RandomFilterStage(frames=self.k),
                DecisionStage(decider),
            ])
        detection = pipeline.run(ctx)
        results = [
            KCycleResult(r.pair, self.k, r.classification)
            for r in detection.pair_results
        ]
        return KCycleDetectionResult(
            circuit=self.circuit,
            k=self.k,
            connected_pairs=detection.connected_pairs,
            pair_results=results,
            sim_dropped=detection.stats[Stage.SIMULATION].single_cycle,
            total_seconds=detection.total_seconds,
        )
