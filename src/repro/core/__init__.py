"""Subpackage repro.core."""
