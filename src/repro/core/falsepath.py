"""Per-path sensitization analysis (the §2.3 definitions as an API).

The detector never enumerates paths, but the sensitization conditions it
uses for hazard checking are defined *per path* (Definitions in §2.3):

* a path is **statically sensitizable** if some input vector sets every
  side input along it to its non-controlling value;
* a path is **statically co-sensitizable** (to 0 or 1) if some vector
  makes every controlled gate on the path receive its controlling value
  on the on-input;
* a path that is not even statically co-sensitizable is a **false path**
  in the floating-mode sense — no delay assignment can make it the one
  that determines the output (statically co-sensitizable is an upper
  bound of exact sensitization, §2.3).

Combined with :mod:`repro.circuit.paths` this module classifies the
concrete paths of an FF pair — the classic false-path analysis the paper
positions itself against (path-based methods explode; this API is for
inspecting individual paths, not for whole-circuit analysis).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.circuit.netlist import Circuit
from repro.circuit.paths import Path, paths_between
from repro.circuit.topology import FFPair
from repro.atpg.implication import ImplicationEngine
from repro.atpg.justify import SearchStatus, justify
from repro.core.sensitization import SensitizationMode, _extension_options


class PathClass(Enum):
    """Sensitization classification of one concrete path."""

    STATICALLY_SENSITIZABLE = "statically-sensitizable"
    CO_SENSITIZABLE_ONLY = "co-sensitizable-only"
    FALSE = "false"
    UNKNOWN = "unknown"


@dataclass
class PathVerdict:
    path: Path
    classification: PathClass
    #: satisfying input vector for the strongest condition met, if any
    witness: dict[int, int] | None = None


def _check_condition(
    circuit: Circuit,
    path: Path,
    mode: SensitizationMode,
    backtrack_limit: int,
) -> tuple[bool | None, dict[int, int] | None]:
    """Does some vector satisfy ``mode`` along the concrete ``path``?

    Returns (verdict, witness); verdict ``None`` means the search aborted.
    """
    engine = ImplicationEngine(circuit)
    nodes = path.nodes
    aborted = False

    def walk(position: int) -> tuple[bool, dict[int, int] | None]:
        nonlocal aborted
        if position == len(nodes) - 1:
            result = justify(engine, backtrack_limit)
            if result.status is SearchStatus.SAT:
                return True, result.witness
            if result.status is SearchStatus.ABORTED:
                aborted = True
            return False, None
        via = nodes[position]
        gate = nodes[position + 1]
        options = _extension_options(engine, gate, via, mode)
        if options is None:
            options = [[]]
        for option in options:
            mark = engine.checkpoint()
            if engine.assume_all(option):
                found, witness = walk(position + 1)
                if found:
                    return True, witness
            engine.backtrack(mark)
        return False, None

    found, witness = walk(0)
    if found:
        return True, witness
    return (None if aborted else False), None


def classify_path(
    circuit: Circuit, path: Path, backtrack_limit: int = 1000
) -> PathVerdict:
    """Classify one concrete combinational path of ``circuit``.

    The path must run through combinational nodes (e.g. obtained from
    :func:`repro.circuit.paths.paths_between`).  Classification is by the
    strongest satisfied condition: statically sensitizable > statically
    co-sensitizable only > false.
    """
    if len(path.nodes) < 2:
        # A bare wire has no side inputs: trivially sensitizable.
        return PathVerdict(path, PathClass.STATICALLY_SENSITIZABLE, {})

    sensitizable, witness = _check_condition(
        circuit, path, SensitizationMode.STATIC_SENSITIZATION, backtrack_limit
    )
    if sensitizable:
        return PathVerdict(path, PathClass.STATICALLY_SENSITIZABLE, witness)

    co_sensitizable, witness = _check_condition(
        circuit, path, SensitizationMode.STATIC_CO_SENSITIZATION,
        backtrack_limit,
    )
    if co_sensitizable:
        return PathVerdict(path, PathClass.CO_SENSITIZABLE_ONLY, witness)
    if sensitizable is None or co_sensitizable is None:
        return PathVerdict(path, PathClass.UNKNOWN)
    return PathVerdict(path, PathClass.FALSE)


def classify_pair_paths(
    circuit: Circuit,
    pair: FFPair,
    max_paths: int = 100,
    backtrack_limit: int = 1000,
) -> list[PathVerdict]:
    """Classify (up to ``max_paths``) paths of an FF pair."""
    return [
        classify_path(circuit, path, backtrack_limit)
        for path in paths_between(circuit, pair, max_paths)
    ]


def false_path_fraction(
    circuit: Circuit, pair: FFPair, max_paths: int = 100
) -> float:
    """Fraction of a pair's (enumerated) paths that are false paths."""
    verdicts = classify_pair_paths(circuit, pair, max_paths)
    if not verdicts:
        return 0.0
    false = sum(1 for v in verdicts if v.classification is PathClass.FALSE)
    return false / len(verdicts)
