"""Streaming launch-group execution: the pipeline with bounded memory.

The staged pipeline of :mod:`repro.core.pipeline` materializes every
connected FF pair up front and runs each stage over the full set — fine
up to a few thousand flip-flops, an O(FF²) wall beyond that.  The
:class:`StreamingStage` here runs the same four stages *launch group by
launch group*:

1. **Topology** never builds the pair list.  The connected relation
   lives in the packed sink-reach matrix
   (:func:`~repro.circuit.topology.sink_reach`, built in fixed-size
   source blocks above a size threshold) and is enumerated one launching
   FF at a time by
   :func:`~repro.circuit.topology.iter_launch_groups`.
2. **Random simulation** stays a single global pass — the paper's
   quiet-round stopping rule depends on the whole alive set, so a
   per-group filter would change stage attribution.  It runs over the
   packed pair matrix (:func:`~repro.core.random_filter.random_filter_packed`)
   sharing the exact super-round/RNG skeleton with the pair-list filter,
   which makes the dropped set bit-identical without any per-pair array.
3. **Decide** folds each launch group's survivors as soon as they are
   settled — in process, or via the work-stealing queue
   (:mod:`repro.core.workqueue`) with a cap on pairs in flight
   (``options.max_pairs_in_flight``).
4. **Hazard** validation (when enabled) runs per fold over the group's
   fresh multi-cycle results instead of a final full-set sweep.

Pair records, classification counters, session totals and hazard
counters are identical to the staged path — the differential tests in
``tests/core/test_streaming.py`` pin ``pair_records`` byte for byte.
What changes is the lifecycle: per-pair state exists only between a
group's enumeration and its fold, so peak memory is bounded by the
packed matrices plus the final per-pair records, never by intermediate
pair lists.  Each fold emits a ``launch_group`` trace event
(``group_index`` / ``groups_total`` / pairs folded so far), so long runs
show streaming progress instead of a silent decide stage.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.circuit.netlist import Circuit
from repro.circuit.topology import (
    FFPair,
    iter_launch_groups,
    launch_group_stats,
    sink_reach,
)
from repro.core.deciders import PairDecider, create_decider
from repro.core.hazard import HazardChecker
from repro.core.pipeline import (
    AnalysisContext,
    DetectorOptions,
    Pipeline,
    PipelineState,
    _auto_chunk_size,
    _emit_pair,
    backplane_summary,
    load_gate_delays,
    merge_session_stats,
    packed_summary,
    publish_backplane,
)
from repro.core.random_filter import random_filter_packed
from repro.core.result import (
    Classification,
    Disagreement,
    PairHazardVerdict,
    PairResult,
    Stage,
)
from repro.core.sensitization import mode_from_flag
from repro.core.ternary_hazard import TernaryHazardChecker
from repro.core.workqueue import launch_units, split_threshold

#: "auto" streaming selects the streaming pipeline at this many
#: flip-flops; below it the staged path's simplicity wins (and the
#: existing bench corpus keeps its stage-by-stage timings).
STREAMING_AUTO_DFFS = 600


def streaming_enabled(options: DetectorOptions, circuit: Circuit) -> bool:
    """Resolve ``options.streaming`` ("auto"/"on"/"off") for a circuit."""
    mode = options.streaming
    if mode == "on":
        return True
    if mode == "off":
        return False
    if mode != "auto":
        raise ValueError(f"unknown streaming mode {mode!r}")
    return len(circuit.dffs) >= STREAMING_AUTO_DFFS


def streaming_pipeline(
    decider: str | PairDecider | None = None, frames: int = 2
) -> Pipeline:
    """The paper's flow as one streaming launch-group stage."""
    return Pipeline([StreamingStage(decider, frames=frames)])


class StreamingStage:
    """Topology → random-sim → decide → hazard, one launch group at a time.

    A drop-in replacement for the four staged classes: it reads and
    fills the same :class:`~repro.core.pipeline.PipelineState` fields,
    so :class:`~repro.core.pipeline.Pipeline` result assembly (sorting,
    ``DetectionResult`` construction, trace envelope) is shared.
    ``frames=2`` is the MC condition; larger values give the k-cycle
    variant (pass the matching k-frame decider).
    """

    name = "stream"

    def __init__(
        self,
        decider: str | PairDecider | None = None,
        frames: int = 2,
    ) -> None:
        if frames < 2:
            raise ValueError("streaming analysis needs at least 2 frames")
        self._decider_spec = decider
        self.frames = frames

    def _resolve(self, ctx: AnalysisContext) -> PairDecider:
        spec = self._decider_spec
        if spec is None:
            spec = ctx.options.search_engine
        if isinstance(spec, str):
            return create_decider(spec)
        return spec

    # ------------------------------------------------------------------
    # Main flow.
    # ------------------------------------------------------------------
    def run(self, ctx: AnalysisContext, state: PipelineState) -> None:
        options = ctx.options
        circuit = ctx.circuit
        include_self = options.include_self_loops
        if options.hazard_check not in ("off", "ternary", "sensitize",
                                        "cosensitize", "exact"):
            raise ValueError(
                f"unknown hazard_check mode {options.hazard_check!r}"
            )

        # -- Topology: packed connected matrix, no pair list. ----------
        started = ctx.clock()
        reach = sink_reach(circuit)
        num_dffs = len(reach.dffs)
        alive = np.array(reach.rows, dtype=np.uint64)
        if num_dffs and not include_self:
            diag = np.arange(num_dffs)
            alive[diag, diag // 64] &= ~(
                np.uint64(1) << (diag % 64).astype(np.uint64)
            )
        groups_total, connected = launch_group_stats(circuit, include_self)
        state.connected_pairs = connected
        ctx.emit(
            "stream_topology",
            groups=groups_total,
            pairs=connected,
            blocked=reach.blocked,
            seconds=round(ctx.clock() - started, 6),
        )

        # -- Random simulation: one global pass on the packed matrix. --
        survivors = alive
        if options.use_random_sim and connected:
            sim_started = ctx.clock()
            sim = ctx.bit_simulator(options.sim_words)
            report = random_filter_packed(
                circuit,
                alive,
                frames=self.frames,
                words=options.sim_words,
                max_rounds=options.sim_max_rounds,
                seed=options.sim_seed,
                sim=sim,
                round_batch=options.sim_round_batch,
            )
            seconds = ctx.clock() - sim_started
            ctx.emit(
                "random_sim",
                plan=options.sim_plan,
                round_batch=options.sim_round_batch,
                frames=self.frames,
                rounds=report.rounds,
                patterns=report.patterns,
                dropped=report.dropped,
                seconds=round(seconds, 6),
                patterns_per_sec=(
                    round(report.patterns / seconds) if seconds else 0
                ),
            )
            state.stats[Stage.SIMULATION].cpu_seconds += seconds
            survivors = report.alive
            survivor_count = report.initial - report.dropped
        else:
            survivor_count = connected

        # -- Decide + hazard, folded per launch group. -----------------
        decider = self._resolve(ctx)
        state.engine = decider.name
        self._hazard_reset(ctx)
        workers = max(1, options.workers)
        threshold = max(2, options.parallel_threshold)
        go_parallel = workers > 1 and survivor_count >= threshold
        if workers > 1 and survivor_count:
            ctx.emit(
                "decision_exec",
                mode="parallel" if go_parallel else "serial-fallback",
                workers=workers,
                pairs=survivor_count,
                threshold=threshold,
            )
        dff_index = {dff: k for k, dff in enumerate(reach.dffs)}
        fold = _FoldState(groups_total=groups_total)
        if go_parallel:
            self._run_parallel(
                ctx, state, decider, survivors, dff_index, fold,
                survivor_count, workers,
            )
        else:
            self._run_serial(ctx, state, decider, survivors, dff_index, fold)

        # -- Run summary: session counters, DB stats, disagreements. ---
        state.learned_implications = fold.learned
        state.session = fold.session
        state.implication_db = getattr(decider, "db_info", None)
        if state.implication_db is not None:
            ctx.emit(
                "implication_db", engine=decider.name, **state.implication_db
            )
        if fold.session is not None:
            ctx.emit(
                "decision_session", engine=decider.name, **fold.session
            )
        state.packed_implication = packed_summary(fold.session)
        if state.packed_implication is not None:
            ctx.emit(
                "packed_implication",
                engine=decider.name,
                mode=options.packed_implication,
                **state.packed_implication,
            )
        fold.disagreements.sort(key=lambda d: (d.pair.source, d.pair.sink))
        state.disagreements.extend(fold.disagreements)
        names = circuit.names
        for disagreement in fold.disagreements:
            ctx.emit(
                "disagreement",
                source=names[disagreement.pair.source],
                sink=names[disagreement.pair.sink],
                **{
                    disagreement.primary_engine: disagreement.primary.value,
                    disagreement.secondary_engine: disagreement.secondary.value,
                },
            )
        self._hazard_finish(ctx, state)
        state.pairs = []

    # ------------------------------------------------------------------
    # Group partitioning and folding.
    # ------------------------------------------------------------------
    def _partition_group(
        self,
        survivors: np.ndarray,
        dff_index: dict[int, int],
        source: int,
        sinks: np.ndarray,
    ) -> tuple[list[FFPair], list[FFPair]]:
        """Split one launch group into (surviving, sim-dropped) pairs."""
        src_k = dff_index[source]
        word = src_k // 64
        bit = np.uint64(1) << np.uint64(src_k % 64)
        kept: list[FFPair] = []
        dropped: list[FFPair] = []
        for sink in sinks.tolist():
            if survivors[dff_index[sink], word] & bit:
                kept.append(FFPair(source, sink))
            else:
                dropped.append(FFPair(source, sink))
        return kept, dropped

    def _fold_dropped(
        self,
        ctx: AnalysisContext,
        state: PipelineState,
        dropped: list[FFPair],
    ) -> None:
        """Fold one group's simulation-refuted pairs into the result."""
        stats = state.stats[Stage.SIMULATION]
        for pair in dropped:
            result = PairResult(
                pair, Classification.SINGLE_CYCLE, Stage.SIMULATION
            )
            state.results.append(result)
            stats.single_cycle += 1
            _emit_pair(ctx, state, result, 0.0, engine=None)

    def _fold_decided(
        self,
        ctx: AnalysisContext,
        state: PipelineState,
        decided: Sequence[tuple[PairResult, float]],
        engine: str,
    ) -> None:
        """Fold one settled batch of decisions (and hazard-check it)."""
        fresh_mc: list[PairResult] = []
        for result, seconds in decided:
            state.results.append(result)
            stats = state.stats[result.stage]
            if result.classification is Classification.MULTI_CYCLE:
                stats.multi_cycle += 1
                fresh_mc.append(result)
            elif result.classification is Classification.SINGLE_CYCLE:
                stats.single_cycle += 1
            else:
                stats.undecided += 1
            stats.cpu_seconds += seconds
            _emit_pair(ctx, state, result, seconds, engine=engine)
        self._hazard_fold(ctx, state, fresh_mc)

    def _emit_group(
        self,
        ctx: AnalysisContext,
        state: PipelineState,
        fold: "_FoldState",
        source: int,
        pairs: int,
        dropped: int,
    ) -> None:
        """Per-launch-group progress event (streaming observability)."""
        index = fold.groups_folded
        fold.groups_folded += 1
        ctx.emit(
            "launch_group",
            group_index=index,
            groups_total=fold.groups_total,
            source=ctx.circuit.names[source],
            pairs=pairs,
            dropped=dropped,
            folded=len(state.results),
        )

    # ------------------------------------------------------------------
    # Serial execution.
    # ------------------------------------------------------------------
    def _run_serial(
        self,
        ctx: AnalysisContext,
        state: PipelineState,
        decider: PairDecider,
        survivors: np.ndarray,
        dff_index: dict[int, int],
        fold: "_FoldState",
    ) -> None:
        options = ctx.options
        prepared = False
        group_fn = None
        for group in iter_launch_groups(ctx.circuit,
                                        options.include_self_loops):
            kept, dropped = self._partition_group(
                survivors, dff_index, group.source, group.sinks
            )
            self._fold_dropped(ctx, state, dropped)
            if kept:
                if not prepared:
                    decider.prepare(ctx)
                    group_fn = getattr(decider, "decide_group", None)
                    prepared = True
                if group_fn is not None:
                    decided = list(group_fn(kept))
                else:
                    decided = []
                    for pair in kept:
                        started = ctx.clock()
                        decided.append(
                            (decider.decide(pair), ctx.clock() - started)
                        )
                self._fold_decided(ctx, state, decided, decider.name)
            self._emit_group(
                ctx, state, fold, group.source, len(group.sinks), len(dropped)
            )
        if prepared:
            fold.learned = getattr(decider, "learned_implications", 0)
            fold.disagreements = list(getattr(decider, "disagreements", []))
            stats_fn = getattr(decider, "session_stats", None)
            fold.session = stats_fn() if stats_fn is not None else None

    # ------------------------------------------------------------------
    # Parallel execution over the work-stealing queue.
    # ------------------------------------------------------------------
    def _run_parallel(
        self,
        ctx: AnalysisContext,
        state: PipelineState,
        decider: PairDecider,
        survivors: np.ndarray,
        dff_index: dict[int, int],
        fold: "_FoldState",
        survivor_count: int,
        workers: int,
    ) -> None:
        options = ctx.options
        expansion = ctx.expansion(getattr(decider, "frames", 2))
        shared = None
        shared_fn = getattr(decider, "prepare_shared", None)
        if shared_fn is not None:
            shared = shared_fn(ctx)
        if shared is not None:
            from repro.atpg.learning import count_learned

            fold.learned = count_learned(shared)
        pool = ctx.decision_pool(
            decider, expansion, shared=shared,
            publish=lambda: publish_backplane(ctx, expansion, shared),
        )
        size = options.chunk_pairs or _auto_chunk_size(survivor_count, workers)
        split = split_threshold(size)
        max_in_flight = max(size, options.max_pairs_in_flight)

        # unit index -> (group slot, pairs); group slot -> open units.
        next_unit = 0
        unit_group: dict[int, tuple[int, int]] = {}
        group_open: dict[int, list[int | tuple[int, int]]] = {}
        in_flight = 0
        units_total = 0

        def drain_one() -> None:
            nonlocal in_flight
            unit = pool.next_result()
            fold.session = merge_session_stats(fold.session, unit.stats)
            fold.disagreements.extend(unit.flags)
            self._fold_decided(ctx, state, unit.decided, decider.name)
            slot, pairs = unit_group.pop(unit.index)
            in_flight -= pairs
            entry = group_open[slot]
            entry[0] = int(entry[0]) - 1  # type: ignore[call-overload]
            if not entry[0]:
                source, group_pairs, group_dropped = entry[1]  # type: ignore[misc]
                del group_open[slot]
                self._emit_group(
                    ctx, state, fold, source, group_pairs, group_dropped
                )

        slot = 0
        for group in iter_launch_groups(ctx.circuit, options.include_self_loops):
            kept, dropped = self._partition_group(
                survivors, dff_index, group.source, group.sinks
            )
            self._fold_dropped(ctx, state, dropped)
            if not kept:
                self._emit_group(
                    ctx, state, fold, group.source, len(group.sinks),
                    len(dropped),
                )
                slot += 1
                continue
            units = launch_units(kept, size, split=split)
            group_open[slot] = [
                len(units),
                (group.source, len(group.sinks), len(dropped)),
            ]
            for unit in units:
                while in_flight and in_flight + len(unit) > max_in_flight:
                    drain_one()
                pool.submit(next_unit, unit)
                unit_group[next_unit] = (slot, len(unit))
                in_flight += len(unit)
                next_unit += 1
                units_total += 1
            slot += 1
        while unit_group:
            drain_one()
        ctx.emit(
            "decision_queue",
            workers=pool.workers,
            units=units_total,
            unit_pairs=size,
            split=split,
            max_pairs_in_flight=max_in_flight,
            per_worker=pool.worker_summary(),
        )
        state.backplane = backplane_summary(pool)
        if state.backplane is not None:
            ctx.emit("backplane", **state.backplane)

    # ------------------------------------------------------------------
    # Hazard validation, folded per group.
    # ------------------------------------------------------------------
    def _hazard_reset(self, ctx: AnalysisContext) -> None:
        self._hazard_checker: object | None = None
        self._hazard_seconds = 0.0
        self._hazard_flagged: list[FFPair] = []
        self._hazard_checked = 0
        self._hazard_verdicts: list[PairHazardVerdict] = []

    def _hazard_fold(
        self,
        ctx: AnalysisContext,
        state: PipelineState,
        fresh_mc: list[PairResult],
    ) -> None:
        """Check one fold's new multi-cycle results, accumulating totals."""
        mode = ctx.options.hazard_check
        if mode == "off" or not fresh_mc:
            return
        started = ctx.clock()
        checker = self._hazard_checker
        if checker is None:
            if mode == "ternary":
                checker = TernaryHazardChecker(
                    ctx.circuit,
                    ctx.options.hazard_backtrack_limit,
                    expansion=ctx.expansion(2),
                    words=ctx.options.sim_words,
                )
            elif mode in ("sensitize", "cosensitize"):
                checker = HazardChecker(
                    ctx.circuit,
                    mode_from_flag(mode),
                    backtrack_limit=ctx.options.hazard_backtrack_limit,
                    expansion=ctx.expansion(2),
                )
            elif mode == "exact":
                from repro.analysis.hazard_exact import ExactHazardChecker

                checker = ExactHazardChecker(
                    ctx.circuit,
                    ctx.expansion(2),
                    backtrack_limit=ctx.options.hazard_backtrack_limit,
                    conflict_limit=ctx.options.hazard_conflict_limit,
                    delays=load_gate_delays(ctx.options, ctx.circuit),
                )
            else:
                raise ValueError(f"unknown hazard_check mode {mode!r}")
            self._hazard_checker = checker
        self._hazard_checked += len(fresh_mc)
        if mode == "exact":
            from repro.analysis.hazard_exact import verdict_flags_pair

            verdicts = checker.check_pairs(fresh_mc)
            self._hazard_verdicts.extend(verdicts)
            self._hazard_flagged.extend(
                v.pair for v in verdicts if verdict_flags_pair(v)
            )
        else:
            if mode == "ternary":
                reports = checker.check_pairs(fresh_mc)
            else:
                reports = [checker.check_pair(r) for r in fresh_mc]
            self._hazard_flagged.extend(
                report.pair_result.pair
                for report in reports
                if report.has_potential_hazard
            )
        self._hazard_seconds += ctx.clock() - started

    def _hazard_finish(
        self, ctx: AnalysisContext, state: PipelineState
    ) -> None:
        """Close out the hazard totals and emit the stage event."""
        mode = ctx.options.hazard_check
        state.hazard_mode = mode
        if mode == "off":
            return
        flagged = sorted(
            self._hazard_flagged, key=lambda p: (p.source, p.sink)
        )
        state.hazard_flagged_pairs = flagged
        state.hazard_flagged = len(flagged)
        state.hazard_checked = self._hazard_checked
        checker = self._hazard_checker
        lanes = getattr(checker, "lanes_evaluated", 0) if checker else 0
        batches = getattr(checker, "batches_evaluated", 0) if checker else 0
        event: dict = dict(
            mode=mode,
            checked=self._hazard_checked,
            flagged=state.hazard_flagged,
            lanes=lanes,
            batches=batches,
            seconds=round(self._hazard_seconds, 6),
        )
        if mode == "exact":
            state.hazard_verdicts = sorted(
                self._hazard_verdicts,
                key=lambda v: (v.pair.source, v.pair.sink),
            )
            if checker is not None:
                state.hazard_exact = checker.summary()
            else:
                # No multi-cycle survivors: a trivially complete pass.
                from repro.analysis.hazard_exact import empty_exact_summary

                state.hazard_exact = empty_exact_summary()
            event["exact"] = state.hazard_exact
        ctx.emit("hazard_stage", **event)


class _FoldState:
    """Run-scoped accumulators shared by the serial and parallel folds."""

    def __init__(self, groups_total: int) -> None:
        self.groups_total = groups_total
        self.groups_folded = 0
        self.session: dict[str, int] | None = None
        self.disagreements: list[Disagreement] = []
        self.learned = 0
