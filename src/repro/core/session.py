"""Shared-launch decision sessions: one engine, many FF pairs.

The MC condition of every case ``(a, b)`` for a pair ``(FF_i, FF_j)``
starts from the same *launch* assumption ``FF_i(t)=a, FF_i(t+1)=¬a`` —
identical for every pair sharing the launching FF.  The per-pair analyzer
(:class:`~repro.core.pair_analysis.PairAnalyzer`) re-derives its
implications from scratch four times per pair; a
:class:`DecisionSession` instead walks the surviving pairs in *launch
runs* (consecutive pairs with the same source, which is how
:func:`~repro.circuit.topology.connected_ff_pairs` orders them), pushes
each launch assumption once per ``(FF_i, a)``, keeps the implied trail
segment on the engine, and per pair/case only replays the capture-side
assumption ``FF_j(t+1)=b``.  A contradiction at the launch level settles
both captures of *every* pair under that launcher at once.

Why the results are identical to fresh per-case derivation: the
implication rules are monotone functions of the current value state, so
the closure of a set of assumptions (and whether it contradicts) does
not depend on the order they are posted in, and the unjustified set is a
function of the final values (a gate is re-examined whenever its
neighborhood changes, so its last examination sees the final state).
Splitting the premise into launch prefix + capture suffix therefore
reaches the same fixpoint the one-shot ``assume_all`` did, and every
downstream search starts from an identical state — verdicts, decision
and backtrack counts, and witnesses all match byte for byte.  The
property tests in ``tests/core/test_session.py`` pin this down against
the fresh-engine oracle.

The session runs on the O(1)-checkpoint array engine of
:mod:`repro.atpg.implication` and is what the ``dalg``/``podem``/
``scoap`` deciders build in ``prepare()``; the parallel decision stage
shards whole launch runs so the prefix reuse survives in workers.
"""

from __future__ import annotations

import time
from typing import Callable, Sequence

import numpy as np

from repro.circuit.timeframe import TimeFrameExpansion
from repro.circuit.topology import FFPair
from repro.logic.values import BINARY
from repro.atpg.implication import ImplicationEngine, LearnedTable
from repro.atpg.justify import SearchStatus, justify
from repro.core.result import (
    CaseOutcome,
    CaseResult,
    Classification,
    PairResult,
    Stage,
)

#: available backtrack-search engines (paper §4.5 compares these styles)
SEARCH_ENGINES = ("dalg", "podem")

#: ``packed`` modes accepted by :class:`DecisionSession` (and the CLI).
PACKED_MODES = ("auto", "on", "off")

#: ``packed="auto"`` enables lane packing at this many expanded
#: combinational nodes.  Below it the per-closure bookkeeping of the
#: packed engine rivals what the scalar cases cost outright; above it
#: the shared closure wins and keeps winning as circuits grow.
PACKED_AUTO_MIN_NODES = 160

#: a decided case resolved by the packed closure — mapping key is
#: ``(pair index in the group, a, b)``.
PackedResolved = dict[tuple[int, int, int], CaseResult]


def launch_runs(pairs: Sequence[FFPair]) -> list[tuple[int, int]]:
    """Half-open ``[start, end)`` runs of consecutive same-source pairs.

    ``connected_ff_pairs`` emits pairs sorted by ``(source, sink)``, and
    the random filter preserves that order, so in the pipeline each
    launching FF appears as exactly one run.  Arbitrary orderings are
    still handled correctly — scattered repeats of a source simply form
    several runs and share less.
    """
    runs: list[tuple[int, int]] = []
    index = 0
    total = len(pairs)
    while index < total:
        end = index + 1
        source = pairs[index].source
        while end < total and pairs[end].source == source:
            end += 1
        runs.append((index, end))
        index = end
    return runs


class DecisionSession:
    """Implication/ATPG decisions over one expansion, launch-prefix cached.

    Built once per expanded circuit (per process); :meth:`decide_group`
    settles a list of pairs and returns ``(PairResult, seconds)`` per
    pair in input order.  ``share_prefix=False`` disables the launch
    cache (each case re-derives the full three-assumption premise, the
    pre-session behaviour) — an ablation switch, reached through
    ``DetectorOptions.launch_prefix`` / ``--no-launch-prefix``.

    ``packed`` ("auto"/"on"/"off", via ``--packed-implication``) runs
    the group's cases through the bit-parallel closure of
    :mod:`repro.atpg.packed_implication` first: up to 64 cases per
    uint64 word share one implication fixpoint, and every case it
    proves contradicted or implied-stable skips the scalar engine
    entirely.  Cases needing a backtrack search fall back to the scalar
    path, so verdicts and ``pair_records`` are byte-identical in every
    mode; "auto" enables packing at :data:`PACKED_AUTO_MIN_NODES`
    expanded nodes.
    """

    def __init__(
        self,
        expansion: TimeFrameExpansion,
        *,
        backtrack_limit: int = 50,
        learned: LearnedTable | None = None,
        search_engine: str = "dalg",
        scoap_guidance: bool = False,
        share_prefix: bool = True,
        packed: str = "off",
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if expansion.frames < 2:
            raise ValueError("pair decisions need at least a 2-frame expansion")
        if search_engine not in SEARCH_ENGINES:
            raise ValueError(f"unknown search engine {search_engine!r}")
        if packed not in PACKED_MODES:
            raise ValueError(f"unknown packed mode {packed!r}")
        self.expansion = expansion
        self.backtrack_limit = backtrack_limit
        self.share_prefix = share_prefix
        self.packed_mode = packed
        self.packed_enabled = packed == "on" or (
            packed == "auto"
            and expansion.comb.num_nodes >= PACKED_AUTO_MIN_NODES
        )
        self._learned = learned
        self._packed_engine = None
        self.clock = clock
        if search_engine == "podem":
            from repro.atpg.podem import podem_justify

            self._search = podem_justify
        elif scoap_guidance:
            from repro.atpg.scoap import compute_scoap, make_choice_sorter

            sorter = make_choice_sorter(compute_scoap(expansion.comb))

            def guided(engine, limit):
                return justify(engine, limit, choice_sorter=sorter)

            self._search = guided
        else:
            self._search = justify
        self.engine = ImplicationEngine(expansion.comb, learned=learned)
        # Session-lifetime observability counters (the decision_session
        # trace event and reporting totals read these via stats()).
        self.pairs_decided = 0
        self.prefix_hits = 0
        self.prefix_misses = 0
        self.launch_conflicts = 0
        self.trail_high_water = 0
        self.packed_lanes = 0
        self.packed_resolved = 0
        self.packed_fallbacks = 0
        self.packed_us = 0

    def stats(self) -> dict[str, int]:
        """Counter snapshot for the ``decision_session`` summary event.

        The packed counters appear only when lane packing is enabled, so
        the default-off snapshot (and the reports built from it) is
        unchanged.  Packing shifts work between counters — lanes the
        packed closure settles never touch the scalar engine, so
        ``implications`` and the prefix counters drop while the case
        records stay byte-identical; the packed block is what accounts
        for the difference.
        """
        stats = {
            "pairs": self.pairs_decided,
            "prefix_hits": self.prefix_hits,
            "prefix_misses": self.prefix_misses,
            "launch_conflicts": self.launch_conflicts,
            "implications": self.engine.implications,
            "trail_high_water": self.trail_high_water,
        }
        if self.packed_enabled:
            packed = self._packed_engine
            stats["packed_lanes"] = self.packed_lanes
            stats["packed_resolved"] = self.packed_resolved
            stats["packed_fallbacks"] = self.packed_fallbacks
            stats["packed_closures"] = packed.closures if packed else 0
            stats["packed_visits"] = packed.visits if packed else 0
            stats["packed_us"] = self.packed_us
        return stats

    # ------------------------------------------------------------------
    # Deciding.
    # ------------------------------------------------------------------
    def decide(self, pair: FFPair) -> PairResult:
        """Settle one pair (single-pair group; prefix still pushed once)."""
        return self.decide_group([pair])[0][0]

    def decide_group(
        self, pairs: Sequence[FFPair]
    ) -> list[tuple[PairResult, float]]:
        """Settle ``pairs`` in order; returns ``(result, seconds)`` each."""
        out: list[tuple[PairResult, float] | None] = [None] * len(pairs)
        resolved: PackedResolved | None = None
        packed_share = 0.0
        if self.packed_enabled and pairs:
            started = self.clock()
            resolved = self._packed_resolve(pairs)
            packed_share = (self.clock() - started) / len(pairs)
        if self.share_prefix:
            for start, end in launch_runs(pairs):
                self._decide_run(pairs, start, end, out, resolved)
        else:
            for index, pair in enumerate(pairs):
                out[index] = self._decide_fresh(pair, index, resolved)
        self.pairs_decided += len(pairs)
        if packed_share:
            # The shared closure's cost is attributed evenly — per-pair
            # seconds stay meaningful and the group total is exact.
            for index, entry in enumerate(out):
                if entry is not None:
                    out[index] = (entry[0], entry[1] + packed_share)
        return out  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Packed pre-pass.
    # ------------------------------------------------------------------
    def _packed_resolve(self, pairs: Sequence[FFPair]) -> PackedResolved:
        """Settle search-free cases of ``pairs`` in packed closures.

        Every pair contributes its four ``(a, b)`` cases as lanes of a
        :class:`~repro.atpg.packed_implication.PackedImplicationEngine`
        closure (chunked at the engine's lane capacity).  A lane whose
        premise conflicts is a ``CONTRADICTION``; a lane whose closure
        forces the target ``FF_j(t+2)`` to ``b`` — or leaves it X but
        contradicts on the stability probe ``FF_j(t+2) = 1-b`` — is
        ``IMPLIED_STABLE``.  Exactly those outcomes carry no search
        effort in the scalar path, so the returned records are
        byte-identical to what the fallback would have produced; every
        other lane (a search is required) is left to the scalar engine.
        """
        from repro.atpg.packed_implication import (
            MAX_LANES,
            PackedImplicationEngine,
        )

        started = self.clock()
        engine = self._packed_engine
        if engine is None:
            engine = PackedImplicationEngine(
                self.expansion.comb, learned=self._learned
            )
            self._packed_engine = engine
        expansion = self.expansion
        ff_at = expansion.ff_at
        resolved: PackedResolved = {}
        chunk = MAX_LANES // 4
        for chunk_start in range(0, len(pairs), chunk):
            block = pairs[chunk_start:chunk_start + chunk]
            lanes = len(block) * 4
            nodes = np.empty((lanes, 3), dtype=np.intp)
            values = np.empty((lanes, 3), dtype=np.uint8)
            targets = np.empty(lanes, dtype=np.intp)
            lane = 0
            for pair in block:
                source_index = expansion.ff_index(pair.source)
                sink_index = expansion.ff_index(pair.sink)
                ffi_t = ff_at[0][source_index]
                ffi_t1 = ff_at[1][source_index]
                ffj_t1 = ff_at[1][sink_index]
                ffj_t2 = ff_at[2][sink_index]
                for a in BINARY:
                    for b in BINARY:
                        nodes[lane] = (ffi_t, ffi_t1, ffj_t1)
                        values[lane] = (a, 1 - a, b)
                        targets[lane] = ffj_t2
                        lane += 1
            engine.close_matrix(nodes, values)
            lane_ids = np.arange(lanes)
            conflicted = engine.conflict_lanes(lane_ids)
            known, value = engine.read_nodes(targets, lane_ids)
            open_lanes = np.flatnonzero(~conflicted & (known == 0))
            probe_stable = np.zeros(lanes, dtype=bool)
            if len(open_lanes):
                engine.extend(
                    (int(l), int(targets[l]), 1 - (int(l) & 1))
                    for l in open_lanes
                )
                probe_stable[open_lanes] = engine.conflict_lanes(open_lanes)
            for lane in range(lanes):
                a, b = (lane >> 1) & 1, lane & 1
                if conflicted[lane]:
                    outcome = CaseOutcome.CONTRADICTION
                elif known[lane]:
                    if value[lane] != b:
                        continue  # implied unstable: search required
                    outcome = CaseOutcome.IMPLIED_STABLE
                elif probe_stable[lane]:
                    outcome = CaseOutcome.IMPLIED_STABLE
                else:
                    continue  # target free both ways: search required
                key = (chunk_start + (lane >> 2), a, b)
                resolved[key] = CaseResult(a, b, outcome)
            self.packed_lanes += lanes
        self.packed_resolved += len(resolved)
        self.packed_fallbacks += 4 * len(pairs) - len(resolved)
        self.packed_us += int((self.clock() - started) * 1e6)
        return resolved

    def _decide_run(
        self,
        pairs: Sequence[FFPair],
        start: int,
        end: int,
        out: list,
        resolved: PackedResolved | None = None,
    ) -> None:
        """Settle one same-source run, sharing the launch prefixes.

        Per-pair case order stays ``(0,0),(0,1),(1,0),(1,1)`` with the
        usual short-circuit on VIOLATED/ABORTED; the rounds over ``a``
        are interleaved across the run's pairs so each prefix is pushed
        exactly once.  The prefix propagation is timed (and its
        implications counted) inside the first unsettled pair's block.

        ``resolved`` (the packed pre-pass) supplies finished case
        records keyed by ``(pair index, a, b)``; the prefix push is lazy
        — it happens at the first case the packed closure left open, so
        a fully packed-settled round never touches the scalar engine.
        """
        expansion = self.expansion
        engine = self.engine
        clock = self.clock
        source_index = expansion.ff_index(pairs[start].source)
        ffi_t = expansion.ff_at[0][source_index]
        ffi_t1 = expansion.ff_at[1][source_index]

        count = end - start
        cases: list[list[CaseResult]] = [[] for _ in range(count)]
        verdict: list[tuple[Classification, Stage] | None] = [None] * count
        used_search = [False] * count
        seconds = [0.0] * count
        implications = [0] * count
        hits = [0] * count
        misses = [0] * count

        for a in BINARY:
            prefix_ok: bool | None = None
            mark = None
            for i in range(count):
                if verdict[i] is not None:
                    continue
                started = clock()
                posted_before = engine.implications
                prefix_counted = False
                ffj_t1 = ffj_t2 = -1
                for b in BINARY:
                    case = None
                    if resolved is not None:
                        case = resolved.get((start + i, a, b))
                    if case is None:
                        if prefix_ok is None:
                            mark = engine.checkpoint()
                            prefix_ok = engine.assume_all(
                                [(ffi_t, a), (ffi_t1, 1 - a)]
                            )
                            self.prefix_misses += 1
                            misses[i] += 1
                            if not prefix_ok:
                                self.launch_conflicts += 1
                            self._note_high_water()
                            prefix_counted = True
                        elif not prefix_counted:
                            self.prefix_hits += 1
                            hits[i] += 1
                            prefix_counted = True
                        if not prefix_ok:
                            # The launch assumption itself is impossible:
                            # the capture case is contradicted outright.
                            case = CaseResult(a, b, CaseOutcome.CONTRADICTION)
                        else:
                            if ffj_t1 < 0:
                                pair = pairs[start + i]
                                sink_index = expansion.ff_index(pair.sink)
                                ffj_t1 = expansion.ff_at[1][sink_index]
                                ffj_t2 = expansion.ff_at[2][sink_index]
                            case = self._capture_case(ffj_t1, ffj_t2, a, b)
                    cases[i].append(case)
                    if case.decisions:
                        used_search[i] = True
                    if case.outcome is CaseOutcome.VIOLATED:
                        verdict[i] = (
                            Classification.SINGLE_CYCLE,
                            Stage.ATPG if case.decisions else Stage.IMPLICATION,
                        )
                        break
                    if case.outcome is CaseOutcome.ABORTED:
                        verdict[i] = (Classification.UNDECIDED, Stage.ATPG)
                        break
                implications[i] += engine.implications - posted_before
                seconds[i] += clock() - started
            if mark is not None:
                engine.backtrack(mark)

        for i in range(count):
            if verdict[i] is not None:
                classification, stage = verdict[i]
            else:
                classification = Classification.MULTI_CYCLE
                stage = Stage.ATPG if used_search[i] else Stage.IMPLICATION
            result = PairResult(
                pairs[start + i],
                classification,
                stage,
                cases[i],
                metrics={
                    "implications": implications[i],
                    "prefix_hits": hits[i],
                    "prefix_misses": misses[i],
                },
            )
            out[start + i] = (result, seconds[i])

    def _decide_fresh(
        self,
        pair: FFPair,
        index: int = 0,
        resolved: PackedResolved | None = None,
    ) -> tuple[PairResult, float]:
        """Full-premise path (``share_prefix=False``): the pre-session flow."""
        expansion = self.expansion
        engine = self.engine
        started = self.clock()
        posted_before = engine.implications
        source_index = expansion.ff_index(pair.source)
        sink_index = expansion.ff_index(pair.sink)
        ffi_t = expansion.ff_at[0][source_index]
        ffi_t1 = expansion.ff_at[1][source_index]
        ffj_t1 = expansion.ff_at[1][sink_index]
        ffj_t2 = expansion.ff_at[2][sink_index]

        cases: list[CaseResult] = []
        verdict: tuple[Classification, Stage] | None = None
        used_search = False
        for a in BINARY:
            for b in BINARY:
                case = None
                if resolved is not None:
                    case = resolved.get((index, a, b))
                if case is None:
                    case = self._premise_case(
                        ffi_t, ffi_t1, ffj_t1, ffj_t2, a, b
                    )
                cases.append(case)
                if case.decisions:
                    used_search = True
                if case.outcome is CaseOutcome.VIOLATED:
                    verdict = (
                        Classification.SINGLE_CYCLE,
                        Stage.ATPG if case.decisions else Stage.IMPLICATION,
                    )
                    break
                if case.outcome is CaseOutcome.ABORTED:
                    verdict = (Classification.UNDECIDED, Stage.ATPG)
                    break
            if verdict is not None:
                break
        if verdict is not None:
            classification, stage = verdict
        else:
            classification = Classification.MULTI_CYCLE
            stage = Stage.ATPG if used_search else Stage.IMPLICATION
        result = PairResult(
            pair,
            classification,
            stage,
            cases,
            metrics={
                "implications": engine.implications - posted_before,
                "prefix_hits": 0,
                "prefix_misses": 0,
            },
        )
        return result, self.clock() - started

    # ------------------------------------------------------------------
    # Case analysis.
    # ------------------------------------------------------------------
    def _capture_case(
        self, ffj_t1: int, ffj_t2: int, a: int, b: int
    ) -> CaseResult:
        """One case on top of an already-propagated launch prefix."""
        engine = self.engine
        mark = engine.checkpoint()
        try:
            if not engine.assume(ffj_t1, b):
                return CaseResult(a, b, CaseOutcome.CONTRADICTION)
            self._note_high_water()
            return self._case_tail(ffj_t2, a, b)
        finally:
            engine.backtrack(mark)

    def _premise_case(
        self, ffi_t: int, ffi_t1: int, ffj_t1: int, ffj_t2: int, a: int, b: int
    ) -> CaseResult:
        """One case deriving the full three-assumption premise from scratch."""
        engine = self.engine
        mark = engine.checkpoint()
        try:
            premise = [(ffi_t, a), (ffi_t1, 1 - a), (ffj_t1, b)]
            if not engine.assume_all(premise):
                return CaseResult(a, b, CaseOutcome.CONTRADICTION)
            self._note_high_water()
            return self._case_tail(ffj_t2, a, b)
        finally:
            engine.backtrack(mark)

    def _case_tail(self, ffj_t2: int, a: int, b: int) -> CaseResult:
        """Shared post-premise logic: implied value checks + searches.

        Mirrors :meth:`PairAnalyzer._analyze_case` (including the
        justifiability confirmation refinement over the paper's Step
        4.1.3 — see that module's docstring).
        """
        engine = self.engine
        implied = engine.value(ffj_t2)
        if implied == b:
            return CaseResult(a, b, CaseOutcome.IMPLIED_STABLE)

        if implied == 1 - b:
            result = self._search(engine, self.backtrack_limit)
            if result.status is SearchStatus.SAT:
                return CaseResult(
                    a, b, CaseOutcome.VIOLATED,
                    result.decisions, result.backtracks, result.witness,
                )
            if result.status is SearchStatus.ABORTED:
                return CaseResult(
                    a, b, CaseOutcome.ABORTED, result.decisions, result.backtracks
                )
            return CaseResult(
                a, b, CaseOutcome.CONTRADICTION,
                result.decisions, result.backtracks,
            )

        if not engine.assume(ffj_t2, 1 - b):
            return CaseResult(a, b, CaseOutcome.IMPLIED_STABLE)
        result = self._search(engine, self.backtrack_limit)
        if result.status is SearchStatus.SAT:
            return CaseResult(
                a, b, CaseOutcome.VIOLATED,
                result.decisions, result.backtracks, result.witness,
            )
        if result.status is SearchStatus.ABORTED:
            return CaseResult(
                a, b, CaseOutcome.ABORTED, result.decisions, result.backtracks
            )
        return CaseResult(
            a, b, CaseOutcome.PROVED_STABLE, result.decisions, result.backtracks
        )

    def _note_high_water(self) -> None:
        depth = self.engine.assignment.num_assigned()
        if depth > self.trail_high_water:
            self.trail_high_water = depth
