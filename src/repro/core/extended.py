"""Condition-2 extended multi-cycle analysis (paper §3.1, skipped there).

The paper's full definition of a multi-cycle FF pair has two disjuncts:
the transition (1) is not propagated to the sink — the MC condition the
detector implements — or (2) *is* propagated, but

    (a) the sink's transition is never observed at any primary output, and
    (b) for every successor FF_k, (FF_j, FF_k) is itself a multi-cycle
        pair (under the propagated-transition assumption).

"Condition 2 is difficult to check because the analysis may require
traversal of many states ... Thus we consider only Condition 1."  This
module implements a *delay-independent, one-step* approximation of
Condition 2 as an extension experiment:

a pair (FF_i, FF_j) that fails the MC condition is reclassified
**extended multi-cycle** when

* FF_j is unobservable: no input/state assignment makes its value visible
  at any primary output within the following cycle (checked exactly with
  a SAT miter, :func:`repro.sat.equivalence.ff_observable_at_outputs`), and
* every successor pair (FF_j, FF_k) was itself detected multi-cycle by
  the MC condition (a sound strengthening of 2(b): we require it for all
  transitions rather than only propagated ones).

This is deliberately conservative — exactly the kind of "timing budget
borrowing from the subsequent FF pair" the paper describes — and every
reclassification is therefore still safe to relax *jointly with* keeping
the successor pairs' multi-cycle budgets intact.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.circuit.netlist import Circuit
from repro.circuit.topology import source_ffs_of_sink
from repro.core.detector import DetectionResult
from repro.core.result import Classification, PairResult
from repro.core.trace import ProgressFn, Tracer
from repro.sat.equivalence import ff_observable_at_outputs


@dataclass
class ExtendedPairResult:
    """A single-cycle pair upgraded by the Condition-2 approximation."""

    pair_result: PairResult
    sink_unobservable: bool
    successors_all_multi_cycle: bool

    @property
    def upgraded(self) -> bool:
        return self.sink_unobservable and self.successors_all_multi_cycle


@dataclass
class ExtendedDetectionResult:
    """Outcome of the Condition-2 pass over one detection result."""

    base: DetectionResult
    reports: list[ExtendedPairResult]
    total_seconds: float

    @property
    def upgraded_pairs(self) -> list[PairResult]:
        return [r.pair_result for r in self.reports if r.upgraded]

    def upgraded_pair_names(self) -> list[tuple[str, str]]:
        names = self.base.circuit.names
        return sorted(
            (names[r.pair.source], names[r.pair.sink])
            for r in self.upgraded_pairs
        )

    @property
    def total_multi_cycle(self) -> int:
        """MC-condition pairs plus Condition-2 upgrades."""
        return len(self.base.multi_cycle_pairs) + len(self.upgraded_pairs)


def condition2_extension(
    circuit: Circuit,
    detection: DetectionResult,
    tracer: Tracer | None = None,
    progress: ProgressFn | None = None,
) -> ExtendedDetectionResult:
    """Apply the one-step Condition-2 approximation to ``detection``.

    Only pairs the MC condition classified single-cycle are examined; the
    upgrade never removes a multi-cycle verdict, so
    ``total_multi_cycle >= len(detection.multi_cycle_pairs)`` always holds.

    The pass runs as one pipeline stage on the trace layer: a
    ``stage_start``/``stage_end`` pair bracketing one ``pair`` event per
    examined single-cycle pair.
    """
    started = time.perf_counter()

    def emit(event: str, **fields) -> dict:
        if tracer is not None:
            return tracer.emit(event, **fields)
        return {"event": event, **fields}
    multi_cycle_keys = {
        (p.pair.source, p.pair.sink) for p in detection.multi_cycle_pairs
    }

    # Successor map: FF_j -> every FF_k whose cone contains FF_j.
    successor_cache: dict[int, list[int]] = {}

    def successors(dff: int) -> list[int]:
        if dff not in successor_cache:
            successor_cache[dff] = [
                sink
                for sink in circuit.dffs
                if dff in source_ffs_of_sink(circuit, sink)
            ]
        return successor_cache[dff]

    observable_cache: dict[int, bool] = {}

    def observable(dff: int) -> bool:
        if dff not in observable_cache:
            observable_cache[dff] = ff_observable_at_outputs(circuit, dff)
        return observable_cache[dff]

    candidates = [
        p
        for p in detection.pair_results
        if p.classification is Classification.SINGLE_CYCLE
    ]
    emit("stage_start", stage="condition2", pairs_in=len(candidates))
    reports: list[ExtendedPairResult] = []
    upgraded = 0
    for pair_result in candidates:
        pair_started = time.perf_counter()
        sink = pair_result.pair.sink
        succ_ok = all(
            (sink, follower) in multi_cycle_keys for follower in successors(sink)
        )
        # Check observability second: the SAT miter is the expensive part.
        unobservable = not observable(sink) if succ_ok else False
        report = ExtendedPairResult(pair_result, unobservable, succ_ok)
        reports.append(report)
        upgraded += report.upgraded
        record = emit(
            "pair",
            stage="condition2",
            source=circuit.names[pair_result.pair.source],
            sink=circuit.names[sink],
            classification="extended-multi-cycle"
            if report.upgraded
            else pair_result.classification.value,
            seconds=round(time.perf_counter() - pair_started, 6),
        )
        if progress is not None:
            progress(len(reports), len(candidates), record)
    emit(
        "stage_end",
        stage="condition2",
        pairs_in=len(candidates),
        pairs_out=upgraded,
        seconds=round(time.perf_counter() - started, 6),
    )

    return ExtendedDetectionResult(
        base=detection,
        reports=reports,
        total_seconds=time.perf_counter() - started,
    )
