"""Eichelberger-style ternary hazard analysis (a dynamic cross-check).

The paper detects static hazards with *path sensitization* conditions
(§5).  The classic alternative is Eichelberger's ternary simulation: to
ask whether a signal can glitch while its inputs transition, drive every
changing input to X for an intermediate phase and check whether the
signal goes X even though its initial and final values agree::

    phase 0:  inputs at their old values      -> signal = v
    phase 1:  changing inputs at X            -> signal = X ?
    phase 2:  inputs at their new values      -> signal = v

If so, some delay assignment can produce a glitch (the ternary algebra is
exact for this question on monotone refinement grounds): a potential
static hazard.

Applied to a multi-cycle pair: for each satisfiable case of the MC
analysis, the sink's data input keeps its settled value across the edge
(that is the MC condition), but the source FF — and possibly others —
changed; ternary-simulating the second frame with the changed state bits
X tells whether the sink's input can glitch *under that witness* — exact
and delay-independent per vector, but evaluated on one justification
witness per case, so it is a dynamic spot check rather than a proof of
absence.  It provides an independently derived second opinion that the
benchmarks compare against the sensitization-based checks (empirically it
tracks static sensitization closely and is far less pessimistic than
co-sensitization).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from itertools import product

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit
from repro.circuit.timeframe import TimeFrameExpansion, expand
from repro.logic.simulator import evaluate_gate
from repro.logic.values import BINARY, X
from repro.atpg.implication import ImplicationEngine
from repro.atpg.justify import SearchStatus, justify
from repro.core.result import CaseOutcome, DetectionResult, PairResult


def ternary_eval(circuit: Circuit, values: dict[int, int]) -> dict[int, int]:
    """Three-valued full evaluation of a combinational circuit.

    ``values`` seeds the INPUT nodes (missing ones default to X); every
    other node is computed with the ternary gate algebra.
    """
    result = dict(values)
    for node in circuit.topo_order():
        gate_type = circuit.types[node]
        if gate_type == GateType.INPUT:
            result.setdefault(node, X)
        elif gate_type == GateType.CONST0:
            result[node] = 0
        elif gate_type == GateType.CONST1:
            result[node] = 1
        else:
            result[node] = evaluate_gate(
                gate_type, [result[f] for f in circuit.fanins[node]]
            )
    return result


@dataclass
class TernaryHazardReport:
    pair_result: PairResult
    has_potential_hazard: bool
    #: the (a, b) case exhibiting the hazard, if any
    witness_case: tuple[int, int] | None = None


class TernaryHazardChecker:
    """Ternary-simulation hazard check for detected multi-cycle pairs.

    For each satisfiable case the checker completes the case premise to a
    concrete witness (via the justification search), then re-evaluates the
    second frame with every *changing* frame-2 source (state bits whose
    value differs between t and t+1, plus the frame-2 primary inputs) set
    to X.  The sink's data input going X is a potential static hazard —
    its settled value is stable by the MC condition, so X means "can
    glitch under some delay assignment".
    """

    def __init__(self, circuit: Circuit, backtrack_limit: int = 200) -> None:
        self.circuit = circuit
        self.backtrack_limit = backtrack_limit
        self.expansion: TimeFrameExpansion = expand(circuit, frames=2)
        self.engine = ImplicationEngine(self.expansion.comb)

    def check_pair(self, pair_result: PairResult) -> TernaryHazardReport:
        expansion = self.expansion
        pair = pair_result.pair
        source = expansion.ff_index(pair.source)
        sink = expansion.ff_index(pair.sink)
        ffi_t = expansion.ff_at[0][source]
        ffi_t1 = expansion.ff_at[1][source]
        ffj_t1 = expansion.ff_at[1][sink]

        cases = [
            (c.a, c.b)
            for c in pair_result.cases
            if c.outcome in (CaseOutcome.IMPLIED_STABLE,
                             CaseOutcome.PROVED_STABLE)
        ] or list(product(BINARY, BINARY))

        for a, b in cases:
            mark = self.engine.checkpoint()
            ok = self.engine.assume_all(
                [(ffi_t, a), (ffi_t1, 1 - a), (ffj_t1, b)]
            )
            if not ok:
                self.engine.backtrack(mark)
                continue
            search = justify(self.engine, self.backtrack_limit)
            self.engine.backtrack(mark)
            if search.status is not SearchStatus.SAT:
                continue  # premise not realisable (or aborted): skip case
            if self._case_glitches(search.witness, sink):
                return TernaryHazardReport(pair_result, True, (a, b))
        return TernaryHazardReport(pair_result, False)

    # ------------------------------------------------------------------
    def _case_glitches(self, witness: dict[int, int], sink: int) -> bool:
        """Eichelberger phase-1 evaluation for one concrete witness."""
        expansion = self.expansion
        comb = expansion.comb
        values = {
            node: (0 if value == X else value)
            for node, value in witness.items()
        }
        full = ternary_eval(comb, values)

        # Frame-2 sources: state bits at t+1 and the frame-2 PIs.  A bit
        # whose value *changed* across the edge (or a fresh PI) is X in
        # the intermediate phase; unchanged state bits hold their value.
        phase: dict[int, int] = dict(values)
        for index in range(len(self.circuit.dffs)):
            before = full[expansion.ff_at[0][index]]
            after = full[expansion.ff_at[1][index]]
            if before != after:
                phase[expansion.ff_at[1][index]] = X
        for node in expansion.pi_at[1]:
            phase[node] = X

        # ``ff_at[1]`` nodes are frame-1 gates, not INPUTs, so the phase
        # values must be *pinned*: evaluate with overrides.
        hazard_values = self._eval_with_overrides(phase)
        return hazard_values[expansion.ff_at[2][sink]] == X

    def _eval_with_overrides(self, overrides: dict[int, int]) -> dict[int, int]:
        comb = self.expansion.comb
        result: dict[int, int] = {}
        for node in comb.topo_order():
            if node in overrides and node not in comb.inputs:
                result[node] = overrides[node]
                continue
            gate_type = comb.types[node]
            if gate_type == GateType.INPUT:
                result[node] = overrides.get(node, X)
            elif gate_type == GateType.CONST0:
                result[node] = 0
            elif gate_type == GateType.CONST1:
                result[node] = 1
            else:
                result[node] = evaluate_gate(
                    gate_type, [result[f] for f in comb.fanins[node]]
                )
        return result


def ternary_check_hazards(
    circuit: Circuit,
    detection: DetectionResult,
    backtrack_limit: int = 200,
) -> tuple[list[TernaryHazardReport], float]:
    """Run the ternary hazard check over every multi-cycle pair."""
    started = time.perf_counter()
    checker = TernaryHazardChecker(circuit, backtrack_limit)
    reports = [checker.check_pair(p) for p in detection.multi_cycle_pairs]
    return reports, time.perf_counter() - started
