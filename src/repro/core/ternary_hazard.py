"""Eichelberger-style ternary hazard analysis (a dynamic cross-check).

The paper detects static hazards with *path sensitization* conditions
(§5).  The classic alternative is Eichelberger's ternary simulation: to
ask whether a signal can glitch while its inputs transition, drive every
changing input to X for an intermediate phase and check whether the
signal goes X even though its initial and final values agree::

    phase 0:  inputs at their old values      -> signal = v
    phase 1:  changing inputs at X            -> signal = X ?
    phase 2:  inputs at their new values      -> signal = v

If so, some delay assignment can produce a glitch (the ternary algebra is
exact for this question on monotone refinement grounds): a potential
static hazard.

Applied to a multi-cycle pair: for each satisfiable case of the MC
analysis, the sink's data input keeps its settled value across the edge
(that is the MC condition), but the source FF — and possibly others —
changed; ternary-simulating the second frame with the changed state bits
X tells whether the sink's input can glitch *under that witness* — exact
and delay-independent per vector, but evaluated on one justification
witness per case, so it is a dynamic spot check rather than a proof of
absence.  It provides an independently derived second opinion that the
benchmarks compare against the sensitization-based checks (empirically it
tracks static sensitization closely and is far less pessimistic than
co-sensitization).

Execution model
---------------
Witness *search* stays scalar (the justification engine), but witness
*evaluation* is bit-parallel: every satisfiable ``(a, b)`` case of every
pair becomes one 64-bit-word lane of a
:class:`~repro.logic.bitsim.TernarySimulator`, the changing frame-2
sources are X-ed out per lane with a pinned two-plane write, and one
compiled-plan sweep yields every sink glitch verdict at once.  The
per-case dict walk survives as :meth:`TernaryHazardChecker.check_pair` /
``scalar_lane_verdicts`` — the reference the packed path is tested and
benchmarked against.  Verdicts are identical by construction (the same
witnesses feed both paths).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from itertools import product

import numpy as np

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit
from repro.circuit.timeframe import TimeFrameExpansion, expand_cached
from repro.logic.bitsim import TernarySimulator, pack_lane_matrix
from repro.logic.simulator import evaluate_gate
from repro.logic.values import BINARY, X
from repro.atpg.implication import ImplicationEngine
from repro.atpg.justify import SearchStatus, justify
from repro.core.result import CaseOutcome, DetectionResult, PairResult


def ternary_eval(circuit: Circuit, values: dict[int, int]) -> dict[int, int]:
    """Three-valued full evaluation of a combinational circuit.

    ``values`` seeds the INPUT nodes (missing ones default to X); every
    other node is computed with the ternary gate algebra.
    """
    result = dict(values)
    for node in circuit.topo_order():
        gate_type = circuit.types[node]
        if gate_type == GateType.INPUT:
            result.setdefault(node, X)
        elif gate_type == GateType.CONST0:
            result[node] = 0
        elif gate_type == GateType.CONST1:
            result[node] = 1
        else:
            result[node] = evaluate_gate(
                gate_type, [result[f] for f in circuit.fanins[node]]
            )
    return result


@dataclass
class TernaryHazardReport:
    pair_result: PairResult
    has_potential_hazard: bool
    #: the (a, b) case exhibiting the hazard, if any
    witness_case: tuple[int, int] | None = None


@dataclass
class HazardLane:
    """One packed evaluation lane: a pair, a case and its SAT witness."""

    pair_index: int
    case: tuple[int, int]
    #: free-input values of the justification witness (X entries allowed)
    witness: dict[int, int]
    #: sink position in the expansion's ``ff_at`` rows
    sink: int


class TernaryHazardChecker:
    """Ternary-simulation hazard check for detected multi-cycle pairs.

    For each satisfiable case the checker completes the case premise to a
    concrete witness (via the justification search), then re-evaluates the
    second frame with every *changing* frame-2 source (state bits whose
    value differs between t and t+1, plus the frame-2 primary inputs) set
    to X.  The sink's data input going X is a potential static hazard —
    its settled value is stable by the MC condition, so X means "can
    glitch under some delay assignment".

    The shared 2-frame expansion is taken from the circuit-level cache
    (or injected by the pipeline's :class:`AnalysisContext`), so building
    a checker never re-expands a circuit some other stage already
    expanded.  :meth:`check_pairs` evaluates the witnesses of *all* pairs
    bit-parallel — one lane per case — while :meth:`check_pair` keeps the
    scalar per-case reference path.
    """

    def __init__(
        self,
        circuit: Circuit,
        backtrack_limit: int = 200,
        expansion: TimeFrameExpansion | None = None,
        words: int = 4,
    ) -> None:
        self.circuit = circuit
        self.backtrack_limit = backtrack_limit
        if expansion is None:
            expansion = expand_cached(circuit, frames=2)
        elif expansion.frames < 2:
            raise ValueError("the hazard check needs a 2-frame expansion")
        self.expansion = expansion
        self.engine = ImplicationEngine(self.expansion.comb)
        self.words = max(1, words)
        #: observability counters of the last packed run.
        self.lanes_evaluated = 0
        self.batches_evaluated = 0
        self._sim: TernarySimulator | None = None
        self._ff0 = np.asarray(expansion.ff_at[0], dtype=np.intp)
        self._ff1 = np.asarray(expansion.ff_at[1], dtype=np.intp)
        self._ff2 = np.asarray(expansion.ff_at[2], dtype=np.intp)
        self._pi1 = np.asarray(expansion.pi_at[1], dtype=np.intp)
        # Two DFFs sharing one D driver share one frame-1 node; pins are
        # aggregated over the duplicates (X wins, as in the scalar path).
        self._ff1_unique, self._ff1_inverse = np.unique(
            self._ff1, return_inverse=True
        )
        self._inputs = list(self.expansion.comb.inputs)
        self._input_pos = {node: i for i, node in enumerate(self._inputs)}

    # ------------------------------------------------------------------
    # Public checking API.
    # ------------------------------------------------------------------
    def check_pairs(
        self, pair_results: list[PairResult], packed: bool = True
    ) -> list[TernaryHazardReport]:
        """Hazard verdicts for many pairs, witnesses evaluated in bulk.

        ``packed=False`` evaluates the very same lanes through the scalar
        per-case path instead — verdicts are identical; the flag exists
        for benchmarking and differential testing.
        """
        lanes = self.collect_lanes(pair_results)
        if packed:
            glitches = self.packed_lane_verdicts(lanes)
        else:
            glitches = self.scalar_lane_verdicts(lanes)
        reports = [
            TernaryHazardReport(pair_result, False) for pair_result in pair_results
        ]
        for lane, glitch in zip(lanes, glitches):
            report = reports[lane.pair_index]
            if glitch and not report.has_potential_hazard:
                report.has_potential_hazard = True
                report.witness_case = lane.case
        return reports

    def check_pair(self, pair_result: PairResult) -> TernaryHazardReport:
        """Scalar reference path: first glitching case wins, short-circuited."""
        sink = self.expansion.ff_index(pair_result.pair.sink)
        for a, b in self._candidate_cases(pair_result):
            witness = self._case_witness(pair_result, a, b)
            if witness is None:
                continue  # premise not realisable (or aborted): skip case
            if self._case_glitches(witness, sink):
                return TernaryHazardReport(pair_result, True, (a, b))
        return TernaryHazardReport(pair_result, False)

    # ------------------------------------------------------------------
    # Lane collection (scalar witness search, shared by both paths).
    # ------------------------------------------------------------------
    def collect_lanes(self, pair_results: list[PairResult]) -> list[HazardLane]:
        """One lane per satisfiable case of every pair, in case order."""
        lanes: list[HazardLane] = []
        for index, pair_result in enumerate(pair_results):
            sink = self.expansion.ff_index(pair_result.pair.sink)
            for a, b in self._candidate_cases(pair_result):
                witness = self._case_witness(pair_result, a, b)
                if witness is not None:
                    lanes.append(HazardLane(index, (a, b), witness, sink))
        return lanes

    def _candidate_cases(
        self, pair_result: PairResult
    ) -> list[tuple[int, int]]:
        return [
            (c.a, c.b)
            for c in pair_result.cases
            if c.outcome in (CaseOutcome.IMPLIED_STABLE,
                             CaseOutcome.PROVED_STABLE)
        ] or list(product(BINARY, BINARY))

    def _case_witness(
        self, pair_result: PairResult, a: int, b: int
    ) -> dict[int, int] | None:
        """Complete one case premise to a concrete witness, if satisfiable."""
        expansion = self.expansion
        pair = pair_result.pair
        source = expansion.ff_index(pair.source)
        sink = expansion.ff_index(pair.sink)
        ffi_t = expansion.ff_at[0][source]
        ffi_t1 = expansion.ff_at[1][source]
        ffj_t1 = expansion.ff_at[1][sink]
        mark = self.engine.checkpoint()
        ok = self.engine.assume_all(
            [(ffi_t, a), (ffi_t1, 1 - a), (ffj_t1, b)]
        )
        if not ok:
            self.engine.backtrack(mark)
            return None
        search = justify(self.engine, self.backtrack_limit)
        self.engine.backtrack(mark)
        if search.status is not SearchStatus.SAT:
            return None
        return search.witness

    # ------------------------------------------------------------------
    # Packed (bit-parallel) verdict evaluation.
    # ------------------------------------------------------------------
    def packed_lane_verdicts(self, lanes: list[HazardLane]) -> list[bool]:
        """Eichelberger phase-1 verdicts for all lanes, word-packed.

        Lanes are packed along the word axis (``64 * words`` per batch);
        each batch takes two compiled-plan sweeps: a binary settle pass
        (phase 0/2 — which state bits change per lane?) and a ternary
        phase-1 pass with the changing frame-2 sources pinned to X.
        """
        if not lanes:
            return []
        capacity = 64 * self.words
        verdicts: list[bool] = []
        self.batches_evaluated = 0
        for start in range(0, len(lanes), capacity):
            batch = lanes[start:start + capacity]
            verdicts.extend(self._packed_batch(batch))
            self.batches_evaluated += 1
        self.lanes_evaluated = len(lanes)
        return verdicts

    def _packed_batch(self, batch: list[HazardLane]) -> list[bool]:
        words = self.words
        num_inputs = len(self._inputs)
        # Witness entries are known lanes (X entries count as known 0,
        # exactly as the scalar path maps them); inputs the witness left
        # free stay X — the search never branched on them.
        value_matrix = np.zeros((num_inputs, len(batch)), dtype=np.uint8)
        care_matrix = np.zeros((num_inputs, len(batch)), dtype=np.uint8)
        for lane_index, lane in enumerate(batch):
            pos = self._input_pos
            for node, value in lane.witness.items():
                row = pos[node]
                care_matrix[row, lane_index] = 1
                if value == 1:
                    value_matrix[row, lane_index] = 1
        if self._sim is None:
            self._sim = TernarySimulator(self.expansion.comb, words)
        sim = self._sim
        sim.set_source_planes(
            self._inputs,
            pack_lane_matrix(value_matrix, words),
            pack_lane_matrix(care_matrix, words),
        )

        # Phase 0/2: settle every lane; a state bit whose ternary value
        # at t and t+1 differs (0/1 flip, or known on exactly one side)
        # is a changing frame-2 source of that lane.
        sim.comb_eval()
        changed = (
            (sim.value[self._ff0] ^ sim.value[self._ff1])
            | (sim.care[self._ff0] ^ sim.care[self._ff1])
        )
        changed_agg = np.zeros((len(self._ff1_unique), words), dtype=np.uint64)
        np.bitwise_or.at(changed_agg, self._ff1_inverse, changed)

        # Phase 1: frame-2 PIs to X everywhere; frame-1 state nodes pinned
        # to X only in the lanes where they changed.  Unchanged lanes are
        # left to the sweep, so an unchanged state bit still goes X when
        # another (pinned) frame-1 state node sits in its cone — exactly
        # what the scalar path's recomputation does.
        if len(self._pi1):
            sim.care[self._pi1] = 0
            sim.value[self._pi1] = 0
        zeros = np.zeros_like(changed_agg)
        sim.comb_eval(self._ff1_unique, zeros, zeros, pin_mask=changed_agg)

        sink_rows = self._ff2[[lane.sink for lane in batch]]
        lane_ids = np.arange(len(batch))
        word_of = lane_ids // 64
        bit_of = lane_ids % 64
        care_bits = (
            sim.care[sink_rows, word_of] >> bit_of.astype(np.uint64)
        ) & np.uint64(1)
        return [bool(bit == 0) for bit in care_bits]

    # ------------------------------------------------------------------
    # Scalar verdict evaluation (the reference the packed path matches).
    # ------------------------------------------------------------------
    def scalar_lane_verdicts(self, lanes: list[HazardLane]) -> list[bool]:
        """Per-case dict evaluation of the same lanes (reference path)."""
        return [
            self._case_glitches(lane.witness, lane.sink) for lane in lanes
        ]

    def _case_glitches(self, witness: dict[int, int], sink: int) -> bool:
        """Eichelberger phase-1 evaluation for one concrete witness."""
        expansion = self.expansion
        comb = expansion.comb
        values = {
            node: (0 if value == X else value)
            for node, value in witness.items()
        }
        full = ternary_eval(comb, values)

        # Frame-2 sources: state bits at t+1 and the frame-2 PIs.  A bit
        # whose value *changed* across the edge (or a fresh PI) is X in
        # the intermediate phase; unchanged state bits hold their value.
        phase: dict[int, int] = dict(values)
        for index in range(len(self.circuit.dffs)):
            before = full[expansion.ff_at[0][index]]
            after = full[expansion.ff_at[1][index]]
            if before != after:
                phase[expansion.ff_at[1][index]] = X
        for node in expansion.pi_at[1]:
            phase[node] = X

        # ``ff_at[1]`` nodes are frame-1 gates, not INPUTs, so the phase
        # values must be *pinned*: evaluate with overrides.
        hazard_values = self._eval_with_overrides(phase)
        return hazard_values[expansion.ff_at[2][sink]] == X

    def _eval_with_overrides(self, overrides: dict[int, int]) -> dict[int, int]:
        comb = self.expansion.comb
        result: dict[int, int] = {}
        for node in comb.topo_order():
            if node in overrides and node not in comb.inputs:
                result[node] = overrides[node]
                continue
            gate_type = comb.types[node]
            if gate_type == GateType.INPUT:
                result[node] = overrides.get(node, X)
            elif gate_type == GateType.CONST0:
                result[node] = 0
            elif gate_type == GateType.CONST1:
                result[node] = 1
            else:
                result[node] = evaluate_gate(
                    gate_type, [result[f] for f in comb.fanins[node]]
                )
        return result


def ternary_check_hazards(
    circuit: Circuit,
    detection: DetectionResult,
    backtrack_limit: int = 200,
    expansion: TimeFrameExpansion | None = None,
    packed: bool = True,
) -> tuple[list[TernaryHazardReport], float]:
    """Run the ternary hazard check over every multi-cycle pair."""
    started = time.perf_counter()
    checker = TernaryHazardChecker(
        circuit, backtrack_limit, expansion=expansion
    )
    reports = checker.check_pairs(detection.multi_cycle_pairs, packed=packed)
    return reports, time.perf_counter() - started
