"""The full multi-cycle FF-pair detection pipeline (Section 4.1).

Ties the stages together exactly as the paper's overall flow:

1. keep only topologically connected FF pairs;
2. random-pattern simulation drops pairs with a simulated MC violation;
3. the logic is expanded into two time frames;
4. each remaining pair is settled by a decision engine — by default the
   paper's implication procedure with the ATPG backtrack fallback.

Since the pipeline refactor this module is a thin shell: the staged flow
lives in :mod:`repro.core.pipeline`, the decision engines (implication/
ATPG, SAT, BDD, cross-check) in :mod:`repro.core.deciders`, and the
structured trace layer in :mod:`repro.core.trace`.  Select the engine
with ``DetectorOptions(search_engine=...)``, parallelise with
``DetectorOptions(workers=N)``, and observe with a tracer or progress
callback.

Usage::

    from repro import MultiCycleDetector
    result = MultiCycleDetector(circuit).run()
    result.multi_cycle_pair_names()
"""

from __future__ import annotations

from repro.circuit.netlist import Circuit
from repro.core.pipeline import (
    AnalysisContext,
    DetectorOptions,
    default_pipeline,
)
from repro.core.result import DetectionResult
from repro.core.trace import ProgressFn, Tracer

__all__ = [
    "DetectorOptions",
    "MultiCycleDetector",
    "detect_multi_cycle_pairs",
]


class MultiCycleDetector:
    """Detects all multi-cycle FF pairs of a synchronous sequential circuit."""

    def __init__(
        self,
        circuit: Circuit,
        options: DetectorOptions | None = None,
        tracer: Tracer | None = None,
        progress: ProgressFn | None = None,
    ) -> None:
        from repro.analysis.lint import enforce

        self.options = options or DetectorOptions()
        #: full lint report when ``options.lint`` is "warn"/"strict";
        #: ``None`` in "off" mode (classic first-error validation).  A
        #: rejected circuit raises :class:`~repro.analysis.LintError`
        #: (a :class:`~repro.circuit.netlist.CircuitError`) here.
        self.lint_report = enforce(circuit, self.options.lint)
        self.circuit = circuit
        self.tracer = tracer
        self.progress = progress

    def run(self) -> DetectionResult:
        """Run the pipeline and classify every connected FF pair.

        ``options.streaming`` picks the execution model: the staged
        pipeline ("off", and "auto" below the size threshold) or the
        bounded-memory streaming launch-group pipeline
        (:mod:`repro.core.streaming`).  Results are identical — only
        peak memory and trace shape differ.

        With ``options.cache_dir`` (or ``REPRO_CACHE_DIR``) set, the
        on-disk artifact store is active for the run: derived artifacts
        round-trip through it and the run's pair records are published
        as a bundle for later ``--incremental-from`` ECO runs.
        """
        from repro.core.streaming import streaming_enabled, streaming_pipeline
        from repro.store.runtime import resolve_cache_dir, store_enabled

        ctx = AnalysisContext(
            self.circuit,
            self.options,
            tracer=self.tracer,
            progress=self.progress,
        )
        cache_dir = resolve_cache_dir(self.options.cache_dir)
        with store_enabled(cache_dir, self.options.cache_max_bytes) as store:
            if streaming_enabled(self.options, self.circuit):
                result = streaming_pipeline().run(ctx)
            else:
                result = default_pipeline().run(ctx)
            if store is not None:
                from repro.core.incremental import save_result_bundle

                save_result_bundle(store, result, self.options)
        return result


def detect_multi_cycle_pairs(
    circuit: Circuit,
    options: DetectorOptions | None = None,
    tracer: Tracer | None = None,
    progress: ProgressFn | None = None,
) -> DetectionResult:
    """Convenience wrapper: ``MultiCycleDetector(circuit, options).run()``."""
    return MultiCycleDetector(circuit, options, tracer, progress).run()
