"""The full multi-cycle FF-pair detection pipeline (Section 4.1).

Ties the stages together exactly as the paper's overall flow:

1. keep only topologically connected FF pairs;
2. random-pattern simulation drops pairs with a simulated MC violation;
3. the logic is expanded into two time frames;
4. each remaining pair is settled by implication, falling back to the
   ATPG backtrack search.

Usage::

    from repro import MultiCycleDetector
    result = MultiCycleDetector(circuit).run()
    result.multi_cycle_pair_names()
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.circuit.netlist import Circuit, validate
from repro.circuit.timeframe import expand
from repro.circuit.topology import connected_ff_pairs
from repro.atpg.learning import count_learned, learn_static_implications
from repro.core.pair_analysis import PairAnalyzer
from repro.core.random_filter import random_filter
from repro.core.result import (
    Classification,
    DetectionResult,
    PairResult,
    Stage,
    StageStats,
)


@dataclass
class DetectorOptions:
    """Tuning knobs for the pipeline (paper defaults)."""

    #: 64-bit words per random-simulation round (64*words patterns).
    sim_words: int = 4
    #: hard cap on simulation rounds.
    sim_max_rounds: int = 256
    #: random seed for the simulation stage (results are deterministic).
    sim_seed: int = 2002
    #: skip the random-simulation stage entirely (ablation).
    use_random_sim: bool = True
    #: ATPG backtrack limit; the paper used 50 (more for a few circuits).
    backtrack_limit: int = 50
    #: pre-compute SOCRATES-style global implications before ATPG.
    static_learning: bool = False
    #: analyse (FF, FF) self-loop pairs (the SAT baseline of [9] skipped them).
    include_self_loops: bool = True
    #: backtrack-search engine: "dalg" (paper's choice) or "podem".
    search_engine: str = "dalg"
    #: SCOAP-guided decision ordering in the dalg search (ablation).
    scoap_guidance: bool = False


class MultiCycleDetector:
    """Detects all multi-cycle FF pairs of a synchronous sequential circuit."""

    def __init__(self, circuit: Circuit, options: DetectorOptions | None = None) -> None:
        validate(circuit)
        self.circuit = circuit
        self.options = options or DetectorOptions()

    def run(self) -> DetectionResult:
        """Run the pipeline and classify every connected FF pair."""
        options = self.options
        stats = {stage: StageStats() for stage in Stage}
        started = time.perf_counter()

        # Step 1: topologically connected pairs only.
        pairs = connected_ff_pairs(
            self.circuit, include_self_loops=options.include_self_loops
        )
        results: list[PairResult] = []

        # Step 2: random-pattern simulation.
        sim_started = time.perf_counter()
        if options.use_random_sim:
            report = random_filter(
                self.circuit,
                pairs,
                words=options.sim_words,
                max_rounds=options.sim_max_rounds,
                seed=options.sim_seed,
            )
            survivors = report.survivors
            surviving_keys = {(p.source, p.sink) for p in survivors}
            for pair in pairs:
                if (pair.source, pair.sink) not in surviving_keys:
                    results.append(
                        PairResult(pair, Classification.SINGLE_CYCLE, Stage.SIMULATION)
                    )
            stats[Stage.SIMULATION].single_cycle = report.dropped
        else:
            survivors = pairs
        stats[Stage.SIMULATION].cpu_seconds = time.perf_counter() - sim_started

        # Step 3: two-time-frame expansion (shared across all pairs).
        expansion = expand(self.circuit, frames=2)

        learned = None
        learned_count = 0
        if options.static_learning:
            learned = learn_static_implications(expansion.comb)
            learned_count = count_learned(learned)

        # Step 4: implication + ATPG per surviving pair.
        analyzer = PairAnalyzer(
            expansion,
            backtrack_limit=options.backtrack_limit,
            learned=learned,
            search_engine=options.search_engine,
            scoap_guidance=options.scoap_guidance,
        )
        impl_seconds = 0.0
        atpg_seconds = 0.0
        for pair in survivors:
            pair_started = time.perf_counter()
            result = analyzer.analyze(pair)
            elapsed = time.perf_counter() - pair_started
            results.append(result)
            stage_stats = stats[result.stage]
            if result.classification is Classification.MULTI_CYCLE:
                stage_stats.multi_cycle += 1
            elif result.classification is Classification.SINGLE_CYCLE:
                stage_stats.single_cycle += 1
            else:
                stage_stats.undecided += 1
            if result.stage is Stage.ATPG:
                atpg_seconds += elapsed
            else:
                impl_seconds += elapsed
        stats[Stage.IMPLICATION].cpu_seconds = impl_seconds
        stats[Stage.ATPG].cpu_seconds = atpg_seconds

        results.sort(key=lambda r: (r.pair.source, r.pair.sink))
        return DetectionResult(
            circuit=self.circuit,
            connected_pairs=len(pairs),
            pair_results=results,
            stats=stats,
            total_seconds=time.perf_counter() - started,
            learned_implications=learned_count,
        )


def detect_multi_cycle_pairs(
    circuit: Circuit, options: DetectorOptions | None = None
) -> DetectionResult:
    """Convenience wrapper: ``MultiCycleDetector(circuit, options).run()``."""
    return MultiCycleDetector(circuit, options).run()
