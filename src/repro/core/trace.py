"""Structured trace layer for the pair-analysis pipeline.

Every pipeline run can emit a stream of :class:`TraceEvent` records — one
per stage boundary and one per analyzed FF pair — replacing the ad-hoc
``time.perf_counter()`` bookkeeping the detector used to carry inline.
Events are plain dictionaries with a fixed envelope::

    {"v": 1, "event": "stage_end", "t": 0.0123, "stage": "random-sim",
     "pairs_in": 9, "pairs_out": 5, "seconds": 0.0119}

``v`` is the schema version, ``event`` the record type and ``t`` the time
offset (in seconds, by the tracer's clock) since the tracer was created.
Event types emitted by the pipeline:

``run_start`` / ``run_end``
    One pair per pipeline run; ``run_end`` carries the summary counts.
``stage_start`` / ``stage_end``
    One pair per pipeline stage, with pair counts in/out and seconds.
``pair``
    One per analyzed FF pair: source/sink names, classification, the
    stage that settled it and the decision-search effort.
``disagreement``
    Emitted by the cross-check decider when two engines disagree.
``hazard_stage``
    One per run with ``--hazard-check`` enabled: the mode, how many
    multi-cycle pairs were checked/flagged, the packed-lane counts
    (``lanes``/``batches``, ternary mode only) and seconds.
``decision_queue``
    One per parallel decision run: worker count, work-unit count and
    sizing (``unit_pairs``/``split``) plus per-worker unit/pair/second
    totals from the work-stealing queue.
``packed_implication``
    One per run with lane packing enabled (``--packed-implication``):
    the resolved mode plus the packed pre-pass totals — lanes packed,
    lanes resolved without the scalar engine, scalar fallbacks, and the
    closure/visit/microsecond counters of the packed engine.

The streaming pipeline (:mod:`repro.core.streaming`) additionally emits:

``stream_topology``
    One per streaming run: launch-group and connected-pair totals, and
    whether the packed reachability matrix was built in row blocks.
``launch_group``
    One per launch group as it is folded into the result:
    ``group_index``/``groups_total``, the launching FF, the group's
    pair count, how many the random filter dropped, and ``folded`` —
    the number of pair results settled so far (streaming progress).

A tracer writes each record to an optional JSON-lines sink as soon as it
is emitted (crash-safe for long runs) and keeps the records in memory
when no sink is given, which is what the tests inspect.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Any, Callable, Iterator

#: schema version stamped into every record's ``v`` field.
TRACE_SCHEMA_VERSION = 1

#: progress callback signature: (pairs done, pairs total, last event dict).
ProgressFn = Callable[[int, int, dict[str, Any]], None]


class Tracer:
    """Collects structured pipeline events; optionally streams JSONL.

    Parameters
    ----------
    sink:
        Writable text stream; each event is written as one JSON line and
        flushed.  ``None`` keeps events only in :attr:`events`.
    clock:
        Monotonic time source.  Injectable so tests can emit fully
        deterministic traces.
    keep:
        Retain events in memory.  Defaults to ``True`` without a sink
        (so the caller can still see them) and ``False`` with one
        (million-pair runs should not accumulate a list).
    """

    def __init__(
        self,
        sink: IO[str] | None = None,
        clock: Callable[[], float] = time.perf_counter,
        keep: bool | None = None,
    ) -> None:
        self.sink = sink
        self.clock = clock
        self.keep = (sink is None) if keep is None else keep
        self.events: list[dict[str, Any]] = []
        self.emitted = 0
        self._t0 = clock()

    def emit(self, event: str, **fields: Any) -> dict[str, Any]:
        """Record one event; returns the full record dictionary."""
        record: dict[str, Any] = {
            "v": TRACE_SCHEMA_VERSION,
            "event": event,
            "t": round(self.clock() - self._t0, 6),
        }
        record.update(fields)
        self.emitted += 1
        if self.keep:
            self.events.append(record)
        if self.sink is not None:
            self.sink.write(json.dumps(record) + "\n")
            self.sink.flush()
        return record

    def select(self, event: str) -> list[dict[str, Any]]:
        """Retained events of one type (requires ``keep=True``)."""
        return [e for e in self.events if e["event"] == event]


@contextmanager
def open_trace(path: str | Path) -> Iterator[Tracer]:
    """Context manager yielding a tracer that writes JSONL to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        yield Tracer(sink=fh)


def read_trace(path: str | Path) -> list[dict[str, Any]]:
    """Parse a JSONL trace file back into event dictionaries."""
    events = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events
