"""Work-stealing decision pool: persistent workers, one shared queue.

The decision stage used to shard surviving pairs into static chunks and
``ProcessPoolExecutor.map`` them — a straggler chunk (one hard launch
group) serialized the tail of every run.  Here the executor is a plain
work-stealing queue instead:

* ``workers`` persistent processes are spawned once per pipeline run;
  each builds its :class:`~repro.core.pipeline.AnalysisContext` and
  prepares its decider exactly once (the initializer arguments ship the
  circuit, options, unprepared decider, shared expansion and any
  pre-computed shared payload, exactly like the old pool initializer);
* work units — launch-group-aligned pair lists — go into one shared
  *buffered* task queue; idle workers *pull* whatever is next, so a
  slow unit only occupies the worker that took it while the rest drain
  the queue.  Both queues are :class:`multiprocessing.Queue` (feeder
  thread, unbounded buffer) so neither bulk submission nor bulky
  results can wedge on raw pipe capacity;
* results return on a shared result queue tagged with the unit index,
  the worker id and the unit's wall seconds; the caller merges them in
  unit order, which keeps the merged output byte-identical to a serial
  run regardless of which worker settled which unit.

Unit formation (:func:`launch_units`) never splits a launch group below
``split`` pairs, preserving the decision session's launch-prefix reuse
and its counter totals; groups *larger* than ``split`` are cut into
consecutive slices so one giant group cannot serialize the run.  A split
group re-derives its launch prefix once per slice — pair verdicts and
records are unchanged (the session's confluence argument), only the
``prefix_misses`` observability counter drifts upward.

Per-unit results carry the *deltas* of the worker-side session counters
(the decider persists across units), so the merged totals are
independent of unit→worker placement; ``trail_high_water`` merges by
maximum.
"""

from __future__ import annotations

import multiprocessing as mp
import time
import traceback
from dataclasses import replace
from typing import Any, NamedTuple, Sequence

from repro.circuit.topology import FFPair

#: a group larger than ``split_threshold(size)`` is sliced; the floor
#: keeps small test circuits (and their pinned counter totals) unsplit.
MIN_SPLIT_PAIRS = 128


class WorkUnit(NamedTuple):
    """One queue entry: a launch-group-aligned slice of the pair list."""

    index: int
    pairs: list[FFPair]


class UnitResult(NamedTuple):
    """One settled unit, tagged for ordered merging and telemetry."""

    index: int
    decided: list[Any]
    flags: list[Any]
    stats: dict[str, int] | None
    worker: int
    seconds: float


class _UnitFailure(NamedTuple):
    """A worker's unhandled exception, re-raised in the parent."""

    worker: int
    error: str


class _WorkerReady(NamedTuple):
    """One worker's prepare report, sent before its first unit result."""

    worker: int
    #: wall seconds from process entry to prepared decider.
    seconds: float
    #: backplane kinds the worker adopted (empty = rebuilt locally).
    adopted: tuple[str, ...]
    #: artifact-store hit/miss deltas during prepare (0/0 with no store).
    store_hits: int
    store_misses: int
    #: the worker's ``ru_maxrss`` after prepare, in KiB.
    rss_kb: int


def split_threshold(size: int) -> int:
    """Pairs above which one launch group is sliced into several units."""
    return max(4 * max(1, size), MIN_SPLIT_PAIRS)


def launch_units(
    pairs: Sequence[FFPair], size: int, split: int | None = None
) -> list[list[FFPair]]:
    """Contiguous work units of ~``size`` pairs, launch-group aligned.

    Consecutive same-source pairs (one launch group) stay in one unit so
    the decision session's prefix cache keeps working inside each
    worker.  A group larger than ``split`` (``None`` = never) is cut
    into consecutive slices of at most ``size`` pairs — the on-the-fly
    split that stops one giant group from serializing the run.
    Concatenating the units in order reproduces ``pairs`` exactly.
    """
    from repro.core.session import launch_runs

    size = max(1, size)
    units: list[list[FFPair]] = []
    current: list[FFPair] = []
    for start, end in launch_runs(pairs):
        group = list(pairs[start:end])
        if split is not None and len(group) > split:
            if current:
                units.append(current)
                current = []
            units.extend(
                group[lo: lo + size] for lo in range(0, len(group), size)
            )
            continue
        if current and len(current) + len(group) > size:
            units.append(current)
            current = []
        current.extend(group)
        if len(current) >= size:
            units.append(current)
            current = []
    if current:
        units.append(current)
    return units


def _decide_unit(decider: Any, pairs: Sequence[FFPair]) -> tuple:
    """Settle one unit on a prepared decider, reporting counter deltas.

    Shared by the queue workers and any in-process caller; the decider
    persists across units, so disagreements and session counters are
    sliced/differenced against the pre-unit snapshot to keep the merge
    placement-independent (``trail_high_water`` is a running maximum and
    is reported absolutely, merged by max).
    """
    flags_before = len(getattr(decider, "disagreements", ()))
    stats_fn = getattr(decider, "session_stats", None)
    stats_before = stats_fn() if stats_fn is not None else None
    group_fn = getattr(decider, "decide_group", None)
    if group_fn is not None:
        decided = list(group_fn(pairs))
    else:
        decided = []
        for pair in pairs:
            started = time.perf_counter()
            result = decider.decide(pair)
            decided.append((result, time.perf_counter() - started))
    flags = list(getattr(decider, "disagreements", ()))[flags_before:]
    stats = None
    if stats_fn is not None:
        after = stats_fn()
        stats = {
            key: value - stats_before.get(key, 0)
            for key, value in after.items()
        }
        stats["trail_high_water"] = after["trail_high_water"]
    return decided, flags, stats


def _worker_main(
    worker_id: int,
    tasks: Any,
    results: Any,
    circuit: Any,
    options: Any,
    decider: Any,
    expansion: Any,
    shared: Any,
    backplane: Any = None,
) -> None:
    """Queue worker: prepare once, then pull units until the sentinel."""
    # Imported here, not at module top: the pipeline module imports this
    # one, and under the fork start method nothing else is needed before
    # the worker begins pulling.
    from repro.core.pipeline import AnalysisContext
    from repro.store.runtime import active_store

    prepare_started = time.perf_counter()
    store = active_store()
    store_before = store.stats() if store is not None else None
    adopted: tuple[str, ...] = ()
    attachment = None  # anchors the shared mapping for the process lifetime
    try:
        ctx = AnalysisContext(circuit, options)
        if backplane is not None:
            # Attach instead of rebuild; any failure (stale handle, shm
            # pressure, codec skew) falls back to the pickled arguments.
            try:
                from repro.store.backplane import AttachedBackplane

                attachment = AttachedBackplane(backplane)
                adopted_expansion = attachment.adopt(circuit)
                if adopted_expansion is not None:
                    expansion = adopted_expansion
                if shared is None:
                    shared = attachment.shared_learned
                adopted = attachment.kinds
            except Exception:
                attachment = None
                adopted = ()
        if expansion is not None:
            ctx.adopt_expansion(expansion)
        if shared is not None:
            adopt = getattr(decider, "adopt_shared", None)
            if adopt is not None:
                adopt(shared)
        decider.prepare(ctx)
    except Exception:
        results.put(_UnitFailure(worker_id, traceback.format_exc()))
        return
    store_hits = store_misses = 0
    if store is not None and store_before is not None:
        store_hits = store.hits - store_before["hits"]
        store_misses = store.misses - store_before["misses"]
    try:
        import resource

        rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    except Exception:
        rss_kb = 0
    results.put(_WorkerReady(
        worker_id,
        time.perf_counter() - prepare_started,
        adopted,
        store_hits,
        store_misses,
        int(rss_kb),
    ))
    while True:
        task = tasks.get()
        if task is None:
            return
        started = time.perf_counter()
        try:
            decided, flags, stats = _decide_unit(decider, task.pairs)
        except Exception:
            results.put(_UnitFailure(worker_id, traceback.format_exc()))
            return
        results.put(UnitResult(
            task.index, decided, flags, stats, worker_id,
            time.perf_counter() - started,
        ))


class WorkStealingPool:
    """Persistent decision workers pulling from one shared task queue.

    Created once per pipeline run (lazily, by
    :meth:`~repro.core.pipeline.AnalysisContext.decision_pool`).  Units
    are submitted with :meth:`submit` and collected — in completion
    order — with :meth:`next_result`; :meth:`map_units` wraps the two
    for callers that want the whole batch back in unit order.  The pool
    records per-unit ``(worker, seconds)`` telemetry for the
    ``decision_queue`` trace event.
    """

    def __init__(
        self,
        circuit: Any,
        options: Any,
        decider: Any,
        expansion: Any,
        workers: int,
        key: tuple,
        shared: Any = None,
        backplane: Any = None,
    ) -> None:
        self.key = key
        self.workers = workers
        #: parent-owned shared-memory backplane (unlinked at shutdown).
        self.backplane = backplane
        #: per-worker prepare reports (spawn seconds, adoption, RSS).
        self.ready_log: list[dict[str, Any]] = []
        self._ready_seen = 0
        self._stash: list[UnitResult] = []
        ctx = mp.get_context()
        # Buffered queues (feeder thread + unbounded deque), NOT
        # SimpleQueue: a SimpleQueue is a bare ~64 KiB pipe, and with
        # units submitted ahead of result draining the result pipe
        # fills, workers block writing, stop pulling tasks, the task
        # pipe fills and the parent blocks in submit() — a three-way
        # deadlock that first bit on a 10k-gate parallel run.  With
        # buffered queues both put() ends never block.
        self._tasks = ctx.Queue()
        self._results = ctx.Queue()
        self._pending = 0
        self.unit_log: list[dict[str, int | float]] = []
        self._procs = [
            ctx.Process(
                target=_worker_main,
                args=(
                    wid, self._tasks, self._results, circuit,
                    replace(options, workers=1), decider, expansion, shared,
                    backplane.handle if backplane is not None else None,
                ),
                daemon=True,
            )
            for wid in range(workers)
        ]
        for proc in self._procs:
            proc.start()

    @property
    def pending(self) -> int:
        """Units submitted but not yet collected."""
        return self._pending

    def submit(self, index: int, pairs: Sequence[FFPair]) -> None:
        """Enqueue one work unit; any idle worker may take it."""
        self._tasks.put(WorkUnit(index, list(pairs)))
        self._pending += 1

    def _record_ready(self, ready: _WorkerReady) -> None:
        self._ready_seen += 1
        self.ready_log.append({
            "worker": ready.worker,
            "seconds": round(ready.seconds, 6),
            "adopted": list(ready.adopted),
            "store_hits": ready.store_hits,
            "store_misses": ready.store_misses,
            "rss_kb": ready.rss_kb,
        })

    def next_result(self) -> UnitResult:
        """Block for the next settled unit, in completion order."""
        if self._stash:
            outcome: Any = self._stash.pop(0)
        else:
            outcome = self._results.get()
            while isinstance(outcome, _WorkerReady):
                self._record_ready(outcome)
                outcome = self._results.get()
        if isinstance(outcome, _UnitFailure):
            self.shutdown()
            raise RuntimeError(
                f"decision worker {outcome.worker} failed:\n{outcome.error}"
            )
        self._pending -= 1
        self.unit_log.append({
            "unit": outcome.index,
            "pairs": len(outcome.decided),
            "worker": outcome.worker,
            "seconds": round(outcome.seconds, 6),
        })
        return outcome

    def map_units(self, units: Sequence[Sequence[FFPair]]) -> list[UnitResult]:
        """Run every unit; results returned in unit (submission) order."""
        for index, unit in enumerate(units):
            self.submit(index, unit)
        collected: dict[int, UnitResult] = {}
        while len(collected) < len(units):
            result = self.next_result()
            collected[result.index] = result
        return [collected[index] for index in range(len(units))]

    def wait_ready(self, timeout: float = 30.0) -> list[dict[str, Any]]:
        """Collect every worker's prepare report (best-effort, bounded).

        Unit results arriving while waiting are stashed for the next
        :meth:`next_result` call, so this is safe to call at any point;
        callers normally do so after the units drained, when the only
        outstanding messages are ready reports from idle workers.
        """
        import queue as queue_mod

        deadline = time.monotonic() + timeout
        while self._ready_seen < self.workers:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                outcome = self._results.get(timeout=remaining)
            except queue_mod.Empty:
                break
            if isinstance(outcome, _WorkerReady):
                self._record_ready(outcome)
            elif isinstance(outcome, _UnitFailure):
                self.shutdown()
                raise RuntimeError(
                    f"decision worker {outcome.worker} failed:\n"
                    f"{outcome.error}"
                )
            else:
                self._stash.append(outcome)
        return list(self.ready_log)

    def worker_summary(self) -> list[dict[str, int | float]]:
        """Per-worker totals over the run's unit log (for telemetry)."""
        summary = [
            {"worker": wid, "units": 0, "pairs": 0, "seconds": 0.0}
            for wid in range(self.workers)
        ]
        for entry in self.unit_log:
            row = summary[int(entry["worker"])]
            row["units"] = int(row["units"]) + 1
            row["pairs"] = int(row["pairs"]) + int(entry["pairs"])
            row["seconds"] = round(
                float(row["seconds"]) + float(entry["seconds"]), 6
            )
        return summary

    def shutdown(self) -> None:
        """Stop the workers (sentinel per worker, then join)."""
        for _ in self._procs:
            try:
                self._tasks.put(None)
            except (OSError, ValueError):
                break
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)
        for queue in (self._tasks, self._results):
            queue.close()
            queue.cancel_join_thread()
        if self.backplane is not None:
            self.backplane.close_and_unlink()
            self.backplane = None
