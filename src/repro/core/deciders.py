"""Pluggable pair-decision engines for the analysis pipeline.

A *decider* settles one surviving FF pair against the MC condition.  The
paper's engine — implication with an ATPG fallback — is one of several
registered implementations:

========== ===========================================================
``dalg``   implication + D-algorithm-style backtrack search (paper)
``podem``  implication + PODEM-style search (the alternative of §4.5)
``scoap``  ``dalg`` with SCOAP-guided decision ordering
``sat``    the CDCL SAT baseline of ref. [9], incremental encoding
``bdd``    the symbolic baseline of ref. [8] (assumed-reachable form)
``cross-check``  runs two engines per pair and flags disagreements
========== ===========================================================

All deciders share the protocol: construct cheap and picklable, then
``prepare(ctx)`` once per process (building engines from the context's
cached time-frame expansion) and ``decide(pair)`` per pair.  The split
is what makes the parallel executor work — unprepared deciders are
shipped to worker processes, which rebuild their engines locally from
the shared expansion.

Three optional extensions the pipeline probes with ``getattr``:

* ``decide_group(pairs) -> [(PairResult, seconds), ...]`` — settle a
  whole chunk at once; the implication/ATPG deciders use it to share
  launch prefixes across same-source pairs
  (:class:`~repro.core.session.DecisionSession`).
* ``prepare_shared(ctx)`` / ``adopt_shared(payload)`` — compute an
  expensive, process-independent artifact once in the parent (the
  static-learning table) and ship it through the worker-pool
  initializer instead of recomputing it in every worker.
* ``session_stats() -> dict`` — counter totals for the
  ``decision_session`` trace event.

Registering a new engine::

    @register_decider("my-engine")
    class MyDecider:
        frames = 2
        def __init__(self, name="my-engine"): self.name = name
        def prepare(self, ctx): ...
        def decide(self, pair) -> PairResult: ...
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Protocol, runtime_checkable

from repro.circuit.topology import FFPair
from repro.core.result import Classification, Disagreement, PairResult, Stage

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.pipeline import AnalysisContext


@runtime_checkable
class PairDecider(Protocol):
    """Decision procedure settling one FF pair on a shared expansion."""

    #: registry name (also used in trace events).
    name: str
    #: time frames the decider needs expanded (2 for the MC condition).
    frames: int

    def prepare(self, ctx: AnalysisContext) -> None:
        """Build per-process state (engines, encodings) from the context."""

    def decide(self, pair: FFPair) -> PairResult:
        """Classify one pair; must be deterministic and side-effect free
        with respect to other pairs."""


#: name -> factory taking the registry name (variants share a factory).
DECIDER_REGISTRY: dict[str, Callable[[str], "PairDecider"]] = {}


def register_decider(*names: str):
    """Class decorator registering a decider under one or more names."""

    def decorate(factory):
        for name in names:
            DECIDER_REGISTRY[name] = factory
        return factory

    return decorate


def available_engines() -> tuple[str, ...]:
    """Registered engine names, sorted (the CLI's ``--engine`` choices)."""
    return tuple(sorted(DECIDER_REGISTRY))


def create_decider(name: str) -> PairDecider:
    """Instantiate the decider registered under ``name``."""
    try:
        factory = DECIDER_REGISTRY[name]
    except KeyError:
        known = ", ".join(available_engines())
        raise ValueError(f"unknown engine {name!r}; available: {known}") from None
    return factory(name)


# ----------------------------------------------------------------------
# The paper's engine: implication + ATPG backtrack search.
# ----------------------------------------------------------------------
@register_decider("dalg", "podem", "scoap")
class ImplicationAtpgDecider:
    """Wraps :class:`~repro.core.session.DecisionSession`.

    The registry name selects the variant: ``dalg`` / ``podem`` pick the
    backtrack search, ``scoap`` is ``dalg`` with SCOAP-guided ordering.
    The session shares one array-backed implication engine across every
    pair and caches launch prefixes within same-source groups.
    """

    frames = 2

    def __init__(self, name: str = "dalg") -> None:
        self.name = name
        self.learned_implications = 0
        self._shared_learned = None
        #: stats block of the compiled implication DB, when one is used.
        self.db_info: dict | None = None

    def prepare_shared(self, ctx: AnalysisContext):
        """Learned table, computed once in the parent process.

        With ``options.implication_db`` this is the compiled global
        :class:`~repro.analysis.implication_db.ImplicationDB` (cached on
        the expanded circuit, so repeated runs reuse it); otherwise the
        legacy per-key static-learning table, when enabled.  The DB takes
        precedence when both options are set.
        """
        if ctx.options.implication_db:
            from repro.analysis.implication_db import implication_db

            db = implication_db(ctx.expansion(self.frames).comb)
            self.db_info = db.stats()
            return db
        if not ctx.options.static_learning:
            return None
        from repro.atpg.learning import learn_static_implications

        return learn_static_implications(ctx.expansion(self.frames).comb)

    def adopt_shared(self, payload) -> None:
        """Install a table shipped through the worker-pool initializer."""
        self._shared_learned = payload

    def prepare(self, ctx: AnalysisContext) -> None:
        from repro.atpg.learning import count_learned, learn_static_implications
        from repro.core.session import DecisionSession

        options = ctx.options
        expansion = ctx.expansion(self.frames)
        learned = self._shared_learned
        if learned is None and options.implication_db:
            from repro.analysis.implication_db import implication_db

            learned = implication_db(expansion.comb)
        elif learned is None and options.static_learning:
            learned = learn_static_implications(expansion.comb)
        if learned is not None:
            self.learned_implications = count_learned(learned)
            stats_fn = getattr(learned, "stats", None)
            if stats_fn is not None:
                self.db_info = stats_fn()
        self._session = DecisionSession(
            expansion,
            backtrack_limit=options.backtrack_limit,
            learned=learned,
            search_engine="podem" if self.name == "podem" else "dalg",
            scoap_guidance=options.scoap_guidance or self.name == "scoap",
            share_prefix=options.launch_prefix,
            packed=options.packed_implication,
            clock=ctx.clock,
        )

    def decide(self, pair: FFPair) -> PairResult:
        return self._session.decide(pair)

    def decide_group(self, pairs):
        return self._session.decide_group(pairs)

    def session_stats(self) -> dict[str, int]:
        return self._session.stats()


# ----------------------------------------------------------------------
# The SAT baseline of ref. [9] as a decider.
# ----------------------------------------------------------------------
@register_decider("sat")
class SatDecider:
    """Adapts :class:`~repro.sat.mc_sat.SatMcDetector` (incremental mode).

    The Tseitin encoding is built once per process in :meth:`prepare`
    over the context's shared 2-frame expansion; each pair is a single
    assumption-based solve.
    """

    frames = 2

    def __init__(self, name: str = "sat") -> None:
        self.name = name

    def prepare(self, ctx: AnalysisContext) -> None:
        from repro.sat.mc_sat import SatMcDetector

        self._detector = SatMcDetector(
            ctx.circuit,
            include_self_loops=ctx.options.include_self_loops,
            mode="incremental",
            expansion=ctx.expansion(self.frames),
        )

    def decide(self, pair: FFPair) -> PairResult:
        result = self._detector.analyze(pair)
        if result.unknown:
            return PairResult(pair, Classification.UNDECIDED, Stage.DECISION)
        classification = (
            Classification.MULTI_CYCLE
            if result.is_multi_cycle
            else Classification.SINGLE_CYCLE
        )
        return PairResult(pair, classification, Stage.DECISION)


# ----------------------------------------------------------------------
# The symbolic baseline of ref. [8] as a decider.
# ----------------------------------------------------------------------
@register_decider("bdd")
class BddDecider:
    """Adapts :class:`~repro.bdd.traversal.BddMcDetector`.

    Node BDDs are built once per process; each pair is two XORs and a
    conjunction.  Assumed-reachable form (no traversal), matching the
    other deciders' state assumption.  Undecidable blow-ups surface as
    :class:`~repro.bdd.traversal.BddLimitExceeded` from ``prepare``.
    """

    frames = 2

    def __init__(self, name: str = "bdd") -> None:
        self.name = name

    def prepare(self, ctx: AnalysisContext) -> None:
        from repro.bdd.traversal import BddMcDetector

        self._detector = BddMcDetector(ctx.circuit, use_reachability=False)
        self._detector.prepare(expansion=ctx.expansion(self.frames))

    def decide(self, pair: FFPair) -> PairResult:
        result = self._detector.analyze(pair)
        classification = (
            Classification.MULTI_CYCLE
            if result.is_multi_cycle
            else Classification.SINGLE_CYCLE
        )
        return PairResult(pair, classification, Stage.DECISION)


# ----------------------------------------------------------------------
# Cross-checking decider: two engines per pair, disagreements flagged.
# ----------------------------------------------------------------------
@register_decider("cross-check")
class CrossCheckDecider:
    """Runs a primary and a secondary engine on every pair.

    The primary's verdict is returned (so stage attribution and case
    records stay meaningful); whenever both engines reach a definite
    classification and they differ, a :class:`Disagreement` is recorded
    in :attr:`disagreements` and surfaced as a trace event by the
    pipeline.  The default pairing — implication/ATPG against SAT —
    mirrors the paper's Table 1 comparison, pair by pair.
    """

    frames = 2

    def __init__(
        self,
        name: str = "cross-check",
        primary: str = "dalg",
        secondary: str = "sat",
    ) -> None:
        self.name = name
        self.primary_name = primary
        self.secondary_name = secondary
        self.disagreements: list[Disagreement] = []
        self._shared = None
        self.db_info: dict | None = None

    def prepare_shared(self, ctx: AnalysisContext):
        """Delegate to the primary engine's shared pre-pass, if it has one."""
        primary = create_decider(self.primary_name)
        shared_fn = getattr(primary, "prepare_shared", None)
        shared = shared_fn(ctx) if shared_fn is not None else None
        self.db_info = getattr(primary, "db_info", None)
        return shared

    def adopt_shared(self, payload) -> None:
        self._shared = payload

    def prepare(self, ctx: AnalysisContext) -> None:
        self._primary = create_decider(self.primary_name)
        self._secondary = create_decider(self.secondary_name)
        if self._shared is not None:
            adopt = getattr(self._primary, "adopt_shared", None)
            if adopt is not None:
                adopt(self._shared)
        self._primary.prepare(ctx)
        self._secondary.prepare(ctx)
        self.learned_implications = getattr(
            self._primary, "learned_implications", 0
        )
        if self.db_info is None:
            self.db_info = getattr(self._primary, "db_info", None)

    def decide(self, pair: FFPair) -> PairResult:
        first = self._primary.decide(pair)
        second = self._secondary.decide(pair)
        decided = Classification.UNDECIDED
        if (
            first.classification is not decided
            and second.classification is not decided
            and first.classification is not second.classification
        ):
            self.disagreements.append(
                Disagreement(
                    pair=pair,
                    primary_engine=self.primary_name,
                    primary=first.classification,
                    secondary_engine=self.secondary_name,
                    secondary=second.classification,
                )
            )
        return first
