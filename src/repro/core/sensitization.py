"""Static (co-)sensitization path search (Section 5.2/5.3).

A static hazard can invalidate a detected multi-cycle FF pair: even though
the sink's settled value is stable, the source transition may glitch
through to the sink's data input during the relaxed cycle.  The paper
detects this delay-independently by asking whether some path from the
source (at time t+1, entering the second time frame) to the sink's data
input (at time t+2) is

* **statically sensitizable** — an input vector sets every side input
  along the path to its non-controlling value (Section 5.2; optimistic:
  a sensitizable path is not always statically sensitizable, and surviving
  pairs may still depend on one another), or
* **statically co-sensitizable** — for every gate on the path with a
  controlled value the on-input presents the controlling value
  (Section 5.3; safe: every sensitizable path is statically
  co-sensitizable).

The search walks forward from the source, assuming the per-gate side-input
constraints through the shared implication engine (contradictions prune
whole path families), and confirms each complete path with the
justification search so that only genuinely satisfiable vectors count.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.circuit.gates import CONTROLLING, GateType
from repro.logic.values import ONE, ZERO
from repro.atpg.implication import ImplicationEngine
from repro.atpg.justify import SearchStatus, justify


class SensitizationMode(Enum):
    """Which delay-independent condition the path search enforces."""

    STATIC_SENSITIZATION = "sensitize"
    STATIC_CO_SENSITIZATION = "co-sensitize"


def mode_from_flag(flag: str) -> SensitizationMode:
    """Map a CLI/option spelling to a :class:`SensitizationMode`.

    Accepts the enum values plus the hyphen-less ``cosensitize`` used by
    ``--hazard-check`` (where ``ternary`` and ``off`` are not path-search
    modes and are handled by the caller).
    """
    normalized = flag.replace("-", "").lower()
    if normalized == "sensitize":
        return SensitizationMode.STATIC_SENSITIZATION
    if normalized == "cosensitize":
        return SensitizationMode.STATIC_CO_SENSITIZATION
    raise ValueError(f"unknown sensitization mode {flag!r}")


class PathSearchOutcome(Enum):
    """Result of a sensitizable-path search."""

    FOUND = "found"
    NONE = "none"
    #: resource limit hit; callers must treat this conservatively
    UNKNOWN = "unknown"


@dataclass
class PathSearchResult:
    outcome: PathSearchOutcome
    #: node ids of a found path, source first (when FOUND)
    path: list[int] | None = None
    attempts: int = 0


def _extension_options(
    engine: ImplicationEngine,
    gate: int,
    via: int,
    mode: SensitizationMode,
) -> list[list[tuple[int, int]]] | None:
    """Ways to extend a path into ``gate`` through fanin ``via``.

    Each option is a list of (node, value) assumptions; ``None`` means the
    gate imposes no constraint (buffers, inverters, parity gates).
    """
    gate_type = engine.types[gate]
    fanins = engine.fanins[gate]

    if gate_type in CONTROLLING:
        controlling, _ = CONTROLLING[gate_type]
        side_inputs = [f for f in fanins if f != via]
        if mode is SensitizationMode.STATIC_SENSITIZATION:
            # Every side input must settle at the non-controlling value.
            return [[(f, 1 - controlling) for f in side_inputs]]
        # Co-sensitization: either the gate is controlled and the on-input
        # carries the controlling value, or the gate is non-controlled
        # (every input non-controlling).
        return [
            [(via, controlling)],
            [(f, 1 - controlling) for f in fanins],
        ]

    if gate_type == GateType.MUX:
        select, d0, d1 = fanins
        options: list[list[tuple[int, int]]] = []
        if via == select:
            # The select only matters when the data inputs differ.
            options.append([(d0, ZERO), (d1, ONE)])
            options.append([(d0, ONE), (d1, ZERO)])
        if via == d0:
            options.append([(select, ZERO)])
        if via == d1:
            options.append([(select, ONE)])
        return options

    # BUF / NOT / OUTPUT / XOR / XNOR: no side constraint either way.
    return None


def find_sensitizable_path(
    engine: ImplicationEngine,
    source: int,
    target: int,
    allowed: frozenset[int] | set[int],
    mode: SensitizationMode,
    backtrack_limit: int = 50,
    max_attempts: int = 5000,
) -> PathSearchResult:
    """Search for a statically (co-)sensitizable path ``source -> target``.

    ``allowed`` restricts intermediate/target nodes (used to confine the
    walk to one time frame of an expansion).  The engine may already carry
    context assumptions (the MC case premise); it is restored before
    returning.  A FOUND result is backed by a justification-verified input
    vector.
    """
    reach = engine.circuit.transitive_fanin([target])
    if source not in reach:
        return PathSearchResult(PathSearchOutcome.NONE)

    outer_mark = engine.checkpoint()
    attempts = 0
    saw_unknown = False

    def walk(node: int, path: list[int]) -> PathSearchOutcome:
        nonlocal attempts, saw_unknown
        if node == target:
            result = justify(engine, backtrack_limit)
            if result.status is SearchStatus.SAT:
                return PathSearchOutcome.FOUND
            if result.status is SearchStatus.ABORTED:
                saw_unknown = True
            return PathSearchOutcome.NONE
        for gate in engine.fanouts[node]:
            if gate not in reach or gate not in allowed or gate in path:
                continue
            attempts += 1
            if attempts > max_attempts:
                saw_unknown = True
                return PathSearchOutcome.NONE
            options = _extension_options(engine, gate, node, mode)
            if options is None:
                options = [[]]
            for option in options:
                mark = engine.checkpoint()
                if engine.assume_all(option):
                    path.append(gate)
                    outcome = walk(gate, path)
                    if outcome is PathSearchOutcome.FOUND:
                        return outcome
                    path.pop()
                engine.backtrack(mark)
        return PathSearchOutcome.NONE

    path: list[int] = [source]
    outcome = walk(source, path)
    if outcome is PathSearchOutcome.FOUND:
        found = list(path)
        engine.backtrack(outer_mark)
        return PathSearchResult(PathSearchOutcome.FOUND, found, attempts)
    engine.backtrack(outer_mark)
    if saw_unknown:
        return PathSearchResult(PathSearchOutcome.UNKNOWN, None, attempts)
    return PathSearchResult(PathSearchOutcome.NONE, None, attempts)
