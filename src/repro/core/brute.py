"""Exhaustive reference oracle for the MC condition.

For circuits small enough to enumerate every (state, input, input)
combination this module decides the MC condition *exactly* by simulation.
It exists to cross-validate the implication-based detector, the SAT-based
baseline and the BDD-based baseline — all four must agree on small
circuits — and doubles as executable documentation of the condition.
"""

from __future__ import annotations

from itertools import product

from repro.circuit.netlist import Circuit
from repro.circuit.topology import FFPair, connected_ff_pairs
from repro.logic.simulator import Simulator


def _three_frames(circuit: Circuit, state_bits: tuple[int, ...],
                  inputs0: tuple[int, ...], inputs1: tuple[int, ...]):
    """Simulate two clock cycles; return FF value dicts at t, t+1, t+2."""
    sim = Simulator(circuit)
    sim.set_all_state(state_bits)
    if circuit.inputs:
        sim.set_all_inputs(inputs0)
    s0 = {d: sim.values[d] for d in circuit.dffs}
    sim.clock()
    s1 = {d: sim.values[d] for d in circuit.dffs}
    if circuit.inputs:
        sim.set_all_inputs(inputs1)
    sim.clock()
    s2 = {d: sim.values[d] for d in circuit.dffs}
    return s0, s1, s2


def brute_force_mc_pairs(
    circuit: Circuit,
    include_self_loops: bool = True,
    max_bits: int = 22,
) -> set[tuple[int, int]]:
    """All multi-cycle FF pairs by exhaustive enumeration.

    Enumerates every initial state and every input vector for two cycles
    (``2**(num_dffs + 2 * num_inputs)`` simulations) and keeps the pairs for
    which no combination violates the MC condition.  Refuses circuits with
    more than ``max_bits`` free bits.
    """
    num_dffs = len(circuit.dffs)
    num_inputs = len(circuit.inputs)
    total_bits = num_dffs + 2 * num_inputs
    if total_bits > max_bits:
        raise ValueError(
            f"{total_bits} free bits exceed the brute-force limit of {max_bits}"
        )

    pairs = connected_ff_pairs(circuit, include_self_loops=include_self_loops)
    candidates: set[tuple[int, int]] = {(p.source, p.sink) for p in pairs}

    for state_bits in product((0, 1), repeat=num_dffs):
        for inputs0 in product((0, 1), repeat=num_inputs):
            for inputs1 in product((0, 1), repeat=num_inputs):
                if not candidates:
                    return candidates
                s0, s1, s2 = _three_frames(circuit, state_bits, inputs0, inputs1)
                violated = [
                    (i, j)
                    for (i, j) in candidates
                    if s0[i] != s1[i] and s1[j] != s2[j]
                ]
                candidates.difference_update(violated)
    return candidates


def brute_force_is_multi_cycle(circuit: Circuit, pair: FFPair) -> bool:
    """Exact MC-condition check for a single pair (same enumeration)."""
    result = brute_force_mc_pairs(circuit)
    return (pair.source, pair.sink) in result


def brute_force_k_cycle_pairs(
    circuit: Circuit,
    k: int,
    include_self_loops: bool = True,
    max_bits: int = 20,
) -> set[tuple[int, int]]:
    """Exact k-cycle FF pairs: sink stable from t+1 through t+k.

    ``k = 2`` coincides with :func:`brute_force_mc_pairs`.
    """
    if k < 2:
        raise ValueError("k must be >= 2")
    num_dffs = len(circuit.dffs)
    num_inputs = len(circuit.inputs)
    total_bits = num_dffs + k * num_inputs
    if total_bits > max_bits:
        raise ValueError(
            f"{total_bits} free bits exceed the brute-force limit of {max_bits}"
        )

    pairs = connected_ff_pairs(circuit, include_self_loops=include_self_loops)
    candidates: set[tuple[int, int]] = {(p.source, p.sink) for p in pairs}

    for state_bits in product((0, 1), repeat=num_dffs):
        for input_seq in product(
            *[product((0, 1), repeat=num_inputs) for _ in range(k)]
        ):
            if not candidates:
                return candidates
            sim = Simulator(circuit)
            sim.set_all_state(state_bits)
            states = []
            for frame in range(k):
                if circuit.inputs:
                    sim.set_all_inputs(input_seq[frame])
                states.append({d: sim.values[d] for d in circuit.dffs})
                sim.clock()
            states.append({d: sim.values[d] for d in circuit.dffs})
            # states[f] holds FF values at time t+f for f in 0..k.
            violated = [
                (i, j)
                for (i, j) in candidates
                if states[0][i] != states[1][i]
                and any(states[m][j] != states[m + 1][j] for m in range(1, k))
            ]
            candidates.difference_update(violated)
    return candidates
