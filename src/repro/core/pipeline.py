"""Staged pair-analysis pipeline: the paper's flow as composable parts.

The paper's Section 4.1 flow — topology → random simulation → per-pair
decision — used to be hard-coded inside ``MultiCycleDetector.run()``.
Here it is a :class:`Pipeline` of :class:`PipelineStage` objects running
over an :class:`AnalysisContext`, so that

* the decision procedure is pluggable (:mod:`repro.core.deciders` —
  implication/ATPG, SAT, BDD, or a cross-checking pair of engines),
* surviving pairs can be sharded across a persistent pool of ``workers``
  processes whose initializer prepares each worker's engines exactly
  once from the shared time-frame expansion; small deterministic chunks
  keep workers busy, results merge byte-identical to serial, and tiny
  pair lists fall back to in-process serial automatically,
* every stage boundary and every analyzed pair emits a structured
  trace event (:mod:`repro.core.trace`) instead of ad-hoc timing code.

The detector, k-cycle detector and reporting layers all build their
pipelines from these stages; ``MultiCycleDetector`` is now a thin shell
around :func:`default_pipeline`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Protocol, Sequence

from repro.circuit.netlist import Circuit
from repro.circuit.timeframe import TimeFrameExpansion, expand_cached
from repro.circuit.topology import FFPair, connected_ff_pairs
from repro.core.deciders import PairDecider, create_decider
from repro.core.hazard import HazardChecker
from repro.core.random_filter import random_filter, random_filter_k
from repro.core.sensitization import mode_from_flag
from repro.core.ternary_hazard import TernaryHazardChecker
from repro.core.workqueue import (
    WorkStealingPool,
    launch_units,
    split_threshold,
)
from repro.logic.bitsim import BitSimulator
from repro.core.result import (
    Classification,
    DetectionResult,
    Disagreement,
    PairHazardVerdict,
    PairResult,
    Stage,
    StageStats,
)
from repro.core.trace import ProgressFn, Tracer


@dataclass
class DetectorOptions:
    """Tuning knobs for the pipeline (paper defaults)."""

    #: 64-bit words per random-simulation round (64*words patterns).
    sim_words: int = 4
    #: hard cap on simulation rounds.
    sim_max_rounds: int = 256
    #: random seed for the simulation stage (results are deterministic).
    sim_seed: int = 2002
    #: skip the random-simulation stage entirely (ablation).
    use_random_sim: bool = True
    #: ATPG backtrack limit; the paper used 50 (more for a few circuits).
    backtrack_limit: int = 50
    #: pre-compute SOCRATES-style global implications before ATPG.
    static_learning: bool = False
    #: use the compiled global implication database
    #: (:mod:`repro.analysis.implication_db`) as the deciders' learned
    #: table; built once per netlist version, transitively closed, and
    #: shipped to decision workers.  Takes precedence over
    #: ``static_learning`` when both are set.
    implication_db: bool = False
    #: structural lint policy applied before the pipeline runs:
    #: "off" (classic first-error validation), "warn" (full lint, reject
    #: errors, surface warnings), "strict" (reject warnings too).  The
    #: lint pass only validates — verdicts of an accepted circuit are
    #: identical across all three modes.
    lint: str = "off"
    #: analyse (FF, FF) self-loop pairs (the SAT baseline of [9] skipped them).
    include_self_loops: bool = True
    #: decision engine, by registry name (``repro.core.deciders``):
    #: "dalg" (paper's choice), "podem", "scoap", "sat", "bdd",
    #: "cross-check".
    search_engine: str = "dalg"
    #: SCOAP-guided decision ordering in the dalg search (ablation).
    scoap_guidance: bool = False
    #: share launch-assumption implications across same-source pairs in
    #: the decision session; disabling re-derives the full premise per
    #: case (ablation — verdicts are identical either way).
    launch_prefix: bool = True
    #: bit-parallel implication pre-pass in the decision session: "auto"
    #: (enabled above :data:`repro.core.session.PACKED_AUTO_MIN_NODES`
    #: expanded nodes), "on", or "off".  Up to 64 ``(pair, a, b)`` cases
    #: share one packed closure per uint64 word; cases needing a
    #: backtrack search fall back to the scalar engine, so verdicts and
    #: ``pair_records`` are byte-identical in every mode.
    packed_implication: str = "auto"
    #: worker processes for the decision stage (1 = in-process serial).
    workers: int = 1
    #: zero-copy shared-memory backplane for parallel decision workers:
    #: "auto"/"on" publish the expansion, CSR views, SimPlan, packed plan
    #: and implication DB once into ``multiprocessing.shared_memory`` so
    #: workers attach instead of rebuilding; "off" ships pickled
    #: arguments as before.  Verdicts and pair records are byte-identical
    #: in every mode; publishing is best-effort (a failure falls back to
    #: the pickled path).
    backplane: str = "auto"
    #: simulation evaluator: "compiled" (levelized batched plan, default)
    #: or "python" (the reference per-node loop).  Both are bit-identical.
    sim_plan: str = "compiled"
    #: max logical rounds packed into one wide simulation pass (the word
    #: axis); results are identical for every value, 1 disables batching.
    sim_round_batch: int = 8
    #: minimum surviving pairs before the decision stage actually shards;
    #: below it a ``workers > 1`` run falls back to in-process serial,
    #: because pool/dispatch overhead would dominate.
    parallel_threshold: int = 128
    #: pairs per chunk dispatched to the worker pool (0 = automatic:
    #: enough chunks to keep every worker busy several times over).
    chunk_pairs: int = 0
    #: hazard validation of detected multi-cycle pairs (Section 5):
    #: "off" (default), "ternary" (bit-parallel Eichelberger simulation),
    #: "sensitize" or "cosensitize" (static path sensitization), or
    #: "exact" (both bounds plus a SAT decision of every disagreeing
    #: pair — see ``docs/hazards.md``).  Pair classifications and records
    #: are identical either way — the stage only annotates the result
    #: with flagged pairs (and, for "exact", per-pair verdicts).
    hazard_check: str = "off"
    #: backtrack limit for the hazard stage's witness/path searches.
    hazard_backtrack_limit: int = 200
    #: conflict limit per SAT solve of the exact hazard decision; hitting
    #: it demotes the pair to the conservative "glitch-possible".
    hazard_conflict_limit: int = 100_000
    #: path of a per-gate min/max delay sidecar JSON (see
    #: :mod:`repro.sta.delays`); with "exact" mode it re-filters
    #: glitch-proven pairs to those whose pulse survives the delays.
    hazard_delays: str | None = None
    #: streaming launch-group execution: "auto" (selected for circuits
    #: above :data:`repro.core.streaming.STREAMING_AUTO_DFFS` flip-flops),
    #: "on", or "off".  The streaming pipeline folds topology →
    #: random-sim → decide → hazard one launch group at a time with
    #: bounded peak memory; pair records are byte-identical either way.
    streaming: str = "auto"
    #: streaming only: cap on pairs submitted to the decision queue but
    #: not yet folded (bounds parent-side memory on huge circuits).
    max_pairs_in_flight: int = 8192
    #: directory of the content-addressed on-disk artifact store
    #: (:mod:`repro.store`); ``None`` falls back to the
    #: ``REPRO_CACHE_DIR`` environment variable, and an empty result
    #: disables persistence (in-memory caches only).  Derived artifacts
    #: (SimPlan, reach matrices, implication DB, lint/sweep reports,
    #: pair-record bundles) round-trip through the store transparently;
    #: verdicts are identical with or without it.
    cache_dir: str | None = None
    #: size bound of the artifact store in bytes (LRU eviction beyond it).
    cache_max_bytes: int = 1 << 30


@dataclass
class AnalysisContext:
    """Everything a pipeline run needs: circuit, options, caches, clock.

    The context memoises k-frame expansions (via the circuit-level cache
    in :mod:`repro.circuit.timeframe`) and carries the optional tracer
    and progress callback.  ``clock`` is injectable so tests can produce
    fully deterministic traces.
    """

    circuit: Circuit
    options: DetectorOptions = field(default_factory=DetectorOptions)
    clock: Callable[[], float] = time.perf_counter
    tracer: Tracer | None = None
    progress: ProgressFn | None = None
    #: expansions adopted from a parent process (parallel workers).
    _adopted: dict[int, TimeFrameExpansion] = field(
        default_factory=dict, repr=False
    )
    #: cached bit simulators keyed by (words, plan mode, circuit version).
    _simulators: dict[tuple, BitSimulator] = field(
        default_factory=dict, repr=False
    )
    #: persistent decision-worker pool (created lazily, closed with the run).
    _pool: WorkStealingPool | None = field(default=None, repr=False)

    def expansion(self, frames: int = 2) -> TimeFrameExpansion:
        """The shared ``frames``-frame expansion of the circuit (cached)."""
        adopted = self._adopted.get(frames)
        if adopted is not None:
            return adopted
        return expand_cached(self.circuit, frames)

    def adopt_expansion(self, expansion: TimeFrameExpansion) -> None:
        """Install an expansion computed elsewhere (worker processes)."""
        self._adopted[expansion.frames] = expansion

    def bit_simulator(self, words: int | None = None) -> BitSimulator:
        """A reusable :class:`BitSimulator` for this context.

        The simulator (buffers included) is cached, so every random-filter
        round and every stage asking for the same word width shares one
        instance; the compiled plan behind it is additionally cached on
        the circuit itself.
        """
        if words is None:
            words = self.options.sim_words
        key = (words, self.options.sim_plan, self.circuit.version)
        sim = self._simulators.get(key)
        if sim is None:
            sim = BitSimulator(self.circuit, words, plan=self.options.sim_plan)
            self._simulators[key] = sim
        return sim

    def decision_pool(
        self,
        decider: PairDecider,
        expansion: TimeFrameExpansion,
        shared=None,
        publish=None,
    ) -> WorkStealingPool:
        """The run's persistent worker pool, created on first use.

        Workers build their :class:`AnalysisContext` and prepare the
        decider once, from the spawn arguments; ``shared`` (e.g. the
        parent-computed static-learning table) ships with them.
        Subsequent work units only carry pair lists.  Asking for a
        different decider/expansion/worker count replaces the pool.

        ``publish`` is the backplane hook: a zero-arg callable returning
        ``(backplane, worker_expansion, worker_shared)``, invoked only
        when a new pool is actually spawned (reusing a pool must not
        publish — and leak — another shared-memory block).  When it
        returns a backplane, workers receive its handle and attach
        instead of deserializing the pickled expansion/shared payloads.
        """
        workers = max(1, self.options.workers)
        key = (
            id(self.circuit),
            self.circuit.version,
            decider.name,
            expansion.frames,
            workers,
        )
        if self._pool is not None and self._pool.key != key:
            self._pool.shutdown()
            self._pool = None
        if self._pool is None:
            backplane = None
            worker_expansion, worker_shared = expansion, shared
            if publish is not None:
                backplane, worker_expansion, worker_shared = publish()
            self._pool = WorkStealingPool(
                self.circuit, self.options, decider, worker_expansion,
                workers, key, shared=worker_shared, backplane=backplane,
            )
        return self._pool

    def close(self) -> None:
        """Release run-scoped resources (the worker pool, if any)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def emit(self, event: str, **fields) -> None:
        """Forward one trace event to the tracer, if any."""
        if self.tracer is not None:
            self.tracer.emit(event, **fields)


@dataclass
class PipelineState:
    """Mutable run state threaded through the stages."""

    pairs: list[FFPair] = field(default_factory=list)
    results: list[PairResult] = field(default_factory=list)
    stats: dict[Stage, StageStats] = field(
        default_factory=lambda: {stage: StageStats() for stage in Stage}
    )
    connected_pairs: int = 0
    learned_implications: int = 0
    engine: str = "dalg"
    disagreements: list[Disagreement] = field(default_factory=list)
    #: decision-session counter totals (None for non-session engines).
    session: dict[str, int] | None = None
    #: implication-DB stats block (None when the DB was not enabled).
    implication_db: dict[str, float | int] | None = None
    #: packed-implication totals (None when lane packing was disabled).
    packed_implication: dict[str, int] | None = None
    #: hazard-stage outcome (mode "off" when the stage was disabled).
    hazard_mode: str = "off"
    hazard_checked: int = 0
    hazard_flagged: int = 0
    hazard_flagged_pairs: list[FFPair] = field(default_factory=list)
    #: exact mode only: per-pair three-way verdicts and pass counters.
    hazard_verdicts: list[PairHazardVerdict] = field(default_factory=list)
    hazard_exact: dict[str, float | int] | None = None
    #: incremental re-analysis stats (set by the incremental stage only).
    incremental: dict[str, int] | None = None
    #: shared-memory backplane summary (None when none was published).
    backplane: dict | None = None


class PipelineStage(Protocol):
    """One step of the pipeline; reads and mutates the run state."""

    name: str

    def run(self, ctx: AnalysisContext, state: PipelineState) -> None: ...


def _emit_pair(
    ctx: AnalysisContext,
    state: PipelineState,
    result: PairResult,
    seconds: float,
    engine: str | None,
) -> None:
    """Emit the per-pair trace event and progress callback."""
    names = ctx.circuit.names
    record = {
        "stage": result.stage.value,
        "source": names[result.pair.source],
        "sink": names[result.pair.sink],
        "classification": result.classification.value,
        "seconds": round(seconds, 6),
    }
    if engine is not None:
        record["engine"] = engine
    if result.cases:
        record["cases"] = len(result.cases)
        record["decisions"] = sum(c.decisions for c in result.cases)
        record["backtracks"] = sum(c.backtracks for c in result.cases)
    if result.metrics:
        record.update(result.metrics)
    ctx.emit("pair", **record)
    if ctx.progress is not None:
        ctx.progress(len(state.results), state.connected_pairs, record)


class TopologyStage:
    """Step 1: keep only topologically connected FF pairs."""

    name = "topology"

    def run(self, ctx: AnalysisContext, state: PipelineState) -> None:
        state.pairs = connected_ff_pairs(
            ctx.circuit, include_self_loops=ctx.options.include_self_loops
        )
        state.connected_pairs = len(state.pairs)


class RandomFilterStage:
    """Step 2: drop pairs whose MC condition is refuted by simulation.

    ``frames=2`` is the paper's MC condition (:func:`random_filter`);
    larger values select the k-cycle variant (:func:`random_filter_k`).
    The filter's dropped pairs are recorded directly — no key-set
    reconstruction — as guaranteed single-cycle results.
    """

    name = "random-sim"

    def __init__(self, frames: int = 2) -> None:
        if frames < 2:
            raise ValueError("random filtering needs at least 2 frames")
        self.frames = frames

    def run(self, ctx: AnalysisContext, state: PipelineState) -> None:
        options = ctx.options
        if not options.use_random_sim or not state.pairs:
            return
        started = ctx.clock()
        sim = ctx.bit_simulator(options.sim_words)
        if self.frames == 2:
            report = random_filter(
                ctx.circuit,
                state.pairs,
                words=options.sim_words,
                max_rounds=options.sim_max_rounds,
                seed=options.sim_seed,
                sim=sim,
                round_batch=options.sim_round_batch,
            )
        else:
            report = random_filter_k(
                ctx.circuit,
                state.pairs,
                self.frames,
                words=options.sim_words,
                max_rounds=options.sim_max_rounds,
                seed=options.sim_seed,
                sim=sim,
                round_batch=options.sim_round_batch,
            )
        seconds = ctx.clock() - started
        ctx.emit(
            "random_sim",
            plan=options.sim_plan,
            round_batch=options.sim_round_batch,
            frames=self.frames,
            rounds=report.rounds,
            patterns=report.patterns,
            dropped=report.dropped,
            seconds=round(seconds, 6),
            patterns_per_sec=round(report.patterns / seconds) if seconds else 0,
        )
        stats = state.stats[Stage.SIMULATION]
        for pair in report.dropped_pairs:
            result = PairResult(pair, Classification.SINGLE_CYCLE, Stage.SIMULATION)
            state.results.append(result)
            stats.single_cycle += 1
            _emit_pair(ctx, state, result, 0.0, engine=None)
        state.pairs = report.survivors
        stats.cpu_seconds += seconds


def _split_chunks(pairs: Sequence[FFPair], workers: int) -> list[list[FFPair]]:
    """Contiguous, deterministic shards — at most ``workers``, none empty."""
    workers = max(1, min(workers, len(pairs)))
    size, extra = divmod(len(pairs), workers)
    chunks: list[list[FFPair]] = []
    start = 0
    for index in range(workers):
        end = start + size + (1 if index < extra else 0)
        if end > start:
            chunks.append(list(pairs[start:end]))
        start = end
    return chunks


def _chunk_pairs(pairs: Sequence[FFPair], size: int) -> list[list[FFPair]]:
    """Contiguous chunks of at most ``size`` pairs, in input order."""
    size = max(1, size)
    return [list(pairs[start:start + size]) for start in range(0, len(pairs), size)]


def _auto_chunk_size(num_pairs: int, workers: int) -> int:
    """Default chunk size: ~4 chunks per worker, capped for low latency.

    Small enough that a slow chunk cannot idle the other workers for
    long, large enough that dispatch overhead stays negligible.
    """
    return max(1, min(64, -(-num_pairs // (workers * 4))))


def _launch_chunks(pairs: Sequence[FFPair], size: int) -> list[list[FFPair]]:
    """Contiguous chunks of ~``size`` pairs that never split a launch group.

    Consecutive same-source pairs (one launch group) always land in the
    same chunk, so the decision session's prefix cache keeps working
    inside each worker; a group larger than ``size`` becomes its own
    chunk.  Ordering is preserved, which keeps the merged results
    byte-identical to serial.  The splitting variant used by the
    work-stealing queue is :func:`repro.core.workqueue.launch_units`.
    """
    return launch_units(pairs, size, split=None)


def packed_summary(session: dict[str, int] | None) -> dict[str, int] | None:
    """Extract the packed-implication block from session counter totals.

    The decision session reports its lane-packing counters as
    ``packed_*`` keys (present only when packing is enabled, summed
    across workers by :func:`merge_session_stats`); this strips the
    prefix into the block stored on the result and emitted as the
    ``packed_implication`` trace event.  ``None`` when packing was off.
    """
    if not session or "packed_lanes" not in session:
        return None
    prefix = "packed_"
    return {
        key[len(prefix):]: value
        for key, value in session.items()
        if key.startswith(prefix)
    }


def merge_session_stats(
    total: dict[str, int] | None, delta: dict[str, int] | None
) -> dict[str, int] | None:
    """Fold one work unit's session-counter delta into running totals.

    Counters sum across units; ``trail_high_water`` is each worker's
    running maximum (reported absolutely) and merges by max — together
    this makes the merged totals independent of unit→worker placement.
    """
    if delta is None:
        return total
    if total is None:
        return dict(delta)
    for key, value in delta.items():
        if key == "trail_high_water":
            total[key] = max(total.get(key, 0), value)
        else:
            total[key] = total.get(key, 0) + value
    return total


def publish_backplane(ctx: AnalysisContext, expansion: TimeFrameExpansion,
                      shared) -> tuple:
    """Publish the decide-stage artifacts into shared memory (best-effort).

    Returns ``(backplane, worker_expansion, worker_shared)`` for the
    pool spawn: with a successful publish the expansion travels in the
    block (workers get ``None`` and attach), and an
    :class:`~repro.analysis.implication_db.ImplicationDB` shared table
    rides along the same way; anything else — mode "off", a non-DB
    shared payload, or a publish failure — keeps the pickled path.
    """
    options = ctx.options
    mode = getattr(options, "backplane", "auto")
    if mode not in ("auto", "on", "off"):
        raise ValueError(f"unknown backplane mode {mode!r}")
    if mode == "off":
        return None, expansion, shared
    try:
        from repro.analysis.implication_db import ImplicationDB
        from repro.atpg.packed_implication import packed_plan
        from repro.circuit.csr import csr_arrays
        from repro.core.session import PACKED_AUTO_MIN_NODES
        from repro.logic.simplan import compiled_plan
        from repro.store.backplane import publish

        comb = expansion.comb
        artifacts = [
            ("expansion", expansion),
            ("csr-arrays", csr_arrays(comb)),
            ("simplan", compiled_plan(comb)),
        ]
        packed = options.packed_implication
        if packed == "on" or (
            packed == "auto" and comb.num_nodes >= PACKED_AUTO_MIN_NODES
        ):
            artifacts.append(("packed-implication", packed_plan(comb)))
        worker_shared = shared
        if isinstance(shared, ImplicationDB):
            artifacts.append(("implication-db", shared))
            worker_shared = None
        return publish(artifacts), None, worker_shared
    except Exception:
        # Publishing is an optimization only: exhausted /dev/shm or a
        # codec error degrades to pickled shipping, never to a failure.
        return None, expansion, shared


def backplane_summary(pool: WorkStealingPool) -> dict | None:
    """Fold the workers' prepare reports into the backplane trace block.

    ``None`` when no backplane was published (mode "off", publish
    failure, or a serial run).  Must run before the pool shuts down.
    """
    if pool.backplane is None:
        return None
    ready = pool.wait_ready()
    return {
        "kinds": list(pool.backplane.kinds),
        "bytes": pool.backplane.nbytes,
        "workers": pool.workers,
        "ready": len(ready),
        "attached": sum(1 for entry in ready if entry["adopted"]),
        "spawn_seconds_max": round(
            max((entry["seconds"] for entry in ready), default=0.0), 6
        ),
        "worker_store_hits": sum(e["store_hits"] for e in ready),
        "worker_store_misses": sum(e["store_misses"] for e in ready),
        "worker_rss_max_kb": max(
            (entry["rss_kb"] for entry in ready), default=0
        ),
    }


class DecisionStage:
    """Steps 3+4: settle every surviving pair with a decision engine.

    The engine is either given explicitly (a registry name or an
    unprepared decider instance) or taken from
    ``options.search_engine``.  With ``options.workers > 1`` the pairs
    are sharded across processes; each worker rebuilds the decider from
    the shared expansion and the shards are merged in input order, so
    the classification outcome is byte-identical to a serial run.
    """

    name = "decide"

    def __init__(self, decider: str | PairDecider | None = None) -> None:
        self._decider_spec = decider

    def _resolve(self, ctx: AnalysisContext) -> PairDecider:
        spec = self._decider_spec
        if spec is None:
            spec = ctx.options.search_engine
        if isinstance(spec, str):
            return create_decider(spec)
        return spec

    def run(self, ctx: AnalysisContext, state: PipelineState) -> None:
        decider = self._resolve(ctx)
        state.engine = decider.name
        pairs = state.pairs
        workers = max(1, ctx.options.workers)
        if not pairs:
            state.pairs = []
            return

        threshold = max(2, ctx.options.parallel_threshold)
        go_parallel = workers > 1 and len(pairs) >= threshold
        if workers > 1:
            ctx.emit(
                "decision_exec",
                mode="parallel" if go_parallel else "serial-fallback",
                workers=workers,
                pairs=len(pairs),
                threshold=threshold,
            )
        if go_parallel:
            decided, learned, disagreements, session, backplane = (
                self._run_parallel(ctx, decider, pairs, workers)
            )
            state.backplane = backplane
        else:
            decider.prepare(ctx)
            group_fn = getattr(decider, "decide_group", None)
            if group_fn is not None:
                decided = list(group_fn(pairs))
            else:
                decided = []
                for pair in pairs:
                    started = ctx.clock()
                    result = decider.decide(pair)
                    decided.append((result, ctx.clock() - started))
            learned = getattr(decider, "learned_implications", 0)
            disagreements = list(getattr(decider, "disagreements", []))
            stats_fn = getattr(decider, "session_stats", None)
            session = stats_fn() if stats_fn is not None else None

        for result, seconds in decided:
            state.results.append(result)
            stats = state.stats[result.stage]
            if result.classification is Classification.MULTI_CYCLE:
                stats.multi_cycle += 1
            elif result.classification is Classification.SINGLE_CYCLE:
                stats.single_cycle += 1
            else:
                stats.undecided += 1
            stats.cpu_seconds += seconds
            _emit_pair(ctx, state, result, seconds, engine=decider.name)
        state.learned_implications = learned
        state.session = session
        # ``prepare_shared`` (parallel) and ``prepare`` (serial) both run
        # on this instance in the parent, so the stats block is here
        # regardless of execution mode.
        state.implication_db = getattr(decider, "db_info", None)
        if state.implication_db is not None:
            ctx.emit("implication_db", engine=decider.name, **state.implication_db)
        if session is not None:
            ctx.emit("decision_session", engine=decider.name, **session)
        state.packed_implication = packed_summary(session)
        if state.packed_implication is not None:
            ctx.emit(
                "packed_implication",
                engine=decider.name,
                mode=ctx.options.packed_implication,
                **state.packed_implication,
            )
        state.disagreements.extend(disagreements)
        for disagreement in disagreements:
            names = ctx.circuit.names
            ctx.emit(
                "disagreement",
                source=names[disagreement.pair.source],
                sink=names[disagreement.pair.sink],
                **{
                    disagreement.primary_engine: disagreement.primary.value,
                    disagreement.secondary_engine: disagreement.secondary.value,
                },
            )
        state.pairs = []

    def _run_parallel(
        self,
        ctx: AnalysisContext,
        decider: PairDecider,
        pairs: Sequence[FFPair],
        workers: int,
    ):
        expansion = ctx.expansion(getattr(decider, "frames", 2))
        shared = None
        shared_fn = getattr(decider, "prepare_shared", None)
        if shared_fn is not None:
            shared = shared_fn(ctx)
        # The learned-implication count is the parent's: the table is
        # computed once here and shipped to every worker, so no chunk
        # result needs to carry it back.
        learned = 0
        if shared is not None:
            from repro.atpg.learning import count_learned

            learned = count_learned(shared)
        pool = ctx.decision_pool(
            decider, expansion, shared=shared,
            publish=lambda: publish_backplane(ctx, expansion, shared),
        )
        size = ctx.options.chunk_pairs or _auto_chunk_size(len(pairs), workers)
        units = launch_units(pairs, size, split=split_threshold(size))
        decided: list[tuple[PairResult, float]] = []
        disagreements: list[Disagreement] = []
        session: dict[str, int] | None = None
        for unit in pool.map_units(units):
            decided.extend(unit.decided)
            disagreements.extend(unit.flags)
            session = merge_session_stats(session, unit.stats)
        ctx.emit(
            "decision_queue",
            workers=pool.workers,
            units=len(units),
            unit_pairs=size,
            split=split_threshold(size),
            per_worker=pool.worker_summary(),
        )
        backplane = backplane_summary(pool)
        if backplane is not None:
            ctx.emit("backplane", **backplane)
        return decided, learned, disagreements, session, backplane


def load_gate_delays(options: DetectorOptions, circuit: Circuit):
    """Load the exact-mode delay sidecar named by the options, if any."""
    if options.hazard_delays is None:
        return None
    from pathlib import Path

    from repro.sta.delays import GateDelays

    return GateDelays.load(Path(options.hazard_delays), circuit)


class HazardStage:
    """Step 5 (optional): validate detected MC pairs against static hazards.

    Runs after the decision stage over the multi-cycle survivors only.
    ``options.hazard_check`` picks the condition: the bit-parallel ternary
    (Eichelberger) simulation check, a static (co-)sensitization path
    search, or the exact SAT-backed three-way classification (both bounds
    plus a CNF decision of every disagreeing pair — ``docs/hazards.md``);
    ``"off"`` makes the stage a no-op.  Classifications and
    :meth:`~repro.core.result.DetectionResult.pair_records` are never
    modified — flagged pairs are reported through the result's hazard
    counters (a flagged pair should not be timing-relaxed even though its
    settled-value MC condition holds), and exact mode additionally
    records per-pair safe / glitch-possible / glitch-proven verdicts.

    The checkers run in-process on the context's cached 2-frame expansion
    — the same object the deciders used, so no re-expansion happens; the
    ternary checker additionally packs every case witness into simulator
    lanes and settles all verdicts in a few compiled-plan sweeps.
    """

    name = "hazard"

    def run(self, ctx: AnalysisContext, state: PipelineState) -> None:
        mode = ctx.options.hazard_check
        state.hazard_mode = mode
        if mode == "off":
            return
        survivors = [
            r for r in state.results
            if r.classification is Classification.MULTI_CYCLE
        ]
        state.hazard_checked = len(survivors)
        started = ctx.clock()
        lanes = batches = 0
        if mode == "ternary":
            checker = TernaryHazardChecker(
                ctx.circuit,
                ctx.options.hazard_backtrack_limit,
                expansion=ctx.expansion(2),
                words=ctx.options.sim_words,
            )
            reports = checker.check_pairs(survivors)
            lanes = checker.lanes_evaluated
            batches = checker.batches_evaluated
            flagged_pairs = [
                report.pair_result.pair
                for report in reports
                if report.has_potential_hazard
            ]
        elif mode in ("sensitize", "cosensitize"):
            checker = HazardChecker(
                ctx.circuit,
                mode_from_flag(mode),
                backtrack_limit=ctx.options.hazard_backtrack_limit,
                expansion=ctx.expansion(2),
            )
            reports = [checker.check_pair(r) for r in survivors]
            flagged_pairs = [
                report.pair_result.pair
                for report in reports
                if report.has_potential_hazard
            ]
        elif mode == "exact":
            from repro.analysis.hazard_exact import (
                ExactHazardChecker,
                verdict_flags_pair,
            )

            exact = ExactHazardChecker(
                ctx.circuit,
                ctx.expansion(2),
                backtrack_limit=ctx.options.hazard_backtrack_limit,
                conflict_limit=ctx.options.hazard_conflict_limit,
                delays=load_gate_delays(ctx.options, ctx.circuit),
            )
            verdicts = exact.check_pairs(survivors)
            verdicts.sort(key=lambda v: (v.pair.source, v.pair.sink))
            state.hazard_verdicts = verdicts
            state.hazard_exact = exact.summary()
            flagged_pairs = [
                v.pair for v in verdicts if verdict_flags_pair(v)
            ]
        else:
            raise ValueError(f"unknown hazard_check mode {mode!r}")
        flagged = sorted(flagged_pairs, key=lambda p: (p.source, p.sink))
        state.hazard_flagged_pairs = flagged
        state.hazard_flagged = len(flagged)
        event: dict = dict(
            mode=mode,
            checked=state.hazard_checked,
            flagged=state.hazard_flagged,
            lanes=lanes,
            batches=batches,
            seconds=round(ctx.clock() - started, 6),
        )
        if state.hazard_exact is not None:
            event["exact"] = state.hazard_exact
        ctx.emit("hazard_stage", **event)


class Pipeline:
    """A staged run over one circuit, producing a :class:`DetectionResult`."""

    def __init__(self, stages: Sequence[PipelineStage]) -> None:
        self.stages = list(stages)

    def run(self, ctx: AnalysisContext) -> DetectionResult:
        from repro.store.runtime import active_store

        started = ctx.clock()
        state = PipelineState()
        store = active_store()
        store_before = store.stats() if store is not None else None
        ctx.emit(
            "run_start",
            circuit=ctx.circuit.name,
            engine=ctx.options.search_engine,
            workers=ctx.options.workers,
            stages=[stage.name for stage in self.stages],
        )
        try:
            for stage in self.stages:
                stage_started = ctx.clock()
                pairs_in = len(state.pairs)
                ctx.emit("stage_start", stage=stage.name, pairs_in=pairs_in)
                stage.run(ctx, state)
                ctx.emit(
                    "stage_end",
                    stage=stage.name,
                    pairs_in=pairs_in,
                    pairs_out=len(state.pairs),
                    results=len(state.results),
                    seconds=round(ctx.clock() - stage_started, 6),
                )
        finally:
            # The persistent worker pool is scoped to one run.
            ctx.close()
        state.results.sort(key=lambda r: (r.pair.source, r.pair.sink))
        cache_stats: dict[str, int] | None = None
        if store is not None and store_before is not None:
            cache_stats = {
                key: value - store_before.get(key, 0)
                for key, value in store.stats().items()
            }
            ctx.emit("cache", dir=str(store.root), **cache_stats)
        result = DetectionResult(
            circuit=ctx.circuit,
            connected_pairs=state.connected_pairs,
            pair_results=state.results,
            stats=state.stats,
            total_seconds=ctx.clock() - started,
            learned_implications=state.learned_implications,
            engine=state.engine,
            disagreements=state.disagreements,
            decision_session=state.session,
            implication_db=state.implication_db,
            packed_implication=state.packed_implication,
            hazard_mode=state.hazard_mode,
            hazard_checked=state.hazard_checked,
            hazard_flagged=state.hazard_flagged,
            hazard_flagged_pairs=state.hazard_flagged_pairs,
            hazard_verdicts=state.hazard_verdicts,
            hazard_exact=state.hazard_exact,
            cache=cache_stats,
            incremental=state.incremental,
            backplane=state.backplane,
        )
        ctx.emit(
            "run_end",
            circuit=ctx.circuit.name,
            engine=state.engine,
            connected_pairs=state.connected_pairs,
            multi_cycle=len(result.multi_cycle_pairs),
            single_cycle=len(result.single_cycle_pairs),
            undecided=len(result.undecided_pairs),
            disagreements=len(state.disagreements),
            seconds=round(result.total_seconds, 6),
        )
        return result


def default_pipeline(decider: str | PairDecider | None = None) -> Pipeline:
    """The paper's three-stage flow with a pluggable decision engine,
    followed by the (default-off) hazard-validation stage."""
    return Pipeline([
        TopologyStage(),
        RandomFilterStage(),
        DecisionStage(decider),
        HazardStage(),
    ])
