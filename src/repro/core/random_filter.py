"""Stage 2: parallel random-pattern simulation (Section 4.3).

One word of random patterns is assigned to every primary input and FF
output, the circuit is simulated for two clock cycles, and a pair
``(FF_i, FF_j)`` is dropped as single-cycle as soon as some bit position
satisfies::

    FF_i(t) != FF_i(t+1)  and  FF_j(t+1) != FF_j(t+2)

— a concrete witness that the MC condition is violated.  All of this is
bitwise-parallel: with ``words`` 64-bit words per signal each round
simulates ``64 * words`` patterns, and the pair check is vectorised with
numpy over every remaining pair at once.

Following the paper, simulation continues until no pair has been dropped
for a full round of at least 32 consecutive patterns (a whole word-batch
here), with a hard round cap as a safety net.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.netlist import Circuit
from repro.circuit.topology import FFPair
from repro.logic.bitsim import simulate_frames, simulate_three_frames


@dataclass
class RandomFilterReport:
    """What the random-simulation stage did.

    ``survivors`` and ``dropped_pairs`` partition the input pair list, so
    downstream stages can attribute each dropped pair directly instead of
    reconstructing the partition from a ``(source, sink)`` key set.
    """

    survivors: list[FFPair]
    dropped_pairs: list[FFPair]
    rounds: int
    patterns: int

    @property
    def dropped(self) -> int:
        """Number of pairs refuted by simulation."""
        return len(self.dropped_pairs)


def random_filter(
    circuit: Circuit,
    pairs: list[FFPair],
    words: int = 4,
    max_rounds: int = 256,
    seed: int = 2002,
) -> RandomFilterReport:
    """Drop pairs whose MC condition is refuted by random simulation.

    Dropped pairs are guaranteed single-cycle (each had an explicit
    simulated counterexample); survivors go on to implication/ATPG.
    """
    if not pairs:
        return RandomFilterReport([], [], 0, 0)

    rng = np.random.default_rng(seed)
    dff_index = {dff: k for k, dff in enumerate(circuit.dffs)}
    source_rows = np.array([dff_index[p.source] for p in pairs])
    sink_rows = np.array([dff_index[p.sink] for p in pairs])
    alive = np.ones(len(pairs), dtype=bool)

    rounds = 0
    patterns = 0
    while rounds < max_rounds and alive.any():
        rounds += 1
        patterns += 64 * words
        s0, s1, s2 = simulate_three_frames(circuit, rng, words)
        source_toggles = s0 ^ s1
        sink_toggles = s1 ^ s2
        live_idx = np.flatnonzero(alive)
        hits = (
            source_toggles[source_rows[live_idx]] & sink_toggles[sink_rows[live_idx]]
        ).any(axis=1)
        if hits.any():
            alive[live_idx[hits]] = False
        else:
            # No pair dropped during >= 32 consecutive patterns: stop.
            break

    survivors = [p for p, live in zip(pairs, alive) if live]
    dropped_pairs = [p for p, live in zip(pairs, alive) if not live]
    return RandomFilterReport(
        survivors=survivors,
        dropped_pairs=dropped_pairs,
        rounds=rounds,
        patterns=patterns,
    )


def random_filter_k(
    circuit: Circuit,
    pairs: list[FFPair],
    k: int,
    words: int = 4,
    max_rounds: int = 256,
    seed: int = 2002,
) -> RandomFilterReport:
    """k-cycle variant of :func:`random_filter`.

    A pair is dropped when some simulated pattern shows the source
    toggling at ``t+1`` while the sink changes anywhere in
    ``t+1 .. t+k`` — a witness against the k-cycle condition.  ``k = 2``
    coincides with :func:`random_filter` up to the RNG stream shape.
    """
    if k < 2:
        raise ValueError("k must be >= 2")
    if not pairs:
        return RandomFilterReport([], [], 0, 0)

    rng = np.random.default_rng(seed)
    dff_index = {dff: i for i, dff in enumerate(circuit.dffs)}
    source_rows = np.array([dff_index[p.source] for p in pairs])
    sink_rows = np.array([dff_index[p.sink] for p in pairs])
    alive = np.ones(len(pairs), dtype=bool)

    rounds = 0
    patterns = 0
    while rounds < max_rounds and alive.any():
        rounds += 1
        patterns += 64 * words
        states = simulate_frames(circuit, rng, frames=k, words=words)
        source_toggles = states[0] ^ states[1]
        sink_changes = states[1] ^ states[2]
        for m in range(2, k):
            sink_changes = sink_changes | (states[m] ^ states[m + 1])
        live_idx = np.flatnonzero(alive)
        hits = (
            source_toggles[source_rows[live_idx]]
            & sink_changes[sink_rows[live_idx]]
        ).any(axis=1)
        if hits.any():
            alive[live_idx[hits]] = False
        else:
            break

    survivors = [p for p, live in zip(pairs, alive) if live]
    dropped_pairs = [p for p, live in zip(pairs, alive) if not live]
    return RandomFilterReport(
        survivors=survivors,
        dropped_pairs=dropped_pairs,
        rounds=rounds,
        patterns=patterns,
    )
