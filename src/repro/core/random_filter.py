"""Stage 2: parallel random-pattern simulation (Section 4.3).

One word of random patterns is assigned to every primary input and FF
output, the circuit is simulated for two clock cycles, and a pair
``(FF_i, FF_j)`` is dropped as single-cycle as soon as some bit position
satisfies::

    FF_i(t) != FF_i(t+1)  and  FF_j(t+1) != FF_j(t+2)

— a concrete witness that the MC condition is violated.  All of this is
bitwise-parallel: with ``words`` 64-bit words per signal each round
simulates ``64 * words`` patterns, and the pair check is vectorised with
numpy over every remaining pair at once.

Following the paper, simulation continues until no pair has been dropped
for a full round of at least 32 consecutive patterns (a whole word-batch
here), with a hard round cap as a safety net.

Execution strategy
------------------
The filter is built for throughput, not just correctness:

* one :class:`~repro.logic.bitsim.BitSimulator` per word width is reused
  across every round (buffers included) — nothing is reallocated per
  round, and the compiled simulation plan behind it is cached on the
  circuit itself;
* logical rounds are evaluated in *super-rounds* of up to
  ``round_batch`` rounds packed side by side along the word axis.  At
  the small-array sizes involved, a numpy kernel over ``k * words``
  words costs nearly the same as over ``words`` words, so a super-round
  is almost ``k`` rounds for the price of one.  Random words are drawn
  per logical round in exactly the order the round-by-round loop used,
  and the drop/stop logic is replayed round by round on word slices, so
  the dropped-pair sets, round counts and pattern counts are identical
  to the unbatched execution (``round_batch=1``).

Two drop representations share one round engine
-----------------------------------------------
:func:`_run_rounds` owns the super-round loop — the RNG draw order, the
wide simulation pass and the per-round drop/stop replay — and delegates
only the representation of "which pairs are still alive" to a strategy
object.  :func:`random_filter` keeps the original pair-list strategy
(one bool per input pair).  :func:`random_filter_packed` runs the very
same rounds over a *packed pair matrix* (bit ``k`` of sink row ``j`` =
pair ``(dffs[k], dffs[j])``), never materializing a pair list — the
bounded-memory representation the streaming pipeline folds launch group
by launch group.  Because the engine is shared, the two executions draw
identical random words, stop at the identical quiet round, and drop the
identical pair set: a pair is dropped iff its first simulated hit round
is at most the global stop round, and hits are masked by the alive set
only for *counting*, never for outcome.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.circuit.netlist import Circuit
from repro.circuit.topology import FFPair
from repro.logic.bitsim import BitSimulator

#: default cap for rounds evaluated per super-round; the batch grows
#: 1, 2, 4, ... toward it so early-exiting runs waste little work.
ROUND_BATCH = 8

#: sink rows evaluated per block in the packed drop check (bounds the
#: broadcast temporary at ``block * num_dffs * words`` uint64 words).
_PACKED_BLOCK_ROWS = 256


@dataclass
class RandomFilterReport:
    """What the random-simulation stage did.

    ``survivors`` and ``dropped_pairs`` partition the input pair list, so
    downstream stages can attribute each dropped pair directly instead of
    reconstructing the partition from a ``(source, sink)`` key set.
    """

    survivors: list[FFPair]
    dropped_pairs: list[FFPair]
    rounds: int
    patterns: int

    @property
    def dropped(self) -> int:
        """Number of pairs refuted by simulation."""
        return len(self.dropped_pairs)


@dataclass
class PackedFilterReport:
    """Outcome of :func:`random_filter_packed`.

    ``alive`` is the survivor matrix in sink-major packed form: bit
    ``k`` of row ``j`` is set iff pair ``(dffs[k], dffs[j])`` survived.
    ``initial`` counts the pairs that entered the filter.
    """

    alive: np.ndarray
    rounds: int
    patterns: int
    initial: int

    @property
    def survivors(self) -> int:
        """Number of pairs still alive after the filter."""
        return int(np.bitwise_count(self.alive).sum())

    @property
    def dropped(self) -> int:
        """Number of pairs refuted by simulation."""
        return self.initial - self.survivors


class _DropStrategy(Protocol):
    """How the round engine represents and updates the alive pair set."""

    def any_alive(self) -> bool: ...

    def drop_round(
        self,
        source_toggles: np.ndarray,
        sink_changes: np.ndarray,
        window: slice,
    ) -> bool:
        """Apply one round's hits; True iff any alive pair was dropped."""
        ...


class _PairListDrops:
    """The original representation: one bool per pair in a flat list."""

    def __init__(self, circuit: Circuit, pairs: list[FFPair]) -> None:
        dff_index = {dff: k for k, dff in enumerate(circuit.dffs)}
        self.source_rows = np.array([dff_index[p.source] for p in pairs])
        self.sink_rows = np.array([dff_index[p.sink] for p in pairs])
        self.alive = np.ones(len(pairs), dtype=bool)

    def any_alive(self) -> bool:
        return bool(self.alive.any())

    def drop_round(
        self,
        source_toggles: np.ndarray,
        sink_changes: np.ndarray,
        window: slice,
    ) -> bool:
        live_idx = np.flatnonzero(self.alive)
        hits = (
            source_toggles[self.source_rows[live_idx], window]
            & sink_changes[self.sink_rows[live_idx], window]
        ).any(axis=1)
        if hits.any():
            self.alive[live_idx[hits]] = False
            return True
        return False


class _PackedDrops:
    """Packed pair-matrix representation (sink rows × source bits).

    One round's hit relation ``H[j, k] = ∃ pattern: changes[j] &
    toggles[k]`` is evaluated in sink-row blocks with a broadcast AND
    over the packed pattern words, repacked to source bits and cleared
    from the alive matrix.  Only rows with a surviving bit are visited,
    so the work shrinks as pairs die.
    """

    def __init__(self, alive: np.ndarray, block_rows: int = _PACKED_BLOCK_ROWS) -> None:
        self.alive = alive
        self.block_rows = max(1, block_rows)

    def any_alive(self) -> bool:
        return bool(self.alive.any())

    def drop_round(
        self,
        source_toggles: np.ndarray,
        sink_changes: np.ndarray,
        window: slice,
    ) -> bool:
        toggles = np.ascontiguousarray(source_toggles[:, window])
        changes = sink_changes[:, window]
        words = self.alive.shape[1]
        rows = np.flatnonzero(self.alive.any(axis=1))
        dropped = False
        for b0 in range(0, len(rows), self.block_rows):
            blk = rows[b0: b0 + self.block_rows]
            hits = (
                changes[blk][:, None, :] & toggles[None, :, :]
            ).any(axis=2)
            packed = np.packbits(hits, axis=1, bitorder="little")
            padded = np.zeros((len(blk), words * 8), dtype=np.uint8)
            padded[:, : packed.shape[1]] = packed
            hit_words = padded.view(np.uint64)
            if (hit_words & self.alive[blk]).any():
                dropped = True
            self.alive[blk] &= ~hit_words
        return dropped


def _run_rounds(
    circuit: Circuit,
    strategy: _DropStrategy,
    frames: int,
    words: int,
    max_rounds: int,
    seed: int,
    sim: BitSimulator | None,
    plan: str,
    round_batch: int,
) -> tuple[int, int]:
    """The shared super-round engine; returns ``(rounds, patterns)``.

    Every stochastic and control decision lives here — the RNG draw
    order, the wide simulation pass, the per-round replay and the
    quiet-stop — so any two strategies presented with the same circuit
    and the same initial alive set see identical rounds and identical
    hit matrices.
    """
    round_batch = max(1, round_batch)
    rng = np.random.default_rng(seed)

    # One simulator per super-round width, reused across the whole run.
    sims: dict[int, BitSimulator] = {}
    if sim is not None:
        if sim.circuit is not circuit or sim.words != words:
            raise ValueError(
                "sim was built for a different circuit or word width"
            )
        sims[words] = sim
        plan_arg: object = sim.plan if sim.plan is not None else "python"
    else:
        plan_arg = plan

    sources = circuit.inputs + circuit.dffs
    pis = circuit.inputs

    rounds = 0
    patterns = 0
    batch = 1
    quiet = False
    while rounds < max_rounds and strategy.any_alive() and not quiet:
        k = min(batch, max_rounds - rounds)
        width = k * words
        wide = sims.get(width)
        if wide is None:
            wide = BitSimulator(circuit, width, plan=plan_arg)
            sims[width] = wide

        # Draw per logical round, in the exact order the round-by-round
        # loop consumed the stream: sources first, then one PI refresh
        # per later frame.  This keeps results independent of batching.
        source_words = (
            np.empty((len(sources), width), dtype=np.uint64) if sources else None
        )
        pi_words = [
            np.empty((len(pis), width), dtype=np.uint64)
            for _ in range(frames - 1)
        ] if pis else []
        for r in range(k):
            window = slice(r * words, (r + 1) * words)
            if sources:
                source_words[:, window] = rng.integers(
                    0, 1 << 64, size=(len(sources), words), dtype=np.uint64
                )
            for refresh in pi_words:
                refresh[:, window] = rng.integers(
                    0, 1 << 64, size=(len(pis), words), dtype=np.uint64
                )

        # One wide pass simulates every round of the super-round at once.
        if sources:
            wide.values[sources] = source_words
        states = [wide.state_matrix()]
        for frame in range(frames):
            if frame > 0 and pis:
                wide.values[pis] = pi_words[frame - 1]
            wide.comb_eval()
            wide.clock()
            states.append(wide.state_matrix())

        source_toggles = states[0] ^ states[1]
        sink_changes = states[1] ^ states[2]
        for m in range(2, frames):
            sink_changes = sink_changes | (states[m] ^ states[m + 1])

        # Replay the per-round drop/stop logic on word slices.
        for r in range(k):
            if not strategy.any_alive():
                break
            rounds += 1
            patterns += 64 * words
            window = slice(r * words, (r + 1) * words)
            if not strategy.drop_round(source_toggles, sink_changes, window):
                # No pair dropped during >= 32 consecutive patterns: stop.
                quiet = True
                break
        batch = min(batch * 2, round_batch)
    return rounds, patterns


def _filter_core(
    circuit: Circuit,
    pairs: list[FFPair],
    frames: int,
    words: int,
    max_rounds: int,
    seed: int,
    sim: BitSimulator | None,
    plan: str,
    round_batch: int,
) -> RandomFilterReport:
    """Shared core of :func:`random_filter` and :func:`random_filter_k`.

    ``frames`` is the number of clock cycles simulated per round; the
    source must toggle across the first edge and the sink change across
    any later edge for a pair to be dropped.
    """
    if not pairs:
        return RandomFilterReport([], [], 0, 0)
    strategy = _PairListDrops(circuit, pairs)
    rounds, patterns = _run_rounds(
        circuit, strategy, frames, words, max_rounds, seed, sim, plan,
        round_batch,
    )
    alive = strategy.alive
    survivors = [p for p, live in zip(pairs, alive) if live]
    dropped_pairs = [p for p, live in zip(pairs, alive) if not live]
    return RandomFilterReport(
        survivors=survivors,
        dropped_pairs=dropped_pairs,
        rounds=rounds,
        patterns=patterns,
    )


def random_filter(
    circuit: Circuit,
    pairs: list[FFPair],
    words: int = 4,
    max_rounds: int = 256,
    seed: int = 2002,
    sim: BitSimulator | None = None,
    plan: str = "compiled",
    round_batch: int = ROUND_BATCH,
) -> RandomFilterReport:
    """Drop pairs whose MC condition is refuted by random simulation.

    Dropped pairs are guaranteed single-cycle (each had an explicit
    simulated counterexample); survivors go on to implication/ATPG.
    ``sim`` optionally supplies a caller-held simulator of width
    ``words`` to reuse (its evaluation plan is adopted for any wider
    super-round simulators the run creates).
    """
    return _filter_core(
        circuit, pairs, 2, words, max_rounds, seed, sim, plan, round_batch
    )


def random_filter_k(
    circuit: Circuit,
    pairs: list[FFPair],
    k: int,
    words: int = 4,
    max_rounds: int = 256,
    seed: int = 2002,
    sim: BitSimulator | None = None,
    plan: str = "compiled",
    round_batch: int = ROUND_BATCH,
) -> RandomFilterReport:
    """k-cycle variant of :func:`random_filter`.

    A pair is dropped when some simulated pattern shows the source
    toggling at ``t+1`` while the sink changes anywhere in
    ``t+1 .. t+k`` — a witness against the k-cycle condition.  ``k = 2``
    coincides with :func:`random_filter` up to the RNG stream shape.
    """
    if k < 2:
        raise ValueError("k must be >= 2")
    return _filter_core(
        circuit, pairs, k, words, max_rounds, seed, sim, plan, round_batch
    )


def random_filter_packed(
    circuit: Circuit,
    alive: np.ndarray,
    frames: int = 2,
    words: int = 4,
    max_rounds: int = 256,
    seed: int = 2002,
    sim: BitSimulator | None = None,
    plan: str = "compiled",
    round_batch: int = ROUND_BATCH,
) -> PackedFilterReport:
    """The random filter over a packed pair matrix (streaming pipeline).

    ``alive`` is the sink-major connected-pair matrix (bit ``k`` of row
    ``j`` = pair ``(dffs[k], dffs[j])``, e.g. the
    :func:`~repro.circuit.topology.sink_reach` rows with unwanted pairs
    masked off); it is copied, never mutated.  The run shares
    :func:`_run_rounds` with the pair-list path, so for the same circuit
    and the same connected relation it consumes the identical RNG
    stream, stops at the identical quiet round and drops the identical
    pair set — only the representation differs, with peak memory bounded
    by the packed matrix instead of per-pair arrays.
    """
    if frames < 2:
        raise ValueError("random filtering needs at least 2 frames")
    num_dffs = len(circuit.dffs)
    expected = (num_dffs, max(1, -(-num_dffs // 64)))
    if alive.shape != expected:
        raise ValueError(
            f"alive matrix shape {alive.shape} != expected {expected}"
        )
    alive = alive.astype(np.uint64, copy=True)
    initial = int(np.bitwise_count(alive).sum())
    if not initial:
        return PackedFilterReport(alive, 0, 0, 0)
    strategy = _PackedDrops(alive)
    rounds, patterns = _run_rounds(
        circuit, strategy, frames, words, max_rounds, seed, sim, plan,
        round_batch,
    )
    return PackedFilterReport(
        alive=alive, rounds=rounds, patterns=patterns, initial=initial
    )
