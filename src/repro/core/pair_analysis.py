"""Stage 3/4: implication + ATPG analysis of one FF pair (Section 4.1).

For each surviving pair ``(FF_i, FF_j)`` and each of the four assignments
``(FF_i(t), FF_j(t+1)) = (a, b)`` the analyser

1. assumes ``FF_i(t) = a``, ``FF_i(t+1) = ¬a`` (a transition at the source)
   and ``FF_j(t+1) = b``, then runs the implication procedure;
2. closes the case when a contradiction occurs or ``FF_j(t+2) = b`` is
   implied (the MC condition holds for this case);
3. otherwise searches for an input pattern with ``FF_j(t+2) = ¬b``;
   finding one proves the pair single-cycle, proving none exist closes the
   case as multi-cycle.

One refinement over the paper's Step 4.1.3: when implication derives
``FF_j(t+2) = ¬b`` the paper immediately declares the pair single-cycle.
That conclusion needs the assumed values to be justifiable, so we confirm
with the justification search (it starts from the implied state and is
near-instant); an unjustifiable premise is treated like the contradiction
case.  See DESIGN.md "Algorithmic notes".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.timeframe import TimeFrameExpansion
from repro.circuit.topology import FFPair
from repro.logic.values import BINARY
from repro.atpg.implication import ImplicationEngine
from repro.atpg.justify import SearchStatus, justify
from repro.core.result import (
    CaseOutcome,
    CaseResult,
    Classification,
    PairResult,
    Stage,
)

#: available backtrack-search engines (paper §4.5 compares these styles)
SEARCH_ENGINES = ("dalg", "podem")


@dataclass
class PairAnalyzer:
    """Analyses FF pairs on a shared 2-frame expansion.

    Construct once per circuit (the engine and expansion are reused), then
    call :meth:`analyze` per pair.  ``search_engine`` selects the backtrack
    search: ``"dalg"`` (internal-node decisions, the paper's choice) or
    ``"podem"`` (primary-input decisions, the alternative it rejects).
    """

    expansion: TimeFrameExpansion
    backtrack_limit: int = 50
    learned: dict[tuple[int, int], list[tuple[int, int]]] | None = None
    search_engine: str = "dalg"
    #: order frontier decisions by SCOAP controllability (dalg engine only)
    scoap_guidance: bool = False

    def __post_init__(self) -> None:
        if self.expansion.frames < 2:
            raise ValueError("pair analysis needs at least a 2-frame expansion")
        if self.search_engine not in SEARCH_ENGINES:
            raise ValueError(f"unknown search engine {self.search_engine!r}")
        if self.search_engine == "podem":
            from repro.atpg.podem import podem_justify

            self._search = podem_justify
        elif self.scoap_guidance:
            from repro.atpg.scoap import compute_scoap, make_choice_sorter

            sorter = make_choice_sorter(compute_scoap(self.expansion.comb))

            def guided(engine, limit):
                return justify(engine, limit, choice_sorter=sorter)

            self._search = guided
        else:
            self._search = justify
        self.engine = ImplicationEngine(self.expansion.comb, learned=self.learned)

    def analyze(self, pair: FFPair) -> PairResult:
        """Classify one topologically connected FF pair."""
        expansion = self.expansion
        source = expansion.ff_index(pair.source)
        sink = expansion.ff_index(pair.sink)
        ffi_t = expansion.ff_at[0][source]
        ffi_t1 = expansion.ff_at[1][source]
        ffj_t1 = expansion.ff_at[1][sink]
        ffj_t2 = expansion.ff_at[2][sink]

        cases: list[CaseResult] = []
        used_search = False
        for a in BINARY:
            for b in BINARY:
                case = self._analyze_case(ffi_t, ffi_t1, ffj_t1, ffj_t2, a, b)
                cases.append(case)
                if case.decisions:
                    used_search = True
                if case.outcome is CaseOutcome.VIOLATED:
                    stage = (
                        Stage.ATPG
                        if case.decisions
                        else Stage.IMPLICATION
                    )
                    return PairResult(pair, Classification.SINGLE_CYCLE, stage, cases)
                if case.outcome is CaseOutcome.ABORTED:
                    return PairResult(pair, Classification.UNDECIDED, Stage.ATPG, cases)

        stage = Stage.ATPG if used_search else Stage.IMPLICATION
        return PairResult(pair, Classification.MULTI_CYCLE, stage, cases)

    def _analyze_case(
        self, ffi_t: int, ffi_t1: int, ffj_t1: int, ffj_t2: int, a: int, b: int
    ) -> CaseResult:
        engine = self.engine
        mark = engine.checkpoint()
        try:
            premise = [(ffi_t, a), (ffi_t1, 1 - a), (ffj_t1, b)]
            if not engine.assume_all(premise):
                return CaseResult(a, b, CaseOutcome.CONTRADICTION)

            implied = engine.value(ffj_t2)
            if implied == b:
                return CaseResult(a, b, CaseOutcome.IMPLIED_STABLE)

            if implied == 1 - b:
                # Paper Step 4.1.3 second half: FF_j(t+2) != FF_j(t+1) was
                # *implied*; confirm the premise itself is justifiable.
                result = self._search(engine, self.backtrack_limit)
                if result.status is SearchStatus.SAT:
                    return CaseResult(
                        a, b, CaseOutcome.VIOLATED,
                        result.decisions, result.backtracks, result.witness,
                    )
                if result.status is SearchStatus.ABORTED:
                    return CaseResult(
                        a, b, CaseOutcome.ABORTED, result.decisions, result.backtracks
                    )
                # Premise unjustifiable: vacuously multi-cycle for this case.
                return CaseResult(
                    a, b, CaseOutcome.CONTRADICTION,
                    result.decisions, result.backtracks,
                )

            # FF_j(t+2) still unknown: search for a violating pattern.
            if not engine.assume(ffj_t2, 1 - b):
                return CaseResult(a, b, CaseOutcome.IMPLIED_STABLE)
            result = self._search(engine, self.backtrack_limit)
            if result.status is SearchStatus.SAT:
                return CaseResult(
                    a, b, CaseOutcome.VIOLATED,
                    result.decisions, result.backtracks, result.witness,
                )
            if result.status is SearchStatus.ABORTED:
                return CaseResult(
                    a, b, CaseOutcome.ABORTED, result.decisions, result.backtracks
                )
            return CaseResult(
                a, b, CaseOutcome.PROVED_STABLE, result.decisions, result.backtracks
            )
        finally:
            engine.backtrack(mark)
