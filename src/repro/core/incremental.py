"""Incremental ECO re-analysis: re-decide only what an edit touched.

A full detection run prices every surviving FF pair through the decide
stage even when the netlist changed by one gate.  This module runs the
pipeline *incrementally* against a prior run's cached pair records:

1. **Topology and random simulation always run fresh.**  The random
   filter's outcome depends on the global RNG stream and round
   structure, so any netlist edit can shift which pairs it drops; both
   stages are cheap relative to decide and rerunning them keeps the
   merged result byte-identical to a full fresh run.
2. **Decide records are inherited by cone hash.**  A pair's decide
   record is a pure function of its ``(launch-cone-hash,
   capture-cone-hash, options-fingerprint)`` key (see
   :mod:`repro.circuit.structhash`): backward implications stay inside
   the capture FF's expanded fanin cones and forward propagation from a
   consistent launch assignment cannot conflict outside them.  Survivors
   whose key matches a prior record inherit its verdict and case list
   verbatim; only the changed subset re-enters the decision stage.
3. **Globally-sensitive options force a full re-decide.**  Static
   learning, the compiled implication DB, SCOAP guidance and the
   SAT/BDD/cross-check engines read (or index) the whole circuit, so
   the options fingerprint mixes in the full structural hash whenever
   they are on — any edit then invalidates every prior record, which is
   sound (never wrong, merely slower).
4. **Hazard flags inherit with the verdicts** when the prior run used
   the same hazard mode; otherwise inherited multi-cycle pairs are
   re-checked alongside the fresh ones.

The prior state travels as a *pair-record bundle* — a pickleable dict
the detector publishes to the artifact store after every run (kind
``"pair-records"``, addressed by the circuit's name-inclusive content
key plus the options fingerprint).  ``repro analyze --incremental-from
OLD.bench`` loads the bundle of the old netlist from the active store
and merges; the hypothesis differentials in
``tests/core/test_incremental.py`` pin the merged ``pair_records`` byte
for byte against full fresh runs (staged and streaming alike).

The incremental path always executes on the staged machinery — the
streaming pipeline produces byte-identical records (PR 6), so a
streaming prior run and a staged incremental run compose freely; peak
memory follows the staged path for the re-decided subset only.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

from repro.circuit.netlist import Circuit
from repro.circuit.structhash import (
    capture_cone_hashes,
    launch_cone_hashes,
)
from repro.circuit.topology import FFPair
from repro.core.pipeline import (
    AnalysisContext,
    DecisionStage,
    DetectorOptions,
    Pipeline,
    PipelineState,
    RandomFilterStage,
    TopologyStage,
    _emit_pair,
    load_gate_delays,
)
from repro.core.result import (
    CaseOutcome,
    CaseResult,
    Classification,
    DetectionResult,
    HazardVerdictKind,
    PairHazardVerdict,
    PairResult,
    Stage,
)
from repro.core.trace import ProgressFn, Tracer
from repro.store.artifact_store import ArtifactStore

#: prior records settled by these stages may be inherited; simulation
#: verdicts are always re-derived fresh.
_DECIDE_STAGES = frozenset({
    Stage.IMPLICATION.value, Stage.ATPG.value, Stage.DECISION.value,
})

#: engines whose records depend on global structure (expanded node ids
#: in witnesses, whole-circuit indices) — any edit forces a full
#: re-decide under them.
_GLOBAL_ENGINES = frozenset({"sat", "bdd", "cross-check"})

#: artifact kind of the persisted bundle.
BUNDLE_KIND = "pair-records"


def options_fingerprint(
    options: DetectorOptions, circuit: Circuit, frames: int = 2
) -> str:
    """Digest of every option that can influence a pair's decide record.

    Execution-shape options (workers, streaming, chunking, lane packing,
    the launch-prefix cache) are excluded — prior PRs pin their record
    byte-identity.  Simulation options are excluded too: the random
    filter reruns fresh on every incremental pass.  When a
    globally-sensitive feature is on (learned tables, SCOAP, the
    SAT/BDD engines) the circuit's structural hash is mixed in, so any
    edit invalidates every prior record.
    """
    parts = [
        f"frames={frames}",
        f"engine={options.search_engine}",
        f"backtrack={options.backtrack_limit}",
        f"static_learning={options.static_learning}",
        f"implication_db={options.implication_db}",
        f"scoap={options.scoap_guidance}",
    ]
    globally_sensitive = (
        options.static_learning
        or options.implication_db
        or options.scoap_guidance
        or options.search_engine in _GLOBAL_ENGINES
    )
    if globally_sensitive:
        parts.append(f"struct={circuit.structural_hash()}")
    return hashlib.sha256("\x1f".join(parts).encode()).hexdigest()


def hazard_fingerprint(options: DetectorOptions) -> str:
    """Digest of every option that can influence a pair's hazard verdict.

    Separate from :func:`options_fingerprint` on purpose: hazard
    options never touch decide records (the byte-identity invariant),
    so changing them must not invalidate decide inheritance — only the
    per-pair hazard verdicts.  For ``exact`` mode the SAT conflict
    budget and the delay sidecar's *content* are mixed in; a missing
    sidecar file hashes as absent and fails later at load time.
    """
    parts = [
        f"mode={options.hazard_check}",
        f"backtrack={options.hazard_backtrack_limit}",
    ]
    if options.hazard_check == "exact":
        parts.append(f"conflict={options.hazard_conflict_limit}")
        if options.hazard_delays is not None:
            sidecar = Path(options.hazard_delays)
            digest = (
                hashlib.sha256(sidecar.read_bytes()).hexdigest()
                if sidecar.is_file()
                else "absent"
            )
            parts.append(f"delays={digest}")
    return hashlib.sha256("\x1f".join(parts).encode()).hexdigest()


# ----------------------------------------------------------------------
# Pair-record bundles.
# ----------------------------------------------------------------------
def result_bundle(
    result: DetectionResult,
    options: DetectorOptions,
    frames: int = 2,
) -> dict[str, object]:
    """The persistable prior-state bundle of one detection run.

    Per pair: names, the launch/capture cone hashes, and the full
    decide record (classification, stage, cases) in exactly the shape
    :meth:`DetectionResult.pair_records` exposes — plus the hazard flag
    when the hazard stage ran.
    """
    circuit = result.circuit
    names = circuit.names
    launch = launch_cone_hashes(circuit, frames)
    capture = capture_cone_hashes(circuit, frames)
    flagged = {
        (p.source, p.sink) for p in result.hazard_flagged_pairs
    }
    verdicts = {
        (v.pair.source, v.pair.sink): v for v in result.hazard_verdicts
    }
    records: list[dict[str, object]] = []
    for pair_result in result.pair_results:
        pair = pair_result.pair
        verdict = verdicts.get((pair.source, pair.sink))
        records.append({
            "source": names[pair.source],
            "sink": names[pair.sink],
            "launch": launch[pair.source],
            "capture": capture[pair.sink],
            "classification": pair_result.classification.value,
            "stage": pair_result.stage.value,
            "cases": [
                {
                    "a": case.a,
                    "b": case.b,
                    "outcome": case.outcome.value,
                    "decisions": case.decisions,
                    "backtracks": case.backtracks,
                    "witness": case.witness,
                }
                for case in pair_result.cases
            ],
            "hazard_flagged": (pair.source, pair.sink) in flagged,
            "hazard_verdict": (
                verdict.verdict.value if verdict is not None else None
            ),
            "hazard_delay_safe": (
                verdict.delay_safe if verdict is not None else None
            ),
        })
    return {
        "circuit": circuit.name,
        "engine": result.engine,
        "frames": frames,
        "fingerprint": options_fingerprint(options, circuit, frames),
        "hazard_mode": result.hazard_mode,
        "hazard_fingerprint": hazard_fingerprint(options),
        "records": records,
    }


def bundle_address(
    store: ArtifactStore, circuit: Circuit, options: DetectorOptions,
    frames: int = 2,
) -> str:
    """Store address of a circuit's bundle under the given options."""
    return store.address(
        BUNDLE_KIND,
        circuit.content_key(include_names=True),
        extra=options_fingerprint(options, circuit, frames),
    )


def save_result_bundle(
    store: ArtifactStore,
    result: DetectionResult,
    options: DetectorOptions,
    frames: int = 2,
) -> None:
    """Publish a run's bundle so later ECO runs can inherit from it."""
    store.save(
        BUNDLE_KIND,
        bundle_address(store, result.circuit, options, frames),
        result_bundle(result, options, frames),
    )


def load_result_bundle(
    store: ArtifactStore,
    circuit: Circuit,
    options: DetectorOptions,
    frames: int = 2,
) -> dict[str, object] | None:
    """The prior bundle of ``circuit`` under ``options``, if published."""
    bundle = store.load(
        BUNDLE_KIND, bundle_address(store, circuit, options, frames)
    )
    if not isinstance(bundle, dict):
        return None
    return bundle


# ----------------------------------------------------------------------
# The incremental stage.
# ----------------------------------------------------------------------
class IncrementalStage:
    """Topology → random-sim → inherit-by-cone-hash → decide the rest.

    A composite :class:`~repro.core.pipeline.PipelineStage` that reuses
    the staged topology/random-filter/decision machinery and inherits
    matching prior decide records between the filter and the decision
    stage.  Result assembly, sorting and the trace envelope come from
    :class:`~repro.core.pipeline.Pipeline` as usual.
    """

    name = "incremental"

    def __init__(self, bundle: dict[str, object], frames: int = 2) -> None:
        self.bundle = bundle
        self.frames = frames

    def run(self, ctx: AnalysisContext, state: PipelineState) -> None:
        TopologyStage().run(ctx, state)
        RandomFilterStage(self.frames).run(ctx, state)
        survivors = list(state.pairs)

        fingerprint = options_fingerprint(
            ctx.options, ctx.circuit, self.frames
        )
        prior_records: dict[tuple[str, str], dict[str, object]] = {}
        if self.bundle.get("fingerprint") == fingerprint and (
            self.bundle.get("frames") == self.frames
        ):
            for record in self.bundle.get("records", []):  # type: ignore[union-attr]
                prior_records[(record["source"], record["sink"])] = record

        launch = launch_cone_hashes(ctx.circuit, self.frames)
        capture = capture_cone_hashes(ctx.circuit, self.frames)
        names = ctx.circuit.names
        inherited: list[tuple[FFPair, dict[str, object]]] = []
        fresh: list[FFPair] = []
        for pair in survivors:
            record = prior_records.get(
                (names[pair.source], names[pair.sink])
            )
            if (
                record is not None
                and record["stage"] in _DECIDE_STAGES
                and record["launch"] == launch[pair.source]
                and record["capture"] == capture[pair.sink]
            ):
                inherited.append((pair, record))
            else:
                fresh.append(pair)

        # Decide only the changed subset; DecisionStage handles serial/
        # parallel dispatch, counters and trace events unchanged.
        state.pairs = fresh
        before = len(state.results)
        DecisionStage().run(ctx, state)
        fresh_results = state.results[before:]

        # Materialize inherited records; zero CPU charged to their stage.
        for pair, record in inherited:
            result = PairResult(
                pair,
                Classification(record["classification"]),
                Stage(record["stage"]),
                cases=[
                    CaseResult(
                        a=case["a"],
                        b=case["b"],
                        outcome=CaseOutcome(case["outcome"]),
                        decisions=case["decisions"],
                        backtracks=case["backtracks"],
                        witness=case["witness"],
                    )
                    for case in record["cases"]  # type: ignore[union-attr]
                ],
            )
            state.results.append(result)
            stats = state.stats[result.stage]
            if result.classification is Classification.MULTI_CYCLE:
                stats.multi_cycle += 1
            elif result.classification is Classification.SINGLE_CYCLE:
                stats.single_cycle += 1
            else:
                stats.undecided += 1
            _emit_pair(ctx, state, result, 0.0, engine=state.engine)

        self._hazard(ctx, state, fresh_results, inherited)

        state.incremental = {
            "survivors": len(survivors),
            "inherited": len(inherited),
            "re_decided": len(fresh),
        }
        ctx.emit("incremental", fingerprint=fingerprint[:16],
                 **state.incremental)
        state.pairs = []

    # ------------------------------------------------------------------
    def _hazard(
        self,
        ctx: AnalysisContext,
        state: PipelineState,
        fresh_results: list[PairResult],
        inherited: list[tuple[FFPair, dict[str, object]]],
    ) -> None:
        """Hazard-check fresh MC pairs; inherit verdicts where options match."""
        mode = ctx.options.hazard_check
        state.hazard_mode = mode
        if mode == "off":
            return
        from repro.core.hazard import HazardChecker
        from repro.core.sensitization import mode_from_flag
        from repro.core.ternary_hazard import TernaryHazardChecker

        candidates = [
            r for r in fresh_results
            if r.classification is Classification.MULTI_CYCLE
        ]
        flagged: list[FFPair] = []
        verdicts: list[PairHazardVerdict] = []
        checked = len(candidates)
        by_pair = {
            (r.pair.source, r.pair.sink): r for r in state.results
        }
        if self.bundle.get("hazard_fingerprint") == hazard_fingerprint(
            ctx.options
        ):
            for pair, record in inherited:
                if Classification(record["classification"]) is not (
                    Classification.MULTI_CYCLE
                ):
                    continue
                if mode == "exact":
                    kind = record.get("hazard_verdict")
                    if kind is None:
                        # Pre-verdict bundle format: re-check the pair.
                        candidates.append(by_pair[(pair.source, pair.sink)])
                        checked += 1
                        continue
                    from repro.analysis.hazard_exact import (
                        verdict_flags_pair,
                    )

                    verdict = PairHazardVerdict(
                        pair,
                        HazardVerdictKind(kind),
                        "inherited",
                        delay_safe=record.get("hazard_delay_safe"),  # type: ignore[arg-type]
                    )
                    verdicts.append(verdict)
                    checked += 1
                    if verdict_flags_pair(verdict):
                        flagged.append(pair)
                    continue
                checked += 1
                if record.get("hazard_flagged"):
                    flagged.append(pair)
        else:
            # Prior run used different hazard options (or none): its
            # verdicts do not apply, so inherited MC pairs re-check.
            for pair, record in inherited:
                if Classification(record["classification"]) is (
                    Classification.MULTI_CYCLE
                ):
                    candidates.append(by_pair[(pair.source, pair.sink)])
                    checked += 1
        started = ctx.clock()
        lanes = batches = 0
        exact_checker = None
        if candidates:
            if mode == "ternary":
                checker = TernaryHazardChecker(
                    ctx.circuit,
                    ctx.options.hazard_backtrack_limit,
                    expansion=ctx.expansion(2),
                    words=ctx.options.sim_words,
                )
                reports = checker.check_pairs(candidates)
                lanes = checker.lanes_evaluated
                batches = checker.batches_evaluated
            elif mode in ("sensitize", "cosensitize"):
                checker = HazardChecker(
                    ctx.circuit,
                    mode_from_flag(mode),
                    backtrack_limit=ctx.options.hazard_backtrack_limit,
                    expansion=ctx.expansion(2),
                )
                reports = [checker.check_pair(r) for r in candidates]
            elif mode == "exact":
                from repro.analysis.hazard_exact import (
                    ExactHazardChecker,
                    verdict_flags_pair,
                )

                exact_checker = ExactHazardChecker(
                    ctx.circuit,
                    ctx.expansion(2),
                    backtrack_limit=ctx.options.hazard_backtrack_limit,
                    conflict_limit=ctx.options.hazard_conflict_limit,
                    delays=load_gate_delays(ctx.options, ctx.circuit),
                )
                fresh_verdicts = exact_checker.check_pairs(candidates)
                verdicts.extend(fresh_verdicts)
                flagged.extend(
                    v.pair for v in fresh_verdicts
                    if verdict_flags_pair(v)
                )
                reports = []
            else:
                raise ValueError(f"unknown hazard_check mode {mode!r}")
            flagged.extend(
                report.pair_result.pair
                for report in reports
                if report.has_potential_hazard
            )
        flagged.sort(key=lambda p: (p.source, p.sink))
        state.hazard_flagged_pairs = flagged
        state.hazard_flagged = len(flagged)
        state.hazard_checked = checked
        event: dict = dict(
            mode=mode,
            checked=checked,
            flagged=len(flagged),
            lanes=lanes,
            batches=batches,
            seconds=round(ctx.clock() - started, 6),
        )
        if mode == "exact":
            state.hazard_verdicts = sorted(
                verdicts, key=lambda v: (v.pair.source, v.pair.sink)
            )
            if exact_checker is not None:
                state.hazard_exact = exact_checker.summary()
            else:
                from repro.analysis.hazard_exact import empty_exact_summary

                state.hazard_exact = empty_exact_summary()
            event["exact"] = state.hazard_exact
        ctx.emit("hazard_stage", **event)


def incremental_pipeline(
    bundle: dict[str, object], frames: int = 2
) -> Pipeline:
    """A pipeline running the incremental stage over a prior bundle."""
    return Pipeline([IncrementalStage(bundle, frames=frames)])


def incremental_detect(
    circuit: Circuit,
    options: DetectorOptions | None = None,
    bundle: dict[str, object] | None = None,
    tracer: Tracer | None = None,
    progress: ProgressFn | None = None,
) -> DetectionResult:
    """Detect multi-cycle pairs, inheriting from a prior run's bundle.

    With ``bundle=None`` (or a fingerprint mismatch) every surviving
    pair is re-decided — the result is then identical to a full run.
    The merged result's per-pair records are byte-identical to a fresh
    full run either way; ``result.incremental`` reports how much work
    was inherited.  When an artifact store is active the merged bundle
    is republished, so chains of ECOs keep inheriting.
    """
    from repro.analysis.lint import enforce
    from repro.store.runtime import resolve_cache_dir, store_enabled

    options = options or DetectorOptions()
    enforce(circuit, options.lint)
    ctx = AnalysisContext(circuit, options, tracer=tracer, progress=progress)
    cache_dir = resolve_cache_dir(options.cache_dir)
    with store_enabled(cache_dir, options.cache_max_bytes) as store:
        result = incremental_pipeline(bundle or {}).run(ctx)
        if store is not None:
            save_result_bundle(store, result, options)
    return result
