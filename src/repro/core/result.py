"""Result types for the multi-cycle FF-pair detection pipeline.

Every FF pair ends in exactly one classification, tagged with the pipeline
stage that settled it — the data behind the paper's Tables 1 and 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.circuit.netlist import Circuit
from repro.circuit.topology import FFPair


class Classification(Enum):
    """Final verdict for an FF pair."""

    MULTI_CYCLE = "multi-cycle"
    SINGLE_CYCLE = "single-cycle"
    #: ATPG hit its backtrack limit; treated as single-cycle downstream
    #: (no timing relaxation is claimed for it).
    UNDECIDED = "undecided"


class Stage(Enum):
    """Pipeline stage that settled a pair (Table 2 attribution)."""

    SIMULATION = "sim"
    IMPLICATION = "implication"
    ATPG = "atpg"
    #: settled by a non-implication decision engine (SAT / BDD deciders);
    #: the paper's three-stage attribution does not apply to those.
    DECISION = "decision"


class CaseOutcome(Enum):
    """Outcome of one ``(FF_i(t), FF_j(t+1)) = (a, b)`` assignment case."""

    #: the premise assignments contradict during implication
    CONTRADICTION = "contradiction"
    #: implication derives FF_j(t+2) = FF_j(t+1) directly
    IMPLIED_STABLE = "implied-stable"
    #: the backtrack search proved no violating pattern exists
    PROVED_STABLE = "proved-stable"
    #: a violating pattern was found — the pair is single-cycle
    VIOLATED = "violated"
    #: the backtrack limit was exhausted
    ABORTED = "aborted"


@dataclass
class CaseResult:
    """Per-case record; ``a``/``b`` are the assumed FF values."""

    a: int
    b: int
    outcome: CaseOutcome
    decisions: int = 0
    backtracks: int = 0
    #: violating free-input pattern, by expanded-circuit node id (SAT only)
    witness: dict[int, int] | None = None


@dataclass
class PairResult:
    """Full record for one topologically connected FF pair."""

    pair: FFPair
    classification: Classification
    stage: Stage
    cases: list[CaseResult] = field(default_factory=list)
    #: per-pair decision-session counters (implications, prefix hits/
    #: misses); observability only — excluded from equality and from
    #: :meth:`DetectionResult.pair_records`.
    metrics: dict[str, int] | None = field(default=None, compare=False)

    @property
    def is_multi_cycle(self) -> bool:
        return self.classification is Classification.MULTI_CYCLE


@dataclass
class StageStats:
    """Counts and CPU time per pipeline stage (the paper's Table 2)."""

    single_cycle: int = 0
    multi_cycle: int = 0
    undecided: int = 0
    cpu_seconds: float = 0.0


@dataclass
class Disagreement:
    """Two decision engines classified the same pair differently."""

    pair: FFPair
    primary_engine: str
    primary: Classification
    secondary_engine: str
    secondary: Classification


class HazardVerdictKind(Enum):
    """Three-way exact hazard classification of one multi-cycle pair."""

    #: no input assignment lets the source transition glitch the sink
    SAFE = "safe"
    #: a resource limit left the pair undecided; treated as flagged
    GLITCH_POSSIBLE = "glitch-possible"
    #: a concrete assignment (or a sensitizable path) proves the glitch
    GLITCH_PROVEN = "glitch-proven"


@dataclass
class PairHazardVerdict:
    """Exact hazard verdict for one pair (``--hazard-check exact``)."""

    pair: FFPair
    verdict: HazardVerdictKind
    #: what settled the pair: ``cases`` (no satisfiable premise),
    #: ``sensitize`` / ``cosensitize`` (a bound decided it), ``exact``
    #: (the SAT decision) or ``inherited`` (incremental reuse).
    decided_by: str
    #: the ``(a, b)`` case exhibiting the proven glitch, if any
    witness_case: tuple[int, int] | None = None
    #: glitching input pattern by expanded-circuit node id (SAT-decided)
    witness: dict[int, int] | None = None
    #: delay-annotated runs only: True when the proven glitch cannot
    #: survive the annotated min/max gate delays (zero-width pulse).
    delay_safe: bool | None = None


@dataclass
class DetectionResult:
    """Everything the detector learned about one circuit."""

    circuit: Circuit
    connected_pairs: int
    pair_results: list[PairResult]
    stats: dict[Stage, StageStats]
    total_seconds: float
    learned_implications: int = 0
    #: decision engine that settled the post-simulation pairs.
    engine: str = "dalg"
    #: cross-check decider only: pairs where the two engines disagreed.
    disagreements: list[Disagreement] = field(default_factory=list)
    #: decision-session counter totals (prefix cache hits/misses, trail
    #: high-water mark, ...); ``None`` for non-session engines (sat/bdd).
    decision_session: dict[str, int] | None = None
    #: compiled implication-DB stats (nodes/keys/edges/impossible/build
    #: seconds); ``None`` unless ``DetectorOptions.implication_db`` was
    #: set.  Observability only — excluded from :meth:`pair_records`.
    implication_db: dict[str, float | int] | None = None
    #: packed-implication pre-pass totals (lanes packed, lanes resolved,
    #: scalar fallbacks, closures/visits/microseconds); ``None`` when
    #: lane packing was disabled.  Observability only — the packed path
    #: never changes classifications or :meth:`pair_records`.
    packed_implication: dict[str, int] | None = None
    #: hazard-validation mode the pipeline ran ("off" when disabled;
    #: "ternary", "sensitize" or "cosensitize" otherwise).
    hazard_mode: str = "off"
    #: multi-cycle pairs the hazard stage examined / flagged.
    hazard_checked: int = 0
    hazard_flagged: int = 0
    #: flagged (source, sink) pairs, sorted — observability only, the
    #: per-pair classifications and :meth:`pair_records` are unchanged.
    hazard_flagged_pairs: list[FFPair] = field(default_factory=list)
    #: ``exact`` mode only: per-pair three-way verdicts, sorted by pair.
    #: Observability only — excluded from :meth:`pair_records`.
    hazard_verdicts: list[PairHazardVerdict] = field(default_factory=list)
    #: ``exact`` mode only: counters of the exact pass (bounds
    #: disagreement, resolution fraction, SAT solve outcomes, delay
    #: filtering); ``None`` for every other hazard mode.
    hazard_exact: dict[str, float | int] | None = None
    #: artifact-store counter deltas for this run (hits/misses/stores/
    #: evictions/corrupt); ``None`` when no on-disk store was active.
    #: Observability only — excluded from :meth:`pair_records`.
    cache: dict[str, int] | None = None
    #: incremental re-analysis stats (survivors/inherited/re-decided);
    #: ``None`` for a full run.  The merged per-pair records are
    #: byte-identical to a fresh full run — the invariant the hypothesis
    #: differentials in ``tests/core/test_incremental.py`` enforce.
    incremental: dict[str, int] | None = None
    #: shared-memory backplane summary for parallel decide runs (kinds
    #: published, bytes, workers attached, per-worker store misses and
    #: peak RSS); ``None`` when no backplane was published.
    #: Observability only — excluded from :meth:`pair_records`.
    backplane: dict | None = None

    @property
    def multi_cycle_pairs(self) -> list[PairResult]:
        return [p for p in self.pair_results if p.is_multi_cycle]

    @property
    def hazard_verified_pairs(self) -> list[PairResult]:
        """Multi-cycle pairs the hazard stage did not flag.

        Equal to :attr:`multi_cycle_pairs` when the stage was off.
        """
        flagged = {(p.source, p.sink) for p in self.hazard_flagged_pairs}
        return [
            p
            for p in self.multi_cycle_pairs
            if (p.pair.source, p.pair.sink) not in flagged
        ]

    @property
    def single_cycle_pairs(self) -> list[PairResult]:
        return [
            p
            for p in self.pair_results
            if p.classification is Classification.SINGLE_CYCLE
        ]

    @property
    def undecided_pairs(self) -> list[PairResult]:
        return [
            p for p in self.pair_results if p.classification is Classification.UNDECIDED
        ]

    def pair_names(self, result: PairResult) -> tuple[str, str]:
        names = self.circuit.names
        return names[result.pair.source], names[result.pair.sink]

    def multi_cycle_pair_names(self) -> list[tuple[str, str]]:
        """Readable ``(source, sink)`` names of all multi-cycle pairs."""
        return sorted(self.pair_names(p) for p in self.multi_cycle_pairs)

    def pair_records(self) -> list[dict[str, object]]:
        """Deterministic per-pair records, timing excluded.

        Two runs of the same circuit with the same options must produce
        byte-identical JSON for this list regardless of worker count —
        the invariant the parallel executor is tested against.
        """
        names = self.circuit.names
        records: list[dict[str, object]] = []
        for result in self.pair_results:
            records.append({
                "source": names[result.pair.source],
                "sink": names[result.pair.sink],
                "classification": result.classification.value,
                "stage": result.stage.value,
                "cases": [
                    {
                        "a": case.a,
                        "b": case.b,
                        "outcome": case.outcome.value,
                        "decisions": case.decisions,
                        "backtracks": case.backtracks,
                        "witness": case.witness,
                    }
                    for case in result.cases
                ],
            })
        return records

    def summary(self) -> dict[str, float | int]:
        return {
            "ff_pairs": self.connected_pairs,
            "mc_pairs": len(self.multi_cycle_pairs),
            "single_cycle": len(self.single_cycle_pairs),
            "undecided": len(self.undecided_pairs),
            "cpu_seconds": self.total_seconds,
        }
