"""Regeneration of the paper's result tables on the benchmark suite.

Each ``run_tableN`` function produces the same rows/columns the paper
reports (Tables 1-3), computed on our circuits; ``format_table`` renders
them as aligned text.  The benchmark harness (``benchmarks/``), the CLI
(``python -m repro tableN``) and EXPERIMENTS.md all share these functions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

from repro.circuit.netlist import Circuit
from repro.core.detector import DetectorOptions, detect_multi_cycle_pairs
from repro.core.hazard import check_hazards
from repro.core.result import DetectionResult, Stage
from repro.core.sensitization import SensitizationMode
from repro.sat.mc_sat import sat_detect_multi_cycle_pairs


@dataclass
class Table:
    """A titled text table plus the raw row data."""

    title: str
    headers: list[str]
    rows: list[list[object]]
    notes: list[str] = field(default_factory=list)

    def format(self) -> str:
        return format_table(self.title, self.headers, self.rows, self.notes)


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    notes: Sequence[str] = (),
) -> str:
    """Render rows as a fixed-width text table."""
    def cell(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.2f}"
        return str(value)

    text_rows = [[cell(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in text_rows)) if text_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [title]
    lines.append("  ".join(h.rjust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(row[i].rjust(widths[i]) for i in range(len(headers))))
    for note in notes:
        lines.append(f"  {note}")
    return "\n".join(lines)


def _apply_pipeline_options(
    options: DetectorOptions | None,
    engine: str | None,
    workers: int | None,
) -> DetectorOptions | None:
    """Fold ``engine``/``workers`` overrides into the detector options."""
    if engine is None and workers is None:
        return options
    from dataclasses import replace

    base = options or DetectorOptions()
    updates: dict[str, object] = {}
    if engine is not None:
        updates["search_engine"] = engine
    if workers is not None:
        updates["workers"] = workers
    return replace(base, **updates)


# ----------------------------------------------------------------------
# Table 1: MC pairs + CPU, implication-based vs SAT-based.
# ----------------------------------------------------------------------
def run_table1(
    circuits: Sequence[Circuit],
    options: DetectorOptions | None = None,
    sat_mode: str = "per-pair",
    run_sat: bool = True,
    engine: str | None = None,
    workers: int | None = None,
) -> tuple[Table, list[DetectionResult]]:
    """Per-circuit MC-pair counts and CPU seconds, ours vs SAT baseline.

    Mirrors the paper's Table 1 (their SAT column is ref. [9]; ours is the
    from-scratch CDCL baseline in the requested ``sat_mode``).  ``engine``
    and ``workers`` select the pipeline's decision engine and worker count
    for the "ours" column without the caller building options by hand.
    """
    options = _apply_pipeline_options(options, engine, workers)
    headers = ["circuit", "In", "FF", "FF-pair", "MC-pair", "CPU(s)",
               "SAT MC-pair", "SAT CPU(s)"]
    rows: list[list[object]] = []
    detections: list[DetectionResult] = []
    total_pairs = total_mc = 0
    total_cpu = total_sat_cpu = 0.0
    for circuit in circuits:
        detection = detect_multi_cycle_pairs(circuit, options)
        detections.append(detection)
        stats = circuit.stats()
        mc = len(detection.multi_cycle_pairs)
        row: list[object] = [
            circuit.name, stats["inputs"], stats["dffs"],
            detection.connected_pairs, mc, detection.total_seconds,
        ]
        if run_sat:
            sat = sat_detect_multi_cycle_pairs(circuit, mode=sat_mode)
            row.extend([len(sat.multi_cycle_pairs), sat.total_seconds])
            total_sat_cpu += sat.total_seconds
        else:
            row.extend(["-", "-"])
        rows.append(row)
        total_pairs += detection.connected_pairs
        total_mc += mc
        total_cpu += detection.total_seconds
    rows.append(
        ["Total", "", "", total_pairs, total_mc, total_cpu,
         "", total_sat_cpu if run_sat else "-"]
    )
    notes = [
        "MC-pair counts include self-loop pairs (the paper notes [9] excluded them).",
        f"SAT baseline mode: {sat_mode}.",
    ]
    return Table("Table 1: multi-cycle FF pairs (no hazard checking)",
                 headers, rows, notes), detections


# ----------------------------------------------------------------------
# Table 2: per-stage resolution counts.
# ----------------------------------------------------------------------
def run_table2(
    circuits: Sequence[Circuit],
    options: DetectorOptions | None = None,
    detections: Sequence[DetectionResult] | None = None,
) -> Table:
    """Totals of pairs identified per stage (Sim / Implication / ATPG)."""
    if detections is None:
        detections = [detect_multi_cycle_pairs(c, options) for c in circuits]
    single = {stage: 0 for stage in Stage}
    multi = {stage: 0 for stage in Stage}
    cpu = {stage: 0.0 for stage in Stage}
    undecided = 0
    for detection in detections:
        for stage in Stage:
            stage_stats = detection.stats[stage]
            single[stage] += stage_stats.single_cycle
            multi[stage] += stage_stats.multi_cycle
            undecided += stage_stats.undecided
            cpu[stage] += stage_stats.cpu_seconds

    def percent(count: int, total: int) -> str:
        return f"{count} ({100.0 * count / total:.1f}%)" if total else "0"

    total_single = sum(single.values())
    total_multi = sum(multi.values())
    # The paper's three columns, plus one per extra pipeline stage (the
    # "decision" column only carries counts for non-implication engines).
    labels = {
        Stage.SIMULATION: "Sim.",
        Stage.IMPLICATION: "Implication",
        Stage.ATPG: "ATPG",
        Stage.DECISION: "Decision",
    }
    headers = [""] + [labels.get(s, s.value) for s in Stage]
    rows = [
        ["single cycle"] + [percent(single[s], total_single) for s in Stage],
        ["multi cycle"] + [percent(multi[s], total_multi) for s in Stage],
        ["CPU(s)"] + [cpu[s] for s in Stage],
    ]
    notes = [f"undecided pairs (backtrack limit): {undecided}"] if undecided else []
    return Table("Table 2: results of each analysis step", headers, rows, notes)


# ----------------------------------------------------------------------
# Table 3: static hazard checking.
# ----------------------------------------------------------------------
def run_table3(
    circuits: Sequence[Circuit],
    options: DetectorOptions | None = None,
) -> Table:
    """MC pairs before/after hazard checks plus checking CPU time.

    The circuits are technology-mapped first (hazards live in the mapped
    AND/OR/NOT structure, paper Fig. 3).
    """
    from repro.circuit.techmap import techmap

    before = 0
    kept = {mode: 0 for mode in SensitizationMode}
    cpu = {mode: 0.0 for mode in SensitizationMode}
    for circuit in circuits:
        mapped = techmap(circuit)
        detection = detect_multi_cycle_pairs(mapped, options)
        before += len(detection.multi_cycle_pairs)
        for mode in SensitizationMode:
            result = check_hazards(mapped, detection, mode)
            kept[mode] += len(result.verified_pairs)
            cpu[mode] += result.total_seconds

    headers = ["", "MC-pair", "CPU(s)"]
    rows: list[list[object]] = [["before", before, 0.0]]
    rows.append(
        ["sensitize", kept[SensitizationMode.STATIC_SENSITIZATION],
         cpu[SensitizationMode.STATIC_SENSITIZATION]]
    )
    rows.append(
        ["co-sensitize", kept[SensitizationMode.STATIC_CO_SENSITIZATION],
         cpu[SensitizationMode.STATIC_CO_SENSITIZATION]]
    )
    notes = [
        "Rows are MC pairs surviving each check (detection on mapped circuits).",
        "Invariant: before >= sensitize >= co-sensitize.",
    ]
    return Table("Table 3: results of static hazard checking", headers, rows, notes)
