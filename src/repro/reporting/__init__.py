"""Subpackage repro.reporting."""
